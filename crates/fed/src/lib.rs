//! # farm-fed — sharded pod federation ("a farmd of farmds")
//!
//! One data center is many pods, each already run by its own `farmd`.
//! This crate adds the layer above: `fedd`, a coordinator daemon that
//! speaks the exact same farm-net wire protocol — to its clients
//! (`farmctl --fed`) *and* to the fleet of pod daemons it shards over.
//!
//! * [`registry`] — pod membership: registration manifests (switch
//!   count, headroom quota, wire address), heartbeat liveness, and the
//!   contiguous global switch-id space the coordinator assigns
//!   (`global = pod.base + local`).
//! * [`split`] — cross-pod admission: an Almanac program whose `place`
//!   set falls inside one pod routes there verbatim; one that spans
//!   pods is split into per-pod sub-programs with switch ids rewritten
//!   into each pod's local space.
//! * [`jsonval`] — a minimal total JSON reader used to merge the pods'
//!   `Stats` / `MetricsDump` reply bodies into one federated view.
//! * [`server`] — the daemon: a single core thread owning the registry
//!   and one control-plane session per pod, serving federated reads
//!   (fan-out + merge, cursor pagination preserved), all-or-nothing
//!   split submission, and cross-pod seed migration over the existing
//!   `VSeedSnapshot` export/import ops.
//!
//! Everything the coordinator does is audited under the `fed.*`
//! telemetry family: `fed.pods.total` / `fed.pods.live` gauges,
//! `fed.route.single` / `fed.route.split` / `fed.route.rollback` and
//! `fed.migrate.ok` / `fed.migrate.fail` counters, and the
//! `fed.fanout_us` fan-out latency histogram.

pub mod config;
pub mod jsonval;
pub mod registry;
pub mod server;
pub mod split;

pub use config::FeddConfig;
pub use registry::Registry;
pub use server::Fedd;
pub use split::{split_program, PodTarget, Route};
