//! Pod membership: the coordinator's registry of farmd instances.
//!
//! Each pod joins with a topology manifest — its wire address, switch
//! count and admission quota — and is assigned a contiguous base in the
//! federation's global switch-id space: global id `base + i` is the
//! pod's local switch `i`. The base is sticky per pod name so a pod
//! that restarts (or re-registers after a coordinator restart) keeps
//! its global ids, as long as its switch count did not change.
//!
//! Liveness is heartbeat-driven: [`Registry::sweep`] marks a pod dead
//! once its last beat is older than the liveness window. Dead pods stay
//! listed (their slice of the id space stays reserved) but fan-outs
//! skip them.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::time::Instant;

/// One registered pod.
#[derive(Debug, Clone)]
pub struct Pod {
    /// Wire address of the pod's farmd control endpoint.
    pub addr: SocketAddr,
    /// Switches the pod manages (local id space `0..switches`).
    pub switches: u64,
    /// Global switch-id base assigned at first registration.
    pub base: u64,
    /// Admission headroom quota the pod advertised.
    pub quota: f64,
    /// Heartbeats observed since the last (re)registration.
    pub beats: u64,
    /// Last heartbeat (or registration) arrival.
    pub last_beat: Instant,
    /// False once [`Registry::sweep`] finds the pod past the window.
    pub live: bool,
}

/// The pod table plus the global switch-id space allocator.
#[derive(Debug, Default)]
pub struct Registry {
    pods: BTreeMap<String, Pod>,
    next_base: u64,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers (or re-registers) a pod, returning its global switch
    /// base. A known name keeps its base while its switch count is
    /// unchanged; growing or shrinking the pod re-allocates a fresh
    /// slice at the end of the space — global ids are never re-used for
    /// a differently-shaped pod.
    pub fn register(
        &mut self,
        name: &str,
        addr: SocketAddr,
        switches: u64,
        quota: f64,
        now: Instant,
    ) -> u64 {
        let base = match self.pods.get(name) {
            Some(prev) if prev.switches == switches => prev.base,
            _ => {
                let base = self.next_base;
                self.next_base += switches;
                base
            }
        };
        self.pods.insert(
            name.to_string(),
            Pod {
                addr,
                switches,
                base,
                quota,
                beats: 0,
                last_beat: now,
                live: true,
            },
        );
        base
    }

    /// Records one heartbeat; `false` when the pod is unknown (the
    /// coordinator restarted — the pod must re-register).
    pub fn beat(&mut self, name: &str, now: Instant) -> bool {
        match self.pods.get_mut(name) {
            Some(pod) => {
                pod.beats += 1;
                pod.last_beat = now;
                pod.live = true;
                true
            }
            None => false,
        }
    }

    /// Marks every pod whose last beat is older than `window` dead.
    /// Returns `(total, live)` pod counts for the liveness gauges.
    pub fn sweep(&mut self, window: std::time::Duration, now: Instant) -> (u64, u64) {
        let mut live = 0u64;
        for pod in self.pods.values_mut() {
            if now.duration_since(pod.last_beat) > window {
                pod.live = false;
            }
            live += pod.live as u64;
        }
        (self.pods.len() as u64, live)
    }

    pub fn get(&self, name: &str) -> Option<&Pod> {
        self.pods.get(name)
    }

    /// All pods, name-sorted (BTreeMap order).
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Pod)> {
        self.pods.iter()
    }

    /// Live pods only, name-sorted.
    pub fn live(&self) -> impl Iterator<Item = (&String, &Pod)> {
        self.pods.iter().filter(|(_, p)| p.live)
    }

    /// Resolves a global switch id to `(pod name, local id)`.
    pub fn locate(&self, global: u64) -> Option<(&String, u64)> {
        self.pods
            .iter()
            .find(|(_, p)| p.base <= global && global < p.base + p.switches)
            .map(|(name, p)| (name, global - p.base))
    }

    pub fn len(&self) -> usize {
        self.pods.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pods.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn addr(port: u16) -> SocketAddr {
        SocketAddr::new(std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST), port)
    }

    #[test]
    fn bases_are_contiguous_and_sticky_across_re_registration() {
        let t0 = Instant::now();
        let mut r = Registry::new();
        assert_eq!(r.register("a", addr(1), 5, 1.0, t0), 0);
        assert_eq!(r.register("b", addr(2), 3, 1.0, t0), 5);
        // Same shape: the base survives a restart.
        assert_eq!(r.register("a", addr(9), 5, 0.5, t0), 0);
        assert_eq!(r.get("a").unwrap().addr, addr(9));
        // Re-shaped: a fresh slice at the end, never an overlap.
        assert_eq!(r.register("a", addr(9), 6, 0.5, t0), 8);
        assert_eq!(r.locate(9), Some((&"a".to_string(), 1)));
        assert_eq!(r.locate(6), Some((&"b".to_string(), 1)));
    }

    #[test]
    fn locate_maps_global_ids_into_pods() {
        let t0 = Instant::now();
        let mut r = Registry::new();
        r.register("a", addr(1), 4, 1.0, t0);
        r.register("b", addr(2), 2, 1.0, t0);
        assert_eq!(r.locate(0), Some((&"a".to_string(), 0)));
        assert_eq!(r.locate(3), Some((&"a".to_string(), 3)));
        assert_eq!(r.locate(4), Some((&"b".to_string(), 0)));
        assert_eq!(r.locate(5), Some((&"b".to_string(), 1)));
        assert_eq!(r.locate(6), None);
    }

    #[test]
    fn sweep_marks_stale_pods_dead_and_beats_revive() {
        let t0 = Instant::now();
        let mut r = Registry::new();
        r.register("a", addr(1), 4, 1.0, t0);
        r.register("b", addr(2), 4, 1.0, t0);
        let later = t0 + Duration::from_millis(500);
        assert!(r.beat("a", later));
        assert!(!r.beat("ghost", later));
        assert_eq!(r.sweep(Duration::from_millis(200), later), (2, 1));
        assert!(r.get("a").unwrap().live);
        assert!(!r.get("b").unwrap().live);
        assert_eq!(r.live().count(), 1);
        // A late beat revives the pod.
        assert!(r.beat("b", later));
        assert_eq!(r.sweep(Duration::from_millis(200), later), (2, 2));
        assert_eq!(r.get("b").unwrap().beats, 1);
    }
}
