//! Cross-pod admission: deciding where a submitted Almanac program
//! runs, and rewriting it when it spans pods.
//!
//! The coordinator sees `place` directives in the federation's *global*
//! switch-id space; each pod compiles against its own *local* space
//! `0..switches`. Routing rules, per machine:
//!
//! * `place all;` (no constraint) — broadcast: the machine plants on
//!   every pod of the program's pod set, directive unchanged (each pod
//!   expands it over its local fabric).
//! * `place all <ids>;` / `place any <ids>;` — the ids are const-
//!   evaluated as global switch ids and partitioned by pod; each pod's
//!   sub-program keeps only its own ids, rewritten to local literals.
//! * `place any;` and `range` constraints cannot be partitioned (their
//!   meaning is relative to one fabric), so they pin the whole program
//!   to a single pod.
//!
//! The program's pod set is the union over machines. One pod → the
//! original source routes there verbatim (byte-identical, so a
//! single-pod federation behaves exactly like a bare farmd). Several
//! pods → a split, which is only accepted when every machine covers
//! *every* pod of the set (the uniform-coverage rule): a machine left
//! without seeds on some pod would fail compilation there, and a
//! partially-placed program has no coherent rollback story.

use std::collections::BTreeMap;

use farm_almanac::analysis::{const_eval, ConstEnv};
use farm_almanac::ast::{Expr, Literal, Machine, PlaceConstraint, PlaceQuant};
use farm_almanac::parser::parse;
use farm_almanac::printer::program_to_source;

/// One live pod as the splitter sees it. Order matters: `place any;`
/// programs (and broadcast-only programs with an empty explicit set)
/// route to the first entry, so callers list pods by preference.
#[derive(Debug, Clone, PartialEq)]
pub struct PodTarget {
    pub name: String,
    /// Global switch-id base (`global = base + local`).
    pub base: u64,
    /// Local switch count (`0..switches` is the pod's id space).
    pub switches: u64,
}

impl PodTarget {
    fn owns(&self, global: u64) -> bool {
        self.base <= global && global < self.base + self.switches
    }
}

/// Where a program goes.
#[derive(Debug, Clone, PartialEq)]
pub enum Route {
    /// The whole program to one pod. `source` is the original text
    /// verbatim when the pod's base is 0 (global ids already *are*
    /// local ids), and a localized rewrite otherwise.
    Single { pod: String, source: String },
    /// Per-pod rewritten sub-programs, in pod order.
    Split { parts: Vec<(String, String)> },
}

/// Routes `source` over `pods`.
///
/// # Errors
///
/// A human-readable rejection reason: parse failures, global ids
/// outside every pod, un-partitionable constraints inside a span, or a
/// machine violating the uniform-coverage rule.
pub fn split_program(source: &str, pods: &[PodTarget]) -> Result<Route, String> {
    if pods.is_empty() {
        return Err("no live pods to place on".into());
    }
    let program = parse(source).map_err(|e| format!("program does not parse: {e}"))?;
    if program.machines.is_empty() {
        return Err("program declares no machines".into());
    }

    // Classify every machine and union the explicit pod sets.
    let mut classes = Vec::with_capacity(program.machines.len());
    let mut explicit_pods: Vec<usize> = Vec::new();
    let mut any_broadcast = false;
    let mut pinned = false;
    for m in &program.machines {
        let class = classify(m, pods)?;
        match &class {
            MachineClass::Broadcast => any_broadcast = true,
            MachineClass::Pinned => pinned = true,
            MachineClass::Explicit(by_pod) => {
                for idx in by_pod.keys() {
                    if !explicit_pods.contains(idx) {
                        explicit_pods.push(*idx);
                    }
                }
            }
        }
        classes.push(class);
    }
    explicit_pods.sort_unstable();

    // The program's pod set.
    let set: Vec<usize> = if !explicit_pods.is_empty() {
        explicit_pods
    } else if any_broadcast {
        (0..pods.len()).collect()
    } else {
        // Only `place any;` / `range` machines: the caller's preferred pod.
        vec![0]
    };

    if set.len() == 1 {
        let idx = set[0];
        let pod = &pods[idx];
        // A base-0 pod's local ids equal the global ids, so the source
        // forwards untouched; any other base needs the same local-id
        // rewrite a split applies.
        let text = if pod.base == 0
            || !classes
                .iter()
                .any(|c| matches!(c, MachineClass::Explicit(_)))
        {
            source.to_string()
        } else {
            let mut sub = program.clone();
            for (m, class) in sub.machines.iter_mut().zip(&classes) {
                if let MachineClass::Explicit(by_pod) = class {
                    localize(m, &by_pod[&idx]);
                }
            }
            program_to_source(&sub)
        };
        return Ok(Route::Single {
            pod: pod.name.clone(),
            source: text,
        });
    }
    if pinned {
        return Err(
            "a `place any` or `range` constraint pins the program to one pod, but its \
             explicit switch ids span several; pin every machine or keep ids in one pod"
                .into(),
        );
    }

    // Uniform coverage: every explicit machine must place on every pod
    // of the set (broadcast machines cover the set by construction).
    for (m, class) in program.machines.iter().zip(&classes) {
        if let MachineClass::Explicit(by_pod) = class {
            for idx in &set {
                if !by_pod.contains_key(idx) {
                    return Err(format!(
                        "machine `{}` places no seeds in pod `{}` while the program spans \
                         it; a split needs every machine on every pod it touches",
                        m.name, pods[*idx].name
                    ));
                }
            }
        }
    }

    let mut parts = Vec::with_capacity(set.len());
    for idx in &set {
        let mut sub = program.clone();
        for (m, class) in sub.machines.iter_mut().zip(&classes) {
            if let MachineClass::Explicit(by_pod) = class {
                localize(m, &by_pod[idx]);
            }
        }
        parts.push((pods[*idx].name.clone(), program_to_source(&sub)));
    }
    Ok(Route::Split { parts })
}

/// How one machine routes.
enum MachineClass {
    /// `place all;` — every pod of the program's set.
    Broadcast,
    /// `place any;` or a `range` constraint — single-pod only.
    Pinned,
    /// Explicit switch ids: pod index → that pod's local ids, in
    /// directive order (one entry per directive, aligned by position).
    Explicit(BTreeMap<usize, Vec<Vec<u64>>>),
}

fn classify(m: &Machine, pods: &[PodTarget]) -> Result<MachineClass, String> {
    let env = machine_consts(m);
    let mut by_pod: BTreeMap<usize, Vec<Vec<u64>>> = BTreeMap::new();
    let mut explicit_directives = 0usize;
    let mut broadcast = false;
    let mut pinned = false;
    for p in &m.placements {
        match &p.constraint {
            PlaceConstraint::None => match p.quant {
                PlaceQuant::All => broadcast = true,
                PlaceQuant::Any => pinned = true,
            },
            PlaceConstraint::Range { .. } => pinned = true,
            PlaceConstraint::Switches(exprs) => {
                let slot = explicit_directives;
                explicit_directives += 1;
                for e in exprs {
                    let global = const_eval(e, &env)
                        .ok()
                        .and_then(|v| v.as_int())
                        .ok_or_else(|| {
                            format!(
                                "machine `{}`: place expression is not a compile-time \
                                 switch id",
                                m.name
                            )
                        })?;
                    let global = u64::try_from(global).map_err(|_| {
                        format!("machine `{}`: negative switch id {global}", m.name)
                    })?;
                    let Some((idx, pod)) =
                        pods.iter().enumerate().find(|(_, pod)| pod.owns(global))
                    else {
                        return Err(format!(
                            "machine `{}`: switch id {global} is outside every live pod",
                            m.name
                        ));
                    };
                    let lists = by_pod
                        .entry(idx)
                        .or_insert_with(|| vec![Vec::new(); explicit_directives]);
                    lists.resize(explicit_directives, Vec::new());
                    lists[slot].push(global - pod.base);
                }
            }
        }
    }
    if !by_pod.is_empty() {
        if broadcast || pinned {
            return Err(format!(
                "machine `{}` mixes explicit switch ids with `all`/`any`/`range` \
                 placement; the coordinator cannot partition that",
                m.name
            ));
        }
        // Directive lists are positional; pad pods that missed later ones.
        for lists in by_pod.values_mut() {
            lists.resize(explicit_directives, Vec::new());
        }
        return Ok(MachineClass::Explicit(by_pod));
    }
    if pinned {
        return Ok(MachineClass::Pinned);
    }
    Ok(MachineClass::Broadcast)
}

/// The constant environment `place` expressions see at split time:
/// machine-variable initializers that const-evaluate (externals fall
/// back to their defaults — fedd submissions carry no assignments),
/// accumulated in declaration order so later inits may use earlier
/// names. Mirrors the pod-side compiler's environment.
fn machine_consts(m: &Machine) -> ConstEnv {
    let mut env = ConstEnv::new();
    for v in &m.vars {
        if let Some(init) = &v.init {
            if let Ok(val) = const_eval(init, &env) {
                env.insert(v.name.clone(), val);
            }
        }
    }
    env
}

/// Rewrites a machine's explicit directives to one pod's local ids.
/// Directives left with no local ids are dropped; the uniform-coverage
/// check already guaranteed at least one survives.
fn localize(m: &mut Machine, lists: &[Vec<u64>]) {
    let mut slot = 0usize;
    m.placements.retain_mut(|p| {
        let PlaceConstraint::Switches(exprs) = &mut p.constraint else {
            return true;
        };
        let span = exprs.first().map(|e| e.span()).unwrap_or_default();
        let locals = &lists[slot];
        slot += 1;
        *exprs = locals
            .iter()
            .map(|id| Expr::Lit(Literal::Int(*id as i64), span))
            .collect();
        !exprs.is_empty()
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pods() -> Vec<PodTarget> {
        vec![
            PodTarget {
                name: "a".into(),
                base: 0,
                switches: 5,
            },
            PodTarget {
                name: "b".into(),
                base: 5,
                switches: 5,
            },
        ]
    }

    fn machine(place: &str) -> String {
        format!(
            "machine M {{\n  {place}\n  long n = 0;\n  state s {{\n    \
             util (res) {{ if (res.vCPU >= 0) then {{ return 1; }} }}\n  }}\n}}\n"
        )
    }

    #[test]
    fn one_pod_ids_route_single_verbatim_at_base_zero_localized_above() {
        let src = machine("place all 1, 3;");
        match split_program(&src, &pods()).unwrap() {
            Route::Single { pod, source } => {
                assert_eq!(pod, "a");
                assert_eq!(source, src, "base-0 pod gets the bytes untouched");
            }
            other => panic!("{other:?}"),
        }
        // Pod b's base is 5: globals 6 and 9 are its locals 1 and 4.
        let src = machine("place all 6, 9;");
        match split_program(&src, &pods()).unwrap() {
            Route::Single { pod, source } => {
                assert_eq!(pod, "b");
                assert!(source.contains("place all 1, 4;"), "{source}");
                parse(&source).unwrap();
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn spanning_ids_split_and_localize() {
        let src = machine("place all 2, 7, 9;");
        let Route::Split { parts } = split_program(&src, &pods()).unwrap() else {
            panic!("expected a split");
        };
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].0, "a");
        assert!(parts[0].1.contains("place all 2;"), "{}", parts[0].1);
        assert_eq!(parts[1].0, "b");
        assert!(parts[1].1.contains("place all 2, 4;"), "{}", parts[1].1);
        // Both halves still parse.
        for (_, part) in &parts {
            parse(part).unwrap();
        }
    }

    #[test]
    fn place_all_broadcasts_and_place_any_routes_to_preferred_pod() {
        let src = machine("place all;");
        let Route::Split { parts } = split_program(&src, &pods()).unwrap() else {
            panic!("expected a broadcast split");
        };
        assert_eq!(parts.len(), 2);
        for (_, part) in &parts {
            assert!(part.contains("place all;"), "{part}");
        }
        let src = machine("place any;");
        assert_eq!(
            split_program(&src, &pods()).unwrap(),
            Route::Single {
                pod: "a".into(),
                source: src.clone(),
            }
        );
    }

    #[test]
    fn const_initializers_feed_place_expressions() {
        let src = "machine M {\n  long sw = 3 + 4;\n  place all sw;\n  state s {\n    \
                   util (res) { if (res.vCPU >= 0) then { return 1; } }\n  }\n}\n";
        match split_program(src, &pods()).unwrap() {
            // Global 7 is pod b's local 2; the const expression becomes
            // a plain literal on the way down.
            Route::Single { pod, source } => {
                assert_eq!(pod, "b");
                assert!(source.contains("place all 2;"), "{source}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bad_ids_and_partial_coverage_are_rejected() {
        let e = split_program(&machine("place all 12;"), &pods()).unwrap_err();
        assert!(e.contains("outside every live pod"), "{e}");
        // Machine A spans both pods, machine B sits in pod a only.
        let src = format!(
            "{}{}",
            machine("place all 2, 7;"),
            "machine N {\n  place all 1;\n  long n = 0;\n  state s {\n    \
             util (res) { if (res.vCPU >= 0) then { return 1; } }\n  }\n}\n"
        );
        let e = split_program(&src, &pods()).unwrap_err();
        assert!(e.contains("places no seeds in pod `b`"), "{e}");
        let e = split_program("not almanac", &pods()).unwrap_err();
        assert!(e.contains("does not parse"), "{e}");
        let e = split_program(&machine("place all 1;"), &[]).unwrap_err();
        assert!(e.contains("no live pods"), "{e}");
    }

    #[test]
    fn range_pins_and_conflicts_with_a_span() {
        let range = "machine R {\n  place any receiver range <= 2;\n  long n = 0;\n  \
                     state s {\n    util (res) { if (res.vCPU >= 0) then { return 1; } }\n  }\n}\n";
        assert_eq!(
            split_program(range, &pods()).unwrap(),
            Route::Single {
                pod: "a".into(),
                source: range.to_string(),
            }
        );
        let src = format!("{}{range}", machine("place all 2, 7;"));
        let e = split_program(&src, &pods()).unwrap_err();
        assert!(e.contains("pins the program to one pod"), "{e}");
    }
}
