//! A minimal, total JSON reader — just enough to merge the `Stats`
//! bodies farmd emits (objects, arrays, strings, numbers, booleans,
//! null). Write-side JSON stays in `farm_ctl::json`; this is the read
//! side the coordinator needs to fan federated stats back together.
//! Malformed input yields `Err`, never a panic.

use std::collections::BTreeMap;

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Jv {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Jv>),
    Obj(BTreeMap<String, Jv>),
}

impl Jv {
    pub fn get(&self, key: &str) -> Option<&Jv> {
        match self {
            Jv::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Jv::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Jv::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Jv]> {
        match self {
            Jv::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&BTreeMap<String, Jv>> {
        match self {
            Jv::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parses one JSON document (trailing garbage rejected).
pub fn parse(src: &str) -> Result<Jv, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let v = value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<Jv, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut m = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Jv::Obj(m));
            }
            loop {
                skip_ws(b, pos);
                let Jv::Str(key) = string(b, pos)? else {
                    unreachable!()
                };
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                m.insert(key, value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Jv::Obj(m));
                    }
                    _ => return Err(format!("expected `,` or `}}` at offset {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut v = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Jv::Arr(v));
            }
            loop {
                v.push(value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Jv::Arr(v));
                    }
                    _ => return Err(format!("expected `,` or `]` at offset {pos}")),
                }
            }
        }
        Some(b'"') => string(b, pos),
        Some(b't') => lit(b, pos, "true", Jv::Bool(true)),
        Some(b'f') => lit(b, pos, "false", Jv::Bool(false)),
        Some(b'n') => lit(b, pos, "null", Jv::Null),
        Some(_) => number(b, pos),
    }
}

fn expect(b: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at offset {pos}", want as char))
    }
}

fn lit(b: &[u8], pos: &mut usize, word: &str, v: Jv) -> Result<Jv, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(v)
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<Jv, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(Jv::Str(out));
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input came in as &str).
                let s = &b[*pos..];
                let ch = std::str::from_utf8(s)
                    .ok()
                    .and_then(|s| s.chars().next())
                    .ok_or("invalid utf-8 inside string")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn number(b: &[u8], pos: &mut usize) -> Result<Jv, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(Jv::Num)
        .ok_or_else(|| format!("bad number at offset {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_stats_shaped_body() {
        let v = parse(
            r#"{"now_ns":12,"tasks":["a","b"],"seeds":3,"cordoned":[1,7],
               "counters":{"ctl.ops":9,"net.bytes":1024},"ok":true,"x":null}"#,
        )
        .unwrap();
        assert_eq!(v.get("now_ns").and_then(Jv::as_u64), Some(12));
        assert_eq!(
            v.get("tasks").and_then(Jv::as_arr).map(|a| a.len()),
            Some(2)
        );
        let counters = v.get("counters").and_then(Jv::as_obj).unwrap();
        assert_eq!(counters["net.bytes"].as_u64(), Some(1024));
        assert_eq!(v.get("ok"), Some(&Jv::Bool(true)));
        assert_eq!(v.get("x"), Some(&Jv::Null));
    }

    #[test]
    fn escapes_and_nesting_parse() {
        let v = parse(r#"{"k\n\"qA":[[],{},[{"a":-1.5e2}]]}"#).unwrap();
        let key = "k\n\"qA";
        assert!(v.get(key).is_some(), "{v:?}");
    }

    #[test]
    fn malformed_input_errors_without_panicking() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "\"abc",
            "{\"a\":1}x",
            "nan",
            "01e",
            "{'a':1}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }
}
