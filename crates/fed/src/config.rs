//! fedd configuration — the same hand-rolled TOML subset (and the same
//! unknown-key discipline) as farmd's, via [`farm_ctl::config::Table`].

use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::Duration;

use farm_ctl::config::{err, Table};
use farm_ctl::ConfigError;

/// Everything fedd needs to come up.
#[derive(Debug, Clone, PartialEq)]
pub struct FeddConfig {
    /// Address the federated control endpoint binds; port 0 picks an
    /// ephemeral port (see `Fedd::local_addr`).
    pub listen: SocketAddr,
    /// How long a connection handler waits for the core to answer one
    /// op before giving the client a structured error.
    pub request_timeout: Duration,
    /// Grace period between the shutdown op and severing sessions.
    pub shutdown_drain: Duration,
    /// Optional PID file for external supervisors.
    pub pid_file: Option<PathBuf>,
    /// A pod whose last heartbeat is older than this is marked dead:
    /// fan-outs skip it and federated stats degrade to the survivors.
    pub liveness_timeout: Duration,
    /// Per-RPC timeout toward a pod daemon.
    pub pod_timeout: Duration,
    /// Largest accepted Almanac submission, bytes.
    pub max_program_bytes: usize,
}

impl Default for FeddConfig {
    fn default() -> Self {
        FeddConfig {
            listen: "127.0.0.1:0".parse().expect("loopback parses"),
            request_timeout: Duration::from_secs(10),
            shutdown_drain: Duration::from_millis(100),
            pid_file: None,
            liveness_timeout: Duration::from_secs(2),
            pod_timeout: Duration::from_secs(5),
            max_program_bytes: 1 << 20,
        }
    }
}

impl FeddConfig {
    /// Parses a config file body. Unknown keys are rejected so typos
    /// fail loudly instead of silently running defaults.
    pub fn from_toml_str(src: &str) -> Result<FeddConfig, ConfigError> {
        let mut t = Table::parse(src)?;
        let mut cfg = FeddConfig::default();
        let listen_line = t.get("server.listen").map(|(l, _)| *l).unwrap_or(0);
        if let Some(s) = t.str("server.listen")? {
            cfg.listen = s.parse().map_err(|_| {
                err(
                    listen_line,
                    format!("`server.listen`: bad socket address `{s}`"),
                )
            })?;
        }
        if let Some(ms) = t.u64("server.request_timeout_ms")? {
            cfg.request_timeout = Duration::from_millis(ms.max(1));
        }
        if let Some(ms) = t.u64("server.shutdown_drain_ms")? {
            cfg.shutdown_drain = Duration::from_millis(ms);
        }
        if let Some(p) = t.str("server.pid_file")? {
            cfg.pid_file = Some(PathBuf::from(p));
        }
        if let Some(ms) = t.u64("fed.liveness_timeout_ms")? {
            cfg.liveness_timeout = Duration::from_millis(ms.max(1));
        }
        if let Some(ms) = t.u64("fed.pod_timeout_ms")? {
            cfg.pod_timeout = Duration::from_millis(ms.max(1));
        }
        if let Some(n) = t.u64("admission.max_program_bytes")? {
            cfg.max_program_bytes = n as usize;
        }
        t.reject_unknown()?;
        Ok(cfg)
    }

    /// Loads and parses a config file.
    pub fn from_file(path: &std::path::Path) -> Result<FeddConfig, ConfigError> {
        let body = std::fs::read_to_string(path)
            .map_err(|e| err(0, format!("cannot read {}: {e}", path.display())))?;
        FeddConfig::from_toml_str(&body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_config_parses() {
        let cfg = FeddConfig::from_toml_str(
            "[server]\nlisten = \"127.0.0.1:4600\"\nrequest_timeout_ms = 2500\n\
             shutdown_drain_ms = 50\npid_file = \"/tmp/fedd.pid\"\n\
             [fed]\nliveness_timeout_ms = 750\npod_timeout_ms = 1500\n\
             [admission]\nmax_program_bytes = 4096\n",
        )
        .unwrap();
        assert_eq!(cfg.listen, "127.0.0.1:4600".parse().unwrap());
        assert_eq!(cfg.request_timeout, Duration::from_millis(2500));
        assert_eq!(cfg.shutdown_drain, Duration::from_millis(50));
        assert_eq!(
            cfg.pid_file.as_deref(),
            Some(std::path::Path::new("/tmp/fedd.pid"))
        );
        assert_eq!(cfg.liveness_timeout, Duration::from_millis(750));
        assert_eq!(cfg.pod_timeout, Duration::from_millis(1500));
        assert_eq!(cfg.max_program_bytes, 4096);
    }

    #[test]
    fn empty_input_is_all_defaults_and_unknown_keys_fail() {
        assert_eq!(
            FeddConfig::from_toml_str("").unwrap(),
            FeddConfig::default()
        );
        let e = FeddConfig::from_toml_str("[fed]\nliveness = 1\n").unwrap_err();
        assert!(e.message.contains("unknown key `fed.liveness`"), "{e}");
        let e = FeddConfig::from_toml_str("[server]\nlisten = \"nowhere\"\n").unwrap_err();
        assert!(e.message.contains("bad socket address"), "{e}");
    }
}
