//! fedd — the FARM federation coordinator. Shards a fleet of per-pod
//! farmd instances behind one control endpoint until a
//! `farmctl --fed shutdown` arrives or a supervisor signals it.
//!
//! Lifecycle contract for external supervisors (same as farmd's):
//!
//! * `--config`'s `[server] pid_file` is written once listening and
//!   removed on any graceful exit.
//! * `SIGTERM`/`SIGINT` trigger a graceful shutdown — in-flight control
//!   ops drain — and the process exits with code [`EXIT_SIGNALED`] (3).
//!   Pods are never shut down with the coordinator: a fedd restart is
//!   invisible to the fabrics, pods simply re-register.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use farm_fed::{Fedd, FeddConfig};

/// Exit code of a graceful, signal-initiated shutdown.
const EXIT_SIGNALED: u8 = 3;

const USAGE: &str = "\
fedd - FARM federation coordinator daemon

USAGE:
    fedd [--config <fedd.toml>] [--listen <addr:port>] [--print-addr]

OPTIONS:
    --config <path>   Load settings from a TOML file
    --listen <addr>   Override the listen address (e.g. 127.0.0.1:7474)
    --print-addr      Print the bound address on stdout once listening
    -h, --help        Show this help

SIGNALS:
    SIGTERM, SIGINT   Drain in-flight control ops and exit with code 3
                      (registered pods keep running)
";

/// Set from the signal handler; the main loop polls it.
static SIGNALED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sig {
    use super::SIGNALED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_sig: i32) {
        SIGNALED.store(true, Ordering::Relaxed);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Routes `SIGTERM`/`SIGINT` to the [`SIGNALED`] flag.
    pub fn install() {
        let handler = on_signal as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }
}

fn main() -> ExitCode {
    let mut config_path: Option<String> = None;
    let mut listen: Option<String> = None;
    let mut print_addr = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--config" => config_path = args.next(),
            "--listen" => listen = args.next(),
            "--print-addr" => print_addr = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("fedd: unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let mut config = match &config_path {
        Some(path) => match FeddConfig::from_file(path.as_ref()) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("fedd: {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => FeddConfig::default(),
    };
    if let Some(addr) = listen {
        match addr.parse() {
            Ok(a) => config.listen = a,
            Err(_) => {
                eprintln!("fedd: bad --listen address `{addr}`");
                return ExitCode::FAILURE;
            }
        }
    }
    #[cfg(unix)]
    sig::install();
    let pid_file = config.pid_file.clone();
    let fedd = match Fedd::start(config) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("fedd: startup failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &pid_file {
        if let Err(e) = std::fs::write(path, format!("{}\n", std::process::id())) {
            eprintln!("fedd: cannot write pid file {}: {e}", path.display());
        }
    }
    if print_addr {
        println!("{}", fedd.local_addr());
    }
    eprintln!("fedd: coordinating federation on {}", fedd.local_addr());
    while !fedd.stopping() && !SIGNALED.load(Ordering::Relaxed) {
        std::thread::sleep(Duration::from_millis(20));
    }
    let signaled = SIGNALED.load(Ordering::Relaxed) && !fedd.stopping();
    if signaled {
        eprintln!("fedd: signal received, shutting down gracefully");
    }
    fedd.stop();
    if let Some(path) = &pid_file {
        let _ = std::fs::remove_file(path);
    }
    eprintln!("fedd: shut down");
    if signaled {
        ExitCode::from(EXIT_SIGNALED)
    } else {
        ExitCode::SUCCESS
    }
}
