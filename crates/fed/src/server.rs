//! The fedd daemon core: the pod [`Registry`] hosted behind a farm-net
//! [`NetServer`], serving the same versioned [`ControlOp`] surface a
//! farmd does — but federated over every registered pod.
//!
//! Threading model mirrors farmd's: one "fedd-core" thread owns the
//! registry, the routing table and one control-plane client per pod;
//! connection handlers forward each [`Frame::Control`] over an mpsc
//! channel and block (bounded) for the reply. The core's `recv_timeout`
//! doubles as the heartbeat-liveness sweep ticker.
//!
//! Coordinator ops (`RegisterPod`, `PodHeartbeat`, `ListPods`,
//! `MigrateTask`) are served locally; the legacy surface fans out:
//! reads (`ListSeeds` / `Stats` / `MetricsDump` / `Replan` /
//! `Checkpoint` / `Restore`) merge every live pod's answer into one
//! versioned reply with the existing cursor pagination, writes
//! (`SubmitProgram`, `Drain`, `Uncordon`, `RemoveTask`) route through
//! the [`split`](crate::split) engine or the global switch-id space. A
//! dead pod degrades fan-outs to the survivors instead of wedging the
//! coordinator.

use std::collections::BTreeMap;
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use farm_ctl::json::{array, escape, snapshot_json, Obj};
use farm_ctl::CtlClient;
use farm_net::{ControlOp, ControlReply, Envelope, Frame, NetServer, PodInfo, SeedDescriptor};
use farm_telemetry::Telemetry;

use crate::config::FeddConfig;
use crate::jsonval::{self, Jv};
use crate::registry::Registry;
use crate::split::{split_program, PodTarget, Route};

/// One queued control request: the op plus the handler's reply slot.
struct CoreMsg {
    op: ControlOp,
    reply: mpsc::Sender<ControlReply>,
}

/// A running fedd instance: the coordinator core thread plus the
/// listening federated control endpoint.
pub struct Fedd {
    server: NetServer,
    core: Option<thread::JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    shutdown_drain: Duration,
    telemetry: Telemetry,
}

impl Fedd {
    /// Starts the core thread and binds the federated control endpoint.
    ///
    /// # Errors
    ///
    /// Bind failures, or the core thread dying during construction.
    pub fn start(config: FeddConfig) -> io::Result<Fedd> {
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<CoreMsg>();
        let (ready_tx, ready_rx) = mpsc::channel::<Telemetry>();
        let core = {
            let config = config.clone();
            let stop = Arc::clone(&stop);
            thread::Builder::new()
                .name("fedd-core".into())
                .spawn(move || core_loop(config, rx, ready_tx, stop))?
        };
        let telemetry = ready_rx
            .recv()
            .map_err(|_| io::Error::other("fedd core died during startup"))?;
        let handler = {
            let tx = Mutex::new(tx);
            let stop = Arc::clone(&stop);
            let wait = config.request_timeout;
            Arc::new(move |env: &Envelope| -> Option<Frame> {
                let Frame::Control { op } = &env.frame else {
                    return None;
                };
                if stop.load(Ordering::Relaxed) {
                    return Some(Frame::Error {
                        message: "fedd is shutting down".into(),
                    });
                }
                let (reply_tx, reply_rx) = mpsc::channel();
                let sender = tx.lock().expect("fed sender lock").clone();
                if sender
                    .send(CoreMsg {
                        op: op.clone(),
                        reply: reply_tx,
                    })
                    .is_err()
                {
                    return Some(Frame::Error {
                        message: "fedd core is gone".into(),
                    });
                }
                match reply_rx.recv_timeout(wait) {
                    Ok(reply) => Some(Frame::ControlReply { reply }),
                    Err(_) => Some(Frame::Error {
                        message: "fedd core did not answer in time".into(),
                    }),
                }
            })
        };
        let server = NetServer::bind(config.listen, &telemetry, handler)?;
        Ok(Fedd {
            server,
            core: Some(core),
            stop,
            shutdown_drain: config.shutdown_drain,
            telemetry,
        })
    }

    /// The bound control address (the chosen port when listening on :0).
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// The coordinator's telemetry handle (shared with the transport).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// True once a shutdown op was served (or [`Fedd::stop`] ran).
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    /// Initiates shutdown locally and tears down. Pods are left running
    /// — the coordinator's death never takes a fabric with it.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        self.teardown();
    }

    fn teardown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        thread::sleep(self.shutdown_drain);
        self.server.shutdown();
        if let Some(h) = self.core.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Fedd {
    fn drop(&mut self) {
        if self.core.is_some() {
            self.teardown();
        }
    }
}

/// The coordinator's single-threaded heart.
struct Core {
    config: FeddConfig,
    registry: Registry,
    /// One cached control-plane session per pod; dropped and re-dialed
    /// on transport failure or re-registration under a new address.
    conns: BTreeMap<String, CtlClient>,
    /// Routing table: task → pods hosting (a part of) it.
    tasks: BTreeMap<String, Vec<String>>,
    telemetry: Telemetry,
}

/// Everything a `Stats` fan-out needs from one pod, counters fully
/// paged in.
struct PodStats {
    now_ns: u64,
    tasks: Vec<String>,
    seeds: u64,
    switches: u64,
    cordoned: Vec<u64>,
    fenced: Vec<u64>,
    recovery_pending: u64,
    counters: BTreeMap<String, u64>,
}

/// Page size fedd uses when walking a pod's cursor-paginated replies.
const POD_PAGE: u64 = 256;

/// The core thread: owns the registry, serves ops in order, sweeps
/// heartbeat liveness on the ticker.
fn core_loop(
    config: FeddConfig,
    rx: mpsc::Receiver<CoreMsg>,
    ready: mpsc::Sender<Telemetry>,
    stop: Arc<AtomicBool>,
) {
    let telemetry = Telemetry::new();
    if ready.send(telemetry.clone()).is_err() {
        return;
    }
    let mut core = Core {
        config,
        registry: Registry::new(),
        conns: BTreeMap::new(),
        tasks: BTreeMap::new(),
        telemetry: telemetry.clone(),
    };
    let ops = telemetry.counter("fed.ops");
    let rejected = telemetry.counter("fed.rejected");
    let latency = telemetry.latency_histogram("fed.op_latency_us");
    let pods_total = telemetry.gauge("fed.pods.total");
    let pods_live = telemetry.gauge("fed.pods.live");
    loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        match rx.recv_timeout(Duration::from_millis(5)) {
            Ok(CoreMsg { op, reply }) => {
                let started = Instant::now();
                let kind = op.kind();
                ops.inc();
                telemetry.counter(&format!("fed.op.{kind}")).inc();
                let out = serve_op(&mut core, &op);
                latency.record(started.elapsed().as_micros() as u64);
                if matches!(
                    out,
                    ControlReply::Rejected { .. } | ControlReply::CompileFailed { .. }
                ) {
                    rejected.inc();
                }
                let is_shutdown = matches!(op, ControlOp::Shutdown);
                let _ = reply.send(out);
                if is_shutdown {
                    stop.store(true, Ordering::Relaxed);
                    break;
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
        let (total, live) = core
            .registry
            .sweep(core.config.liveness_timeout, Instant::now());
        pods_total.set(total as f64);
        pods_live.set(live as f64);
    }
    // Serve whatever the handlers already queued (they block on these
    // replies), then exit; pods keep running on their own.
    while let Ok(CoreMsg { op, reply }) = rx.try_recv() {
        let out = match op {
            ControlOp::Shutdown => ControlReply::Ok,
            op => serve_op(&mut core, &op),
        };
        let _ = reply.send(out);
    }
}

/// Serves one control op against the federation. Total: every failure
/// becomes a structured reply, never a panic.
fn serve_op(core: &mut Core, op: &ControlOp) -> ControlReply {
    match op {
        ControlOp::RegisterPod {
            name,
            addr,
            switches,
            quota,
        } => register_pod(core, name, addr, *switches, *quota),
        ControlOp::PodHeartbeat { name, .. } => {
            if core.registry.beat(name, Instant::now()) {
                ControlReply::Ok
            } else {
                ControlReply::Rejected {
                    reason: format!("unknown pod `{name}`; re-register"),
                }
            }
        }
        ControlOp::ListPods => list_pods(core),
        ControlOp::SubmitProgram { name, source } => submit(core, name, source),
        ControlOp::ListSeeds { from_index, limit } => list_seeds(core, *from_index, *limit),
        ControlOp::DescribeSeed { key } => describe(core, key),
        ControlOp::Stats { from_index, limit } => stats(core, *from_index, *limit),
        ControlOp::MetricsDump => metrics_dump(core),
        ControlOp::Drain { switch } => route_switch_op(core, *switch, true),
        ControlOp::Uncordon { switch } => route_switch_op(core, *switch, false),
        ControlOp::Replan => replan(core),
        ControlOp::Checkpoint => checkpoint(core),
        ControlOp::Restore => restore(core),
        ControlOp::MigrateTask { task, to_pod } => migrate(core, task, to_pod),
        ControlOp::RemoveTask { task } => remove_task(core, task),
        ControlOp::Shutdown => ControlReply::Ok,
        // Pod-side halves of the migration flow; fedd drives them, it
        // does not serve them.
        ControlOp::ExportTask { .. } | ControlOp::SubmitWithSnapshot { .. } => {
            ControlReply::Rejected {
                reason: format!(
                    "`{}` is a pod op; use `migrate <task> <pod>` on the coordinator",
                    op.kind()
                ),
            }
        }
    }
}

fn register_pod(
    core: &mut Core,
    name: &str,
    addr: &str,
    switches: u64,
    quota: f64,
) -> ControlReply {
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
    {
        return ControlReply::Rejected {
            reason: format!("bad pod name `{name}` (want [A-Za-z0-9_-]+)"),
        };
    }
    let Ok(addr) = addr.parse::<SocketAddr>() else {
        return ControlReply::Rejected {
            reason: format!("bad pod address `{addr}`"),
        };
    };
    if switches == 0 {
        return ControlReply::Rejected {
            reason: "a pod must manage at least one switch".into(),
        };
    }
    let base = core
        .registry
        .register(name, addr, switches, quota, Instant::now());
    // Any cached session may point at a dead predecessor; re-dial lazily.
    core.conns.remove(name);
    ControlReply::PodRegistered { base }
}

fn list_pods(core: &Core) -> ControlReply {
    let now = Instant::now();
    let pods = core
        .registry
        .iter()
        .map(|(name, p)| PodInfo {
            name: name.clone(),
            addr: p.addr.to_string(),
            switches: p.switches,
            base: p.base,
            quota: p.quota,
            live: p.live,
            beats: p.beats,
            age_ms: now.duration_since(p.last_beat).as_millis() as u64,
        })
        .collect();
    ControlReply::Pods { pods }
}

/// One RPC to one pod, through the cached session; a transport failure
/// drops the session and re-dials once before giving up.
fn pod_op(core: &mut Core, pod: &str, op: ControlOp) -> Result<ControlReply, String> {
    let Some(entry) = core.registry.get(pod) else {
        return Err(format!("unknown pod `{pod}`"));
    };
    let addr = entry.addr;
    let timeout = core.config.pod_timeout;
    let mut last = String::new();
    for _ in 0..2 {
        let client = core
            .conns
            .entry(pod.to_string())
            .or_insert_with(|| CtlClient::connect_as(addr, "fedd", timeout));
        match client.op(op.clone()) {
            Ok(reply) => return Ok(reply),
            Err(e) => {
                core.conns.remove(pod);
                last = e.to_string();
            }
        }
    }
    Err(format!("pod `{pod}`: {last}"))
}

/// Live pods in admission-preference order: fewest routed tasks first,
/// name as the deterministic tie-break.
fn placement_order(core: &Core) -> Vec<PodTarget> {
    let mut order: Vec<(usize, PodTarget)> = core
        .registry
        .live()
        .map(|(name, p)| {
            let load = core
                .tasks
                .values()
                .filter(|pods| pods.contains(name))
                .count();
            (
                load,
                PodTarget {
                    name: name.clone(),
                    base: p.base,
                    switches: p.switches,
                },
            )
        })
        .collect();
    order.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.name.cmp(&b.1.name)));
    order.into_iter().map(|(_, t)| t).collect()
}

/// Renders a submission failure (for rollback reasons): the pod's
/// structured reply flattened into one line.
fn submit_failure(reply: &ControlReply) -> String {
    match reply {
        ControlReply::Rejected { reason } => reason.clone(),
        ControlReply::CompileFailed { diagnostics } => match diagnostics.first() {
            Some(d) => format!(
                "compile failed: {} ({}:{}:{})",
                d.message, d.machine, d.line, d.col
            ),
            None => "compile failed".into(),
        },
        other => format!("unexpected reply `{}`", other.kind()),
    }
}

/// Federated admission: route whole (single pod) or split with
/// all-or-nothing rollback.
fn submit(core: &mut Core, name: &str, source: &str) -> ControlReply {
    if core.tasks.contains_key(name) {
        return ControlReply::Rejected {
            reason: format!("task `{name}` is already deployed in the federation"),
        };
    }
    if source.len() > core.config.max_program_bytes {
        return ControlReply::Rejected {
            reason: format!(
                "program of {} bytes exceeds the {}-byte submission cap",
                source.len(),
                core.config.max_program_bytes
            ),
        };
    }
    let pods = placement_order(core);
    let route = match split_program(source, &pods) {
        Ok(route) => route,
        Err(reason) => return ControlReply::Rejected { reason },
    };
    let parts = match route {
        Route::Single { pod, source } => {
            core.telemetry.counter("fed.route.single").inc();
            vec![(pod, source)]
        }
        Route::Split { parts } => {
            core.telemetry.counter("fed.route.split").inc();
            parts
        }
    };
    let mut placed: Vec<String> = Vec::new();
    let mut seeds = 0u64;
    let mut actions = 0u64;
    for (pod, part) in &parts {
        let outcome = pod_op(
            core,
            pod,
            ControlOp::SubmitProgram {
                name: name.to_string(),
                source: part.clone(),
            },
        );
        match outcome {
            Ok(ControlReply::Submitted {
                seeds: s,
                actions: a,
                ..
            }) => {
                seeds += s;
                actions += a;
                placed.push(pod.clone());
            }
            failed => {
                let reason = match &failed {
                    Ok(reply) => submit_failure(reply),
                    Err(e) => e.clone(),
                };
                // All-or-nothing: evict the parts that did land.
                let mut rolled_back = 0usize;
                for done in &placed {
                    if pod_op(
                        core,
                        done,
                        ControlOp::RemoveTask {
                            task: name.to_string(),
                        },
                    )
                    .is_ok()
                    {
                        rolled_back += 1;
                    }
                }
                core.telemetry.counter("fed.route.rollback").inc();
                return ControlReply::Rejected {
                    reason: format!(
                        "pod `{pod}`: {reason} (rolled back {rolled_back}/{} placed part(s))",
                        placed.len()
                    ),
                };
            }
        }
    }
    core.tasks.insert(name.to_string(), placed);
    ControlReply::Submitted {
        task: name.to_string(),
        seeds,
        actions,
    }
}

/// Walks one pod's seed listing through its cursor.
fn pod_seeds(core: &mut Core, pod: &str) -> Result<Vec<SeedDescriptor>, String> {
    let mut out = Vec::new();
    let mut from = 0u64;
    loop {
        match pod_op(
            core,
            pod,
            ControlOp::ListSeeds {
                from_index: from,
                limit: POD_PAGE,
            },
        )? {
            ControlReply::Seeds {
                seeds, next_index, ..
            } => {
                out.extend(seeds);
                if next_index == 0 {
                    return Ok(out);
                }
                from = next_index;
            }
            other => return Err(format!("pod `{pod}` answered `{}`", other.kind())),
        }
    }
}

/// Federated `ListSeeds`: fan out to every live pod (cursor-walked),
/// globalize keys and switch ids, merge sorted, then window the merged
/// listing with the same cursor semantics a single farmd serves.
fn list_seeds(core: &mut Core, from_index: u64, limit: u64) -> ControlReply {
    let started = Instant::now();
    let live: Vec<String> = core.registry.live().map(|(n, _)| n.clone()).collect();
    let mut merged: Vec<SeedDescriptor> = Vec::new();
    for pod in &live {
        let base = core.registry.get(pod).map(|p| p.base).unwrap_or(0);
        match pod_seeds(core, pod) {
            Ok(seeds) => merged.extend(seeds.into_iter().map(|mut d| {
                d.key = format!("{pod}:{}", d.key);
                d.switch += base as u32;
                d
            })),
            Err(_) => {
                core.telemetry.counter("fed.fanout.errors").inc();
            }
        }
    }
    core.telemetry
        .latency_histogram("fed.fanout_us")
        .record(started.elapsed().as_micros() as u64);
    merged.sort_by(|a, b| a.key.cmp(&b.key));
    if from_index == 0 && limit == 0 {
        return ControlReply::Seeds {
            seeds: merged,
            next_index: 0,
            total: 0,
        };
    }
    let total = merged.len() as u64;
    let start = from_index.min(total);
    let end = if limit == 0 {
        total
    } else {
        start.saturating_add(limit).min(total)
    };
    ControlReply::Seeds {
        seeds: merged[start as usize..end as usize].to_vec(),
        next_index: if end < total { end } else { 0 },
        total,
    }
}

/// Federated `DescribeSeed`: keys carry a `pod:` prefix.
fn describe(core: &mut Core, key: &str) -> ControlReply {
    let Some((pod, local_key)) = key.split_once(':') else {
        return ControlReply::Rejected {
            reason: format!("bad federated seed key `{key}` (want pod:task/m<i>/s<j>)"),
        };
    };
    let Some(base) = core.registry.get(pod).map(|p| p.base) else {
        return ControlReply::Rejected {
            reason: format!("unknown pod `{pod}`"),
        };
    };
    match pod_op(
        core,
        pod,
        ControlOp::DescribeSeed {
            key: local_key.to_string(),
        },
    ) {
        Ok(ControlReply::Seed { mut desc, vars }) => {
            desc.key = format!("{pod}:{}", desc.key);
            desc.switch += base as u32;
            ControlReply::Seed { desc, vars }
        }
        Ok(other) => other,
        Err(reason) => ControlReply::Rejected { reason },
    }
}

/// Walks one pod's `Stats` counter pages and parses them into a
/// [`PodStats`].
fn pod_stats(core: &mut Core, pod: &str) -> Result<PodStats, String> {
    let mut counters = BTreeMap::new();
    let mut first: Option<Jv> = None;
    let mut from = 0u64;
    loop {
        let body = match pod_op(
            core,
            pod,
            ControlOp::Stats {
                from_index: from,
                limit: POD_PAGE,
            },
        )? {
            ControlReply::Json { body } => body,
            other => return Err(format!("pod `{pod}` answered `{}`", other.kind())),
        };
        let v = jsonval::parse(&body).map_err(|e| format!("pod `{pod}` stats: {e}"))?;
        if let Some(page) = v.get("counters").and_then(Jv::as_obj) {
            for (k, val) in page {
                if let Some(n) = val.as_u64() {
                    counters.insert(k.clone(), n);
                }
            }
        }
        let next = v
            .get("counters_next_index")
            .and_then(Jv::as_u64)
            .unwrap_or(0);
        if first.is_none() {
            first = Some(v);
        }
        if next == 0 {
            break;
        }
        from = next;
    }
    let v = first.expect("at least one stats page");
    let nums = |field: &str| v.get(field).and_then(Jv::as_u64).unwrap_or(0);
    let ids = |field: &str| -> Vec<u64> {
        v.get(field)
            .and_then(Jv::as_arr)
            .map(|a| a.iter().filter_map(Jv::as_u64).collect())
            .unwrap_or_default()
    };
    Ok(PodStats {
        now_ns: nums("now_ns"),
        tasks: v
            .get("tasks")
            .and_then(Jv::as_arr)
            .map(|a| {
                a.iter()
                    .filter_map(|t| t.as_str().map(str::to_string))
                    .collect()
            })
            .unwrap_or_default(),
        seeds: nums("seeds"),
        switches: nums("switches"),
        cordoned: ids("cordoned"),
        fenced: ids("fenced"),
        recovery_pending: nums("recovery_pending"),
        counters,
    })
}

/// Federated `Stats`: sums, unions and globalizes every live pod's
/// body, and adds the coordinator's own view (`pods_total` /
/// `pods_live`). The merged counter map is cursor-paginated exactly
/// like a single farmd's.
fn stats(core: &mut Core, from_index: u64, limit: u64) -> ControlReply {
    let started = Instant::now();
    let live: Vec<String> = core.registry.live().map(|(n, _)| n.clone()).collect();
    let mut now_ns = 0u64;
    let mut tasks: Vec<String> = Vec::new();
    let mut seeds = 0u64;
    let mut switches = 0u64;
    let mut cordoned: Vec<u64> = Vec::new();
    let mut fenced: Vec<u64> = Vec::new();
    let mut recovery_pending = 0u64;
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut reached = 0u64;
    for pod in &live {
        let base = core.registry.get(pod).map(|p| p.base).unwrap_or(0);
        match pod_stats(core, pod) {
            Ok(s) => {
                reached += 1;
                now_ns = now_ns.max(s.now_ns);
                tasks.extend(s.tasks);
                seeds += s.seeds;
                switches += s.switches;
                cordoned.extend(s.cordoned.iter().map(|id| id + base));
                fenced.extend(s.fenced.iter().map(|id| id + base));
                recovery_pending += s.recovery_pending;
                for (k, n) in s.counters {
                    *counters.entry(k).or_insert(0) += n;
                }
            }
            Err(_) => {
                core.telemetry.counter("fed.fanout.errors").inc();
            }
        }
    }
    core.telemetry
        .latency_histogram("fed.fanout_us")
        .record(started.elapsed().as_micros() as u64);
    tasks.sort();
    tasks.dedup();
    cordoned.sort_unstable();
    fenced.sort_unstable();

    let paginated = from_index != 0 || limit != 0;
    let counters_total = counters.len() as u64;
    let start = from_index.min(counters_total);
    let end = if !paginated || limit == 0 {
        counters_total
    } else {
        start.saturating_add(limit).min(counters_total)
    };
    let mut page = Obj::new();
    for (k, v) in counters
        .iter()
        .skip(start as usize)
        .take((end - start) as usize)
    {
        page = page.num(k, *v);
    }
    let tasks = array(tasks.iter().map(|t| format!("\"{}\"", escape(t))));
    let cordoned = array(cordoned.iter().map(|s| s.to_string()));
    let fenced = array(fenced.iter().map(|s| s.to_string()));
    let mut obj = Obj::new()
        .num("now_ns", now_ns)
        .raw("tasks", &tasks)
        .num("seeds", seeds)
        .num("switches", switches)
        .raw("cordoned", &cordoned)
        .raw("fenced", &fenced)
        .num("recovery_pending", recovery_pending)
        .num("pods_total", core.registry.len() as u64)
        .num("pods_live", live.len() as u64)
        .num("pods_reached", reached)
        .raw("counters", &page.finish());
    if paginated {
        obj = obj
            .num(
                "counters_next_index",
                if end < counters_total { end } else { 0 },
            )
            .num("counters_total", counters_total);
    }
    ControlReply::Json { body: obj.finish() }
}

/// Federated `MetricsDump`: every live pod's raw dump keyed by name,
/// plus the coordinator's own `fed.*` registry.
fn metrics_dump(core: &mut Core) -> ControlReply {
    let started = Instant::now();
    let live: Vec<String> = core.registry.live().map(|(n, _)| n.clone()).collect();
    let mut pods = Obj::new();
    for pod in &live {
        match pod_op(core, pod, ControlOp::MetricsDump) {
            Ok(ControlReply::Json { body }) => {
                pods = pods.raw(pod, &body);
            }
            _ => {
                core.telemetry.counter("fed.fanout.errors").inc();
            }
        }
    }
    core.telemetry
        .latency_histogram("fed.fanout_us")
        .record(started.elapsed().as_micros() as u64);
    let body = Obj::new()
        .raw("pods", &pods.finish())
        .raw("fed", &snapshot_json(&core.telemetry.snapshot()))
        .finish();
    ControlReply::Json { body }
}

/// `Drain` / `Uncordon` against a global switch id: resolve the owning
/// pod, forward with the local id, globalize the reply.
fn route_switch_op(core: &mut Core, global: u32, drain: bool) -> ControlReply {
    let Some((pod, local)) = core
        .registry
        .locate(global as u64)
        .map(|(n, l)| (n.clone(), l as u32))
    else {
        return ControlReply::Rejected {
            reason: format!("global switch id {global} is outside every registered pod"),
        };
    };
    let op = if drain {
        ControlOp::Drain { switch: local }
    } else {
        ControlOp::Uncordon { switch: local }
    };
    match pod_op(core, &pod, op) {
        Ok(ControlReply::Drained { evacuated, .. }) => ControlReply::Drained {
            switch: global,
            evacuated,
        },
        Ok(other) => other,
        Err(reason) => ControlReply::Rejected { reason },
    }
}

fn replan(core: &mut Core) -> ControlReply {
    let live: Vec<String> = core.registry.live().map(|(n, _)| n.clone()).collect();
    let mut actions = 0u64;
    let mut dropped_tasks = 0u64;
    for pod in &live {
        match pod_op(core, pod, ControlOp::Replan) {
            Ok(ControlReply::Replanned {
                actions: a,
                dropped_tasks: d,
            }) => {
                actions += a;
                dropped_tasks += d;
            }
            _ => {
                core.telemetry.counter("fed.fanout.errors").inc();
            }
        }
    }
    ControlReply::Replanned {
        actions,
        dropped_tasks,
    }
}

fn checkpoint(core: &mut Core) -> ControlReply {
    let live: Vec<String> = core.registry.live().map(|(n, _)| n.clone()).collect();
    let mut seeds = 0u64;
    let mut errors: Vec<String> = Vec::new();
    for pod in &live {
        match pod_op(core, pod, ControlOp::Checkpoint) {
            Ok(ControlReply::Checkpointed {
                seeds: s,
                persist_error,
            }) => {
                seeds += s;
                if let Some(e) = persist_error {
                    errors.push(format!("pod `{pod}`: {e}"));
                }
            }
            Ok(other) => errors.push(format!("pod `{pod}` answered `{}`", other.kind())),
            Err(e) => errors.push(e),
        }
    }
    ControlReply::Checkpointed {
        seeds,
        persist_error: if errors.is_empty() {
            None
        } else {
            Some(errors.join("; "))
        },
    }
}

fn restore(core: &mut Core) -> ControlReply {
    let live: Vec<String> = core.registry.live().map(|(n, _)| n.clone()).collect();
    let mut seeds = 0u64;
    let mut skipped = 0u64;
    for pod in &live {
        match pod_op(core, pod, ControlOp::Restore) {
            Ok(ControlReply::Restored {
                seeds: s,
                skipped: k,
            }) => {
                seeds += s;
                skipped += k;
            }
            _ => {
                core.telemetry.counter("fed.fanout.errors").inc();
            }
        }
    }
    ControlReply::Restored { seeds, skipped }
}

fn remove_task(core: &mut Core, task: &str) -> ControlReply {
    let Some(hosts) = core.tasks.get(task).cloned() else {
        return ControlReply::Rejected {
            reason: format!("fedd did not route task `{task}`"),
        };
    };
    let mut failed: Vec<String> = Vec::new();
    let mut left: Vec<String> = Vec::new();
    for pod in &hosts {
        match pod_op(
            core,
            pod,
            ControlOp::RemoveTask {
                task: task.to_string(),
            },
        ) {
            Ok(ControlReply::Ok) => {}
            Ok(other) => {
                failed.push(format!("pod `{pod}` answered `{}`", other.kind()));
                left.push(pod.clone());
            }
            Err(e) => {
                failed.push(e);
                left.push(pod.clone());
            }
        }
    }
    if left.is_empty() {
        core.tasks.remove(task);
        ControlReply::Ok
    } else {
        core.tasks.insert(task.to_string(), left);
        ControlReply::Rejected {
            reason: failed.join("; "),
        }
    }
}

/// Cross-pod seed migration, copy-first: export on the source
/// (checkpoint + snapshots, task keeps running), import on the target
/// (submit-with-snapshot), and only then remove from the source. A
/// failed import leaves the source untouched; a failed removal is
/// reported (the task briefly runs on both pods) instead of guessed at.
fn migrate(core: &mut Core, task: &str, to_pod: &str) -> ControlReply {
    let migrate_ok = core.telemetry.counter("fed.migrate.ok");
    let migrate_fail = core.telemetry.counter("fed.migrate.fail");
    let Some(hosts) = core.tasks.get(task).cloned() else {
        migrate_fail.inc();
        return ControlReply::Rejected {
            reason: format!("fedd did not route task `{task}`"),
        };
    };
    if hosts.len() != 1 {
        migrate_fail.inc();
        return ControlReply::Rejected {
            reason: format!(
                "task `{task}` spans {} pods; cross-pod migration moves single-pod tasks",
                hosts.len()
            ),
        };
    }
    let from_pod = hosts[0].clone();
    if from_pod == to_pod {
        migrate_fail.inc();
        return ControlReply::Rejected {
            reason: format!("task `{task}` already runs on pod `{to_pod}`"),
        };
    }
    match core.registry.get(to_pod) {
        Some(p) if p.live => {}
        Some(_) => {
            migrate_fail.inc();
            return ControlReply::Rejected {
                reason: format!("target pod `{to_pod}` is not live"),
            };
        }
        None => {
            migrate_fail.inc();
            return ControlReply::Rejected {
                reason: format!("unknown target pod `{to_pod}`"),
            };
        }
    }
    let (source, seeds) = match pod_op(
        core,
        &from_pod,
        ControlOp::ExportTask {
            task: task.to_string(),
        },
    ) {
        Ok(ControlReply::TaskExport { source, seeds }) => (source, seeds),
        Ok(other) => {
            migrate_fail.inc();
            return ControlReply::Rejected {
                reason: format!("export from `{from_pod}`: {}", submit_failure(&other)),
            };
        }
        Err(e) => {
            migrate_fail.inc();
            return ControlReply::Rejected {
                reason: format!("export from `{from_pod}`: {e}"),
            };
        }
    };
    let moved = seeds.len() as u64;
    match pod_op(
        core,
        to_pod,
        ControlOp::SubmitWithSnapshot {
            name: task.to_string(),
            source,
            seeds,
        },
    ) {
        Ok(ControlReply::Submitted { .. }) => {}
        Ok(other) => {
            migrate_fail.inc();
            return ControlReply::Rejected {
                reason: format!(
                    "import on `{to_pod}`: {}; source pod untouched",
                    submit_failure(&other)
                ),
            };
        }
        Err(e) => {
            migrate_fail.inc();
            return ControlReply::Rejected {
                reason: format!("import on `{to_pod}`: {e}; source pod untouched"),
            };
        }
    }
    match pod_op(
        core,
        &from_pod,
        ControlOp::RemoveTask {
            task: task.to_string(),
        },
    ) {
        Ok(ControlReply::Ok) => {
            core.tasks
                .insert(task.to_string(), vec![to_pod.to_string()]);
            migrate_ok.inc();
            ControlReply::Migrated {
                task: task.to_string(),
                from_pod,
                to_pod: to_pod.to_string(),
                seeds: moved,
            }
        }
        other => {
            // Imported but not evicted: record both hosts, report.
            core.tasks
                .insert(task.to_string(), vec![from_pod.clone(), to_pod.to_string()]);
            migrate_fail.inc();
            let detail = match other {
                Ok(reply) => format!("`{}`", reply.kind()),
                Err(e) => e,
            };
            ControlReply::Rejected {
                reason: format!(
                    "imported on `{to_pod}` but source removal on `{from_pod}` failed \
                     ({detail}); task currently runs on both pods"
                ),
            }
        }
    }
}
