//! Synthetic placement workloads for the Fig. 7 scalability study.
//!
//! The paper deploys up to 10 different tasks (from the Tab. I mix)
//! comprising up to 10 200 seeds on 1 040 switches, with 10 runs of
//! varying resource and placement needs per seed count. This generator
//! reproduces that regime: Accton-class switch capacities, per-task
//! shared polling subjects (aggregation opportunities), utility shapes
//! matching the Tab. I programs (`min(a·vCPU, cap)` over a
//! vCPU/RAM-constrained domain), and randomized candidate sets.

use farm_almanac::analysis::{Poly, UtilAnalysis, UtilBranch, UtilExpr};
use farm_netsim::switch::{ResourceKind, Resources};
use farm_netsim::types::SwitchId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::model::{PlacementInstance, PlacementSeed, PlacementTask, PollDemand};

/// Workload parameters.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Switches in the fabric (paper: 1 040).
    pub n_switches: usize,
    /// Concurrent M&M tasks (paper: up to 10).
    pub n_tasks: usize,
    /// Total seeds (paper: up to 10 200).
    pub n_seeds: usize,
    /// Candidate switches per flexible seed.
    pub candidates_per_seed: usize,
    /// Fraction of seeds pinned to a single switch (`place all`-style).
    pub pinned_fraction: f64,
    /// RNG seed.
    pub rng_seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            n_switches: 1040,
            n_tasks: 10,
            n_seeds: 10_200,
            candidates_per_seed: 4,
            pinned_fraction: 0.3,
            rng_seed: 42,
        }
    }
}

/// Accton-class monitoring capacity (§ VI-A platforms (ii)/(iii)):
/// 4 vCPU, 8 GB RAM, 512 monitoring TCAM entries, and the 8 Mbit/s PCIe
/// polling budget (= 62 500 polls/s at 16 B per counter read).
pub fn accton_capacity() -> Resources {
    Resources::new(4.0, 8192.0, 512.0, 62_500.0)
}

/// Generates a placement instance.
///
/// # Panics
///
/// Panics if any count is zero.
pub fn generate(cfg: &WorkloadConfig) -> PlacementInstance {
    assert!(
        cfg.n_switches > 0 && cfg.n_tasks > 0 && cfg.n_seeds > 0,
        "workload dimensions must be positive"
    );
    let mut rng = StdRng::seed_from_u64(cfg.rng_seed);
    let switches: Vec<(SwitchId, Resources)> = (0..cfg.n_switches)
        .map(|i| (SwitchId(i as u32), accton_capacity()))
        .collect();

    let mut tasks: Vec<PlacementTask> = (0..cfg.n_tasks)
        .map(|t| PlacementTask {
            name: format!("task{t}"),
            seeds: Vec::new(),
        })
        .collect();

    // Per-task polling subjects: a couple shared within the task plus the
    // fabric-wide `port ANY` some tasks use (cross-task aggregation).
    let task_subjects: Vec<Vec<String>> = (0..cfg.n_tasks)
        .map(|t| {
            let mut subs = vec![format!("rule:task{t}-a"), format!("rule:task{t}-b")];
            if t % 3 == 0 {
                subs.push("ports:ANY".to_string());
            }
            subs
        })
        .collect();

    let mut seeds = Vec::with_capacity(cfg.n_seeds);
    for id in 0..cfg.n_seeds {
        let task = id % cfg.n_tasks;
        tasks[task].seeds.push(id);

        let candidates: Vec<SwitchId> = if rng.random::<f64>() < cfg.pinned_fraction {
            vec![SwitchId(rng.random_range(0..cfg.n_switches as u32))]
        } else {
            let mut set = std::collections::BTreeSet::new();
            while set.len() < cfg.candidates_per_seed.min(cfg.n_switches) {
                set.insert(SwitchId(rng.random_range(0..cfg.n_switches as u32)));
            }
            set.into_iter().collect()
        };

        // Domain: vCPU ≥ a, RAM ≥ b. Utility: min(base + g·vCPU, cap) —
        // a placed seed has intrinsic monitoring value (`base`, cf. the
        // Tab. I programs whose detection states return flat utilities)
        // plus accuracy gains from extra resources up to a cap.
        let min_vcpu = rng.random_range(0.05f64..0.4);
        let min_ram = rng.random_range(16.0f64..160.0);
        let gain = rng.random_range(1.0f64..20.0);
        let base = rng.random_range(2.0f64..10.0);
        let cap = base + rng.random_range(5.0f64..100.0);
        let util = UtilAnalysis {
            branches: vec![UtilBranch {
                constraints: vec![
                    Poly {
                        coeffs: [1.0, 0.0, 0.0, 0.0],
                        constant: -min_vcpu,
                    },
                    Poly {
                        coeffs: [0.0, 1.0, 0.0, 0.0],
                        constant: -min_ram,
                    },
                ],
                utility: UtilExpr::Min(
                    Box::new(UtilExpr::Poly(
                        Poly::var(ResourceKind::VCpu)
                            .scale(gain)
                            .add(&Poly::constant(base)),
                    )),
                    Box::new(UtilExpr::Poly(Poly::constant(cap))),
                ),
            }],
        };

        // Polling: one subject from the task pool; demand = c0 + c1·PCIe
        // polls/s (base rate plus resource-encouraged extra accuracy).
        let subj = task_subjects[task][rng.random_range(0..task_subjects[task].len())].clone();
        let polls = vec![PollDemand {
            subject: subj,
            demand: Poly {
                coeffs: [0.0, 0.0, 0.0, rng.random_range(0.01f64..0.1)],
                constant: rng.random_range(1.0f64..20.0),
            },
        }];

        seeds.push(PlacementSeed {
            id,
            task,
            candidates,
            util,
            polls,
        });
    }

    PlacementInstance {
        switches,
        tasks,
        seeds,
        previous: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::{solve_heuristic, HeuristicOptions};
    use crate::model::validate;

    #[test]
    fn generator_is_deterministic_per_seed() {
        let cfg = WorkloadConfig {
            n_switches: 16,
            n_tasks: 4,
            n_seeds: 64,
            ..Default::default()
        };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.seeds.len(), b.seeds.len());
        for (x, y) in a.seeds.iter().zip(&b.seeds) {
            assert_eq!(x.candidates, y.candidates);
        }
    }

    #[test]
    fn generated_instances_are_placeable() {
        let cfg = WorkloadConfig {
            n_switches: 32,
            n_tasks: 5,
            n_seeds: 300,
            rng_seed: 3,
            ..Default::default()
        };
        let inst = generate(&cfg);
        let r = solve_heuristic(&inst, HeuristicOptions::default());
        validate(&inst, &r).unwrap();
        assert!(
            r.placed() as f64 >= 0.8 * cfg.n_seeds as f64,
            "most seeds should place, got {}",
            r.placed()
        );
        assert!(r.utility > 0.0);
    }

    #[test]
    fn capacity_matches_the_paper_pcie_budget() {
        // 8 Mbit/s ÷ (16 B × 8 bit) = 62 500 polls/s.
        assert!((accton_capacity().get(ResourceKind::PciePoll) - 62_500.0).abs() < 1e-9);
    }

    #[test]
    fn full_fig7_size_generates_quickly() {
        let inst = generate(&WorkloadConfig::default());
        assert_eq!(inst.seeds.len(), 10_200);
        assert_eq!(inst.switches.len(), 1040);
        assert_eq!(inst.tasks.len(), 10);
    }
}
