//! MILP formulation of the placement problem (§ IV-B/C/D) and the
//! deadline-bounded solver used as the paper's "Gurobi with timeout"
//! baseline (Fig. 7).
//!
//! The encoding follows the paper exactly: binary `tplc(t)` and
//! `plc(s,n)` (split per utility branch for `or`-split seeds), continuous
//! `res(s,n,r)` and aggregated `pollres(n,p)`, the bilinear terms
//! `plc·f(res)` linearized via big-M (the paper's `f(res) − (1−plc)·f(0̄)`
//! rewrite generalized to constraints with negative coefficients), and
//! migration modelled through `migr(s,n) = plc'(s,n)·(tplc(t) − plc(s,n))`.
//!
//! Exact branch & bound runs only when the dense-tableau size guard
//! allows; beyond it — and whenever the deadline fires first — the solver
//! degrades to what a commercial MIP solver with a deadline effectively
//! provides: the best incumbent from budgeted primal search (randomized
//! greedy restarts). This substitution is recorded in DESIGN.md.

use std::time::{Duration, Instant};

use farm_lp::{solve_milp, Cmp, LinExpr, MilpOptions, MilpStatus, Problem, Sense};
use farm_netsim::switch::{ResourceKind, Resources};
use farm_netsim::types::SwitchId;

use crate::model::{utility_of, PlacementInstance, PlacementResult};

/// Options for the MILP placement solver.
#[derive(Debug, Clone)]
pub struct MilpPlacementOptions {
    /// Wall-clock budget (the paper uses 1 s and 10 min).
    pub time_limit: Duration,
    /// Skip exact solving when the simplex tableau would exceed this many
    /// cells (rows × columns).
    pub max_cells: usize,
    /// RNG seed for the budgeted primal search.
    pub search_seed: u64,
}

impl Default for MilpPlacementOptions {
    fn default() -> Self {
        MilpPlacementOptions {
            time_limit: Duration::from_secs(10),
            max_cells: 6_000_000,
            search_seed: 1,
        }
    }
}

/// Result of the MILP path.
#[derive(Debug, Clone)]
pub struct MilpPlacementResult {
    pub result: PlacementResult,
    /// True when the exact branch & bound produced the assignment.
    pub exact: bool,
    /// Branch & bound status when exact solving ran.
    pub status: Option<MilpStatus>,
}

/// Solves placement via MILP with a deadline, falling back to budgeted
/// primal search at scales the exact solver cannot handle in time.
pub fn solve_placement_milp(
    instance: &PlacementInstance,
    opts: &MilpPlacementOptions,
) -> MilpPlacementResult {
    let start = Instant::now();
    let (est_rows, est_cols) = estimate_size(instance);
    if est_rows.saturating_mul(est_cols) <= opts.max_cells {
        let encoded = encode(instance);
        let milp_opts = MilpOptions {
            time_limit: Some(opts.time_limit.saturating_sub(start.elapsed())),
            ..Default::default()
        };
        let r = solve_milp(&encoded.problem, &milp_opts);
        if let (Some(values), MilpStatus::Optimal | MilpStatus::Feasible) = (&r.values, r.status) {
            let assignment = encoded.extract(instance, values);
            let utility = utility_of(instance, &assignment);
            let dropped = (0..instance.tasks.len())
                .filter(|&t| {
                    instance.tasks[t]
                        .seeds
                        .iter()
                        .all(|&s| assignment[s].is_none())
                        && !instance.tasks[t].seeds.is_empty()
                })
                .collect();
            return MilpPlacementResult {
                result: PlacementResult {
                    migrations: crate::model::count_migrations(instance, &assignment),
                    utility,
                    runtime: start.elapsed(),
                    dropped_tasks: dropped,
                    assignment,
                },
                exact: true,
                status: Some(r.status),
            };
        }
    }
    // Budgeted primal search until the deadline.
    let mut result = solve_budgeted(
        instance,
        opts.time_limit.saturating_sub(start.elapsed()),
        opts.search_seed,
    );
    result.runtime = start.elapsed();
    MilpPlacementResult {
        result,
        exact: false,
        status: None,
    }
}

/// Randomized-restart primal search under a deadline: the incumbent pool
/// a deadline-bounded general-purpose MIP solver would report. The
/// constructions are deliberately generic (random candidate choice, no
/// aggregation-aware scoring — see
/// [`farm_placement::heuristic::solve_randomized`]); LP-based resource
/// polish only happens once the construction phase has left budget for
/// it, which is what separates the short-deadline from the long-deadline
/// quality in Fig. 7.
///
/// [`farm_placement::heuristic::solve_randomized`]: crate::heuristic::solve_randomized
pub fn solve_budgeted(
    instance: &PlacementInstance,
    budget: Duration,
    seed: u64,
) -> PlacementResult {
    let start = Instant::now();
    let mut best = crate::heuristic::solve_randomized(instance, seed, false);
    let mut candidates: Vec<(f64, u64)> = vec![(best.utility, seed)];
    let construction_budget = budget.mul_f64(0.4);
    let mut i = 1u64;
    while start.elapsed() < construction_budget && i < 256 {
        let r = crate::heuristic::solve_randomized(instance, seed + i, false);
        candidates.push((r.utility, seed + i));
        if r.utility > best.utility {
            best = r;
        }
        i += 1;
    }
    // Spend the remaining budget LP-polishing the most promising
    // constructions, best-first.
    candidates.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    for (_, cand_seed) in candidates {
        if start.elapsed() >= budget.mul_f64(0.85) {
            break;
        }
        let polished = crate::heuristic::solve_randomized(instance, cand_seed, true);
        if polished.utility > best.utility {
            best = polished;
        }
    }
    best.runtime = start.elapsed();
    best
}

/// Rough row/column count of the MILP encoding.
fn estimate_size(instance: &PlacementInstance) -> (usize, usize) {
    let mut cols = instance.tasks.len();
    let mut rows = instance.seeds.len();
    for s in &instance.seeds {
        let b = s.util.branches.len().max(1);
        cols += s.candidates.len() * (b + 4 + 1);
        rows += s.candidates.len() * (b * 3 + 4 + s.polls.len());
    }
    rows += instance.switches.len() * 4;
    cols += instance.switches.len() * 4; // pollres upper bound
    (rows, cols)
}

struct Encoded {
    problem: Problem,
    /// (seed, candidate) → resource variables.
    res_vars: Vec<Vec<[farm_lp::Var; 4]>>,
    /// (seed, candidate) → branch selection variables.
    y_vars: Vec<Vec<Vec<farm_lp::Var>>>,
}

impl Encoded {
    fn extract(
        &self,
        instance: &PlacementInstance,
        values: &[f64],
    ) -> Vec<Option<(SwitchId, Resources)>> {
        let mut assignment = vec![None; instance.seeds.len()];
        for (s, seed) in instance.seeds.iter().enumerate() {
            for (ci, &n) in seed.candidates.iter().enumerate() {
                let placed = self.y_vars[s][ci].iter().any(|y| values[y.index()] > 0.5);
                if placed {
                    let mut r = Resources::ZERO;
                    for k in ResourceKind::ALL {
                        r.set(k, values[self.res_vars[s][ci][k.index()].index()].max(0.0));
                    }
                    assignment[s] = Some((n, r));
                    break;
                }
            }
        }
        assignment
    }
}

/// Builds the MILP (see module docs for the formulation).
fn encode(instance: &PlacementInstance) -> Encoded {
    let mut p = Problem::new(Sense::Maximize);
    let tplc: Vec<farm_lp::Var> = (0..instance.tasks.len())
        .map(|t| p.add_binary(format!("tplc{t}")))
        .collect();

    let mut res_vars: Vec<Vec<[farm_lp::Var; 4]>> = Vec::new();
    let mut y_vars: Vec<Vec<Vec<farm_lp::Var>>> = Vec::new();
    let mut objective = LinExpr::new();

    for (s, seed) in instance.seeds.iter().enumerate() {
        let mut per_cand_res = Vec::new();
        let mut per_cand_y = Vec::new();
        for (ci, &n) in seed.candidates.iter().enumerate() {
            let ares = instance.ares(n).unwrap_or(Resources::ZERO);
            let rv: [farm_lp::Var; 4] =
                std::array::from_fn(|k| p.add_var(format!("res_s{s}_c{ci}_r{k}"), 0.0, ares.0[k]));
            let branches = seed.util.branches.len().max(1);
            let mut ys = Vec::with_capacity(branches);
            for (b, branch) in seed.util.branches.iter().enumerate() {
                let y = p.add_binary(format!("y_s{s}_c{ci}_b{b}"));
                // C2 with big-M: c(res) + M(1−y) ≥ 0.
                for c in &branch.constraints {
                    let m = big_m(c, &ares);
                    let mut e = LinExpr::constant_expr(c.constant + m);
                    for (k, coeff) in c.coeffs.iter().enumerate() {
                        if *coeff != 0.0 {
                            e.add_term(rv[k], *coeff);
                        }
                    }
                    e.add_term(y, -m);
                    p.add_constraint(e, Cmp::Ge, 0.0);
                }
                // Utility: u ≤ piece(res) + M(1−y); u ≤ Umax·y; u ≥ 0.
                let umax = branch.utility.eval(&ares).max(0.0);
                let u = p.add_var(format!("u_s{s}_c{ci}_b{b}"), 0.0, umax.max(1e-9));
                for piece in branch.utility.pieces() {
                    let m = big_m(&piece, &ares) + umax;
                    let mut e = LinExpr::constant_expr(piece.constant + m);
                    for (k, coeff) in piece.coeffs.iter().enumerate() {
                        if *coeff != 0.0 {
                            e.add_term(rv[k], *coeff);
                        }
                    }
                    e.add_term(y, -m);
                    e.add_term(u, -1.0);
                    p.add_constraint(e, Cmp::Ge, 0.0);
                }
                let mut cap = LinExpr::from(u);
                cap.add_term(y, -umax.max(1e-9));
                p.add_constraint(cap, Cmp::Le, 0.0);
                objective += LinExpr::from(u);
                ys.push(y);
            }
            if seed.util.branches.is_empty() {
                ys.push(p.add_binary(format!("y_s{s}_c{ci}_b0")));
            }
            // C3: res ≤ ares · plc(s,n).
            for k in ResourceKind::ALL {
                let mut e = LinExpr::from(rv[k.index()]);
                for &y in &ys {
                    e.add_term(y, -ares.get(k));
                }
                p.add_constraint(e, Cmp::Le, 0.0);
            }
            per_cand_res.push(rv);
            per_cand_y.push(ys);
        }
        // C1: Σ_{n,b} y = tplc(task).
        let mut sum = LinExpr::new();
        for ys in &per_cand_y {
            for &y in ys {
                sum.add_term(y, 1.0);
            }
        }
        sum.add_term(tplc[seed.task], -1.0);
        p.add_constraint(sum, Cmp::Eq, 0.0);
        res_vars.push(per_cand_res);
        y_vars.push(per_cand_y);
    }

    // C4 per switch: plain resources (with migration double occupancy) and
    // aggregated pollres.
    for (n, ares) in &instance.switches {
        // Plain resources.
        for k in ResourceKind::ALL {
            if k == ResourceKind::PciePoll {
                continue;
            }
            let mut total = LinExpr::new();
            for (s, seed) in instance.seeds.iter().enumerate() {
                if let Some(ci) = seed.candidates.iter().position(|c| c == n) {
                    total.add_term(res_vars[s][ci][k.index()], 1.0);
                }
                // Migration: if s was previously here, its old allocation
                // lingers unless it is re-placed here:
                // migr(s,n)·res' = res'·(tplc − plc(s,n)).
                if let Some(prev) = &instance.previous {
                    if let Some((pn, pres)) = prev.assignment.get(&s) {
                        if pn == n && pres.get(k) > 0.0 {
                            total.add_term(tplc[seed.task], pres.get(k));
                            if let Some(ci) = seed.candidates.iter().position(|c| c == n) {
                                for &y in &y_vars[s][ci] {
                                    total.add_term(y, -pres.get(k));
                                }
                            }
                        }
                    }
                }
            }
            p.add_constraint(total, Cmp::Le, ares.get(k));
        }
        // pollres per subject present on this switch.
        let mut subjects: Vec<&str> = instance
            .seeds
            .iter()
            .filter(|seed| seed.candidates.contains(n))
            .flat_map(|seed| seed.polls.iter().map(|pd| pd.subject.as_str()))
            .collect();
        subjects.sort_unstable();
        subjects.dedup();
        let mut poll_sum = LinExpr::new();
        for (pi, subj) in subjects.iter().enumerate() {
            let pv = p.add_var(format!("pollres_{n}_{pi}"), 0.0, f64::INFINITY);
            poll_sum.add_term(pv, 1.0);
            for (s, seed) in instance.seeds.iter().enumerate() {
                let Some(ci) = seed.candidates.iter().position(|c| c == n) else {
                    continue;
                };
                for pd in seed.polls.iter().filter(|pd| pd.subject == *subj) {
                    // pollres ≥ demand(res) − M(1−plc).
                    let m = big_m(&pd.demand, ares);
                    let mut e = LinExpr::from(pv);
                    e.set_constant(-pd.demand.constant - m);
                    for (k, coeff) in pd.demand.coeffs.iter().enumerate() {
                        if *coeff != 0.0 {
                            e.add_term(res_vars[s][ci][k], -coeff);
                        }
                    }
                    for &y in &y_vars[s][ci] {
                        e.add_term(y, m);
                    }
                    p.add_constraint(e, Cmp::Ge, 0.0);
                }
                // Migration polling demand at the previous allocation.
                if let Some(prev) = &instance.previous {
                    if let Some((pn, pres)) = prev.assignment.get(&s) {
                        if pn == n {
                            for pd in seed.polls.iter().filter(|pd| pd.subject == *subj) {
                                let d = pd.demand.eval(pres).max(0.0);
                                if d > 0.0 {
                                    let mut e = LinExpr::from(pv);
                                    e.add_term(tplc[seed.task], -d);
                                    for &y in &y_vars[s][ci] {
                                        e.add_term(y, d);
                                    }
                                    p.add_constraint(e, Cmp::Ge, 0.0);
                                }
                            }
                        }
                    }
                }
            }
        }
        p.add_constraint(poll_sum, Cmp::Le, ares.get(ResourceKind::PciePoll));
    }

    p.set_objective(objective);
    Encoded {
        problem: p,
        res_vars,
        y_vars,
    }
}

/// Safe big-M for a polynomial over `[0, ares]` boxes.
fn big_m(poly: &farm_almanac::analysis::Poly, ares: &Resources) -> f64 {
    poly.constant.abs()
        + poly
            .coeffs
            .iter()
            .zip(ares.0.iter())
            .map(|(c, a)| c.abs() * a)
            .sum::<f64>()
        + 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::solve_heuristic;
    use crate::model::{validate, PlacementSeed, PlacementTask, PollDemand};
    use farm_almanac::analysis::{Poly, UtilAnalysis, UtilBranch, UtilExpr};

    fn linear_util(min_vcpu: f64, cap: f64) -> UtilAnalysis {
        UtilAnalysis {
            branches: vec![UtilBranch {
                constraints: vec![Poly {
                    coeffs: [1.0, 0.0, 0.0, 0.0],
                    constant: -min_vcpu,
                }],
                utility: UtilExpr::Min(
                    Box::new(UtilExpr::Poly(Poly::var(ResourceKind::VCpu))),
                    Box::new(UtilExpr::Poly(Poly::constant(cap))),
                ),
            }],
        }
    }

    fn tiny_instance() -> PlacementInstance {
        let n0 = SwitchId(0);
        let n1 = SwitchId(1);
        PlacementInstance {
            switches: vec![
                (n0, Resources::new(3.0, 1000.0, 32.0, 100.0)),
                (n1, Resources::new(3.0, 1000.0, 32.0, 100.0)),
            ],
            tasks: vec![
                PlacementTask {
                    name: "a".into(),
                    seeds: vec![0, 1],
                },
                PlacementTask {
                    name: "b".into(),
                    seeds: vec![2],
                },
            ],
            seeds: vec![
                PlacementSeed {
                    id: 0,
                    task: 0,
                    candidates: vec![n0, n1],
                    util: linear_util(1.0, 2.0),
                    polls: vec![PollDemand {
                        subject: "ports".into(),
                        demand: Poly {
                            coeffs: [0.0, 0.0, 0.0, 0.1],
                            constant: 1.0,
                        },
                    }],
                },
                PlacementSeed {
                    id: 1,
                    task: 0,
                    candidates: vec![n0, n1],
                    util: linear_util(1.0, 2.0),
                    polls: vec![],
                },
                PlacementSeed {
                    id: 2,
                    task: 1,
                    candidates: vec![n0, n1],
                    util: linear_util(1.0, 4.0),
                    polls: vec![],
                },
            ],
            previous: None,
        }
    }

    #[test]
    fn exact_milp_solves_tiny_instance() {
        let inst = tiny_instance();
        let r = solve_placement_milp(&inst, &MilpPlacementOptions::default());
        assert!(r.exact, "tiny instance must use the exact path");
        assert_eq!(r.status, Some(MilpStatus::Optimal));
        validate(&inst, &r.result).unwrap();
        assert_eq!(r.result.placed(), 3);
        // Optimum: 6 vCPU shared by 3 seeds capped at (2, 2, 4); best is
        // 2 + (≥1 with leftover) and 4 → ≥ 7; exactly 2+4 on one switch
        // impossible (3 vCPU each), so 2 + 1 + 3 = 6 … the solver must at
        // least reach the heuristic's utility.
        let h = solve_heuristic(&inst, Default::default());
        assert!(
            r.result.utility >= h.utility - 1e-6,
            "exact {} < heuristic {}",
            r.result.utility,
            h.utility
        );
    }

    #[test]
    fn milp_respects_task_all_or_nothing() {
        let mut inst = tiny_instance();
        // Make task `a` impossible: both its seeds need 2 vCPU minimum,
        // but only one switch has capacity ≥ 2 after task b grabs it...
        // force it harder: shrink switches so only one seed fits anywhere.
        inst.switches = vec![(SwitchId(0), Resources::new(1.2, 1000.0, 32.0, 100.0))];
        for s in &mut inst.seeds {
            s.candidates = vec![SwitchId(0)];
        }
        let r = solve_placement_milp(&inst, &MilpPlacementOptions::default());
        validate(&inst, &r.result).unwrap();
        // Task a (two seeds ≥ 1 vCPU each) cannot fit in 1.2 vCPU; only
        // task b may be placed.
        assert!(r.result.assignment[2].is_some());
        assert!(r.result.assignment[0].is_none());
        assert!(r.result.assignment[1].is_none());
    }

    #[test]
    fn oversized_instances_fall_back_to_budgeted_search() {
        let inst = tiny_instance();
        let opts = MilpPlacementOptions {
            max_cells: 1, // force the fallback
            time_limit: Duration::from_millis(100),
            search_seed: 7,
        };
        let r = solve_placement_milp(&inst, &opts);
        assert!(!r.exact);
        validate(&inst, &r.result).unwrap();
        assert!(r.result.utility > 0.0);
    }

    #[test]
    fn milp_beats_or_matches_heuristic_on_small_instances() {
        // The exact solver may place resources better than the greedy
        // heuristic; it must never be worse on a solved instance.
        let inst = tiny_instance();
        let h = solve_heuristic(&inst, Default::default());
        let m = solve_placement_milp(&inst, &MilpPlacementOptions::default());
        assert!(m.exact);
        assert!(m.result.utility >= h.utility - 1e-6);
    }

    #[test]
    fn size_estimate_grows_with_instance() {
        let small = estimate_size(&tiny_instance());
        let mut big = tiny_instance();
        for i in 3..50 {
            big.seeds.push(PlacementSeed {
                id: i,
                task: 1,
                candidates: vec![SwitchId(0), SwitchId(1)],
                util: linear_util(1.0, 2.0),
                polls: vec![],
            });
            big.tasks[1].seeds.push(i);
        }
        let bigger = estimate_size(&big);
        assert!(bigger.0 > small.0 && bigger.1 > small.1);
    }
}
