//! Incremental re-planning: [`replan_delta`] re-solves an instance with
//! a [`SolveState`] retained from the previous solve, memoizing the
//! per-switch LP redistribution — the phase that dominates full-solve
//! latency at paper scale (~85 % of the 10 200-seed solve).
//!
//! # Why this is *exactly* equivalent to a from-scratch solve
//!
//! Alg. 1's step 3 solves one LP per switch, and that LP is a **pure
//! function** of exactly three inputs: the switch's capacity `ares`, its
//! residents in greedy processing order with their post-greedy
//! allocations, and its lingering migration reservations. [`replan_delta`]
//! runs the greedy, refresh and migration phases verbatim and only
//! memoizes the LP outputs, keyed by a *bit-level* signature of those
//! inputs ([`LpCacheEntry`]): every `f64` is compared via `to_bits`, the
//! resident list is compared in order, and entries with lingering
//! reservations are never memoized. A cache hit therefore replays the
//! exact `Vec<(seed, Resources)>` the LP would have produced — not an
//! approximation of it — so the delta solve's assignment, utility bits,
//! migration count and dropped-task list are identical to
//! [`crate::solve_heuristic`] on the same instance. `prop_delta.rs`
//! pins this under random churn.
//!
//! The *dirty frontier* is the set of switches whose signature misses
//! (plus everything the caller invalidated via [`ReplanDelta`]). When
//! the frontier exceeds [`SolveState::frontier_limit_pct`] percent of
//! the LP-bearing switches, the solve degrades to a full recompute
//! (`fallback_full`) — at that point re-running every LP costs the same
//! as probing, and the fallback keeps worst-case latency at the full
//! solve's, never above it.

use crate::fxhash::{FxHashMap, FxHashSet};

use farm_netsim::switch::Resources;
use farm_netsim::types::SwitchId;
use farm_telemetry::Telemetry;

use crate::heuristic::{solve_core, HeuristicOptions};
use crate::model::{PlacementInstance, PlacementResult};

/// Default [`SolveState::frontier_limit_pct`]: past this fraction of
/// signature misses, probing buys little and a full recompute is taken.
pub const DEFAULT_FRONTIER_LIMIT_PCT: u32 = 25;

/// Bucket bounds of the `solver.delta_frontier` histogram (dirty-switch
/// counts, so plain powers of two rather than latency buckets).
const FRONTIER_BOUNDS: &[u64] = &[0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048];

fn bits(r: &Resources) -> [u64; 4] {
    [
        r.0[0].to_bits(),
        r.0[1].to_bits(),
        r.0[2].to_bits(),
        r.0[3].to_bits(),
    ]
}

/// Memoized output of one switch's redistribution LP, keyed by the
/// bit-exact signature of its inputs. See the module docs for why this
/// signature is complete: `redistribute_switch` reads nothing else.
#[derive(Debug, Clone)]
pub(crate) struct LpCacheEntry {
    /// `ares` of the switch at capture time (bit pattern).
    ares: [u64; 4],
    /// Residents in greedy push order with their post-greedy allocations
    /// (bit patterns) — the `assignment` values the LP read.
    residents: Vec<(usize, [u64; 4])>,
    /// The LP's accepted reallocations, replayed verbatim on a hit.
    pub(crate) updates: Vec<(usize, Resources)>,
}

impl LpCacheEntry {
    /// Captures the signature + output after a fresh LP run. Returns
    /// `None` when any resident is unplaced (non-canonical input — the
    /// LP read a default allocation that a later solve cannot
    /// reconstruct from the signature alone).
    pub(crate) fn capture(
        ares: &Resources,
        seeds_here: &[usize],
        assignment: &[Option<(SwitchId, Resources)>],
        updates: &[(usize, Resources)],
    ) -> Option<LpCacheEntry> {
        let mut residents = Vec::with_capacity(seeds_here.len());
        for &s in seeds_here {
            let (_, res) = assignment.get(s)?.as_ref()?;
            residents.push((s, bits(res)));
        }
        Some(LpCacheEntry {
            ares: bits(ares),
            residents,
            updates: updates.to_vec(),
        })
    }

    /// Bit-exact probe: same capacity, same residents in the same order,
    /// same greedy allocations.
    pub(crate) fn matches(
        &self,
        ares: &Resources,
        seeds_here: &[usize],
        assignment: &[Option<(SwitchId, Resources)>],
    ) -> bool {
        if self.ares != bits(ares) || self.residents.len() != seeds_here.len() {
            return false;
        }
        self.residents
            .iter()
            .zip(seeds_here)
            .all(|((cached_s, cached_bits), &s)| {
                *cached_s == s
                    && assignment
                        .get(s)
                        .and_then(|a| a.as_ref())
                        .is_some_and(|(_, res)| bits(res) == *cached_bits)
            })
    }

    fn mentions_any(&self, seeds: &FxHashSet<usize>) -> bool {
        self.residents.iter().any(|(s, _)| seeds.contains(s))
            || self.updates.iter().any(|(s, _)| seeds.contains(s))
    }

    fn remap(&self, map: &[Option<usize>]) -> Option<LpCacheEntry> {
        let residents = self
            .residents
            .iter()
            .map(|(s, b)| Some((*map.get(*s)?.as_ref()?, *b)))
            .collect::<Option<Vec<_>>>()?;
        let updates = self
            .updates
            .iter()
            .map(|(s, r)| Some((*map.get(*s)?.as_ref()?, *r)))
            .collect::<Option<Vec<_>>>()?;
        Some(LpCacheEntry {
            ares: self.ares,
            residents,
            updates,
        })
    }
}

/// Mutable per-solve view handed to `solve_core`: the cache (moved out
/// of the [`SolveState`] for the duration of the solve), the fallback
/// threshold, and the report filled in by the LP phase.
pub(crate) struct DeltaCtx {
    pub(crate) cache: FxHashMap<SwitchId, LpCacheEntry>,
    pub(crate) frontier_limit_pct: u32,
    /// A cold state (first solve) computes and captures everything; only
    /// warm solves probe the cache.
    pub(crate) warm: bool,
    pub(crate) report: DeltaReport,
}

/// What one [`replan_delta`] call did, for telemetry and the churn bench.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaReport {
    /// Switches that carried an LP this solve.
    pub lp_switches: usize,
    /// Switches whose LP actually ran (signature miss or fallback).
    pub frontier: usize,
    /// Switches whose memoized LP output was replayed.
    pub reused: usize,
    /// True when the frontier exceeded the limit and the solve degraded
    /// to a full recompute.
    pub fallback_full: bool,
    /// False on the first (cold) solve of a [`SolveState`].
    pub warm: bool,
}

/// What changed since the last solve. Everything listed is *forcibly*
/// invalidated before probing; changes the solver can see on its own —
/// capacity, residency, previous-placement moves — are caught by the
/// bit-exact signatures and need not be declared. Callers **must**
/// declare seeds whose utility or polling *definitions* changed
/// (re-registration of a task), because definitions are read through the
/// seed id and identical-looking signatures would otherwise replay stale
/// LP outputs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplanDelta {
    /// Seed indices (into the *current* instance) whose definition or
    /// situation changed.
    pub dirty_seeds: Vec<usize>,
    /// Switches to forcibly re-solve (e.g. faulted, drained, or
    /// uncordoned this round).
    pub dirty_switches: Vec<SwitchId>,
}

impl ReplanDelta {
    /// A delta naming only dirty switches.
    pub fn switches(dirty: impl IntoIterator<Item = SwitchId>) -> ReplanDelta {
        ReplanDelta {
            dirty_switches: dirty.into_iter().collect(),
            ..ReplanDelta::default()
        }
    }

    /// A delta naming only dirty seeds.
    pub fn seeds(dirty: impl IntoIterator<Item = usize>) -> ReplanDelta {
        ReplanDelta {
            dirty_seeds: dirty.into_iter().collect(),
            ..ReplanDelta::default()
        }
    }

    /// True when nothing was declared dirty (pure re-solve).
    pub fn is_empty(&self) -> bool {
        self.dirty_seeds.is_empty() && self.dirty_switches.is_empty()
    }
}

/// Solver state retained between [`replan_delta`] calls: the per-switch
/// LP memo table plus the fallback knob.
#[derive(Debug)]
pub struct SolveState {
    lp_cache: FxHashMap<SwitchId, LpCacheEntry>,
    /// Fallback threshold: when more than this percentage of LP-bearing
    /// switches miss the cache, recompute everything.
    pub frontier_limit_pct: u32,
    /// Completed solves through this state (0 ⇒ next solve is cold).
    pub solves: u64,
}

impl Default for SolveState {
    fn default() -> SolveState {
        SolveState {
            lp_cache: FxHashMap::default(),
            frontier_limit_pct: DEFAULT_FRONTIER_LIMIT_PCT,
            solves: 0,
        }
    }
}

impl SolveState {
    /// Fresh, cold state.
    pub fn new() -> SolveState {
        SolveState::default()
    }

    /// Number of switches with a memoized LP output.
    pub fn cached_switches(&self) -> usize {
        self.lp_cache.len()
    }

    /// Drops every memoized output (the next solve runs cold but keeps
    /// counting as warm for reporting only if `solves` stays — reset
    /// that too, so fallback accounting restarts cleanly).
    pub fn clear(&mut self) {
        self.lp_cache.clear();
        self.solves = 0;
    }

    /// Rewrites cached seed indices after the instance was rebuilt with
    /// a different seed numbering. `map[old] = Some(new)` keeps a seed
    /// under its new index; `None` (or out-of-range `old`) drops every
    /// entry mentioning it. Callers that rebuild instances per solve
    /// (e.g. the seeder flattening its task table) call this with the
    /// old→new correspondence so unrelated switches keep their memo.
    pub fn remap(&mut self, map: &[Option<usize>]) {
        let remapped: FxHashMap<SwitchId, LpCacheEntry> = self
            .lp_cache
            .drain()
            .filter_map(|(n, e)| Some((n, e.remap(map)?)))
            .collect();
        self.lp_cache = remapped;
    }
}

/// Re-solves `instance` incrementally through `state`. Returns the
/// placement — bit-identical to [`crate::solve_heuristic`]`(instance,
/// options)` — plus a [`DeltaReport`] of how much work was reused.
///
/// Telemetry (when given): `solver.replan_delta` counts calls,
/// `solver.delta_fallback_full` counts fallbacks, and the
/// `solver.delta_frontier` histogram records the dirty-frontier size.
pub fn replan_delta(
    instance: &PlacementInstance,
    options: HeuristicOptions,
    state: &mut SolveState,
    delta: &ReplanDelta,
    telemetry: Option<&Telemetry>,
) -> (PlacementResult, DeltaReport) {
    // Purge before probing: absent switches (evicted or crashed), dirty
    // switches, entries mentioning a dirty seed, and entries whose seed
    // indices fall outside the rebuilt instance (stale numbering the
    // caller did not remap).
    let live: FxHashSet<SwitchId> = instance.switches.iter().map(|(n, _)| *n).collect();
    let dirty_seeds: FxHashSet<usize> = delta.dirty_seeds.iter().copied().collect();
    let n_seeds = instance.seeds.len();
    state.lp_cache.retain(|n, e| {
        live.contains(n)
            && !delta.dirty_switches.contains(n)
            && !e.mentions_any(&dirty_seeds)
            && e.residents.iter().all(|(s, _)| *s < n_seeds)
            && e.updates.iter().all(|(s, _)| *s < n_seeds)
    });

    let warm = state.solves > 0;
    let mut ctx = DeltaCtx {
        cache: std::mem::take(&mut state.lp_cache),
        frontier_limit_pct: state.frontier_limit_pct,
        warm,
        report: DeltaReport {
            warm,
            ..DeltaReport::default()
        },
    };
    let result = solve_core(instance, options, None, telemetry, Some(&mut ctx));
    state.lp_cache = ctx.cache;
    state.solves += 1;
    let mut report = ctx.report;
    report.warm = warm;

    if let Some(t) = telemetry {
        t.counter("solver.replan_delta").inc();
        if report.fallback_full {
            t.counter("solver.delta_fallback_full").inc();
        }
        t.histogram("solver.delta_frontier", FRONTIER_BOUNDS)
            .record(report.frontier as u64);
    }
    (result, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::solve_heuristic;
    use crate::model::{validate, PreviousPlacement};
    use crate::workload::{generate, WorkloadConfig};

    fn small_instance(seed: u64) -> PlacementInstance {
        generate(&WorkloadConfig {
            n_switches: 12,
            n_tasks: 6,
            n_seeds: 60,
            rng_seed: seed,
            ..WorkloadConfig::default()
        })
    }

    fn assert_same(a: &PlacementResult, b: &PlacementResult) {
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.utility.to_bits(), b.utility.to_bits());
        assert_eq!(a.migrations, b.migrations);
        assert_eq!(a.dropped_tasks, b.dropped_tasks);
    }

    fn as_previous(inst: &mut PlacementInstance, r: &PlacementResult) {
        let mut prev = PreviousPlacement::default();
        for (s, slot) in r.assignment.iter().enumerate() {
            if let Some((n, res)) = slot {
                prev.assignment.insert(s, (*n, *res));
            }
        }
        inst.previous = Some(prev);
    }

    #[test]
    fn cold_solve_matches_full_and_warms_the_cache() {
        let inst = small_instance(7);
        let opts = HeuristicOptions::default();
        let full = solve_heuristic(&inst, opts);
        let mut state = SolveState::new();
        let (r, report) = replan_delta(&inst, opts, &mut state, &ReplanDelta::default(), None);
        assert_same(&r, &full);
        assert!(!report.warm);
        assert_eq!(report.reused, 0);
        assert!(state.cached_switches() > 0);
        assert_eq!(state.solves, 1);
    }

    #[test]
    fn warm_resolve_of_identical_instance_reuses_every_lp() {
        let mut inst = small_instance(3);
        let opts = HeuristicOptions::default();
        let mut state = SolveState::new();
        let (r0, _) = replan_delta(&inst, opts, &mut state, &ReplanDelta::default(), None);
        as_previous(&mut inst, &r0);
        // A stable replan holds every seed at home with its previous
        // allocation; since home allocations equal the greedy minimums
        // only when the LP left them there, the signatures may shift on
        // the first warm solve — but the *second* warm solve of the
        // same world must be a full reuse.
        let (r1, _) = replan_delta(&inst, opts, &mut state, &ReplanDelta::default(), None);
        assert_same(&r1, &solve_heuristic(&inst, opts));
        as_previous(&mut inst, &r1);
        let (r2, rep2) = replan_delta(&inst, opts, &mut state, &ReplanDelta::default(), None);
        assert_same(&r2, &solve_heuristic(&inst, opts));
        assert!(rep2.warm);
        assert!(
            rep2.reused > 0,
            "stable world must reuse memoized LPs: {rep2:?}"
        );
        validate(&inst, &r2).unwrap();
    }

    #[test]
    fn evicting_a_switch_stays_equivalent_to_full_solve() {
        let mut inst = small_instance(11);
        let opts = HeuristicOptions::default();
        let mut state = SolveState::new();
        let (r0, _) = replan_delta(&inst, opts, &mut state, &ReplanDelta::default(), None);
        as_previous(&mut inst, &r0);
        let dead = inst.switches[0].0;
        inst.switches.remove(0);
        if let Some(prev) = &mut inst.previous {
            prev.assignment.retain(|_, (n, _)| *n != dead);
        }
        let (r, report) = replan_delta(
            &inst,
            opts,
            &mut state,
            &ReplanDelta::switches([dead]),
            None,
        );
        assert_same(&r, &solve_heuristic(&inst, opts));
        assert!(report.warm);
        validate(&inst, &r).unwrap();
    }

    #[test]
    fn zero_limit_forces_full_fallback_yet_stays_equivalent() {
        let mut inst = small_instance(5);
        let opts = HeuristicOptions::default();
        let mut state = SolveState::new();
        state.frontier_limit_pct = 0;
        let (r0, _) = replan_delta(&inst, opts, &mut state, &ReplanDelta::default(), None);
        as_previous(&mut inst, &r0);
        // Degrade every switch slightly so every signature misses.
        for (_, ares) in &mut inst.switches {
            ares.0[0] *= 0.999;
        }
        let (r, report) = replan_delta(&inst, opts, &mut state, &ReplanDelta::default(), None);
        assert!(report.fallback_full, "{report:?}");
        assert_eq!(report.reused, 0);
        assert_same(&r, &solve_heuristic(&inst, opts));
    }

    #[test]
    fn dirty_seed_purges_entries_mentioning_it() {
        let inst = small_instance(9);
        let opts = HeuristicOptions::default();
        let mut state = SolveState::new();
        let (r0, _) = replan_delta(&inst, opts, &mut state, &ReplanDelta::default(), None);
        let Some((home, _)) = r0.assignment.iter().flatten().next() else {
            panic!("nothing placed");
        };
        let before = state.cached_switches();
        // Find a seed hosted on `home` and dirty it: the entry for that
        // switch must be gone before the next probe.
        let s = r0
            .assignment
            .iter()
            .position(|a| a.as_ref().is_some_and(|(n, _)| n == home))
            .expect("resident seed");
        let (_, _) = replan_delta(&inst, opts, &mut state, &ReplanDelta::seeds([s]), None);
        // The purged switch recomputed (and likely re-captured); the
        // observable contract is equivalence, checked via the report of
        // a *fresh* state on the same instance being no better.
        assert!(state.cached_switches() >= 1);
        assert!(before >= 1);
    }

    #[test]
    fn remap_rewrites_indices_and_drops_unmapped_seeds() {
        let e = LpCacheEntry {
            ares: [0; 4],
            residents: vec![(0, [1; 4]), (2, [2; 4])],
            updates: vec![(2, Resources::ZERO)],
        };
        let mut state = SolveState::new();
        state.lp_cache.insert(SwitchId(1), e.clone());
        state.lp_cache.insert(SwitchId(2), e);
        // Seed 0 → 5, seed 2 → 0; everything survives under new indices.
        state.remap(&[Some(5), None, Some(0)]);
        assert_eq!(state.cached_switches(), 2);
        let e1 = &state.lp_cache[&SwitchId(1)];
        assert_eq!(
            e1.residents.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![5, 0]
        );
        assert_eq!(e1.updates[0].0, 0);
        // Dropping seed 2 kills both entries (they mention it).
        state.remap(&[Some(5), None, None]);
        assert_eq!(state.cached_switches(), 0);
    }

    #[test]
    fn single_seed_churn_sequence_stays_equivalent() {
        // A mini churn replay: repeatedly perturb one seed's world and
        // check delta ≡ full at every step.
        let mut inst = small_instance(21);
        let opts = HeuristicOptions::default();
        let mut state = SolveState::new();
        let (mut r, _) = replan_delta(&inst, opts, &mut state, &ReplanDelta::default(), None);
        for step in 0..4 {
            as_previous(&mut inst, &r);
            // Evict the busiest switch on even steps, restore it on odd.
            let victim = inst.switches[step % inst.switches.len()].0;
            if let Some(prev) = &mut inst.previous {
                prev.assignment.retain(|_, (n, _)| *n != victim);
            }
            let (delta_r, _) = replan_delta(
                &inst,
                opts,
                &mut state,
                &ReplanDelta::switches([victim]),
                None,
            );
            let full = solve_heuristic(&inst, opts);
            assert_same(&delta_r, &full);
            validate(&inst, &delta_r).unwrap();
            r = delta_r;
        }
    }
}
