//! FARM's holistic seed-placement optimization (§ IV of the ICDCS 2024
//! paper).
//!
//! The [`model`] module captures the optimization instance — switches with
//! available resources `ares(n,r)`, tasks, seeds with candidate sets
//! `N^s`, utility branches `{C^s, u^s}`, polling demands — plus a
//! validator for the paper's constraints (C1)–(C4) with aggregation and
//! migration double-occupancy semantics. Two solvers operate on it:
//!
//! * [`heuristic`] — Alg. 1: greedy minimum-utility placement, per-switch
//!   LP resource redistribution, and a migration pass ordered by benefit.
//!   Scales to the paper's 10 200 seeds × 1 040 switches regime.
//! * [`milp`] — the exact MILP formulation (MU objective, linearized
//!   bilinear terms) solved by `farm-lp`'s branch & bound under a
//!   deadline, degrading to budgeted primal search at scales a dense
//!   simplex cannot handle — the "Gurobi with 1 s / 10 min timeout"
//!   baseline of Fig. 7.
//!
//! [`build`] converts compiled Almanac tasks into instances; [`workload`]
//! generates the Fig. 7 synthetic study.
//!
//! # Example
//!
//! ```
//! use farm_placement::workload::{generate, WorkloadConfig};
//! use farm_placement::heuristic::{solve_heuristic, HeuristicOptions};
//! use farm_placement::model::validate;
//!
//! let inst = generate(&WorkloadConfig {
//!     n_switches: 8, n_tasks: 3, n_seeds: 40, ..Default::default()
//! });
//! let result = solve_heuristic(&inst, HeuristicOptions::default());
//! validate(&inst, &result).expect("Alg. 1 keeps C1-C4");
//! assert!(result.utility > 0.0);
//! ```

pub mod build;
pub mod delta;
pub mod fxhash;
pub mod heuristic;
pub mod milp;
pub mod model;
pub mod workload;

pub use build::instance_from_tasks;
pub use delta::{replan_delta, DeltaReport, ReplanDelta, SolveState};
pub use heuristic::{solve_heuristic, solve_heuristic_traced, HeuristicOptions};
pub use milp::{solve_placement_milp, MilpPlacementOptions, MilpPlacementResult};
pub use model::{
    validate, PlacementInstance, PlacementResult, PlacementSeed, PlacementTask, PollDemand,
    PreviousPlacement, SubjectInterner,
};
pub use workload::{generate, WorkloadConfig};
