//! The seed-placement optimization model (§ IV, Tab. II/III).
//!
//! A [`PlacementInstance`] carries everything the optimizer needs:
//! switches with available resources `ares(n, r)`, tasks with their seeds
//! `S^t`, per-seed candidate sets `N^s`, utility branches `{C^s_i, u^s_i}`
//! and polling demands (`α_poll / y.ival(r̄)` per canonical subject).
//! [`PlacementResult`] is an explicit assignment; [`validate`] checks the
//! paper's constraints (C1)–(C4) including poll aggregation (a subject's
//! consumption is the *maximum* demand among co-located seeds, the
//! aggregation benefit of § IV-B) and migration double-occupancy.

use std::collections::HashMap;
use std::time::Duration;

use crate::fxhash::FxHashMap;

use farm_almanac::analysis::{Poly, UtilAnalysis};
use farm_netsim::switch::{ResourceKind, Resources};
use farm_netsim::types::SwitchId;

/// Polling demand of one poll variable: `demand(r̄) = α_poll / ival(r̄)`,
/// linear by the DSL's analysis guarantees, in polls per second.
#[derive(Debug, Clone, PartialEq)]
pub struct PollDemand {
    /// Canonical subject key (seeds sharing it aggregate).
    pub subject: String,
    /// Linear demand polynomial over the seed's allocated resources.
    pub demand: Poly,
}

/// Interns canonical poll-subject strings to dense `u32` ids.
///
/// One interner is shared across a whole solve so the hot paths compare
/// and hash plain integers instead of cloning and hashing `String`
/// subjects per candidate probe (§ IV-D scale regime: 10 200 seeds
/// probing up to 1 040 switches each).
#[derive(Debug, Clone, Default)]
pub struct SubjectInterner {
    ids: HashMap<String, u32>,
    names: Vec<String>,
}

impl SubjectInterner {
    /// An empty interner.
    pub fn new() -> SubjectInterner {
        SubjectInterner::default()
    }

    /// Id of `subject`, allocating the next dense id on first sight.
    pub fn intern(&mut self, subject: &str) -> u32 {
        if let Some(&id) = self.ids.get(subject) {
            return id;
        }
        let id = self.names.len() as u32;
        self.ids.insert(subject.to_string(), id);
        self.names.push(subject.to_string());
        id
    }

    /// Id of an already-interned subject.
    pub fn get(&self, subject: &str) -> Option<u32> {
        self.ids.get(subject).copied()
    }

    /// Subject string behind an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this interner.
    pub fn name(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    /// Number of distinct subjects interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no subject has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Interns every subject of an instance and returns, per seed, its
    /// polling demands keyed by subject id. The result is indexed by
    /// seed id and shared by every phase of a solve.
    pub fn for_instance(instance: &PlacementInstance) -> (SubjectInterner, Vec<Vec<(u32, Poly)>>) {
        let mut interner = SubjectInterner::new();
        let polls = instance
            .seeds
            .iter()
            .map(|seed| {
                seed.polls
                    .iter()
                    .map(|p| (interner.intern(&p.subject), p.demand))
                    .collect()
            })
            .collect();
        (interner, polls)
    }
}

/// One seed to place.
#[derive(Debug, Clone)]
pub struct PlacementSeed {
    /// Index into [`PlacementInstance::seeds`].
    pub id: usize,
    /// Index into [`PlacementInstance::tasks`].
    pub task: usize,
    /// `N^s`: the seed must go to exactly one of these.
    pub candidates: Vec<SwitchId>,
    /// `{C^s_i, u^s_i}` branches from the `util` analysis.
    pub util: UtilAnalysis,
    /// Polling demands (one per poll variable).
    pub polls: Vec<PollDemand>,
}

/// One task; placing it means placing *all* of its seeds (C1).
#[derive(Debug, Clone)]
pub struct PlacementTask {
    pub name: String,
    /// Indices of this task's seeds.
    pub seeds: Vec<usize>,
}

/// A previous placement (`plc'`/`res'`) for migration-aware optimization.
#[derive(Debug, Clone, Default)]
pub struct PreviousPlacement {
    /// Per seed id: previous switch and allocation. Keyed with the fixed
    /// fast hasher — the greedy home probe and the migration pass look a
    /// seed up here for every placed seed of every solve.
    pub assignment: FxHashMap<usize, (SwitchId, Resources)>,
}

/// The optimization instance.
#[derive(Debug, Clone)]
pub struct PlacementInstance {
    /// `ares(n, r)` per switch.
    pub switches: Vec<(SwitchId, Resources)>,
    pub tasks: Vec<PlacementTask>,
    pub seeds: Vec<PlacementSeed>,
    /// Current placement, if re-optimizing (enables migration modelling).
    pub previous: Option<PreviousPlacement>,
}

impl PlacementInstance {
    /// Available resources of a switch.
    pub fn ares(&self, n: SwitchId) -> Option<Resources> {
        self.switches
            .iter()
            .find(|(id, _)| *id == n)
            .map(|(_, r)| *r)
    }

    /// Minimum utility of a task (Alg. 1 step 1's sort key): the sum of
    /// its seeds' cheapest-feasible utilities.
    pub fn task_min_utility(&self, task: usize) -> f64 {
        self.tasks[task]
            .seeds
            .iter()
            .map(|&s| {
                self.seeds[s]
                    .util
                    .min_feasible()
                    .map(|(_, u)| u)
                    .unwrap_or(0.0)
            })
            .sum()
    }
}

/// An explicit placement: per seed, the switch and allocated resources.
#[derive(Debug, Clone, Default)]
pub struct PlacementResult {
    /// `assignment[s] = Some((n, res))` when seed `s` is placed.
    pub assignment: Vec<Option<(SwitchId, Resources)>>,
    /// Total monitoring utility (the MU objective).
    pub utility: f64,
    /// Seeds moved relative to the previous placement.
    pub migrations: usize,
    /// Wall-clock solve time.
    pub runtime: Duration,
    /// Tasks that could not be placed (dropped by C1).
    pub dropped_tasks: Vec<usize>,
}

impl PlacementResult {
    /// Number of placed seeds.
    pub fn placed(&self) -> usize {
        self.assignment.iter().filter(|a| a.is_some()).count()
    }
}

/// Computes the MU objective of an assignment: `Σ plc(s,n) · u^s(res)`.
/// Seeds outside every utility-branch domain contribute zero.
pub fn utility_of(
    instance: &PlacementInstance,
    assignment: &[Option<(SwitchId, Resources)>],
) -> f64 {
    assignment
        .iter()
        .enumerate()
        .filter_map(|(s, a)| {
            a.as_ref()
                .and_then(|(_, res)| instance.seeds[s].util.eval(res))
        })
        .sum()
}

/// Counts migrations relative to the instance's previous placement.
pub fn count_migrations(
    instance: &PlacementInstance,
    assignment: &[Option<(SwitchId, Resources)>],
) -> usize {
    let Some(prev) = &instance.previous else {
        return 0;
    };
    assignment
        .iter()
        .enumerate()
        .filter(|(s, a)| match (prev.assignment.get(s), a) {
            (Some((old, _)), Some((new, _))) => old != new,
            _ => false,
        })
        .count()
}

/// Validates the paper's constraints (C1)–(C4).
///
/// # Errors
///
/// A human-readable description of the first violated constraint.
pub fn validate(instance: &PlacementInstance, result: &PlacementResult) -> Result<(), String> {
    let a = &result.assignment;
    if a.len() != instance.seeds.len() {
        return Err(format!(
            "assignment covers {} of {} seeds",
            a.len(),
            instance.seeds.len()
        ));
    }
    // C1: task all-or-nothing, each placed seed on a candidate switch.
    for (ti, task) in instance.tasks.iter().enumerate() {
        let placed: Vec<bool> = task.seeds.iter().map(|&s| a[s].is_some()).collect();
        let all = placed.iter().all(|p| *p);
        let none = placed.iter().all(|p| !*p);
        if !all && !none {
            return Err(format!("C1: task {} `{}` partially placed", ti, task.name));
        }
    }
    for (s, slot) in a.iter().enumerate() {
        if let Some((n, res)) = slot {
            if !instance.seeds[s].candidates.contains(n) {
                return Err(format!("seed {s} placed outside its candidate set ({n})"));
            }
            // C2: the allocation satisfies some utility branch's domain.
            if instance.seeds[s].util.eval(res).is_none() {
                return Err(format!(
                    "C2: seed {s} allocation {res} outside every util domain"
                ));
            }
            for r in res.0 {
                if r < -1e-9 {
                    return Err(format!("seed {s} has negative allocation"));
                }
            }
        }
    }
    // C3/C4 per switch: capacity for plain resources, aggregated pollres
    // for the polling resource, migration double-occupancy included.
    for (n, ares) in &instance.switches {
        let mut used = Resources::ZERO;
        // subject → max demand (aggregation: polled once at the fastest
        // requested rate).
        let mut pollres: HashMap<&str, f64> = HashMap::new();
        for (s, slot) in a.iter().enumerate() {
            if let Some((sn, res)) = slot {
                if sn == n {
                    for k in ResourceKind::ALL {
                        if k != ResourceKind::PciePoll {
                            used.0[k.index()] += res.get(k);
                        }
                    }
                    for p in &instance.seeds[s].polls {
                        let d = p.demand.eval(res).max(0.0);
                        let slot = pollres.entry(p.subject.as_str()).or_insert(0.0);
                        *slot = slot.max(d);
                    }
                }
            }
            // Migration source side: the previous allocation lingers while
            // state transfers (§ IV-B a).
            if let Some(prev) = &instance.previous {
                if let Some((old_n, old_res)) = prev.assignment.get(&s) {
                    let migrated_away =
                        old_n == n && matches!(&a[s], Some((new_n, _)) if new_n != n);
                    if migrated_away {
                        for k in ResourceKind::ALL {
                            if k != ResourceKind::PciePoll {
                                used.0[k.index()] += old_res.get(k);
                            }
                        }
                        for p in &instance.seeds[s].polls {
                            let d = p.demand.eval(old_res).max(0.0);
                            let slot = pollres.entry(p.subject.as_str()).or_insert(0.0);
                            *slot = slot.max(d);
                        }
                    }
                }
            }
        }
        for k in ResourceKind::ALL {
            if k == ResourceKind::PciePoll {
                continue;
            }
            if used.get(k) > ares.get(k) + 1e-6 {
                return Err(format!(
                    "C4: switch {n} over capacity on {k}: {} > {}",
                    used.get(k),
                    ares.get(k)
                ));
            }
        }
        let poll_total: f64 = pollres.values().sum();
        if poll_total > ares.get(ResourceKind::PciePoll) + 1e-6 {
            return Err(format!(
                "C4: switch {n} over polling capacity: {poll_total} > {}",
                ares.get(ResourceKind::PciePoll)
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use farm_almanac::analysis::{UtilBranch, UtilExpr};

    fn simple_util(min_vcpu: f64) -> UtilAnalysis {
        UtilAnalysis {
            branches: vec![UtilBranch {
                constraints: vec![Poly {
                    coeffs: [1.0, 0.0, 0.0, 0.0],
                    constant: -min_vcpu,
                }],
                utility: UtilExpr::Poly(Poly::var(ResourceKind::VCpu)),
            }],
        }
    }

    fn demand() -> PollDemand {
        // demand = PCIe / 10 polls per second.
        PollDemand {
            subject: "port ANY".into(),
            demand: Poly {
                coeffs: [0.0, 0.0, 0.0, 0.1],
                constant: 0.0,
            },
        }
    }

    pub(crate) fn small_instance() -> PlacementInstance {
        let n0 = SwitchId(0);
        let n1 = SwitchId(1);
        PlacementInstance {
            switches: vec![
                (n0, Resources::new(4.0, 1000.0, 32.0, 100.0)),
                (n1, Resources::new(4.0, 1000.0, 32.0, 100.0)),
            ],
            tasks: vec![
                PlacementTask {
                    name: "t0".into(),
                    seeds: vec![0, 1],
                },
                PlacementTask {
                    name: "t1".into(),
                    seeds: vec![2],
                },
            ],
            seeds: vec![
                PlacementSeed {
                    id: 0,
                    task: 0,
                    candidates: vec![n0],
                    util: simple_util(1.0),
                    polls: vec![demand()],
                },
                PlacementSeed {
                    id: 1,
                    task: 0,
                    candidates: vec![n0, n1],
                    util: simple_util(1.0),
                    polls: vec![demand()],
                },
                PlacementSeed {
                    id: 2,
                    task: 1,
                    candidates: vec![n1],
                    util: simple_util(2.0),
                    polls: vec![],
                },
            ],
            previous: None,
        }
    }

    #[test]
    fn utility_sums_over_placed_seeds() {
        let inst = small_instance();
        let assignment = vec![
            Some((SwitchId(0), Resources::new(2.0, 0.0, 0.0, 0.0))),
            Some((SwitchId(1), Resources::new(1.0, 0.0, 0.0, 0.0))),
            None,
        ];
        assert_eq!(utility_of(&inst, &assignment), 3.0);
    }

    #[test]
    fn validate_accepts_feasible_assignment() {
        let inst = small_instance();
        let result = PlacementResult {
            assignment: vec![
                Some((SwitchId(0), Resources::new(2.0, 0.0, 0.0, 10.0))),
                Some((SwitchId(0), Resources::new(2.0, 0.0, 0.0, 10.0))),
                Some((SwitchId(1), Resources::new(2.0, 0.0, 0.0, 0.0))),
            ],
            ..Default::default()
        };
        validate(&inst, &result).unwrap();
    }

    #[test]
    fn validate_rejects_partial_task() {
        let inst = small_instance();
        let result = PlacementResult {
            assignment: vec![
                Some((SwitchId(0), Resources::new(1.0, 0.0, 0.0, 0.0))),
                None,
                None,
            ],
            ..Default::default()
        };
        let err = validate(&inst, &result).unwrap_err();
        assert!(err.contains("C1"), "{err}");
    }

    #[test]
    fn validate_rejects_over_capacity() {
        let inst = small_instance();
        let result = PlacementResult {
            assignment: vec![
                Some((SwitchId(0), Resources::new(3.0, 0.0, 0.0, 0.0))),
                Some((SwitchId(0), Resources::new(3.0, 0.0, 0.0, 0.0))),
                Some((SwitchId(1), Resources::new(2.0, 0.0, 0.0, 0.0))),
            ],
            ..Default::default()
        };
        let err = validate(&inst, &result).unwrap_err();
        assert!(err.contains("C4"), "{err}");
    }

    #[test]
    fn validate_rejects_out_of_domain_allocation() {
        let inst = small_instance();
        let result = PlacementResult {
            assignment: vec![
                Some((SwitchId(0), Resources::new(0.5, 0.0, 0.0, 0.0))), // < min vCPU 1
                Some((SwitchId(0), Resources::new(1.0, 0.0, 0.0, 0.0))),
                Some((SwitchId(1), Resources::new(2.0, 0.0, 0.0, 0.0))),
            ],
            ..Default::default()
        };
        let err = validate(&inst, &result).unwrap_err();
        assert!(err.contains("C2"), "{err}");
    }

    #[test]
    fn aggregated_polling_uses_max_not_sum() {
        // Two seeds each demanding 60 polls/s on the same subject fit in
        // a capacity of 100 only because aggregation takes the max.
        let mut inst = small_instance();
        inst.switches[0].1 = Resources::new(10.0, 1000.0, 32.0, 100.0);
        let res = Resources::new(1.0, 0.0, 0.0, 600.0); // demand = 60
        let result = PlacementResult {
            assignment: vec![
                Some((SwitchId(0), res)),
                Some((SwitchId(0), res)),
                Some((SwitchId(1), Resources::new(2.0, 0.0, 0.0, 0.0))),
            ],
            ..Default::default()
        };
        // Non-poll capacity check would fail at PCIe=600 each if summed
        // as a plain resource; the aggregated model accepts it because
        // max(60, 60) = 60 ≤ 100.
        validate(&inst, &result).unwrap();
    }

    #[test]
    fn migration_double_occupancy_is_checked() {
        let mut inst = small_instance();
        // Seed 1 previously on n0 with a huge allocation.
        let mut prev = PreviousPlacement::default();
        prev.assignment
            .insert(1, (SwitchId(0), Resources::new(3.5, 0.0, 0.0, 0.0)));
        inst.previous = Some(prev);
        // Now seed 1 moves to n1 while seed 0 wants 1.0 vCPU on n0 —
        // but the lingering 3.5 vCPU of the migrating seed overflows n0
        // (4.0 total).
        let result = PlacementResult {
            assignment: vec![
                Some((SwitchId(0), Resources::new(1.0, 0.0, 0.0, 0.0))),
                Some((SwitchId(1), Resources::new(1.0, 0.0, 0.0, 0.0))),
                Some((SwitchId(1), Resources::new(2.0, 0.0, 0.0, 0.0))),
            ],
            ..Default::default()
        };
        let err = validate(&inst, &result).unwrap_err();
        assert!(err.contains("C4"), "{err}");
        assert_eq!(count_migrations(&inst, &result.assignment), 1);
    }

    #[test]
    fn task_min_utility_orders_tasks() {
        let inst = small_instance();
        // Task 0: two seeds, each min utility 1.0 (vCPU ≥ 1) → 2.0.
        // Task 1: one seed with min utility 2.0.
        assert_eq!(inst.task_min_utility(0), 2.0);
        assert_eq!(inst.task_min_utility(1), 2.0);
    }
}
