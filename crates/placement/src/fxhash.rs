//! Deterministic integer hashing for the solver's hot maps.
//!
//! The solver's inner loops (per-poll `PollCell` bookkeeping, per-seed
//! lingering reservations, per-switch state lookups, previous-placement
//! probes) hash millions of 4–8 byte integer keys per solve. std's
//! default `RandomState` pays SipHash's full mixing schedule for every
//! one of them *and* seeds itself randomly per process, which makes map
//! iteration order vary across runs. The solver never relies on map
//! iteration order for results (everything order-sensitive is sorted
//! first), but a fixed multiply–xor hasher in the style of rustc's
//! FxHash is both several times faster on these keys and fully
//! deterministic, which keeps debugging runs reproducible end to end.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x517c_c1b7_2722_0a95;

/// rustc-style FxHash: rotate, xor, multiply per 8-byte word. Not
/// collision-resistant against adversarial keys — the solver only hashes
/// its own dense small integers, where quality is a non-issue.
#[derive(Default)]
pub struct FxHasher(u64);

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// Zero-sized builder: every map built from it hashes identically.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;
/// `HashMap` with the fixed fast hasher (construct via `::default()`).
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// `HashSet` with the fixed fast hasher (construct via `::default()`).
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_keys_hash_equal_and_runs_are_reproducible() {
        let mut m: FxHashMap<u32, i32> = FxHashMap::default();
        for k in 0..1000u32 {
            m.insert(k, k as i32 * 3);
        }
        for k in 0..1000u32 {
            assert_eq!(m.get(&k), Some(&(k as i32 * 3)));
        }
        // Fixed seed: the same key always lands on the same hash.
        let hash = |k: u64| {
            let mut h = FxHasher::default();
            h.write_u64(k);
            h.finish()
        };
        assert_eq!(hash(42), hash(42));
        assert_ne!(hash(42), hash(43));
    }

    #[test]
    fn byte_stream_writes_fold_in_word_chunks() {
        let mut a = FxHasher::default();
        a.write(b"subject-key");
        let mut b = FxHasher::default();
        b.write(b"subject-key");
        assert_eq!(a.finish(), b.finish());
    }
}
