//! Bridges compiled Almanac tasks into placement instances.
//!
//! This is the seeder's glue (§ III-B → § IV): per-seed candidate sets
//! come from the placement analysis, utility branches from the `util`
//! analysis of the machine's *initial* state, and polling demands from the
//! trigger analysis (`demand(r̄) = 1000 / ival_ms(r̄)` polls per second,
//! linear by construction).

use farm_almanac::analysis::{PollSubject, Poly};
use farm_almanac::compile::CompiledTask;
use farm_netsim::switch::Resources;
use farm_netsim::types::SwitchId;

use crate::model::{
    PlacementInstance, PlacementSeed, PlacementTask, PollDemand, PreviousPlacement,
};

/// Canonical subject key shared across machines/tasks so the optimizer
/// sees aggregation opportunities (§ IV-B).
pub fn subject_key(subject: &PollSubject) -> String {
    match subject {
        PollSubject::AllPorts => "ports:ANY".to_string(),
        PollSubject::Port(i) => format!("ports:{i}"),
        PollSubject::Rule(pat) => format!("rule:{pat}"),
    }
}

/// Builds a placement instance from compiled tasks.
///
/// # Errors
///
/// Returns a description when a poll interval's inverse is not linear
/// (which the DSL analysis should already have rejected).
pub fn instance_from_tasks(
    tasks: &[&CompiledTask],
    switches: &[(SwitchId, Resources)],
    previous: Option<PreviousPlacement>,
) -> Result<PlacementInstance, String> {
    let mut seeds = Vec::new();
    let mut task_list = Vec::new();
    for (t, task) in tasks.iter().enumerate() {
        let mut ids = Vec::new();
        for cm in &task.machines {
            let util = cm.util_of(&cm.initial_state);
            let mut polls = Vec::new();
            for trig in &cm.triggers {
                if trig.kind != farm_almanac::ast::TriggerType::Poll {
                    continue;
                }
                // demand(r̄) = 1000 / ival_ms(r̄) polls per second.
                let demand: Poly = trig
                    .ival
                    .recip()
                    .as_poly()
                    .map(|p| p.scale(1000.0))
                    .ok_or_else(|| {
                        format!(
                            "trigger `{}` of `{}` has non-linear polling demand",
                            trig.name, cm.machine.name
                        )
                    })?;
                for s in &trig.subjects {
                    polls.push(PollDemand {
                        subject: subject_key(s),
                        demand,
                    });
                }
            }
            for spec in &cm.seeds {
                let id = seeds.len();
                ids.push(id);
                seeds.push(PlacementSeed {
                    id,
                    task: t,
                    candidates: spec.candidates.clone(),
                    util: util.clone(),
                    polls: polls.clone(),
                });
            }
        }
        task_list.push(PlacementTask {
            name: task.name.clone(),
            seeds: ids,
        });
    }
    Ok(PlacementInstance {
        switches: switches.to_vec(),
        tasks: task_list,
        seeds,
        previous,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::{solve_heuristic, HeuristicOptions};
    use crate::model::validate;
    use farm_almanac::compile::compile_task;
    use farm_netsim::controller::SdnController;
    use farm_netsim::switch::SwitchModel;
    use farm_netsim::topology::Topology;

    #[test]
    fn hh_task_becomes_a_placeable_instance() {
        let topo = Topology::spine_leaf(
            2,
            3,
            SwitchModel::accton_as7712(),
            SwitchModel::accton_as5712(),
        );
        let ctl = SdnController::new(&topo);
        let task = compile_task(
            "hh",
            farm_almanac::programs::HEAVY_HITTER,
            &Default::default(),
            &ctl,
        )
        .unwrap();
        let switches: Vec<(SwitchId, Resources)> = topo
            .switches()
            .iter()
            .map(|n| (n.id, n.model.total_resources()))
            .collect();
        let inst = instance_from_tasks(&[&task], &switches, None).unwrap();
        assert_eq!(inst.seeds.len(), 5, "place all → one seed per switch");
        assert_eq!(inst.tasks.len(), 1);
        // HH polls `port ANY` at ival = 10/PCIe ms → demand = 100·PCIe
        // polls/s.
        let seed = &inst.seeds[0];
        assert_eq!(seed.polls.len(), 1);
        assert_eq!(seed.polls[0].subject, "ports:ANY");
        let r = Resources::new(0.0, 0.0, 0.0, 2.0);
        assert!((seed.polls[0].demand.eval(&r) - 200.0).abs() < 1e-9);

        let result = solve_heuristic(&inst, HeuristicOptions::default());
        validate(&inst, &result).unwrap();
        assert_eq!(result.placed(), 5, "pinned seeds all place");
        assert!(result.utility > 0.0);
    }

    #[test]
    fn shared_subjects_across_tasks_share_keys() {
        let topo =
            Topology::spine_leaf(1, 2, SwitchModel::test_model(8), SwitchModel::test_model(8));
        let ctl = SdnController::new(&topo);
        let hh = compile_task(
            "hh",
            farm_almanac::programs::HEAVY_HITTER,
            &Default::default(),
            &ctl,
        )
        .unwrap();
        let tc = compile_task(
            "traffic-change",
            farm_almanac::programs::TRAFFIC_CHANGE,
            &Default::default(),
            &ctl,
        )
        .unwrap();
        let switches: Vec<(SwitchId, Resources)> = topo
            .switches()
            .iter()
            .map(|n| (n.id, n.model.total_resources()))
            .collect();
        let inst = instance_from_tasks(&[&hh, &tc], &switches, None).unwrap();
        // Both tasks poll `port ANY`: the optimizer must see one subject.
        let hh_subj = &inst.seeds[inst.tasks[0].seeds[0]].polls[0].subject;
        let tc_subj = &inst.seeds[inst.tasks[1].seeds[0]].polls[0].subject;
        assert_eq!(hh_subj, tc_subj, "aggregation needs shared keys");
    }
}
