//! FARM's scalable placement heuristic (Alg. 1 of § IV-D).
//!
//! 1. Sort tasks by decreasing minimum utility.
//! 2. Greedily place each task's seeds at their cheapest feasible
//!    allocation, preferring the current switch (no unnecessary
//!    migration) and, among candidates, the one where aggregation makes
//!    polling cheapest and the most capacity remains. Tasks that cannot
//!    be fully placed are dropped (C1).
//! 3. Redistribute resources with one LP **per switch** — the
//!    decomposition that makes the heuristic scale: once placement is
//!    fixed, switches do not couple.
//! 4. Compute per-seed migration benefits (utility gain at an alternative
//!    candidate under its spare capacity).
//! 5. Migrate in decreasing-benefit order, honouring double occupancy:
//!    the source switch keeps the previous allocation reserved while
//!    state transfers (§ IV-B a).
//!
//! # Performance engineering
//!
//! The solve is *incremental* and *parallel* (see DESIGN.md
//! "Performance"):
//!
//! * Poll subjects are interned to dense `u32` ids once per solve
//!   ([`SubjectInterner`]); the hot candidate loop never clones or
//!   hashes a `String`.
//! * Each [`SwitchState`] caches the per-subject running max and the
//!   switch-wide `Σ max` poll total, so a `fits()` probe is O(polls of
//!   the candidate seed) instead of O(subjects × entries on the switch).
//!   Removing the max entry lazily rebuilds that one subject's max.
//! * Steps 3 and 4 — the per-switch LPs (independent by construction)
//!   and the read-only migration-benefit scan — fan out over a scoped
//!   worker pool when [`HeuristicOptions::threads`] > 1. Workers claim
//!   items off a shared cursor (no chunk imbalance), reuse one LP arena
//!   each ([`LpScratch`]), and the benefit scan emits pre-sorted runs
//!   merged k-way; every merge is deterministic in stable switch/seed
//!   order, so the parallel result is bit-identical to the sequential
//!   one (`prop_parallel.rs` pins this).
//! * Re-solves with a retained [`crate::delta::SolveState`] memoize the
//!   per-switch LP outputs by exact input signature — see
//!   [`crate::delta::replan_delta`].

use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::time::Instant;

use crate::fxhash::FxHashMap;

use farm_almanac::analysis::{Poly, UtilExpr};
use farm_lp::{record_phase, Cmp, LinExpr, Problem, Sense};
use farm_netsim::switch::{ResourceKind, Resources};
use farm_netsim::types::SwitchId;
use farm_telemetry::Telemetry;

use crate::delta::{DeltaCtx, LpCacheEntry};
use crate::model::{
    count_migrations, utility_of, PlacementInstance, PlacementResult, SubjectInterner,
};

/// Heuristic knobs (ablation switches for the design-choice benches,
/// plus the worker-pool width).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeuristicOptions {
    /// Step 3: LP-based resource redistribution.
    pub lp_redistribution: bool,
    /// Steps 4–5: migration pass.
    pub migration: bool,
    /// Worker threads for the per-switch LP redistribution and the
    /// migration-benefit scan. `0` and `1` both run fully sequentially
    /// (today's exact behaviour); any larger value produces bit-identical
    /// results through the deterministic merge, only faster.
    pub threads: usize,
    /// Minimum instance size (in seeds) before `threads > 1` actually
    /// fans out. Below this the solve runs sequentially regardless of
    /// `threads`: on small instances the scoped-pool spawn/join cost
    /// outweighs the work it parallelizes, so `threads = 2` used to be
    /// *slower* than `threads = 1`. Set to `0` to force the parallel
    /// path at any size (the determinism proptests do this).
    pub parallel_threshold: usize,
}

/// Default [`HeuristicOptions::parallel_threshold`]: roughly where the
/// per-solve spawn/join overhead (~tens of µs per worker) drops below
/// the per-seed LP + benefit-scan work it saves.
pub const DEFAULT_PARALLEL_THRESHOLD: usize = 4000;

impl Default for HeuristicOptions {
    fn default() -> Self {
        HeuristicOptions {
            lp_redistribution: true,
            migration: true,
            threads: 1,
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
        }
    }
}

impl HeuristicOptions {
    /// Default options with an explicit worker-pool width.
    pub fn with_threads(threads: usize) -> HeuristicOptions {
        HeuristicOptions {
            threads,
            ..HeuristicOptions::default()
        }
    }
}

/// The worker-pool width a solve actually uses: the requested width,
/// collapsed to 1 when the instance is below
/// [`HeuristicOptions::parallel_threshold`]. Bit-identical either way
/// (the proptests in `prop_parallel.rs` pin that), so this is purely a
/// wall-clock decision.
fn effective_threads(options: &HeuristicOptions, n_seeds: usize) -> usize {
    if n_seeds < options.parallel_threshold {
        1
    } else {
        options.threads.max(1)
    }
}

/// Interned polling demands of one seed: `(subject id, demand poly)`.
type SeedPolls = [(u32, Poly)];

/// Aggregated demand multiset of one subject on one switch, with the
/// cached running max (consumption is the max — § IV-B aggregation).
#[derive(Debug, Clone, Default)]
struct PollCell {
    entries: Vec<f64>,
    max: f64,
}

/// Per-switch bookkeeping during the solve.
#[derive(Debug, Clone)]
struct SwitchState {
    ares: Resources,
    /// Non-poll resources in use (live seeds + lingering reservations).
    used: Resources,
    /// Poll demands per interned subject; consumption is the cached max.
    poll: FxHashMap<u32, PollCell>,
    /// Cached `Σ_subject max(entries)` — the switch's aggregated poll
    /// consumption, maintained incrementally so `fits()` never refolds.
    poll_total: f64,
    /// Seeds currently hosted.
    seeds: Vec<usize>,
    /// Migration reservations: seed → previous allocation still occupying
    /// this switch while the seed's state transfers away.
    lingering: FxHashMap<usize, Resources>,
}

impl SwitchState {
    fn new(ares: Resources) -> SwitchState {
        SwitchState {
            ares,
            used: Resources::ZERO,
            poll: FxHashMap::default(),
            poll_total: 0.0,
            seeds: Vec::new(),
            lingering: FxHashMap::default(),
        }
    }

    /// Extra aggregated polling the seed would add at allocation `res`.
    fn poll_delta(&self, polls: &SeedPolls, res: &Resources) -> f64 {
        polls
            .iter()
            .map(|(subj, demand)| {
                let d = demand.eval(res).max(0.0);
                let cur = self.poll.get(subj).map(|c| c.max).unwrap_or(0.0);
                (d - cur).max(0.0)
            })
            .sum()
    }

    fn fits(&self, polls: &SeedPolls, res: &Resources) -> bool {
        for k in ResourceKind::ALL {
            if k == ResourceKind::PciePoll {
                continue;
            }
            if self.used.get(k) + res.get(k) > self.ares.get(k) + 1e-9 {
                return false;
            }
        }
        self.poll_total + self.poll_delta(polls, res)
            <= self.ares.get(ResourceKind::PciePoll) + 1e-9
    }

    /// Read-only probe: would `res` fit if the seed's reservation `prev`
    /// were released first? Numerically identical to cloning the state,
    /// calling [`SwitchState::remove_usage`]`(polls, prev)` and then
    /// [`SwitchState::fits`]`(polls, res)` — the same clamped
    /// subtractions and incremental `poll_total` adjustments in the same
    /// order — but without cloning the per-switch bookkeeping. The greedy
    /// home-stay check runs this once per previously-placed seed, so the
    /// clone it replaces used to dominate the greedy phase on re-solves.
    fn fits_after_release(&self, polls: &SeedPolls, prev: &Resources, res: &Resources) -> bool {
        for k in ResourceKind::ALL {
            if k == ResourceKind::PciePoll {
                continue;
            }
            let used = (self.used.get(k) - prev.get(k)).max(0.0);
            if used + res.get(k) > self.ares.get(k) + 1e-9 {
                return false;
            }
        }
        // Simulate the removal on copies of only the touched subjects,
        // applying the same incremental poll_total adjustments in the
        // order `remove_usage` would. An emptied cell stays in `touched`
        // with no entries, standing in for the removed map slot.
        let mut touched: Vec<(u32, Vec<f64>, f64)> = Vec::new();
        let mut poll_total = self.poll_total;
        for (subj, demand) in polls {
            let d = demand.eval(prev).max(0.0);
            let idx = match touched.iter().position(|(s, _, _)| s == subj) {
                Some(i) => Some(i),
                None => self.poll.get(subj).map(|c| {
                    touched.push((*subj, c.entries.clone(), c.max));
                    touched.len() - 1
                }),
            };
            let Some(i) = idx else { continue };
            let (_, entries, max) = &mut touched[i];
            if entries.is_empty() {
                continue; // cell already removed by an earlier poll of this seed
            }
            if let Some(pos) = entries.iter().position(|x| (x - d).abs() < 1e-12) {
                entries.swap_remove(pos);
                if entries.is_empty() {
                    poll_total -= *max;
                } else if d >= *max - 1e-12 {
                    let new_max = entries.iter().copied().fold(0.0, f64::max);
                    poll_total += new_max - *max;
                    *max = new_max;
                }
            }
        }
        let mut delta = 0.0;
        for (subj, demand) in polls {
            let d = demand.eval(res).max(0.0);
            let cur = match touched.iter().find(|(s, _, _)| s == subj) {
                Some((_, entries, max)) => {
                    if entries.is_empty() {
                        0.0
                    } else {
                        *max
                    }
                }
                None => self.poll.get(subj).map(|c| c.max).unwrap_or(0.0),
            };
            delta += (d - cur).max(0.0);
        }
        poll_total + delta <= self.ares.get(ResourceKind::PciePoll) + 1e-9
    }

    fn add_usage(&mut self, polls: &SeedPolls, res: &Resources) {
        for k in ResourceKind::ALL {
            if k != ResourceKind::PciePoll {
                self.used.0[k.index()] += res.get(k);
            }
        }
        for (subj, demand) in polls {
            let d = demand.eval(res).max(0.0);
            let cell = self.poll.entry(*subj).or_default();
            cell.entries.push(d);
            if d > cell.max {
                self.poll_total += d - cell.max;
                cell.max = d;
            }
        }
    }

    fn remove_usage(&mut self, polls: &SeedPolls, res: &Resources) {
        for k in ResourceKind::ALL {
            if k != ResourceKind::PciePoll {
                self.used.0[k.index()] = (self.used.get(k) - res.get(k)).max(0.0);
            }
        }
        for (subj, demand) in polls {
            let d = demand.eval(res).max(0.0);
            if let Some(cell) = self.poll.get_mut(subj) {
                if let Some(pos) = cell.entries.iter().position(|x| (x - d).abs() < 1e-12) {
                    cell.entries.swap_remove(pos);
                    if cell.entries.is_empty() {
                        self.poll_total -= cell.max;
                        self.poll.remove(subj);
                    } else if d >= cell.max - 1e-12 {
                        // The (possibly tied) max left: rebuild this one
                        // subject's max lazily.
                        let new_max = cell.entries.iter().copied().fold(0.0, f64::max);
                        self.poll_total += new_max - cell.max;
                        cell.max = new_max;
                    }
                }
            }
        }
    }

    /// Drops all usage bookkeeping (used + poll cells) but keeps the
    /// hosted-seed and lingering sets, for the post-LP refresh.
    fn reset_usage(&mut self) {
        self.used = Resources::ZERO;
        self.poll.clear();
        self.poll_total = 0.0;
    }

    fn place(&mut self, seed_id: usize, polls: &SeedPolls, res: &Resources) {
        self.add_usage(polls, res);
        self.seeds.push(seed_id);
    }

    fn unplace(&mut self, seed_id: usize, polls: &SeedPolls, res: &Resources) {
        self.remove_usage(polls, res);
        self.seeds.retain(|&x| x != seed_id);
    }

    /// Remaining capacity for opportunistic allocation estimates.
    fn spare(&self) -> Resources {
        let mut s = self.ares.saturating_sub(&self.used);
        s.set(
            ResourceKind::PciePoll,
            (self.ares.get(ResourceKind::PciePoll) - self.poll_total).max(0.0),
        );
        s
    }

    /// Lingering reservations in ascending seed order — every float
    /// reduction over them must run in this stable order so repeated
    /// solves are bit-identical (HashMap iteration order is not).
    fn lingering_sorted(&self) -> Vec<(usize, Resources)> {
        let mut v: Vec<(usize, Resources)> = self.lingering.iter().map(|(s, r)| (*s, *r)).collect();
        v.sort_unstable_by_key(|(s, _)| *s);
        v
    }
}

/// Below this many work items the scoped pool is pure overhead; the
/// sequential path is taken regardless of the thread knob (results are
/// identical either way).
const PARALLEL_MIN_ITEMS: usize = 8;

/// Maps `f` over `items` on up to `threads` scoped workers. Each worker
/// claims items one at a time off a shared atomic cursor (so uneven item
/// costs — e.g. per-switch LPs of very different sizes — cannot leave a
/// worker idle the way fixed contiguous chunks did) and reuses a single
/// scratch value, built once by `mk_scratch`, across every item it
/// claims. Results are scattered back into item order, so callers
/// observe exactly the sequential output: `f` must be pure with respect
/// to the result (the scratch is an arena, never an input).
fn parallel_map_scratch<T, R, S, MS, F>(threads: usize, items: &[T], mk_scratch: MS, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    MS: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 || items.len() < PARALLEL_MIN_ITEMS {
        let mut scratch = mk_scratch();
        return items.iter().map(|t| f(&mut scratch, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let cursor = &cursor;
        let f = &f;
        let mk_scratch = &mk_scratch;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut scratch = mk_scratch();
                    let mut got: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, AtomicOrdering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        got.push((i, f(&mut scratch, item)));
                    }
                    got
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("placement worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("every item produced exactly once"))
        .collect()
}

/// [`parallel_map_scratch`] without a per-worker arena.
fn parallel_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_scratch(threads, items, || (), |_, t| f(t))
}

/// The migration-benefit comparator: decreasing benefit, `Equal` on any
/// NaN so the sort never panics.
fn benefit_cmp(a: &(f64, usize, SwitchId), b: &(f64, usize, SwitchId)) -> std::cmp::Ordering {
    b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal)
}

/// Enumerates per-seed benefit lists and returns them globally sorted by
/// decreasing benefit, ties in enumeration order. Sequentially this is a
/// flatten + stable sort; in parallel each worker scans one contiguous
/// seed range and emits a pre-sorted run, and the runs are merged k-way
/// with ties taken from the earliest run — which reproduces the stable
/// sort of the concatenation bit for bit, without re-sorting (or
/// re-hashing) the merged list.
fn scan_benefits<F>(threads: usize, n_seeds: usize, scan: F) -> Vec<(f64, usize, SwitchId)>
where
    F: Fn(usize) -> Vec<(f64, usize, SwitchId)> + Sync,
{
    let threads = threads.max(1).min(n_seeds.max(1));
    if threads == 1 || n_seeds < PARALLEL_MIN_ITEMS {
        let mut out: Vec<(f64, usize, SwitchId)> = (0..n_seeds).flat_map(scan).collect();
        out.sort_by(benefit_cmp);
        return out;
    }
    let chunk = n_seeds.div_ceil(threads);
    let ranges: Vec<std::ops::Range<usize>> = (0..n_seeds)
        .step_by(chunk)
        .map(|lo| lo..(lo + chunk).min(n_seeds))
        .collect();
    let scan = &scan;
    let runs: Vec<Vec<(f64, usize, SwitchId)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| {
                scope.spawn(move || {
                    let mut run: Vec<(f64, usize, SwitchId)> = range.flat_map(scan).collect();
                    run.sort_by(benefit_cmp);
                    run
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("placement worker panicked"))
            .collect()
    });
    // Stable k-way merge: among run heads, take the smallest under the
    // comparator; on ties the earliest run wins, preserving enumeration
    // order exactly like the stable sort of the flattened list.
    let total = runs.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    let mut cursors = vec![0usize; runs.len()];
    loop {
        let mut best: Option<usize> = None;
        for (ri, run) in runs.iter().enumerate() {
            if cursors[ri] >= run.len() {
                continue;
            }
            match best {
                None => best = Some(ri),
                Some(bi) => {
                    if benefit_cmp(&run[cursors[ri]], &runs[bi][cursors[bi]])
                        == std::cmp::Ordering::Less
                    {
                        best = Some(ri);
                    }
                }
            }
        }
        let Some(bi) = best else { break };
        out.push(runs[bi][cursors[bi]]);
        cursors[bi] += 1;
    }
    out
}

/// Runs Alg. 1 on an instance.
pub fn solve_heuristic(instance: &PlacementInstance, options: HeuristicOptions) -> PlacementResult {
    solve_core(instance, options, None, None, None)
}

/// [`solve_heuristic`] with per-phase telemetry: each of the greedy,
/// LP-redistribution and migration phases emits a
/// [`farm_telemetry::Event::SolverPhase`] and samples `solver.phase_us`.
pub fn solve_heuristic_traced(
    instance: &PlacementInstance,
    options: HeuristicOptions,
    telemetry: Option<&Telemetry>,
) -> PlacementResult {
    solve_core(instance, options, None, telemetry, None)
}

/// A deliberately *generic* randomized construction: random task order,
/// a random feasible candidate per seed (no aggregation-aware scoring,
/// no migration pass), minimum allocations, and optionally one LP
/// redistribution polish. This approximates the primal-heuristic quality
/// a general-purpose MIP solver reaches without domain knowledge — it is
/// what the deadline-bounded MILP baseline falls back to at scales the
/// exact branch & bound cannot handle (Fig. 7's "Gurobi with timeout").
pub fn solve_randomized(
    instance: &PlacementInstance,
    rng_seed: u64,
    lp_polish: bool,
) -> PlacementResult {
    use rand::seq::SliceRandom;
    use rand::{RngExt, SeedableRng};
    let start = Instant::now();
    let (_, interned) = SubjectInterner::for_instance(instance);
    let min_alloc: Vec<Option<(Resources, f64)>> = instance
        .seeds
        .iter()
        .map(|s| s.util.min_feasible())
        .collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(rng_seed);
    let mut states: FxHashMap<SwitchId, SwitchState> = instance
        .switches
        .iter()
        .map(|(n, ares)| (*n, SwitchState::new(*ares)))
        .collect();
    let mut assignment: Vec<Option<(SwitchId, Resources)>> = vec![None; instance.seeds.len()];
    let mut dropped = Vec::new();
    let mut order: Vec<usize> = (0..instance.tasks.len()).collect();
    order.shuffle(&mut rng);
    for &t in &order {
        let mut placed_here: Vec<(usize, SwitchId, Resources)> = Vec::new();
        let mut ok = true;
        for &s in &instance.tasks[t].seeds {
            let Some((min_res, _)) = min_alloc[s] else {
                ok = false;
                break;
            };
            // Candidates absent from the instance (e.g. crashed switches
            // excluded from this solve) are simply not feasible.
            let feasible: Vec<SwitchId> = instance.seeds[s]
                .candidates
                .iter()
                .copied()
                .filter(|n| {
                    states
                        .get(n)
                        .is_some_and(|st| st.fits(&interned[s], &min_res))
                })
                .collect();
            if feasible.is_empty() {
                ok = false;
                break;
            }
            let n = feasible[rng.random_range(0..feasible.len())];
            states
                .get_mut(&n)
                .expect("known switch")
                .place(s, &interned[s], &min_res);
            placed_here.push((s, n, min_res));
        }
        if ok {
            for (s, n, res) in placed_here {
                assignment[s] = Some((n, res));
            }
        } else {
            for (s, n, res) in placed_here {
                states
                    .get_mut(&n)
                    .expect("known switch")
                    .unplace(s, &interned[s], &res);
            }
            dropped.push(t);
        }
    }
    if lp_polish {
        let mut switch_ids: Vec<SwitchId> = states.keys().copied().collect();
        switch_ids.sort_unstable();
        let mut scratch = LpScratch::new();
        for n in switch_ids {
            let seeds_here = states[&n].seeds.clone();
            if !seeds_here.is_empty() {
                for (s, r) in redistribute_switch(
                    instance,
                    &interned,
                    n,
                    &seeds_here,
                    &states[&n],
                    &assignment,
                    &mut scratch,
                ) {
                    assignment[s] = Some((n, r));
                }
            }
        }
    }
    let utility = utility_of(instance, &assignment);
    PlacementResult {
        utility,
        migrations: count_migrations(instance, &assignment),
        runtime: start.elapsed(),
        dropped_tasks: dropped,
        assignment,
    }
}

/// Alg. 1 with an optional explicit task order (used by the randomized
/// restarts of the budgeted MILP fallback).
pub fn solve_heuristic_ordered(
    instance: &PlacementInstance,
    options: HeuristicOptions,
    task_order: Option<Vec<usize>>,
) -> PlacementResult {
    solve_core(instance, options, task_order, None, None)
}

/// The full Alg. 1 pipeline. When `delta` is given, the per-switch LP
/// outputs of the redistribution phase are memoized in its cache:
/// switches whose LP inputs (capacity, ordered residents and their
/// greedy allocations, no lingering reservations) are bit-identical to
/// the cached run reuse the cached output — `redistribute_switch` is a
/// pure function of exactly those inputs, so the reuse is exact, not
/// approximate. Everything else (greedy, state refresh, migration) runs
/// verbatim, which is what makes `replan_delta` provably equivalent to
/// a from-scratch solve.
pub(crate) fn solve_core(
    instance: &PlacementInstance,
    options: HeuristicOptions,
    task_order: Option<Vec<usize>>,
    telemetry: Option<&Telemetry>,
    mut delta: Option<&mut DeltaCtx>,
) -> PlacementResult {
    let start = Instant::now();
    let threads = effective_threads(&options, instance.seeds.len());
    // One-time per-solve precomputation: interned subjects and each
    // seed's minimum feasible allocation (both invariant across phases).
    // The min-allocation scan is pure per seed, so it fans out with the
    // same worker pool as the later phases (step 2's feeding scan).
    let (_, interned) = SubjectInterner::for_instance(instance);
    let min_alloc: Vec<Option<(Resources, f64)>> =
        parallel_map(threads, &instance.seeds, |s| s.util.min_feasible());
    let mut states: FxHashMap<SwitchId, SwitchState> = instance
        .switches
        .iter()
        .map(|(n, ares)| (*n, SwitchState::new(*ares)))
        .collect();
    // Reserve previous allocations as migration lingering; released when a
    // seed is re-placed on its previous switch. Applied in ascending seed
    // order so float accumulation is reproducible across solves.
    if let Some(prev) = &instance.previous {
        let mut prev_sorted: Vec<(usize, (SwitchId, Resources))> =
            prev.assignment.iter().map(|(s, a)| (*s, *a)).collect();
        prev_sorted.sort_unstable_by_key(|(s, _)| *s);
        for (s, (n, res)) in prev_sorted {
            if let Some(st) = states.get_mut(&n) {
                st.add_usage(&interned[s], &res);
                st.lingering.insert(s, res);
            }
        }
    }
    let mut assignment: Vec<Option<(SwitchId, Resources)>> = vec![None; instance.seeds.len()];
    let mut dropped = Vec::new();

    // Step 1: sort tasks by decreasing minimum utility.
    let order = task_order.unwrap_or_else(|| {
        let mut order: Vec<usize> = (0..instance.tasks.len()).collect();
        let keys: Vec<f64> = (0..instance.tasks.len())
            .map(|t| instance.task_min_utility(t))
            .collect();
        order.sort_by(|&a, &b| {
            keys[b]
                .partial_cmp(&keys[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        order
    });

    let release_lingering = |states: &mut FxHashMap<SwitchId, SwitchState>,
                             interned: &[Vec<(u32, Poly)>],
                             s: usize,
                             n: SwitchId| {
        if let Some(st) = states.get_mut(&n) {
            if let Some(res) = st.lingering.remove(&s) {
                st.remove_usage(&interned[s], &res);
            }
        }
    };

    // Step 2: greedy placement per task, all-or-nothing.
    for &t in &order {
        let mut placed_here: Vec<(usize, SwitchId, Resources, bool)> = Vec::new();
        let mut seed_ids = instance.tasks[t].seeds.clone();
        seed_ids.sort_by_key(|&s| instance.seeds[s].candidates.len());
        let mut ok = true;
        for &s in &seed_ids {
            let seed = &instance.seeds[s];
            let Some((min_res, _)) = min_alloc[s] else {
                ok = false;
                break;
            };
            let prev_switch = instance
                .previous
                .as_ref()
                .and_then(|p| p.assignment.get(&s))
                .map(|(n, _)| *n)
                .filter(|n| seed.candidates.contains(n));
            // Staying home releases the lingering reservation first, so
            // feasibility there is checked against the released state.
            // Home wins unconditionally when feasible (its score is
            // +inf), so probe it first and skip scoring the other
            // candidates entirely — selection and all state mutations
            // are exactly those of scanning the full candidate list.
            let mut best: Option<(SwitchId, f64, bool)> = None;
            if let Some(h) = prev_switch {
                if let Some(st) = states.get(&h) {
                    let feasible = match st.lingering.get(&s) {
                        Some(prev_res) => {
                            let prev_res = *prev_res;
                            st.fits_after_release(&interned[s], &prev_res, &min_res)
                        }
                        None => st.fits(&interned[s], &min_res),
                    };
                    if feasible {
                        best = Some((h, f64::INFINITY, true));
                    }
                }
            }
            if best.is_none() {
                for &n in &seed.candidates {
                    // A candidate the instance does not offer (crashed or
                    // otherwise excluded switch) cannot host the seed;
                    // the home switch was already probed and found
                    // infeasible (or absent) above.
                    if prev_switch == Some(n) {
                        continue;
                    }
                    let Some(st) = states.get(&n) else { continue };
                    if !st.fits(&interned[s], &min_res) {
                        continue;
                    }
                    // Step 2a: "choose such s that adds the most to the
                    // utility" — score by the utility achievable on this
                    // switch given its spare capacity, discounted by the
                    // extra polling the placement would cost.
                    let poll_cap = st.ares.get(ResourceKind::PciePoll).max(1e-9);
                    let score = achievable_utility(seed, &interned[s], &min_res, st).unwrap_or(0.0)
                        - st.poll_delta(&interned[s], &min_res) / poll_cap;
                    if best.as_ref().is_none_or(|(_, b, _)| score > *b) {
                        best = Some((n, score, false));
                    }
                }
            }
            match best {
                Some((n, _, home)) => {
                    if home {
                        release_lingering(&mut states, &interned, s, n);
                    }
                    states
                        .get_mut(&n)
                        .expect("known switch")
                        .place(s, &interned[s], &min_res);
                    placed_here.push((s, n, min_res, home));
                }
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            for (s, n, res, _) in placed_here {
                assignment[s] = Some((n, res));
            }
        } else {
            for (s, n, res, home) in placed_here {
                let st = states.get_mut(&n).expect("known switch");
                st.unplace(s, &interned[s], &res);
                if home {
                    // Restore the reservation we released.
                    if let Some(prev) = &instance.previous {
                        if let Some((pn, pres)) = prev.assignment.get(&s) {
                            if *pn == n {
                                st.add_usage(&interned[s], pres);
                                st.lingering.insert(s, *pres);
                            }
                        }
                    }
                }
            }
            dropped.push(t);
        }
    }
    if let Some(t) = telemetry {
        record_phase(
            t,
            "greedy",
            start.elapsed().as_nanos() as u64,
            instance.tasks.len() as u64,
        );
    }

    // Step 3: LP redistribution per switch, then refresh the bookkeeping
    // so the migration pass sees the boosted allocations. The per-switch
    // LPs are independent (the decomposition's whole point), so they fan
    // out over the worker pool; updates merge in ascending switch order
    // and touch disjoint seeds, so any thread count yields the same
    // assignment.
    let lp_start = Instant::now();
    if options.lp_redistribution {
        let mut work: Vec<(SwitchId, Vec<usize>)> = states
            .iter()
            .filter(|(_, st)| !st.seeds.is_empty())
            .map(|(n, st)| (*n, st.seeds.clone()))
            .collect();
        work.sort_unstable_by_key(|(n, _)| *n);
        let lp_switches = work.len() as u64;
        {
            // Cache probe (delta path): a switch whose LP inputs are
            // bit-identical to the memoized run — same capacity, same
            // residents in the same greedy order, same greedy
            // allocations, no lingering reservations — reuses the
            // memoized output. Everything that misses is the *dirty
            // frontier*; past the configured fraction the solve degrades
            // to a full recompute (the proven-equivalence fallback).
            let mut planned: Vec<Option<Vec<(usize, Resources)>>> = vec![None; work.len()];
            let mut frontier: Vec<usize> = Vec::new();
            match &mut delta {
                Some(ctx) if ctx.warm => {
                    for (i, (n, seeds_here)) in work.iter().enumerate() {
                        let st = &states[n];
                        let hit = st.lingering.is_empty()
                            && ctx
                                .cache
                                .get(n)
                                .is_some_and(|e| e.matches(&st.ares, seeds_here, &assignment));
                        if hit {
                            planned[i] =
                                Some(ctx.cache.get(n).expect("probed entry").updates.clone());
                        } else {
                            frontier.push(i);
                        }
                    }
                    if frontier.len() * 100 > work.len() * ctx.frontier_limit_pct as usize {
                        ctx.report.fallback_full = true;
                        planned.iter_mut().for_each(|p| *p = None);
                        frontier = (0..work.len()).collect();
                    }
                    ctx.report.lp_switches = work.len();
                    ctx.report.frontier = frontier.len();
                    ctx.report.reused = work.len() - frontier.len();
                }
                _ => {
                    frontier = (0..work.len()).collect();
                    if let Some(ctx) = &mut delta {
                        ctx.report.lp_switches = work.len();
                        ctx.report.frontier = work.len();
                    }
                }
            }
            let todo: Vec<(SwitchId, &Vec<usize>)> =
                frontier.iter().map(|&i| (work[i].0, &work[i].1)).collect();
            let updates: Vec<Vec<(usize, Resources)>> = {
                let states = &states;
                let assignment_view = &assignment;
                let interned_view = &interned;
                parallel_map_scratch(
                    threads,
                    &todo,
                    LpScratch::new,
                    |scratch, (n, seeds_here)| {
                        redistribute_switch(
                            instance,
                            interned_view,
                            *n,
                            seeds_here,
                            &states[n],
                            assignment_view,
                            scratch,
                        )
                    },
                )
            };
            for (&i, ups) in frontier.iter().zip(updates) {
                if let Some(ctx) = &mut delta {
                    let (n, seeds_here) = &work[i];
                    let st = &states[n];
                    match LpCacheEntry::capture(&st.ares, seeds_here, &assignment, &ups) {
                        Some(entry) if st.lingering.is_empty() => {
                            ctx.cache.insert(*n, entry);
                        }
                        // Lingering reservations (or an unplaced resident)
                        // make the LP inputs non-canonical: never memoize.
                        _ => {
                            ctx.cache.remove(n);
                        }
                    }
                }
                planned[i] = Some(ups);
            }
            for ((n, _), ups) in work.iter().zip(planned) {
                for (s, r) in ups.expect("every switch planned or reused") {
                    assignment[s] = Some((*n, r));
                }
            }
        }
        if let Some(t) = telemetry {
            record_phase(
                t,
                "lp_redistribution",
                lp_start.elapsed().as_nanos() as u64,
                lp_switches,
            );
        }
        for st in states.values_mut() {
            let seeds = st.seeds.clone();
            let lingering = st.lingering_sorted();
            st.reset_usage();
            for &s in &seeds {
                if let Some((_, res)) = &assignment[s] {
                    st.add_usage(&interned[s], res);
                }
            }
            for (s, res) in &lingering {
                st.add_usage(&interned[*s], res);
            }
        }
    }

    // Steps 4–5: relocation by decreasing benefit. On re-optimization
    // this is migration (with double occupancy); on a fresh placement it
    // is a free improvement pass over the greedy choices. The benefit
    // scan only reads `states`/`assignment`, so it fans out across the
    // pool; per-seed benefit lists concatenate in seed order, which is
    // exactly the sequential enumeration order (the later stable sort
    // preserves it for ties).
    let migration_start = Instant::now();
    let mut migrations = 0;
    if options.migration {
        let benefits: Vec<(f64, usize, SwitchId)> = {
            let states = &states;
            let assignment_view = &assignment;
            let interned_view = &interned;
            let min_alloc_view = &min_alloc;
            scan_benefits(threads, assignment.len(), |s| {
                let mut out = Vec::new();
                let Some((cur, cur_res)) = &assignment_view[s] else {
                    return out;
                };
                let seed = &instance.seeds[s];
                let Some((min_res, _)) = &min_alloc_view[s] else {
                    return out;
                };
                let cur_u = seed.util.eval(cur_res).unwrap_or(0.0);
                for &n in &seed.candidates {
                    if n == *cur {
                        continue;
                    }
                    let Some(st) = states.get(&n) else { continue };
                    if let Some(u) = achievable_utility(seed, &interned_view[s], min_res, st) {
                        // Hysteresis: relocation must clearly pay (migration
                        // costs state transfer and double occupancy; "without
                        // unnecessary migration" per Alg. 1 step 2a), and the
                        // benefit estimate is opportunistic, not exact.
                        if u > cur_u * 1.15 + 1e-6 {
                            out.push((u - cur_u, s, n));
                        }
                    }
                }
                out
            })
        };
        for (_, s, n) in benefits {
            let seed = &instance.seeds[s];
            let Some((cur, cur_res)) = assignment[s] else {
                continue;
            };
            if cur == n {
                continue;
            }
            let Some((min_res, _)) = min_alloc[s] else {
                continue;
            };
            let Some(target) = states.get(&n) else {
                continue;
            };
            let res = opportunistic_alloc(&interned[s], target, &min_res);
            if !target.fits(&interned[s], &res) {
                continue;
            }
            // Commit only when the *realized* allocation clears the same
            // hysteresis the estimate did — a migration must strictly pay
            // for its state transfer and double occupancy.
            let cur_u = seed.util.eval(&cur_res).unwrap_or(0.0);
            let new_u = seed.util.eval(&res).unwrap_or(0.0);
            if new_u <= cur_u * 1.15 + 1e-6 {
                continue;
            }
            // Double occupancy must fit at the source too: migrating away
            // swaps the live allocation for the *previous* reservation,
            // which can be larger when the LP shrank the seed this round
            // (its released headroom went to co-residents). Re-seating
            // the old reservation would then oversubscribe the source —
            // skip the move instead (C4 over a cheaper migration).
            if let Some((_, pres)) = instance
                .previous
                .as_ref()
                .and_then(|p| p.assignment.get(&s))
                .filter(|(pn, _)| *pn == cur)
            {
                let Some(src) = states.get(&cur) else {
                    continue;
                };
                if !src.fits_after_release(&interned[s], &cur_res, pres) {
                    continue;
                }
            }
            // Commit: occupy the target; on the source, swap the live
            // allocation for the lingering reservation (the *previous*
            // allocation stays until state transfer completes).
            states
                .get_mut(&n)
                .expect("known switch")
                .place(s, &interned[s], &res);
            let src = states.get_mut(&cur).expect("known switch");
            src.unplace(s, &interned[s], &cur_res);
            if let Some(prev) = &instance.previous {
                if let Some((pn, pres)) = prev.assignment.get(&s) {
                    if *pn == cur {
                        src.add_usage(&interned[s], pres);
                        src.lingering.insert(s, *pres);
                    }
                }
            }
            assignment[s] = Some((n, res));
            if instance.previous.is_some() {
                migrations += 1;
            }
        }
        if let Some(t) = telemetry {
            record_phase(
                t,
                "migration",
                migration_start.elapsed().as_nanos() as u64,
                migrations as u64,
            );
        }
    }

    let utility = utility_of(instance, &assignment);
    PlacementResult {
        utility,
        migrations: migrations.max(count_migrations(instance, &assignment)),
        runtime: start.elapsed(),
        dropped_tasks: dropped,
        assignment,
    }
}

/// Utility the seed could reach on a switch given its spare capacity
/// (the "migration benefit" of Alg. 1 step 4, approximated by one
/// opportunistic allocation instead of a full LP).
fn achievable_utility(
    seed: &crate::model::PlacementSeed,
    polls: &SeedPolls,
    min_res: &Resources,
    st: &SwitchState,
) -> Option<f64> {
    if !st.fits(polls, min_res) {
        return None;
    }
    let res = opportunistic_alloc(polls, st, min_res);
    seed.util.eval(&res)
}

/// Minimum allocation plus half the switch's spare capacity (capped so the
/// result still fits; the head-room is left for later seeds).
fn opportunistic_alloc(polls: &SeedPolls, st: &SwitchState, min_res: &Resources) -> Resources {
    let spare = st.spare();
    let mut res = *min_res;
    for k in ResourceKind::ALL {
        let extra = (spare.get(k) - min_res.get(k)).max(0.0);
        res.0[k.index()] += extra * 0.5;
    }
    if st.fits(polls, &res) {
        res
    } else {
        *min_res
    }
}

/// Step 3: re-solve one switch's resource split as an LP — maximize the
/// sum of (linearized, concave) seed utilities subject to the switch's
/// capacities and aggregated polling.
/// Above this many co-located seeds the per-switch LP's dense tableau
/// stops paying for itself; greedy minimum allocations are kept instead.
const LP_SEEDS_PER_SWITCH_CAP: usize = 150;

/// Per-worker arena for the per-switch LPs: one [`Problem`] reused
/// across every switch a worker claims, so the model's variable,
/// constraint and objective buffers are allocated once per worker per
/// solve instead of once per switch.
pub(crate) struct LpScratch {
    p: Problem,
}

impl LpScratch {
    pub(crate) fn new() -> LpScratch {
        LpScratch {
            p: Problem::new(Sense::Maximize),
        }
    }
}

/// Solves one switch's redistribution LP and returns the accepted
/// per-seed reallocations. Pure with respect to the shared solve state
/// (reads `assignment`, never writes — the scratch is an arena, not an
/// input), which is what lets step 3 fan the per-switch LPs out across
/// the worker pool and memoize outputs by input signature.
fn redistribute_switch(
    instance: &PlacementInstance,
    interned: &[Vec<(u32, Poly)>],
    _n: SwitchId,
    seeds_here: &[usize],
    st: &SwitchState,
    assignment: &[Option<(SwitchId, Resources)>],
    scratch: &mut LpScratch,
) -> Vec<(usize, Resources)> {
    if seeds_here.len() > LP_SEEDS_PER_SWITCH_CAP {
        return Vec::new();
    }
    // Capacity net of lingering reservations, reduced in ascending seed
    // order (bit-reproducible float accumulation).
    let lingering = st.lingering_sorted();
    let mut cap = st.ares;
    for (_, res) in &lingering {
        for k in ResourceKind::ALL {
            if k != ResourceKind::PciePoll {
                cap.0[k.index()] = (cap.get(k) - res.get(k)).max(0.0);
            }
        }
    }
    let lingering_poll: f64 = lingering
        .iter()
        .map(|(s, res)| {
            interned[*s]
                .iter()
                .map(|(_, demand)| demand.eval(res).max(0.0))
                .sum::<f64>()
        })
        .sum();
    let poll_cap = (st.ares.get(ResourceKind::PciePoll) - lingering_poll).max(0.0);

    scratch.p.reset(Sense::Maximize);
    let p = &mut scratch.p;
    let mut res_vars: FxHashMap<usize, Vec<farm_lp::Var>> = FxHashMap::default();
    let mut objective = LinExpr::new();
    for &s in seeds_here {
        let seed = &instance.seeds[s];
        let vars: Vec<farm_lp::Var> = ResourceKind::ALL
            .iter()
            .map(|k| p.add_var_unnamed(0.0, cap.get(*k)))
            .collect();
        let u = p.add_var_unnamed(0.0, 1e9);
        objective += LinExpr::from(u);
        let cur = assignment[s].as_ref().map(|(_, r)| *r).unwrap_or_default();
        let branch = seed
            .util
            .branches
            .iter()
            .find(|b| b.constraints.iter().all(|c| c.eval(&cur) >= -1e-9))
            .or_else(|| seed.util.branches.first());
        let Some(branch) = branch else { continue };
        for c in &branch.constraints {
            p.add_constraint(poly_expr(c, &vars), Cmp::Ge, 0.0);
        }
        for piece in utility_pieces(&branch.utility) {
            let e = poly_expr(&piece, &vars);
            p.add_constraint(LinExpr::from(u) - e, Cmp::Le, 0.0);
        }
        res_vars.insert(s, vars);
    }
    for k in ResourceKind::ALL {
        if k == ResourceKind::PciePoll {
            continue;
        }
        let mut total = LinExpr::new();
        for &s in seeds_here {
            if let Some(vars) = res_vars.get(&s) {
                total.add_term(vars[k.index()], 1.0);
            }
        }
        p.add_constraint(total, Cmp::Le, cap.get(k));
    }
    // Aggregated polling: pollres_p ≥ demand_s ∀ s; Σ pollres ≤ cap.
    let mut subjects: Vec<u32> = seeds_here
        .iter()
        .flat_map(|&s| interned[s].iter().map(|(subj, _)| *subj))
        .collect();
    subjects.sort_unstable();
    subjects.dedup();
    let mut poll_sum = LinExpr::new();
    let poll_vars: FxHashMap<u32, farm_lp::Var> = subjects
        .iter()
        .map(|&subj| {
            let v = p.add_var_unnamed(0.0, f64::INFINITY);
            poll_sum.add_term(v, 1.0);
            (subj, v)
        })
        .collect();
    for &s in seeds_here {
        let Some(vars) = res_vars.get(&s) else {
            continue;
        };
        for (subj, demand) in &interned[s] {
            let pv = poll_vars[subj];
            let demand = poly_expr(demand, vars);
            p.add_constraint(LinExpr::from(pv) - demand, Cmp::Ge, 0.0);
        }
    }
    p.add_constraint(poll_sum, Cmp::Le, poll_cap);
    p.set_objective(objective);

    let Ok(sol) = farm_lp::simplex::solve(p) else {
        return Vec::new(); // keep the greedy allocations
    };
    let mut updates = Vec::new();
    for &s in seeds_here {
        if let Some(vars) = res_vars.get(&s) {
            let mut r = Resources::ZERO;
            for k in ResourceKind::ALL {
                r.set(k, sol.value(vars[k.index()]).max(0.0));
            }
            if instance.seeds[s].util.eval(&r).is_some() {
                updates.push((s, r));
            }
        }
    }
    updates
}

/// Linear pieces of a utility expression. `min` trees are concave and
/// linearize exactly; a `max` is approximated by its upper envelope
/// (documented in DESIGN.md — no shipped Tab. I program uses `max`).
fn utility_pieces(e: &UtilExpr) -> Vec<Poly> {
    e.pieces()
}

fn poly_expr(poly: &Poly, vars: &[farm_lp::Var]) -> LinExpr {
    let mut e = LinExpr::constant_expr(poly.constant);
    for (i, c) in poly.coeffs.iter().enumerate() {
        if *c != 0.0 {
            e.add_term(vars[i], *c);
        }
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{validate, PlacementSeed, PlacementTask, PreviousPlacement};
    use farm_almanac::analysis::{UtilAnalysis, UtilBranch};

    #[test]
    fn parallel_threshold_gates_fan_out() {
        let opts = HeuristicOptions::with_threads(8);
        // Below the threshold a wide pool collapses to sequential …
        assert_eq!(effective_threads(&opts, 0), 1);
        assert_eq!(effective_threads(&opts, DEFAULT_PARALLEL_THRESHOLD - 1), 1);
        // … at and above it the requested width applies.
        assert_eq!(effective_threads(&opts, DEFAULT_PARALLEL_THRESHOLD), 8);
        assert_eq!(effective_threads(&opts, 100_000), 8);
        // threshold 0 forces the parallel path at any size.
        let forced = HeuristicOptions {
            parallel_threshold: 0,
            ..HeuristicOptions::with_threads(3)
        };
        assert_eq!(effective_threads(&forced, 1), 3);
        // threads 0 and 1 stay sequential everywhere.
        let seq = HeuristicOptions::with_threads(0);
        assert_eq!(effective_threads(&seq, 100_000), 1);
    }

    fn linear_util(min_vcpu: f64, cap: f64) -> UtilAnalysis {
        UtilAnalysis {
            branches: vec![UtilBranch {
                constraints: vec![Poly {
                    coeffs: [1.0, 0.0, 0.0, 0.0],
                    constant: -min_vcpu,
                }],
                utility: UtilExpr::Min(
                    Box::new(UtilExpr::Poly(Poly::var(ResourceKind::VCpu))),
                    Box::new(UtilExpr::Poly(Poly::constant(cap))),
                ),
            }],
        }
    }

    fn instance(n_switches: usize, seeds_per_task: usize, tasks: usize) -> PlacementInstance {
        let switches: Vec<(SwitchId, Resources)> = (0..n_switches)
            .map(|i| (SwitchId(i as u32), Resources::new(4.0, 8192.0, 64.0, 125.0)))
            .collect();
        let mut seeds = Vec::new();
        let mut task_list = Vec::new();
        for t in 0..tasks {
            let mut ids = Vec::new();
            for j in 0..seeds_per_task {
                let id = seeds.len();
                ids.push(id);
                let candidates: Vec<SwitchId> = (0..n_switches)
                    .filter(|i| (i + j) % 2 == 0 || n_switches == 1)
                    .map(|i| SwitchId(i as u32))
                    .collect();
                seeds.push(PlacementSeed {
                    id,
                    task: t,
                    candidates: if candidates.is_empty() {
                        vec![SwitchId(0)]
                    } else {
                        candidates
                    },
                    util: linear_util(1.0, 3.0),
                    polls: vec![crate::model::PollDemand {
                        subject: format!("task{t}-stats"),
                        demand: Poly {
                            coeffs: [0.0, 0.0, 0.0, 0.1],
                            constant: 1.0,
                        },
                    }],
                });
            }
            task_list.push(PlacementTask {
                name: format!("t{t}"),
                seeds: ids,
            });
        }
        PlacementInstance {
            switches,
            tasks: task_list,
            seeds,
            previous: None,
        }
    }

    #[test]
    fn heuristic_produces_feasible_placements() {
        // 4 tasks × 3 seeds: per task two seeds restricted to switches
        // {0,2} and one to {1,3}; 8 vCPU on {0,2} exactly hosts the 8
        // restricted seeds at their 1-vCPU minimum.
        let inst = instance(4, 3, 4);
        let r = solve_heuristic(&inst, HeuristicOptions::default());
        validate(&inst, &r).unwrap();
        assert_eq!(r.dropped_tasks, Vec::<usize>::new());
        assert_eq!(r.placed(), 12);
        assert!(r.utility > 0.0);
    }

    #[test]
    fn lp_redistribution_improves_utility() {
        let inst = instance(2, 2, 3);
        let without = solve_heuristic(
            &inst,
            HeuristicOptions {
                lp_redistribution: false,
                migration: false,
                ..HeuristicOptions::default()
            },
        );
        let with = solve_heuristic(
            &inst,
            HeuristicOptions {
                lp_redistribution: true,
                migration: false,
                ..HeuristicOptions::default()
            },
        );
        validate(&inst, &with).unwrap();
        assert!(
            with.utility > without.utility + 0.5,
            "LP should exploit spare capacity: {} vs {}",
            with.utility,
            without.utility
        );
    }

    #[test]
    fn capacity_pressure_drops_whole_tasks() {
        let mut inst = instance(1, 2, 3);
        inst.switches[0].1 = Resources::new(4.0, 8192.0, 64.0, 125.0);
        let r = solve_heuristic(&inst, HeuristicOptions::default());
        validate(&inst, &r).unwrap();
        assert!(!r.dropped_tasks.is_empty());
        assert_eq!(r.placed() % 2, 0, "no partially placed task");
    }

    #[test]
    fn sticky_placement_avoids_needless_migration() {
        let inst0 = instance(4, 3, 4);
        let r0 = solve_heuristic(&inst0, HeuristicOptions::default());
        validate(&inst0, &r0).unwrap();
        let mut inst1 = inst0.clone();
        let mut prev = PreviousPlacement::default();
        for (s, slot) in r0.assignment.iter().enumerate() {
            if let Some((n, res)) = slot {
                prev.assignment.insert(s, (*n, *res));
            }
        }
        inst1.previous = Some(prev);
        let r1 = solve_heuristic(&inst1, HeuristicOptions::default());
        validate(&inst1, &r1).unwrap();
        assert_eq!(r1.migrations, 0, "stable input must not migrate seeds");
        assert_eq!(r1.placed(), r0.placed());
    }

    #[test]
    fn migration_moves_seeds_to_freed_capacity() {
        // Previous placement crowds switch 0; switch 1 is empty and every
        // seed may use either switch. Re-optimization should migrate some
        // seeds toward the free capacity for higher utility.
        let mut inst = instance(2, 1, 4);
        for s in &mut inst.seeds {
            s.candidates = vec![SwitchId(0), SwitchId(1)];
        }
        let mut prev = PreviousPlacement::default();
        for s in 0..4 {
            prev.assignment
                .insert(s, (SwitchId(0), Resources::new(1.0, 0.0, 0.0, 0.0)));
        }
        inst.previous = Some(prev);
        let r = solve_heuristic(&inst, HeuristicOptions::default());
        validate(&inst, &r).unwrap();
        assert!(
            r.migrations > 0,
            "free capacity on switch 1 should attract migrations"
        );
        assert!(
            r.utility > 4.0,
            "migration should lift utility, got {}",
            r.utility
        );
    }

    #[test]
    fn aggregation_lets_shared_subjects_exceed_solo_capacity() {
        let mut inst = instance(1, 10, 1);
        inst.switches[0].1 = Resources::new(16.0, 8192.0, 64.0, 5.0);
        let r = solve_heuristic(&inst, HeuristicOptions::default());
        validate(&inst, &r).unwrap();
        assert_eq!(r.placed(), 10, "aggregation must allow co-location");
    }

    #[test]
    fn unknown_candidate_switches_are_skipped_not_panicked() {
        // After a switch crash the replan instance omits the dead switch,
        // but compiled candidate lists still name it. The solver must
        // ignore such candidates — including in the migration pass, where
        // the previous placement may also point at the dead switch.
        let mut inst = instance(2, 1, 2);
        for s in &mut inst.seeds {
            s.candidates = vec![SwitchId(7), SwitchId(1), SwitchId(0)];
        }
        let mut prev = PreviousPlacement::default();
        prev.assignment
            .insert(0, (SwitchId(7), Resources::new(1.0, 0.0, 0.0, 0.0)));
        inst.previous = Some(prev);
        let r = solve_heuristic(&inst, HeuristicOptions::default());
        validate(&inst, &r).unwrap();
        assert_eq!(r.placed(), 2, "surviving switches must host the seeds");
        for slot in r.assignment.iter().flatten() {
            assert_ne!(slot.0, SwitchId(7), "dead switch must never be chosen");
        }
    }

    #[test]
    fn infeasible_everywhere_drops_task_not_panics() {
        let mut inst = instance(1, 1, 1);
        inst.switches[0].1 = Resources::new(0.5, 1.0, 1.0, 1.0);
        let r = solve_heuristic(&inst, HeuristicOptions::default());
        assert_eq!(r.placed(), 0);
        assert_eq!(r.dropped_tasks, vec![0]);
        assert_eq!(r.utility, 0.0);
    }

    #[test]
    fn scales_to_thousands_of_seeds() {
        // A smoke-sized version of the Fig. 7 regime: the heuristic must
        // stay well under a second for ~2k seeds.
        let inst = instance(64, 8, 250); // 2000 seeds
        let start = std::time::Instant::now();
        let r = solve_heuristic(&inst, HeuristicOptions::default());
        let elapsed = start.elapsed();
        validate(&inst, &r).unwrap();
        assert!(r.placed() > 0);
        assert!(
            elapsed < std::time::Duration::from_secs(10),
            "heuristic too slow: {elapsed:?}"
        );
    }

    #[test]
    fn threaded_solve_is_bit_identical_to_sequential() {
        let inst = instance(16, 4, 24);
        let seq = solve_heuristic(&inst, HeuristicOptions::default());
        for threads in [2, 3, 8] {
            let par = solve_heuristic(&inst, HeuristicOptions::with_threads(threads));
            assert_eq!(par.assignment, seq.assignment, "threads={threads}");
            assert_eq!(par.utility.to_bits(), seq.utility.to_bits());
            assert_eq!(par.migrations, seq.migrations);
            assert_eq!(par.dropped_tasks, seq.dropped_tasks);
        }
    }

    #[test]
    fn incremental_poll_cache_matches_refold() {
        // Exercise add/remove cycles (including removing the max entry)
        // and cross-check the cached totals against a from-scratch fold.
        let inst = instance(1, 6, 2);
        let (_, interned) = SubjectInterner::for_instance(&inst);
        let mut st = SwitchState::new(Resources::new(64.0, 1e6, 1e3, 1e5));
        let allocs: Vec<Resources> = (0..inst.seeds.len())
            .map(|i| Resources::new(1.0, 10.0, 0.0, 10.0 * (i as f64 + 1.0)))
            .collect();
        for (i, r) in allocs.iter().enumerate() {
            st.add_usage(&interned[i], r);
        }
        // Remove the largest-demand seeds first so the cached max must be
        // rebuilt, then a middle one, then re-add.
        for &i in &[11usize, 10, 5] {
            st.remove_usage(&interned[i], &allocs[i]);
        }
        st.add_usage(&interned[5], &allocs[5]);
        let refold: f64 = st
            .poll
            .values()
            .map(|c| c.entries.iter().copied().fold(0.0, f64::max))
            .sum();
        assert!(
            (st.poll_total - refold).abs() < 1e-9,
            "cached {} vs refold {refold}",
            st.poll_total
        );
        for cell in st.poll.values() {
            let m = cell.entries.iter().copied().fold(0.0, f64::max);
            assert!((cell.max - m).abs() < 1e-12);
        }
    }
}
