//! Shared checkers for the placement property tests: independent
//! re-derivations of the paper's constraints (C1, C2, C4-with-C3
//! aggregation and migration double-occupancy), deliberately *not*
//! implemented via `model::validate` so a bug shared between the solver
//! and the validator cannot hide. Used by `prop_constraints.rs` (full
//! solves) and `prop_delta.rs` (incremental solves under churn).

use std::collections::HashMap;

use farm_netsim::switch::{ResourceKind, Resources};
use farm_netsim::types::SwitchId;
use farm_placement::model::{PlacementInstance, PreviousPlacement};

pub const EPS: f64 = 1e-6;

/// C1: every task is placed completely or not at all, and each placed
/// seed sits on one of its own candidates.
pub fn check_c1(
    inst: &PlacementInstance,
    assignment: &[Option<(SwitchId, Resources)>],
) -> Result<(), String> {
    for task in &inst.tasks {
        let placed = task
            .seeds
            .iter()
            .filter(|&&s| assignment[s].is_some())
            .count();
        if placed != 0 && placed != task.seeds.len() {
            return Err(format!(
                "task `{}` placed {placed}/{} seeds",
                task.name,
                task.seeds.len()
            ));
        }
    }
    for (s, slot) in assignment.iter().enumerate() {
        if let Some((n, _)) = slot {
            if !inst.seeds[s].candidates.contains(n) {
                return Err(format!("seed {s} on non-candidate switch {n}"));
            }
        }
    }
    Ok(())
}

/// C2: each placed seed's allocation is non-negative and inside at least
/// one utility-branch domain.
pub fn check_c2(
    inst: &PlacementInstance,
    assignment: &[Option<(SwitchId, Resources)>],
) -> Result<(), String> {
    for (s, slot) in assignment.iter().enumerate() {
        if let Some((_, res)) = slot {
            if res.0.iter().any(|&r| r < -EPS) {
                return Err(format!("seed {s} negative allocation {res}"));
            }
            if inst.seeds[s].util.eval(res).is_none() {
                return Err(format!(
                    "seed {s} allocation {res} satisfies no util branch"
                ));
            }
        }
    }
    Ok(())
}

/// C4 (with C3's aggregation): per switch, plain resources sum within
/// capacity and per-subject poll demand aggregates by max, counting the
/// lingering source-side allocation of every migrating seed.
pub fn check_capacity(
    inst: &PlacementInstance,
    assignment: &[Option<(SwitchId, Resources)>],
) -> Result<(), String> {
    for (n, ares) in &inst.switches {
        let mut plain = [0f64; 4];
        let mut polls: HashMap<&str, f64> = HashMap::new();
        let mut charge = |seed: usize, res: &Resources| {
            for k in ResourceKind::ALL {
                if k != ResourceKind::PciePoll {
                    plain[k.index()] += res.get(k);
                }
            }
            for p in &inst.seeds[seed].polls {
                let d = p.demand.eval(res).max(0.0);
                let e = polls.entry(p.subject.as_str()).or_insert(0.0);
                *e = e.max(d);
            }
        };
        for (s, slot) in assignment.iter().enumerate() {
            if let Some((sn, res)) = slot {
                if sn == n {
                    charge(s, res);
                }
            }
            if let Some(prev) = &inst.previous {
                if let Some((old_n, old_res)) = prev.assignment.get(&s) {
                    let moved_away =
                        old_n == n && matches!(&assignment[s], Some((new_n, _)) if new_n != n);
                    if moved_away {
                        // Double occupancy: the old seat stays charged
                        // while state transfers.
                        charge(s, old_res);
                    }
                }
            }
        }
        for k in ResourceKind::ALL {
            if k == ResourceKind::PciePoll {
                continue;
            }
            if plain[k.index()] > ares.get(k) + EPS {
                return Err(format!(
                    "switch {n} over {k}: {} > {}",
                    plain[k.index()],
                    ares.get(k)
                ));
            }
        }
        let poll_total: f64 = polls.values().sum();
        if poll_total > ares.get(ResourceKind::PciePoll) + EPS {
            return Err(format!(
                "switch {n} over poll capacity: {poll_total} > {}",
                ares.get(ResourceKind::PciePoll)
            ));
        }
    }
    Ok(())
}

pub fn check_all(
    inst: &PlacementInstance,
    assignment: &[Option<(SwitchId, Resources)>],
) -> Result<(), String> {
    check_c1(inst, assignment)?;
    check_c2(inst, assignment)?;
    check_capacity(inst, assignment)
}

/// Turns a result into the `previous` input of the next round.
pub fn as_previous(assignment: &[Option<(SwitchId, Resources)>]) -> PreviousPlacement {
    let mut prev = PreviousPlacement::default();
    for (s, slot) in assignment.iter().enumerate() {
        if let Some((n, res)) = slot {
            prev.assignment.insert(s, (*n, *res));
        }
    }
    prev
}
