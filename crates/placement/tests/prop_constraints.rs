//! Independent re-derivation of the paper's placement constraints.
//!
//! `prop_placement.rs` trusts `model::validate`; these properties do
//! not. Each constraint — C1 all-or-nothing and candidate membership,
//! C2 utility-domain feasibility, C4 capacity with poll aggregation and
//! migration double-occupancy — is recomputed here from scratch, so a
//! bug shared between the heuristic and the validator cannot hide.

use std::collections::HashMap;

use farm_netsim::switch::{ResourceKind, Resources};
use farm_netsim::types::SwitchId;
use farm_placement::heuristic::{solve_heuristic, HeuristicOptions};
use farm_placement::model::{PlacementInstance, PreviousPlacement};
use farm_placement::workload::{generate, WorkloadConfig};
use proptest::prelude::*;

const EPS: f64 = 1e-6;

fn workload() -> impl Strategy<Value = WorkloadConfig> {
    (2usize..20, 1usize..5, 3usize..80, 0u64..10_000, 0.0f64..0.9).prop_map(
        |(n_switches, n_tasks, n_seeds, rng_seed, pinned_fraction)| WorkloadConfig {
            n_switches,
            n_tasks,
            n_seeds,
            candidates_per_seed: 3,
            pinned_fraction,
            rng_seed,
        },
    )
}

/// C1: every task is placed completely or not at all, and each placed
/// seed sits on one of its own candidates.
fn check_c1(
    inst: &PlacementInstance,
    assignment: &[Option<(SwitchId, Resources)>],
) -> Result<(), String> {
    for task in &inst.tasks {
        let placed = task
            .seeds
            .iter()
            .filter(|&&s| assignment[s].is_some())
            .count();
        if placed != 0 && placed != task.seeds.len() {
            return Err(format!(
                "task `{}` placed {placed}/{} seeds",
                task.name,
                task.seeds.len()
            ));
        }
    }
    for (s, slot) in assignment.iter().enumerate() {
        if let Some((n, _)) = slot {
            if !inst.seeds[s].candidates.contains(n) {
                return Err(format!("seed {s} on non-candidate switch {n}"));
            }
        }
    }
    Ok(())
}

/// C2: each placed seed's allocation is non-negative and inside at least
/// one utility-branch domain.
fn check_c2(
    inst: &PlacementInstance,
    assignment: &[Option<(SwitchId, Resources)>],
) -> Result<(), String> {
    for (s, slot) in assignment.iter().enumerate() {
        if let Some((_, res)) = slot {
            if res.0.iter().any(|&r| r < -EPS) {
                return Err(format!("seed {s} negative allocation {res}"));
            }
            if inst.seeds[s].util.eval(res).is_none() {
                return Err(format!(
                    "seed {s} allocation {res} satisfies no util branch"
                ));
            }
        }
    }
    Ok(())
}

/// C4 (with C3's aggregation): per switch, plain resources sum within
/// capacity and per-subject poll demand aggregates by max, counting the
/// lingering source-side allocation of every migrating seed.
fn check_capacity(
    inst: &PlacementInstance,
    assignment: &[Option<(SwitchId, Resources)>],
) -> Result<(), String> {
    for (n, ares) in &inst.switches {
        let mut plain = [0f64; 4];
        let mut polls: HashMap<&str, f64> = HashMap::new();
        let mut charge = |seed: usize, res: &Resources| {
            for k in ResourceKind::ALL {
                if k != ResourceKind::PciePoll {
                    plain[k.index()] += res.get(k);
                }
            }
            for p in &inst.seeds[seed].polls {
                let d = p.demand.eval(res).max(0.0);
                let e = polls.entry(p.subject.as_str()).or_insert(0.0);
                *e = e.max(d);
            }
        };
        for (s, slot) in assignment.iter().enumerate() {
            if let Some((sn, res)) = slot {
                if sn == n {
                    charge(s, res);
                }
            }
            if let Some(prev) = &inst.previous {
                if let Some((old_n, old_res)) = prev.assignment.get(&s) {
                    let moved_away =
                        old_n == n && matches!(&assignment[s], Some((new_n, _)) if new_n != n);
                    if moved_away {
                        // Double occupancy: the old seat stays charged
                        // while state transfers.
                        charge(s, old_res);
                    }
                }
            }
        }
        for k in ResourceKind::ALL {
            if k == ResourceKind::PciePoll {
                continue;
            }
            if plain[k.index()] > ares.get(k) + EPS {
                return Err(format!(
                    "switch {n} over {k}: {} > {}",
                    plain[k.index()],
                    ares.get(k)
                ));
            }
        }
        let poll_total: f64 = polls.values().sum();
        if poll_total > ares.get(ResourceKind::PciePoll) + EPS {
            return Err(format!(
                "switch {n} over poll capacity: {poll_total} > {}",
                ares.get(ResourceKind::PciePoll)
            ));
        }
    }
    Ok(())
}

fn check_all(
    inst: &PlacementInstance,
    assignment: &[Option<(SwitchId, Resources)>],
) -> Result<(), String> {
    check_c1(inst, assignment)?;
    check_c2(inst, assignment)?;
    check_capacity(inst, assignment)
}

/// Turns a result into the `previous` input of the next round.
fn as_previous(assignment: &[Option<(SwitchId, Resources)>]) -> PreviousPlacement {
    let mut prev = PreviousPlacement::default();
    for (s, slot) in assignment.iter().enumerate() {
        if let Some((n, res)) = slot {
            prev.assignment.insert(s, (*n, *res));
        }
    }
    prev
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The full heuristic never violates any independently-checked
    /// constraint on arbitrary instances.
    #[test]
    fn heuristic_respects_all_constraints(cfg in workload()) {
        let inst = generate(&cfg);
        let r = solve_heuristic(&inst, HeuristicOptions::default());
        prop_assert!(check_all(&inst, &r.assignment).is_ok(),
            "{:?}", check_all(&inst, &r.assignment));
    }

    /// Every ablation (greedy only, greedy+LP) is also constraint-clean —
    /// the LP redistribution must not push any switch over capacity.
    #[test]
    fn ablations_respect_all_constraints(cfg in workload()) {
        let inst = generate(&cfg);
        for (lp, mig) in [(false, false), (true, false)] {
            let r = solve_heuristic(
                &inst,
                HeuristicOptions { lp_redistribution: lp, migration: mig, ..HeuristicOptions::default() },
            );
            prop_assert!(check_all(&inst, &r.assignment).is_ok(),
                "lp={lp} mig={mig}: {:?}", check_all(&inst, &r.assignment));
        }
    }

    /// Chained re-optimization: each round feeds the next as its previous
    /// placement, and every round honors double-occupancy against that
    /// previous — the lingering source-side seats never overflow.
    #[test]
    fn chained_replans_respect_double_occupancy(cfg in workload()) {
        let mut inst = generate(&cfg);
        let mut r = solve_heuristic(&inst, HeuristicOptions::default());
        prop_assert!(check_all(&inst, &r.assignment).is_ok());
        for round in 0..3 {
            inst.previous = Some(as_previous(&r.assignment));
            r = solve_heuristic(&inst, HeuristicOptions::default());
            prop_assert!(check_all(&inst, &r.assignment).is_ok(),
                "round {round}: {:?}", check_all(&inst, &r.assignment));
        }
    }

    /// Dropped tasks are really dropped: no seed of a dropped task holds
    /// an assignment slot.
    #[test]
    fn dropped_tasks_hold_no_seats(cfg in workload()) {
        let inst = generate(&cfg);
        let r = solve_heuristic(&inst, HeuristicOptions::default());
        for &t in &r.dropped_tasks {
            for &s in &inst.tasks[t].seeds {
                prop_assert!(r.assignment[s].is_none(),
                    "dropped task {t} still owns seed {s}");
            }
        }
    }
}
