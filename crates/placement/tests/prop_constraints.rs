//! Independent re-derivation of the paper's placement constraints.
//!
//! `prop_placement.rs` trusts `model::validate`; these properties do
//! not. Each constraint — C1 all-or-nothing and candidate membership,
//! C2 utility-domain feasibility, C4 capacity with poll aggregation and
//! migration double-occupancy — is recomputed in `util` from scratch,
//! so a bug shared between the heuristic and the validator cannot hide.

mod util;

use farm_placement::heuristic::{solve_heuristic, HeuristicOptions};
use farm_placement::workload::{generate, WorkloadConfig};
use proptest::prelude::*;
use util::{as_previous, check_all};

fn workload() -> impl Strategy<Value = WorkloadConfig> {
    (2usize..20, 1usize..5, 3usize..80, 0u64..10_000, 0.0f64..0.9).prop_map(
        |(n_switches, n_tasks, n_seeds, rng_seed, pinned_fraction)| WorkloadConfig {
            n_switches,
            n_tasks,
            n_seeds,
            candidates_per_seed: 3,
            pinned_fraction,
            rng_seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The full heuristic never violates any independently-checked
    /// constraint on arbitrary instances.
    #[test]
    fn heuristic_respects_all_constraints(cfg in workload()) {
        let inst = generate(&cfg);
        let r = solve_heuristic(&inst, HeuristicOptions::default());
        prop_assert!(check_all(&inst, &r.assignment).is_ok(),
            "{:?}", check_all(&inst, &r.assignment));
    }

    /// Every ablation (greedy only, greedy+LP) is also constraint-clean —
    /// the LP redistribution must not push any switch over capacity.
    #[test]
    fn ablations_respect_all_constraints(cfg in workload()) {
        let inst = generate(&cfg);
        for (lp, mig) in [(false, false), (true, false)] {
            let r = solve_heuristic(
                &inst,
                HeuristicOptions { lp_redistribution: lp, migration: mig, ..HeuristicOptions::default() },
            );
            prop_assert!(check_all(&inst, &r.assignment).is_ok(),
                "lp={lp} mig={mig}: {:?}", check_all(&inst, &r.assignment));
        }
    }

    /// Chained re-optimization: each round feeds the next as its previous
    /// placement, and every round honors double-occupancy against that
    /// previous — the lingering source-side seats never overflow.
    #[test]
    fn chained_replans_respect_double_occupancy(cfg in workload()) {
        let mut inst = generate(&cfg);
        let mut r = solve_heuristic(&inst, HeuristicOptions::default());
        prop_assert!(check_all(&inst, &r.assignment).is_ok());
        for round in 0..3 {
            inst.previous = Some(as_previous(&r.assignment));
            r = solve_heuristic(&inst, HeuristicOptions::default());
            prop_assert!(check_all(&inst, &r.assignment).is_ok(),
                "round {round}: {:?}", check_all(&inst, &r.assignment));
        }
    }

    /// Dropped tasks are really dropped: no seed of a dropped task holds
    /// an assignment slot.
    #[test]
    fn dropped_tasks_hold_no_seats(cfg in workload()) {
        let inst = generate(&cfg);
        let r = solve_heuristic(&inst, HeuristicOptions::default());
        for &t in &r.dropped_tasks {
            for &s in &inst.tasks[t].seeds {
                prop_assert!(r.assignment[s].is_none(),
                    "dropped task {t} still owns seed {s}");
            }
        }
    }
}
