//! `replan_delta` equivalence under churn: for random instances and
//! random single-event churn sequences (fault eviction, drain, cordon
//! lift, fresh submission, capacity degradation, definition tweaks),
//! the incremental solve through a retained [`SolveState`] must produce
//! a placement **bit-identical** to a from-scratch `solve_heuristic` on
//! the same instance — same assignment, same utility bits, same
//! migration count, same dropped tasks — and satisfy the independently
//! re-derived C1–C4 checkers from `util`.
//!
//! Degrade and Submit deliberately pass an *empty* [`ReplanDelta`]: the
//! bit-exact LP signatures must catch capacity and residency changes on
//! their own. Tweak mutates a seed's polling *definition*, which the
//! signature cannot see — that is exactly the case the `dirty_seeds`
//! contract exists for, so it declares the seed dirty.

mod util;

use farm_netsim::types::SwitchId;
use farm_placement::delta::{replan_delta, ReplanDelta, SolveState};
use farm_placement::heuristic::{solve_heuristic, HeuristicOptions};
use farm_placement::model::PlacementInstance;
use farm_placement::workload::{generate, WorkloadConfig};
use proptest::prelude::*;
use util::{as_previous, check_all};

fn workload() -> impl Strategy<Value = WorkloadConfig> {
    (3usize..12, 1usize..4, 3usize..40, 0u64..10_000, 0.0f64..0.6).prop_map(
        |(n_switches, n_tasks, n_seeds, rng_seed, pinned_fraction)| WorkloadConfig {
            n_switches,
            n_tasks,
            n_seeds,
            candidates_per_seed: 3,
            pinned_fraction,
            rng_seed,
        },
    )
}

/// One churn event. Indices are taken modulo the relevant population at
/// apply time, so any `usize` is valid.
#[derive(Debug, Clone, Copy)]
enum Churn {
    /// Fault eviction: the switch leaves the instance and its previous
    /// placements are forgotten (the seeds were lost with it).
    Evict(usize),
    /// Drain: the switch leaves the instance but previous placements
    /// still name it (the seeds are alive and must move).
    Drain(usize),
    /// Cordon lift: a previously removed switch returns at its original
    /// capacity.
    Restore(usize),
    /// Fresh submission: one seed loses its previous placement and is
    /// placed as if newly submitted. Empty delta — residency changes
    /// must be caught by the LP signatures alone.
    Submit(usize),
    /// Capacity degradation: a switch loses 10 % vCPU. Empty delta —
    /// the `ares` bits in the signature must catch it.
    Degrade(usize),
    /// Definition change: a seed's polling demand is re-registered with
    /// a different constant. Invisible to the signatures, so the seed
    /// is declared dirty.
    Tweak(usize),
}

fn churn_event() -> impl Strategy<Value = Churn> {
    (0usize..6, any::<usize>()).prop_map(|(kind, i)| match kind {
        0 => Churn::Evict(i),
        1 => Churn::Drain(i),
        2 => Churn::Restore(i),
        3 => Churn::Submit(i),
        4 => Churn::Degrade(i),
        _ => Churn::Tweak(i),
    })
}

/// Applies one event to the instance, returning what the caller would
/// declare dirty. Events that cannot apply (last switch, no polls, …)
/// degrade to a no-op with an empty delta — still a valid replan.
fn apply(inst: &mut PlacementInstance, base: &PlacementInstance, ev: Churn) -> ReplanDelta {
    match ev {
        Churn::Evict(i) | Churn::Drain(i) => {
            if inst.switches.len() <= 1 {
                return ReplanDelta::default();
            }
            let idx = i % inst.switches.len();
            let (victim, _) = inst.switches.remove(idx);
            if matches!(ev, Churn::Evict(_)) {
                if let Some(prev) = &mut inst.previous {
                    prev.assignment.retain(|_, (n, _)| *n != victim);
                }
            }
            ReplanDelta::switches([victim])
        }
        Churn::Restore(i) => {
            let present: Vec<SwitchId> = inst.switches.iter().map(|(n, _)| *n).collect();
            let missing: Vec<&(SwitchId, _)> = base
                .switches
                .iter()
                .filter(|(n, _)| !present.contains(n))
                .collect();
            if missing.is_empty() {
                return ReplanDelta::default();
            }
            let (n, ares) = *missing[i % missing.len()];
            inst.switches.push((n, ares));
            ReplanDelta::switches([n])
        }
        Churn::Submit(i) => {
            if inst.seeds.is_empty() {
                return ReplanDelta::default();
            }
            let s = i % inst.seeds.len();
            if let Some(prev) = &mut inst.previous {
                prev.assignment.remove(&s);
            }
            ReplanDelta::default()
        }
        Churn::Degrade(i) => {
            if inst.switches.is_empty() {
                return ReplanDelta::default();
            }
            let idx = i % inst.switches.len();
            inst.switches[idx].1 .0[0] *= 0.9;
            ReplanDelta::default()
        }
        Churn::Tweak(i) => {
            if inst.seeds.is_empty() {
                return ReplanDelta::default();
            }
            let s = i % inst.seeds.len();
            let Some(p) = inst.seeds[s].polls.first_mut() else {
                return ReplanDelta::default();
            };
            p.demand.constant += 0.1;
            ReplanDelta::seeds([s])
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Churn replay: every incremental solve along a random event
    /// sequence is bit-identical to a from-scratch solve and satisfies
    /// the independent constraint checkers.
    #[test]
    fn delta_replans_match_full_solves_under_churn(
        cfg in workload(),
        events in proptest::collection::vec(churn_event(), 1..6),
    ) {
        let base = generate(&cfg);
        let mut inst = base.clone();
        let opts = HeuristicOptions::default();
        let mut state = SolveState::new();
        let (mut r, report) =
            replan_delta(&inst, opts, &mut state, &ReplanDelta::default(), None);
        prop_assert!(!report.warm);
        for (step, &ev) in events.iter().enumerate() {
            inst.previous = Some(as_previous(&r.assignment));
            let delta = apply(&mut inst, &base, ev);
            let (dr, report) = replan_delta(&inst, opts, &mut state, &delta, None);
            let full = solve_heuristic(&inst, opts);
            prop_assert_eq!(&dr.assignment, &full.assignment,
                "step {} ({:?}): assignments diverge", step, ev);
            prop_assert_eq!(dr.utility.to_bits(), full.utility.to_bits(),
                "step {} ({:?}): utility {} vs {}", step, ev, dr.utility, full.utility);
            prop_assert_eq!(dr.migrations, full.migrations, "step {} ({:?})", step, ev);
            prop_assert_eq!(&dr.dropped_tasks, &full.dropped_tasks, "step {} ({:?})", step, ev);
            prop_assert!(report.warm);
            prop_assert!(check_all(&inst, &dr.assignment).is_ok(),
                "step {} ({:?}): {:?}", step, ev, check_all(&inst, &dr.assignment));
            r = dr;
        }
    }

    /// The fallback path is equivalence-preserving too: with a zero
    /// frontier budget every warm solve with any miss degrades to a
    /// full recompute and must still match the from-scratch result.
    #[test]
    fn zero_frontier_budget_always_matches(
        cfg in workload(),
        events in proptest::collection::vec(churn_event(), 1..4),
    ) {
        let base = generate(&cfg);
        let mut inst = base.clone();
        let opts = HeuristicOptions::default();
        let mut state = SolveState::new();
        state.frontier_limit_pct = 0;
        let (mut r, _) = replan_delta(&inst, opts, &mut state, &ReplanDelta::default(), None);
        for &ev in &events {
            inst.previous = Some(as_previous(&r.assignment));
            let delta = apply(&mut inst, &base, ev);
            let (dr, _) = replan_delta(&inst, opts, &mut state, &delta, None);
            let full = solve_heuristic(&inst, opts);
            prop_assert_eq!(&dr.assignment, &full.assignment);
            prop_assert_eq!(dr.utility.to_bits(), full.utility.to_bits());
            r = dr;
        }
    }
}
