//! Property-based validation of the placement solvers: every solver must
//! produce assignments satisfying the paper's constraints (C1)–(C4) on
//! arbitrary generated instances, and the documented dominance relations
//! must hold.

use farm_placement::heuristic::{solve_heuristic, solve_randomized, HeuristicOptions};
use farm_placement::model::{validate, PreviousPlacement};
use farm_placement::workload::{generate, WorkloadConfig};
use proptest::prelude::*;

fn workload() -> impl Strategy<Value = WorkloadConfig> {
    (2usize..24, 1usize..6, 4usize..120, 0u64..1000, 0.0f64..0.9).prop_map(
        |(n_switches, n_tasks, n_seeds, rng_seed, pinned_fraction)| WorkloadConfig {
            n_switches,
            n_tasks,
            n_seeds,
            candidates_per_seed: 3,
            pinned_fraction,
            rng_seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Alg. 1 always produces a C1–C4-feasible placement.
    #[test]
    fn heuristic_always_feasible(cfg in workload()) {
        let inst = generate(&cfg);
        let r = solve_heuristic(&inst, HeuristicOptions::default());
        prop_assert!(validate(&inst, &r).is_ok(), "{:?}", validate(&inst, &r));
        // Utility equals the sum over placed seeds of their util at the
        // assigned allocation (MU definition).
        let recomputed = farm_placement::model::utility_of(&inst, &r.assignment);
        prop_assert!((recomputed - r.utility).abs() < 1e-6);
    }

    /// Every ablation variant is also feasible, and the LP step never
    /// reduces utility.
    #[test]
    fn ablations_feasible_and_lp_monotone(cfg in workload()) {
        let inst = generate(&cfg);
        let greedy = solve_heuristic(
            &inst,
            HeuristicOptions { lp_redistribution: false, migration: false, ..HeuristicOptions::default() },
        );
        let with_lp = solve_heuristic(
            &inst,
            HeuristicOptions { lp_redistribution: true, migration: false, ..HeuristicOptions::default() },
        );
        prop_assert!(validate(&inst, &greedy).is_ok());
        prop_assert!(validate(&inst, &with_lp).is_ok());
        prop_assert!(
            with_lp.utility >= greedy.utility - 1e-6,
            "LP made things worse: {} < {}",
            with_lp.utility,
            greedy.utility
        );
    }

    /// The generic randomized construction (the MILP fallback's primal
    /// heuristic) is feasible with and without the LP polish, and the
    /// polish never reduces utility.
    #[test]
    fn randomized_construction_feasible(cfg in workload(), seed in 0u64..100) {
        let inst = generate(&cfg);
        let raw = solve_randomized(&inst, seed, false);
        let polished = solve_randomized(&inst, seed, true);
        prop_assert!(validate(&inst, &raw).is_ok(), "{:?}", validate(&inst, &raw));
        prop_assert!(validate(&inst, &polished).is_ok(), "{:?}", validate(&inst, &polished));
        prop_assert!(polished.utility >= raw.utility - 1e-6);
    }

    /// Re-optimizing against a previous placement stays feasible under the
    /// migration double-occupancy accounting, never loses utility, and any
    /// migration it performs must strictly pay (no gratuitous churn in an
    /// unchanged world).
    #[test]
    fn reoptimization_feasible_and_stable(cfg in workload()) {
        let inst0 = generate(&cfg);
        let first = solve_heuristic(&inst0, HeuristicOptions::default());
        let mut prev = PreviousPlacement::default();
        for (s, slot) in first.assignment.iter().enumerate() {
            if let Some((n, res)) = slot {
                prev.assignment.insert(s, (*n, *res));
            }
        }
        let mut inst1 = inst0.clone();
        inst1.previous = Some(prev);
        let second = solve_heuristic(&inst1, HeuristicOptions::default());
        prop_assert!(validate(&inst1, &second).is_ok(), "{:?}", validate(&inst1, &second));
        prop_assert!(second.placed() >= first.placed());
        prop_assert!(
            second.utility >= first.utility - 1e-6,
            "re-optimization lost utility: {} -> {}",
            first.utility,
            second.utility
        );
        if second.migrations > 0 {
            prop_assert!(
                second.utility > first.utility + 1e-9,
                "migrations without utility gain: {} -> {} ({} moves)",
                first.utility,
                second.utility,
                second.migrations
            );
        }
    }

    /// Dropped tasks really are all-or-nothing, and only infeasibility (or
    /// capacity) justifies a drop: on generously provisioned instances
    /// nothing is dropped.
    #[test]
    fn generous_capacity_places_everything(seed in 0u64..500) {
        let cfg = WorkloadConfig {
            n_switches: 32,
            n_tasks: 4,
            n_seeds: 40, // ≈ 1.25 seeds/switch: ample capacity
            candidates_per_seed: 4,
            pinned_fraction: 0.0,
            rng_seed: seed,
        };
        let inst = generate(&cfg);
        let r = solve_heuristic(&inst, HeuristicOptions::default());
        prop_assert!(validate(&inst, &r).is_ok());
        prop_assert_eq!(r.placed(), 40, "dropped: {:?}", r.dropped_tasks);
    }
}
