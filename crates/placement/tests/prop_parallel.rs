//! Determinism guarantee of the parallel solver: for any instance and
//! any worker-pool width, `solve(threads = N)` must be *bit-identical*
//! to `solve(threads = 1)` — same assignments, same objective bits,
//! same migration count, same dropped tasks. The parallel phases only
//! fan out read-only work and merge in stable switch/seed order, so
//! this is an exact equality, not an epsilon comparison.

use farm_placement::heuristic::{solve_heuristic, HeuristicOptions};
use farm_placement::model::{validate, PreviousPlacement};
use farm_placement::workload::{generate, WorkloadConfig};
use proptest::prelude::*;

fn workload() -> impl Strategy<Value = WorkloadConfig> {
    (2usize..24, 1usize..6, 4usize..120, 0u64..1000, 0.0f64..0.9).prop_map(
        |(n_switches, n_tasks, n_seeds, rng_seed, pinned_fraction)| WorkloadConfig {
            n_switches,
            n_tasks,
            n_seeds,
            candidates_per_seed: 3,
            pinned_fraction,
            rng_seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// threads=N ≡ threads=1 on fresh instances. `parallel_threshold: 0`
    /// forces the fan-out even on these small workloads — the default
    /// threshold would (correctly) collapse them to sequential, which
    /// is exactly the path this test must NOT take.
    #[test]
    fn parallel_solve_is_bit_identical(cfg in workload(), threads in 2usize..9) {
        let inst = generate(&cfg);
        let seq = solve_heuristic(&inst, HeuristicOptions::default());
        let par = solve_heuristic(&inst, HeuristicOptions {
            threads,
            parallel_threshold: 0,
            ..HeuristicOptions::default()
        });
        prop_assert_eq!(&par.assignment, &seq.assignment);
        prop_assert_eq!(par.utility.to_bits(), seq.utility.to_bits());
        prop_assert_eq!(par.migrations, seq.migrations);
        prop_assert_eq!(&par.dropped_tasks, &seq.dropped_tasks);
    }

    /// threads=N ≡ threads=1 across a re-optimization round, where the
    /// migration pass (with its parallel benefit scan) actually runs
    /// against lingering previous allocations.
    #[test]
    fn parallel_reoptimization_is_bit_identical(cfg in workload(), threads in 2usize..9) {
        let inst0 = generate(&cfg);
        let r0 = solve_heuristic(&inst0, HeuristicOptions::default());
        let mut inst1 = inst0.clone();
        let mut prev = PreviousPlacement::default();
        for (s, slot) in r0.assignment.iter().enumerate() {
            if let Some((n, res)) = slot {
                prev.assignment.insert(s, (*n, *res));
            }
        }
        inst1.previous = Some(prev);
        let seq = solve_heuristic(&inst1, HeuristicOptions::default());
        let par = solve_heuristic(&inst1, HeuristicOptions {
            threads,
            parallel_threshold: 0,
            ..HeuristicOptions::default()
        });
        prop_assert!(validate(&inst1, &par).is_ok());
        prop_assert_eq!(&par.assignment, &seq.assignment);
        prop_assert_eq!(par.utility.to_bits(), seq.utility.to_bits());
        prop_assert_eq!(par.migrations, seq.migrations);
        prop_assert_eq!(&par.dropped_tasks, &seq.dropped_tasks);
    }

    /// Repeated sequential solves of the same instance are themselves
    /// bit-identical (no HashMap-iteration-order leakage into floats).
    #[test]
    fn repeated_solves_are_reproducible(cfg in workload()) {
        let inst = generate(&cfg);
        let a = solve_heuristic(&inst, HeuristicOptions::default());
        let b = solve_heuristic(&inst, HeuristicOptions::default());
        prop_assert_eq!(&a.assignment, &b.assignment);
        prop_assert_eq!(a.utility.to_bits(), b.utility.to_bits());
    }
}

/// Regression guard for the incremental engine: a 10k-seed paper-scale
/// instance must solve comfortably inside a CI debug-build budget. The
/// pre-incremental engine refolded every subject multiset per `fits()`
/// probe, which blows this budget by an order of magnitude at 10k seeds.
#[test]
fn ten_thousand_seeds_within_ci_budget() {
    let inst = generate(&WorkloadConfig {
        n_switches: 1040,
        n_tasks: 10,
        n_seeds: 10_200,
        ..WorkloadConfig::default()
    });
    let start = std::time::Instant::now();
    let r = solve_heuristic(&inst, HeuristicOptions::default());
    let elapsed = start.elapsed();
    validate(&inst, &r).expect("paper-scale placement must be feasible");
    assert_eq!(
        r.placed(),
        10_200,
        "workload is sized to be fully placeable"
    );
    assert!(
        elapsed < std::time::Duration::from_secs(30),
        "10k-seed solve blew the CI budget: {elapsed:?}"
    );
}
