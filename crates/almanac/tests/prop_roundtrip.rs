//! Property-based round-trip tests: generated machines survive
//! print → parse → print unchanged, and the XML interchange format
//! preserves canonical source.

use farm_almanac::ast::*;
use farm_almanac::error::Span;
use farm_almanac::parser::parse;
use farm_almanac::printer::{machine_to_source, program_to_source};
use farm_almanac::xml::{machine_from_xml, machine_to_xml};
use proptest::prelude::*;

fn sp() -> Span {
    Span::default()
}

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_filter("avoid keywords", |s| {
        ![
            "machine",
            "state",
            "when",
            "do",
            "if",
            "then",
            "else",
            "while",
            "return",
            "send",
            "to",
            "transit",
            "place",
            "all",
            "any",
            "range",
            "recv",
            "from",
            "as",
            "enter",
            "exit",
            "realloc",
            "external",
            "fun",
            "and",
            "or",
            "not",
            "true",
            "false",
            "util",
            "extends",
            "bool",
            "int",
            "long",
            "float",
            "string",
            "list",
            "packet",
            "action",
            "filter",
            "rule",
            "time",
            "poll",
            "probe",
            "port",
            "proto",
            "sender",
            "receiver",
            "midpoint",
            "resources",
            "stat",
        ]
        .contains(&s.as_str())
    })
}

fn literal() -> impl Strategy<Value = Expr> {
    prop_oneof![
        any::<i32>().prop_map(|i| Expr::Lit(Literal::Int(i as i64), sp())),
        any::<bool>().prop_map(|b| Expr::Lit(Literal::Bool(b), sp())),
        (1u32..100_000).prop_map(|n| Expr::Lit(Literal::Float(n as f64 / 64.0), sp())),
        "[a-z0-9./]{0,8}".prop_map(|s| Expr::Lit(Literal::Str(s), sp())),
    ]
}

fn expr(depth: u32) -> BoxedStrategy<Expr> {
    if depth == 0 {
        prop_oneof![literal(), ident().prop_map(|n| Expr::Var(n, sp()))].boxed()
    } else {
        let leaf = expr(depth - 1);
        prop_oneof![
            literal(),
            ident().prop_map(|n| Expr::Var(n, sp())),
            (leaf.clone(), leaf.clone(), bin_op()).prop_map(|(a, b, op)| Expr::Binary(
                op,
                Box::new(a),
                Box::new(b),
                sp()
            )),
            leaf.clone()
                .prop_map(|e| Expr::Unary(UnOp::Not, Box::new(e), sp())),
            (ident(), proptest::collection::vec(leaf.clone(), 0..3)).prop_map(|(name, args)| {
                Expr::Call {
                    name,
                    args,
                    span: sp(),
                }
            }),
        ]
        .boxed()
    }
}

fn bin_op() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Cmp(CmpOp::Eq)),
        Just(BinOp::Cmp(CmpOp::Ne)),
        Just(BinOp::Cmp(CmpOp::Le)),
        Just(BinOp::Cmp(CmpOp::Ge)),
        Just(BinOp::Cmp(CmpOp::Lt)),
        Just(BinOp::Cmp(CmpOp::Gt)),
    ]
}

fn action(depth: u32) -> BoxedStrategy<Action> {
    let assign = (ident(), expr(1)).prop_map(|(target, value)| Action::Assign {
        target,
        field: None,
        value,
        span: sp(),
    });
    if depth == 0 {
        assign.boxed()
    } else {
        let inner = proptest::collection::vec(action(depth - 1), 0..3);
        prop_oneof![
            assign,
            (expr(1), inner.clone(), inner.clone()).prop_map(|(cond, t, e)| Action::If {
                cond,
                then_branch: t,
                else_branch: e,
                span: sp()
            }),
            (expr(1), inner).prop_map(|(cond, body)| Action::While {
                cond,
                body,
                span: sp()
            }),
            expr(1).prop_map(|e| Action::Return {
                value: Some(e),
                span: sp()
            }),
            (expr(1),).prop_map(|(e,)| Action::Send {
                value: e,
                to: MsgEndpoint::Harvester,
                span: sp()
            }),
        ]
        .boxed()
    }
}

fn machine() -> impl Strategy<Value = Machine> {
    (
        "[A-Z][a-zA-Z0-9]{0,6}",
        proptest::collection::vec((ident(), expr(1)), 0..4),
        proptest::collection::vec(
            (
                "[a-z][a-z0-9]{0,6}",
                proptest::collection::vec(action(2), 0..4),
            ),
            1..4,
        ),
    )
        .prop_map(|(name, vars, states)| Machine {
            name,
            extends: None,
            placements: vec![PlaceDirective {
                quant: PlaceQuant::All,
                constraint: PlaceConstraint::None,
                span: sp(),
            }],
            vars: vars
                .into_iter()
                .enumerate()
                .map(|(i, (n, init))| VarDecl {
                    external: false,
                    kind: DeclKind::Plain(Type::Long),
                    name: format!("{n}{i}"), // uniqueness
                    init: Some(init),
                    span: sp(),
                })
                .collect(),
            states: states
                .into_iter()
                .enumerate()
                .map(|(i, (n, actions))| StateDecl {
                    name: format!("{n}{i}"),
                    vars: vec![],
                    util: None,
                    events: vec![EventDecl {
                        trigger: Trigger::Enter,
                        actions,
                        span: sp(),
                    }],
                    span: sp(),
                })
                .collect(),
            events: vec![],
            span: sp(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// print → parse → print is the identity on canonical source.
    #[test]
    fn printer_parse_fixpoint(m in machine()) {
        let src = machine_to_source(&m);
        let reparsed = parse(&src).unwrap_or_else(|e| panic!("reparse failed: {e}\n{src}"));
        let src2 = program_to_source(&reparsed);
        let reparsed2 = parse(&src2).unwrap();
        prop_assert_eq!(src2, program_to_source(&reparsed2));
    }

    /// XML export/import preserves canonical source exactly.
    #[test]
    fn xml_round_trip(m in machine()) {
        let src = machine_to_source(&m);
        let parsed = parse(&src).unwrap().machines.remove(0);
        let xml = machine_to_xml(&parsed);
        let back = machine_from_xml(&xml)
            .unwrap_or_else(|e| panic!("import failed: {e}\n{xml}"));
        prop_assert_eq!(machine_to_source(&parsed), machine_to_source(&back));
    }
}

/// Every Tab. I program also survives the XML round trip.
#[test]
fn use_cases_survive_xml() {
    for u in farm_almanac::programs::USE_CASES {
        let p = parse(u.source).unwrap();
        for m in &p.machines {
            let back = machine_from_xml(&machine_to_xml(m)).unwrap();
            assert_eq!(
                machine_to_source(m),
                machine_to_source(&back),
                "{} xml round trip",
                u.name
            );
        }
    }
}
