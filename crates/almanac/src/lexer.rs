//! Lexer for the Almanac DSL.
//!
//! Produces a token stream with source spans. Comments (`//…` and `/*…*/`)
//! and whitespace are skipped. The not-equal operator is spelled `<>`,
//! following the paper's grammar.

use crate::error::{AlmanacError, Phase, Result, Span};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    // Punctuation / operators
    LBrace,
    RBrace,
    LParen,
    RParen,
    Semi,
    Comma,
    Dot,
    At,
    Colon,
    Assign,
    Eq,
    Ne,
    Le,
    Ge,
    Lt,
    Gt,
    Plus,
    Minus,
    Star,
    Slash,
    Eof,
}

impl Tok {
    /// Human-readable description for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("identifier `{s}`"),
            Tok::Int(i) => format!("integer `{i}`"),
            Tok::Float(x) => format!("float `{x}`"),
            Tok::Str(s) => format!("string {s:?}"),
            Tok::LBrace => "`{`".into(),
            Tok::RBrace => "`}`".into(),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::Semi => "`;`".into(),
            Tok::Comma => "`,`".into(),
            Tok::Dot => "`.`".into(),
            Tok::At => "`@`".into(),
            Tok::Colon => "`:`".into(),
            Tok::Assign => "`=`".into(),
            Tok::Eq => "`==`".into(),
            Tok::Ne => "`<>`".into(),
            Tok::Le => "`<=`".into(),
            Tok::Ge => "`>=`".into(),
            Tok::Lt => "`<`".into(),
            Tok::Gt => "`>`".into(),
            Tok::Plus => "`+`".into(),
            Tok::Minus => "`-`".into(),
            Tok::Star => "`*`".into(),
            Tok::Slash => "`/`".into(),
            Tok::Eof => "end of input".into(),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    pub tok: Tok,
    pub span: Span,
}

/// Tokenizes an Almanac source file.
///
/// # Errors
///
/// Returns a lex-phase [`AlmanacError`] on unterminated strings/comments or
/// unexpected characters.
pub fn lex(src: &str) -> Result<Vec<SpannedTok>> {
    let mut out = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! bump {
        () => {{
            if bytes[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i];
        let span = Span::new(line, col);
        match c {
            ' ' | '\t' | '\r' | '\n' => bump!(),
            '/' if i + 1 < bytes.len() && bytes[i + 1] == '/' => {
                while i < bytes.len() && bytes[i] != '\n' {
                    bump!();
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == '*' => {
                bump!();
                bump!();
                let mut closed = false;
                while i + 1 < bytes.len() {
                    if bytes[i] == '*' && bytes[i + 1] == '/' {
                        bump!();
                        bump!();
                        closed = true;
                        break;
                    }
                    bump!();
                }
                if !closed {
                    return Err(AlmanacError::new(
                        Phase::Lex,
                        span,
                        "unterminated block comment",
                    ));
                }
            }
            '"' => {
                bump!();
                let mut s = String::new();
                let mut closed = false;
                while i < bytes.len() {
                    let c = bytes[i];
                    if c == '"' {
                        bump!();
                        closed = true;
                        break;
                    }
                    if c == '\\' && i + 1 < bytes.len() {
                        bump!();
                        let esc = bytes[i];
                        s.push(match esc {
                            'n' => '\n',
                            't' => '\t',
                            other => other,
                        });
                        bump!();
                        continue;
                    }
                    s.push(c);
                    bump!();
                }
                if !closed {
                    return Err(AlmanacError::new(Phase::Lex, span, "unterminated string"));
                }
                out.push(SpannedTok {
                    tok: Tok::Str(s),
                    span,
                });
            }
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                let mut is_float = false;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == '_') {
                    if bytes[i] != '_' {
                        text.push(bytes[i]);
                    }
                    bump!();
                }
                // A dot starts a fraction only if followed by a digit (so
                // `10.ival` stays Int + Dot + Ident).
                if i + 1 < bytes.len() && bytes[i] == '.' && bytes[i + 1].is_ascii_digit() {
                    is_float = true;
                    text.push('.');
                    bump!();
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        text.push(bytes[i]);
                        bump!();
                    }
                }
                let tok = if is_float {
                    Tok::Float(text.parse().map_err(|_| {
                        AlmanacError::new(Phase::Lex, span, format!("bad float literal {text}"))
                    })?)
                } else {
                    Tok::Int(text.parse().map_err(|_| {
                        AlmanacError::new(Phase::Lex, span, format!("bad int literal {text}"))
                    })?)
                };
                out.push(SpannedTok { tok, span });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut text = String::new();
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    text.push(bytes[i]);
                    bump!();
                }
                out.push(SpannedTok {
                    tok: Tok::Ident(text),
                    span,
                });
            }
            '{' => {
                out.push(SpannedTok {
                    tok: Tok::LBrace,
                    span,
                });
                bump!();
            }
            '}' => {
                out.push(SpannedTok {
                    tok: Tok::RBrace,
                    span,
                });
                bump!();
            }
            '(' => {
                out.push(SpannedTok {
                    tok: Tok::LParen,
                    span,
                });
                bump!();
            }
            ')' => {
                out.push(SpannedTok {
                    tok: Tok::RParen,
                    span,
                });
                bump!();
            }
            ';' => {
                out.push(SpannedTok {
                    tok: Tok::Semi,
                    span,
                });
                bump!();
            }
            ',' => {
                out.push(SpannedTok {
                    tok: Tok::Comma,
                    span,
                });
                bump!();
            }
            '.' => {
                out.push(SpannedTok {
                    tok: Tok::Dot,
                    span,
                });
                bump!();
            }
            '@' => {
                out.push(SpannedTok { tok: Tok::At, span });
                bump!();
            }
            ':' => {
                out.push(SpannedTok {
                    tok: Tok::Colon,
                    span,
                });
                bump!();
            }
            '+' => {
                out.push(SpannedTok {
                    tok: Tok::Plus,
                    span,
                });
                bump!();
            }
            '-' => {
                out.push(SpannedTok {
                    tok: Tok::Minus,
                    span,
                });
                bump!();
            }
            '*' => {
                out.push(SpannedTok {
                    tok: Tok::Star,
                    span,
                });
                bump!();
            }
            '/' => {
                out.push(SpannedTok {
                    tok: Tok::Slash,
                    span,
                });
                bump!();
            }
            '=' => {
                bump!();
                if i < bytes.len() && bytes[i] == '=' {
                    bump!();
                    out.push(SpannedTok { tok: Tok::Eq, span });
                } else {
                    out.push(SpannedTok {
                        tok: Tok::Assign,
                        span,
                    });
                }
            }
            '<' => {
                bump!();
                if i < bytes.len() && bytes[i] == '=' {
                    bump!();
                    out.push(SpannedTok { tok: Tok::Le, span });
                } else if i < bytes.len() && bytes[i] == '>' {
                    bump!();
                    out.push(SpannedTok { tok: Tok::Ne, span });
                } else {
                    out.push(SpannedTok { tok: Tok::Lt, span });
                }
            }
            '>' => {
                bump!();
                if i < bytes.len() && bytes[i] == '=' {
                    bump!();
                    out.push(SpannedTok { tok: Tok::Ge, span });
                } else {
                    out.push(SpannedTok { tok: Tok::Gt, span });
                }
            }
            other => {
                return Err(AlmanacError::new(
                    Phase::Lex,
                    span,
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    out.push(SpannedTok {
        tok: Tok::Eof,
        span: Span::new(line, col),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_identifiers_and_punctuation() {
        assert_eq!(
            toks("machine HH { place all; }"),
            vec![
                Tok::Ident("machine".into()),
                Tok::Ident("HH".into()),
                Tok::LBrace,
                Tok::Ident("place".into()),
                Tok::Ident("all".into()),
                Tok::Semi,
                Tok::RBrace,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn distinguishes_numbers_from_field_access() {
        // `10.ival` must lex as Int(10), Dot, Ident — not a float.
        assert_eq!(
            toks("10.ival 2.5"),
            vec![
                Tok::Int(10),
                Tok::Dot,
                Tok::Ident("ival".into()),
                Tok::Float(2.5),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_comparison_operators() {
        assert_eq!(
            toks("a <= b >= c <> d == e < f > g = h"),
            vec![
                Tok::Ident("a".into()),
                Tok::Le,
                Tok::Ident("b".into()),
                Tok::Ge,
                Tok::Ident("c".into()),
                Tok::Ne,
                Tok::Ident("d".into()),
                Tok::Eq,
                Tok::Ident("e".into()),
                Tok::Lt,
                Tok::Ident("f".into()),
                Tok::Gt,
                Tok::Ident("g".into()),
                Tok::Assign,
                Tok::Ident("h".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn skips_comments() {
        let src = "a // line comment\n/* block\ncomment */ b";
        assert_eq!(
            toks(src),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn strings_support_escapes() {
        assert_eq!(
            toks(r#""10.1.1.4" "a\"b""#),
            vec![
                Tok::Str("10.1.1.4".into()),
                Tok::Str("a\"b".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn reports_spans() {
        let ts = lex("machine\n  HH").unwrap();
        assert_eq!(ts[0].span, Span::new(1, 1));
        assert_eq!(ts[1].span, Span::new(2, 3));
    }

    #[test]
    fn rejects_unterminated_string_and_comment() {
        assert!(lex("\"abc").is_err());
        assert!(lex("/* abc").is_err());
        assert!(lex("a # b").is_err());
    }

    #[test]
    fn numeric_underscores_are_allowed() {
        assert_eq!(toks("1_000_000"), vec![Tok::Int(1_000_000), Tok::Eof]);
    }
}
