//! Recursive-descent parser for Almanac.
//!
//! Implements the grammar of the paper's Fig. 3 with the concrete syntax of
//! its List. 2 example, plus auxiliary function declarations (`fundec`,
//! which the paper elides):
//!
//! ```text
//! fun getHH(list stats, long threshold): list { … }
//! machine HH extends Base {
//!     place all;
//!     poll pollStats = Poll { .ival = 10/res().PCIe, .what = port ANY };
//!     external long threshold;
//!     state observe { util (res) { … } when (pollStats as stats) do { … } }
//!     when (recv long newTh from harvester) do { threshold = newTh; }
//! }
//! ```

use crate::ast::*;
use crate::error::{AlmanacError, Result, Span};
use crate::lexer::{lex, SpannedTok, Tok};

/// Parses a complete Almanac program.
///
/// # Errors
///
/// Returns the first lex or parse error with its source span.
pub fn parse(src: &str) -> Result<Program> {
    let toks = lex(src)?;
    Parser { toks, pos: 0 }.program()
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek_at(&self, n: usize) -> &Tok {
        let i = (self.pos + n).min(self.toks.len() - 1);
        &self.toks[i].tok
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn next(&mut self) -> SpannedTok {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> AlmanacError {
        AlmanacError::parse(self.span(), msg)
    }

    fn expect(&mut self, tok: Tok) -> Result<Span> {
        if *self.peek() == tok {
            Ok(self.next().span)
        } else {
            Err(self.err(format!(
                "expected {}, found {}",
                tok.describe(),
                self.peek().describe()
            )))
        }
    }

    /// Consumes an identifier token, any spelling.
    fn ident(&mut self) -> Result<(String, Span)> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                let sp = self.next().span;
                Ok((s, sp))
            }
            other => Err(self.err(format!("expected identifier, found {}", other.describe()))),
        }
    }

    /// True if the next token is the given keyword.
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    /// Consumes the given keyword.
    fn kw(&mut self, kw: &str) -> Result<Span> {
        if self.at_kw(kw) {
            Ok(self.next().span)
        } else {
            Err(self.err(format!(
                "expected keyword `{kw}`, found {}",
                self.peek().describe()
            )))
        }
    }

    fn type_of_kw(s: &str) -> Option<Type> {
        Some(match s {
            "bool" => Type::Bool,
            "int" => Type::Int,
            "long" => Type::Long,
            "float" => Type::Float,
            "string" => Type::Str,
            "list" => Type::List,
            "packet" => Type::Packet,
            "action" => Type::Action,
            "filter" => Type::Filter,
            "rule" => Type::Rule,
            "resources" => Type::Resources,
            "stat" => Type::Stat,
            _ => return None,
        })
    }

    fn trigger_of_kw(s: &str) -> Option<TriggerType> {
        Some(match s {
            "time" => TriggerType::Time,
            "poll" => TriggerType::Poll,
            "probe" => TriggerType::Probe,
            _ => return None,
        })
    }

    // ---- top level ------------------------------------------------------

    fn program(&mut self) -> Result<Program> {
        let mut functions = Vec::new();
        let mut machines = Vec::new();
        loop {
            match self.peek() {
                Tok::Eof => break,
                Tok::Ident(s) if s == "fun" => functions.push(self.fun_decl()?),
                Tok::Ident(s) if s == "machine" => machines.push(self.machine()?),
                other => {
                    return Err(self.err(format!(
                        "expected `fun` or `machine`, found {}",
                        other.describe()
                    )))
                }
            }
        }
        Ok(Program {
            functions,
            machines,
        })
    }

    fn fun_decl(&mut self) -> Result<FunDecl> {
        let span = self.kw("fun")?;
        let (name, _) = self.ident()?;
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                let (tykw, tysp) = self.ident()?;
                let ty = Self::type_of_kw(&tykw).ok_or_else(|| {
                    AlmanacError::parse(tysp, format!("unknown parameter type `{tykw}`"))
                })?;
                let (pname, _) = self.ident()?;
                params.push((ty, pname));
                if *self.peek() == Tok::Comma {
                    self.next();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        let ret = if *self.peek() == Tok::Colon {
            self.next();
            let (tykw, tysp) = self.ident()?;
            Some(Self::type_of_kw(&tykw).ok_or_else(|| {
                AlmanacError::parse(tysp, format!("unknown return type `{tykw}`"))
            })?)
        } else {
            None
        };
        let body = self.block()?;
        Ok(FunDecl {
            name,
            params,
            ret,
            body,
            span,
        })
    }

    fn machine(&mut self) -> Result<Machine> {
        let span = self.kw("machine")?;
        let (name, _) = self.ident()?;
        let extends = if self.at_kw("extends") {
            self.next();
            Some(self.ident()?.0)
        } else {
            None
        };
        self.expect(Tok::LBrace)?;
        let mut placements = Vec::new();
        let mut vars = Vec::new();
        let mut states = Vec::new();
        let mut events = Vec::new();
        while *self.peek() != Tok::RBrace {
            match self.peek() {
                Tok::Ident(s) if s == "place" => placements.push(self.place_directive()?),
                Tok::Ident(s) if s == "state" => states.push(self.state_decl()?),
                Tok::Ident(s) if s == "when" => events.push(self.event_decl()?),
                Tok::Ident(s)
                    if s == "external"
                        || Self::type_of_kw(s).is_some()
                        || Self::trigger_of_kw(s).is_some() =>
                {
                    vars.push(self.var_decl(true)?)
                }
                other => {
                    return Err(self.err(format!(
                        "expected placement, variable, state or event in machine body, found {}",
                        other.describe()
                    )))
                }
            }
        }
        self.expect(Tok::RBrace)?;
        Ok(Machine {
            name,
            extends,
            placements,
            vars,
            states,
            events,
            span,
        })
    }

    fn var_decl(&mut self, allow_external: bool) -> Result<VarDecl> {
        let span = self.span();
        let external = if self.at_kw("external") {
            if !allow_external {
                return Err(self.err("`external` is only allowed at machine level"));
            }
            self.next();
            true
        } else {
            false
        };
        let (kw, kwsp) = self.ident()?;
        let kind = if let Some(t) = Self::trigger_of_kw(&kw) {
            if external {
                return Err(AlmanacError::parse(
                    kwsp,
                    "trigger variables cannot be external",
                ));
            }
            DeclKind::Trigger(t)
        } else if let Some(t) = Self::type_of_kw(&kw) {
            DeclKind::Plain(t)
        } else {
            return Err(AlmanacError::parse(
                kwsp,
                format!("unknown type `{kw}` in variable declaration"),
            ));
        };
        let (name, _) = self.ident()?;
        let init = if *self.peek() == Tok::Assign {
            self.next();
            Some(self.expr()?)
        } else {
            None
        };
        self.expect(Tok::Semi)?;
        Ok(VarDecl {
            external,
            kind,
            name,
            init,
            span,
        })
    }

    fn place_directive(&mut self) -> Result<PlaceDirective> {
        let span = self.kw("place")?;
        let quant = if self.at_kw("all") {
            self.next();
            PlaceQuant::All
        } else if self.at_kw("any") {
            self.next();
            PlaceQuant::Any
        } else {
            return Err(self.err("expected `all` or `any` after `place`"));
        };
        // Bare `place all;`
        if *self.peek() == Tok::Semi {
            self.next();
            return Ok(PlaceDirective {
                quant,
                constraint: PlaceConstraint::None,
                span,
            });
        }
        // Role keyword → range constraint.
        let role = if self.at_kw("sender") {
            self.next();
            Some(PathRole::Sender)
        } else if self.at_kw("receiver") {
            self.next();
            Some(PathRole::Receiver)
        } else if self.at_kw("midpoint") {
            self.next();
            Some(PathRole::Midpoint)
        } else {
            None
        };
        if self.at_kw("range") {
            let (op, dist) = self.range_tail()?;
            self.expect(Tok::Semi)?;
            return Ok(PlaceDirective {
                quant,
                constraint: PlaceConstraint::Range {
                    role,
                    filter: None,
                    op,
                    dist,
                },
                span,
            });
        }
        // An expression follows: either the range's path filter or the
        // first element of an explicit switch list.
        let first = self.expr()?;
        if self.at_kw("range") {
            let (op, dist) = self.range_tail()?;
            self.expect(Tok::Semi)?;
            return Ok(PlaceDirective {
                quant,
                constraint: PlaceConstraint::Range {
                    role,
                    filter: Some(first),
                    op,
                    dist,
                },
                span,
            });
        }
        if role.is_some() {
            return Err(self.err("expected `range` after placement role and filter"));
        }
        let mut switches = vec![first];
        while *self.peek() == Tok::Comma {
            self.next();
            switches.push(self.expr()?);
        }
        self.expect(Tok::Semi)?;
        Ok(PlaceDirective {
            quant,
            constraint: PlaceConstraint::Switches(switches),
            span,
        })
    }

    fn range_tail(&mut self) -> Result<(CmpOp, Expr)> {
        self.kw("range")?;
        let op = match self.peek() {
            Tok::Eq => CmpOp::Eq,
            Tok::Le => CmpOp::Le,
            Tok::Ge => CmpOp::Ge,
            Tok::Lt => CmpOp::Lt,
            Tok::Gt => CmpOp::Gt,
            other => {
                return Err(self.err(format!(
                    "expected comparison operator after `range`, found {}",
                    other.describe()
                )))
            }
        };
        self.next();
        let dist = self.expr()?;
        Ok((op, dist))
    }

    fn state_decl(&mut self) -> Result<StateDecl> {
        let span = self.kw("state")?;
        let (name, _) = self.ident()?;
        self.expect(Tok::LBrace)?;
        let mut vars = Vec::new();
        let mut util = None;
        let mut events = Vec::new();
        while *self.peek() != Tok::RBrace {
            match self.peek() {
                Tok::Ident(s) if s == "util" => {
                    if util.is_some() {
                        return Err(self.err("duplicate `util` in state"));
                    }
                    util = Some(self.util_decl()?);
                }
                Tok::Ident(s) if s == "when" => events.push(self.event_decl()?),
                Tok::Ident(s)
                    if Self::type_of_kw(s).is_some() || Self::trigger_of_kw(s).is_some() =>
                {
                    vars.push(self.var_decl(false)?)
                }
                other => {
                    return Err(self.err(format!(
                        "expected `util`, `when` or variable in state body, found {}",
                        other.describe()
                    )))
                }
            }
        }
        self.expect(Tok::RBrace)?;
        Ok(StateDecl {
            name,
            vars,
            util,
            events,
            span,
        })
    }

    fn util_decl(&mut self) -> Result<UtilDecl> {
        let span = self.kw("util")?;
        self.expect(Tok::LParen)?;
        let (param, _) = self.ident()?;
        self.expect(Tok::RParen)?;
        let body = self.block()?;
        Ok(UtilDecl { param, body, span })
    }

    fn event_decl(&mut self) -> Result<EventDecl> {
        let span = self.kw("when")?;
        self.expect(Tok::LParen)?;
        let trigger = self.trigger()?;
        self.expect(Tok::RParen)?;
        self.kw("do")?;
        let actions = self.block()?;
        Ok(EventDecl {
            trigger,
            actions,
            span,
        })
    }

    fn trigger(&mut self) -> Result<Trigger> {
        if self.at_kw("enter") {
            self.next();
            return Ok(Trigger::Enter);
        }
        if self.at_kw("exit") {
            self.next();
            return Ok(Trigger::Exit);
        }
        if self.at_kw("realloc") {
            self.next();
            return Ok(Trigger::Realloc);
        }
        if self.at_kw("recv") {
            self.next();
            let (tykw, tysp) = self.ident()?;
            let ty = Self::type_of_kw(&tykw).ok_or_else(|| {
                AlmanacError::parse(tysp, format!("unknown message type `{tykw}`"))
            })?;
            let (bind, _) = self.ident()?;
            self.kw("from")?;
            let from = self.endpoint()?;
            return Ok(Trigger::Recv { ty, bind, from });
        }
        // Trigger variable, optionally binding its payload.
        let (name, _) = self.ident()?;
        let bind = if self.at_kw("as") {
            self.next();
            Some(self.ident()?.0)
        } else {
            None
        };
        Ok(Trigger::Var { name, bind })
    }

    fn endpoint(&mut self) -> Result<MsgEndpoint> {
        let (name, _) = self.ident()?;
        if name == "harvester" {
            return Ok(MsgEndpoint::Harvester);
        }
        let at = if *self.peek() == Tok::At {
            self.next();
            Some(self.primary()?)
        } else {
            None
        };
        Ok(MsgEndpoint::Machine { name, at })
    }

    // ---- statements -----------------------------------------------------

    fn block(&mut self) -> Result<Vec<Action>> {
        self.expect(Tok::LBrace)?;
        let mut actions = Vec::new();
        while *self.peek() != Tok::RBrace {
            actions.push(self.action()?);
        }
        self.expect(Tok::RBrace)?;
        Ok(actions)
    }

    fn action(&mut self) -> Result<Action> {
        let span = self.span();
        match self.peek().clone() {
            Tok::Ident(s) if s == "if" => {
                self.next();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                self.kw("then")?;
                let then_branch = self.block()?;
                let else_branch = if self.at_kw("else") {
                    self.next();
                    if self.at_kw("if") {
                        vec![self.action()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Action::If {
                    cond,
                    then_branch,
                    else_branch,
                    span,
                })
            }
            Tok::Ident(s) if s == "while" => {
                self.next();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let body = self.block()?;
                Ok(Action::While { cond, body, span })
            }
            Tok::Ident(s) if s == "return" => {
                self.next();
                let value = if *self.peek() == Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(Tok::Semi)?;
                Ok(Action::Return { value, span })
            }
            Tok::Ident(s) if s == "send" => {
                self.next();
                let value = self.expr()?;
                self.kw("to")?;
                let to = self.endpoint()?;
                self.expect(Tok::Semi)?;
                Ok(Action::Send { value, to, span })
            }
            Tok::Ident(s) if s == "transit" => {
                self.next();
                let (state, _) = self.ident()?;
                self.expect(Tok::Semi)?;
                Ok(Action::Transit { state, span })
            }
            // Local declaration: a type keyword followed by an identifier
            // (but `list_len(x)` must not be mistaken for a declaration).
            Tok::Ident(s)
                if Self::type_of_kw(&s).is_some() && matches!(self.peek_at(1), Tok::Ident(_)) =>
            {
                Ok(Action::Local(self.var_decl(false)?))
            }
            Tok::Ident(_) => {
                // Assignment (`x = e;` / `x.f = e;`) or expression statement.
                if matches!(self.peek_at(1), Tok::Assign) {
                    let (target, _) = self.ident()?;
                    self.next(); // '='
                    let value = self.expr()?;
                    self.expect(Tok::Semi)?;
                    return Ok(Action::Assign {
                        target,
                        field: None,
                        value,
                        span,
                    });
                }
                if matches!(self.peek_at(1), Tok::Dot)
                    && matches!(self.peek_at(2), Tok::Ident(_))
                    && matches!(self.peek_at(3), Tok::Assign)
                {
                    let (target, _) = self.ident()?;
                    self.next(); // '.'
                    let (field, _) = self.ident()?;
                    self.next(); // '='
                    let value = self.expr()?;
                    self.expect(Tok::Semi)?;
                    return Ok(Action::Assign {
                        target,
                        field: Some(field),
                        value,
                        span,
                    });
                }
                let expr = self.expr()?;
                self.expect(Tok::Semi)?;
                Ok(Action::ExprStmt { expr, span })
            }
            other => Err(self.err(format!("expected statement, found {}", other.describe()))),
        }
    }

    // ---- expressions ----------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.at_kw("or") {
            let span = self.next().span;
            let rhs = self.and_expr()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.cmp_expr()?;
        while self.at_kw("and") {
            let span = self.next().span;
            let rhs = self.cmp_expr()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::Eq => Some(CmpOp::Eq),
            Tok::Ne => Some(CmpOp::Ne),
            Tok::Le => Some(CmpOp::Le),
            Tok::Ge => Some(CmpOp::Ge),
            Tok::Lt => Some(CmpOp::Lt),
            Tok::Gt => Some(CmpOp::Gt),
            _ => None,
        };
        if let Some(op) = op {
            let span = self.next().span;
            let rhs = self.add_expr()?;
            Ok(Expr::Binary(
                BinOp::Cmp(op),
                Box::new(lhs),
                Box::new(rhs),
                span,
            ))
        } else {
            Ok(lhs)
        }
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            let span = self.next().span;
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                _ => break,
            };
            let span = self.next().span;
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        if self.at_kw("not") {
            let span = self.next().span;
            let inner = self.unary_expr()?;
            return Ok(Expr::Unary(UnOp::Not, Box::new(inner), span));
        }
        if *self.peek() == Tok::Minus {
            let span = self.next().span;
            let inner = self.unary_expr()?;
            return Ok(Expr::Unary(UnOp::Neg, Box::new(inner), span));
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr> {
        let mut e = self.primary()?;
        while *self.peek() == Tok::Dot {
            let span = self.next().span;
            let (field, _) = self.ident()?;
            e = Expr::Field(Box::new(e), field, span);
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr> {
        let span = self.span();
        match self.peek().clone() {
            Tok::Int(i) => {
                self.next();
                Ok(Expr::Lit(Literal::Int(i), span))
            }
            Tok::Float(x) => {
                self.next();
                Ok(Expr::Lit(Literal::Float(x), span))
            }
            Tok::Str(s) => {
                self.next();
                Ok(Expr::Lit(Literal::Str(s), span))
            }
            Tok::LParen => {
                self.next();
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                match name.as_str() {
                    "true" => {
                        self.next();
                        return Ok(Expr::Lit(Literal::Bool(true), span));
                    }
                    "false" => {
                        self.next();
                        return Ok(Expr::Lit(Literal::Bool(false), span));
                    }
                    "srcIP" => {
                        self.next();
                        let arg = self.unary_expr()?;
                        return Ok(Expr::Filter(FilterExpr::SrcIp(Box::new(arg)), span));
                    }
                    "dstIP" => {
                        self.next();
                        let arg = self.unary_expr()?;
                        return Ok(Expr::Filter(FilterExpr::DstIp(Box::new(arg)), span));
                    }
                    "srcPort" => {
                        self.next();
                        let arg = self.unary_expr()?;
                        return Ok(Expr::Filter(FilterExpr::SrcPort(Box::new(arg)), span));
                    }
                    "dstPort" => {
                        self.next();
                        let arg = self.unary_expr()?;
                        return Ok(Expr::Filter(FilterExpr::DstPort(Box::new(arg)), span));
                    }
                    "proto" => {
                        self.next();
                        let arg = self.unary_expr()?;
                        return Ok(Expr::Filter(FilterExpr::Proto(Box::new(arg)), span));
                    }
                    "port" => {
                        self.next();
                        if self.at_kw("ANY") {
                            self.next();
                            return Ok(Expr::Filter(FilterExpr::IfPortAny, span));
                        }
                        let arg = self.unary_expr()?;
                        return Ok(Expr::Filter(FilterExpr::IfPort(Box::new(arg)), span));
                    }
                    _ => {}
                }
                self.next();
                // Struct literal: `Name { .field = …, … }`.
                if *self.peek() == Tok::LBrace && *self.peek_at(1) == Tok::Dot {
                    self.next(); // '{'
                    let mut fields = Vec::new();
                    loop {
                        self.expect(Tok::Dot)?;
                        let (fname, _) = self.ident()?;
                        self.expect(Tok::Assign)?;
                        let fval = self.expr()?;
                        fields.push((fname, fval));
                        if *self.peek() == Tok::Comma {
                            self.next();
                            if *self.peek() == Tok::RBrace {
                                break; // trailing comma
                            }
                        } else {
                            break;
                        }
                    }
                    self.expect(Tok::RBrace)?;
                    return Ok(Expr::StructLit { name, fields, span });
                }
                // Call: `name(args…)`.
                if *self.peek() == Tok::LParen {
                    self.next();
                    let mut args = Vec::new();
                    if *self.peek() != Tok::RParen {
                        loop {
                            args.push(self.expr()?);
                            if *self.peek() == Tok::Comma {
                                self.next();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen)?;
                    return Ok(Expr::Call { name, args, span });
                }
                Ok(Expr::Var(name, span))
            }
            other => Err(self.err(format!("expected expression, found {}", other.describe()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_hh_skeleton() {
        let src = r#"
            machine HH {
              place all;
              poll pollStats = Poll {
                .ival = 10/res().PCIe, .what = port ANY
              };
              external long threshold;
              action hitterAction;
              list hitters;
              state observe {
                util (res) {
                  if (res.vCPU >= 1 and res.RAM >= 100) then {
                    return min(res.vCPU, res.PCIe);
                  }
                }
                when (pollStats as stats) do {
                  hitters = getHH(stats, threshold);
                  if (not is_list_empty(hitters)) then {
                    transit HHdetected;
                  }
                }
              }
              state HHdetected {
                util (res) { return 100; }
                when (enter) do {
                  send hitters to harvester;
                  setHitterRules(hitters, hitterAction);
                  transit observe;
                }
              }
              when (recv long newTh from harvester)
              do { threshold = newTh; }
              when (recv action hitAct from harvester)
              do { hitterAction = hitAct; }
            }
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.machines.len(), 1);
        let m = &p.machines[0];
        assert_eq!(m.name, "HH");
        assert_eq!(m.states.len(), 2);
        assert_eq!(m.events.len(), 2);
        assert_eq!(m.vars.len(), 4); // pollStats, threshold, hitterAction, hitters
        assert!(m.vars[1].external);
        assert_eq!(m.trigger_vars().count(), 1);
        assert!(m.state("observe").unwrap().util.is_some());
        // The poll initializer is a struct literal with ival and what.
        match m.vars[0].init.as_ref().unwrap() {
            Expr::StructLit { name, fields, .. } => {
                assert_eq!(name, "Poll");
                assert_eq!(fields.len(), 2);
                assert_eq!(fields[0].0, "ival");
                assert_eq!(fields[1].0, "what");
            }
            other => panic!("expected struct literal, got {other:?}"),
        }
    }

    #[test]
    fn parses_functions() {
        let src = r#"
            fun getHH(list stats, long threshold): list {
              list result;
              int i = 0;
              while (i < list_len(stats)) {
                if (stat_tx_bytes(list_get(stats, i)) >= threshold) then {
                  list_push(result, list_get(stats, i));
                }
                i = i + 1;
              }
              return result;
            }
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.functions.len(), 1);
        let f = &p.functions[0];
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.ret, Some(Type::List));
        assert_eq!(f.body.len(), 4);
    }

    #[test]
    fn parses_placement_variants() {
        let src = r#"
            machine A { place all; state s { } }
            machine B { place any 3, 4, 5; state s { } }
            machine C {
              place any receiver srcIP "10.1.1.4" and dstIP "10.0.1.0/24" range == 1;
              state s { }
            }
            machine D { place all midpoint range == 0; state s { } }
        "#;
        let p = parse(src).unwrap();
        assert!(matches!(
            p.machine("A").unwrap().placements[0].constraint,
            PlaceConstraint::None
        ));
        match &p.machine("B").unwrap().placements[0].constraint {
            PlaceConstraint::Switches(v) => assert_eq!(v.len(), 3),
            other => panic!("expected switch list, got {other:?}"),
        }
        match &p.machine("C").unwrap().placements[0].constraint {
            PlaceConstraint::Range {
                role, filter, op, ..
            } => {
                assert_eq!(*role, Some(PathRole::Receiver));
                assert!(filter.is_some());
                assert_eq!(*op, CmpOp::Eq);
            }
            other => panic!("expected range, got {other:?}"),
        }
        match &p.machine("D").unwrap().placements[0].constraint {
            PlaceConstraint::Range { role, filter, .. } => {
                assert_eq!(*role, Some(PathRole::Midpoint));
                assert!(filter.is_none());
            }
            other => panic!("expected range, got {other:?}"),
        }
    }

    #[test]
    fn parses_inheritance_and_send_at() {
        let src = r#"
            machine Child extends Base {
              state s {
                when (enter) do {
                  send 1 to Base@2;
                  send 2 to Base;
                }
              }
            }
        "#;
        let p = parse(src).unwrap();
        let m = &p.machines[0];
        assert_eq!(m.extends.as_deref(), Some("Base"));
        let ev = &m.state("s").unwrap().events[0];
        match &ev.actions[0] {
            Action::Send {
                to: MsgEndpoint::Machine { name, at },
                ..
            } => {
                assert_eq!(name, "Base");
                assert!(at.is_some());
            }
            other => panic!("expected send, got {other:?}"),
        }
    }

    #[test]
    fn operator_precedence_is_sane() {
        // a + b * c <= d and e  →  ((a + (b*c)) <= d) and e
        let src = "machine M { state s { when (enter) do { bool x = a + b * c <= d and e; } } }";
        let p = parse(src).unwrap();
        let st = &p.machines[0].states[0];
        let Action::Local(decl) = &st.events[0].actions[0] else {
            panic!("expected local decl");
        };
        let Some(Expr::Binary(BinOp::And, lhs, _, _)) = &decl.init else {
            panic!("top must be `and`: {:?}", decl.init);
        };
        let Expr::Binary(BinOp::Cmp(CmpOp::Le), add, _, _) = lhs.as_ref() else {
            panic!("lhs of and must be <=");
        };
        let Expr::Binary(BinOp::Add, _, mul, _) = add.as_ref() else {
            panic!("lhs of <= must be +");
        };
        assert!(matches!(mul.as_ref(), Expr::Binary(BinOp::Mul, _, _, _)));
    }

    #[test]
    fn field_assignment_statement() {
        let src = "machine M { poll p = Poll { .ival = 10, .what = port ANY };
                    state s { when (enter) do { p.ival = 20; } } }";
        let p = parse(src).unwrap();
        let ev = &p.machines[0].states[0].events[0];
        assert!(matches!(
            &ev.actions[0],
            Action::Assign { field: Some(f), .. } if f == "ival"
        ));
    }

    #[test]
    fn error_has_position() {
        let err = parse("machine M { state }").unwrap_err();
        assert_eq!(err.span.line, 1);
        assert!(err.message.contains("identifier"));
    }

    #[test]
    fn rejects_external_in_state() {
        let src = "machine M { state s { external int x; } }";
        assert!(parse(src).is_err());
    }

    #[test]
    fn else_if_chains() {
        let src = r#"
            machine M { state s { when (enter) do {
              if (a) then { x = 1; } else if (b) then { x = 2; } else { x = 3; }
            } } }
        "#;
        let p = parse(src).unwrap();
        let Action::If { else_branch, .. } = &p.machines[0].states[0].events[0].actions[0] else {
            panic!("expected if");
        };
        assert_eq!(else_branch.len(), 1);
        assert!(matches!(&else_branch[0], Action::If { .. }));
    }
}
