//! The seeder's compilation front-end: Almanac source → deployable,
//! analyzed machine definitions.
//!
//! Mirrors § III-B of the paper: a network operator supplies a task as a
//! set of machines plus values for each machine's `external` variables.
//! The seeder then (1) resolves `place` directives into seeds `S^m` with
//! candidate sets `N^s`, (2) analyzes `util` into constraints `C^s` and
//! utility `u^s`, and (3) derives poll variables' interval functions and
//! subjects for aggregation.

use std::collections::BTreeMap;

use farm_netsim::controller::SdnController;

use crate::analysis::{
    analyze_trigger, analyze_util, const_eval, resolve_placements, ConstEnv, SeedSpec,
    TriggerAnalysis, UtilAnalysis,
};
use crate::ast::{Machine, Program};
use crate::error::{AlmanacError, Result};
use crate::parser;
use crate::typeck;
use crate::value::Value;

/// Utility assumed for states without a `util` callback.
pub const DEFAULT_UTILITY: f64 = 1.0;

/// A fully compiled and analyzed machine, ready for placement and
/// deployment.
#[derive(Debug, Clone)]
pub struct CompiledMachine {
    /// Flattened, type-checked machine definition.
    pub machine: Machine,
    /// Auxiliary functions visible to the machine.
    pub functions: Vec<crate::ast::FunDecl>,
    /// Deployment-time constants: externals plus const initializers.
    pub consts: ConstEnv,
    /// Per-state utility analysis (`C^s`, `u^s`).
    pub utils: BTreeMap<String, UtilAnalysis>,
    /// Trigger variable analyses (poll/probe/time).
    pub triggers: Vec<TriggerAnalysis>,
    /// The seeds this machine instantiates and where each may go.
    pub seeds: Vec<SeedSpec>,
    /// Name of the initial state (the first declared state).
    pub initial_state: String,
}

impl CompiledMachine {
    /// Utility analysis of a state (default constant for states without
    /// `util`).
    pub fn util_of(&self, state: &str) -> UtilAnalysis {
        self.utils
            .get(state)
            .cloned()
            .unwrap_or_else(|| UtilAnalysis::constant(DEFAULT_UTILITY))
    }

    /// The machine's minimum utility — utility of the initial state at the
    /// cheapest feasible allocation. Drives Alg. 1's task ordering.
    pub fn min_utility(&self) -> f64 {
        self.util_of(&self.initial_state)
            .min_feasible()
            .map(|(_, u)| u)
            .unwrap_or(0.0)
    }

    /// Analysis of a trigger variable by name.
    pub fn trigger(&self, name: &str) -> Option<&TriggerAnalysis> {
        self.triggers.iter().find(|t| t.name == name)
    }
}

/// A compiled M&M task: one or more machines deployed together.
#[derive(Debug, Clone)]
pub struct CompiledTask {
    pub name: String,
    pub machines: Vec<CompiledMachine>,
}

impl CompiledTask {
    /// Total number of seeds across machines (`|S^t|`).
    pub fn num_seeds(&self) -> usize {
        self.machines.iter().map(|m| m.seeds.len()).sum()
    }

    /// Minimum utility of the task: the sum over machines of per-machine
    /// minimum utility times their seed count.
    pub fn min_utility(&self) -> f64 {
        self.machines
            .iter()
            .map(|m| m.min_utility() * m.seeds.len() as f64)
            .sum()
    }
}

/// Parses and type-checks a program (inheritance flattened).
///
/// # Errors
///
/// Any lex/parse/typecheck error with its source span.
pub fn frontend(src: &str) -> Result<Program> {
    let ast = parser::parse(src)?;
    typeck::check(&ast)
}

/// Compiles one machine of a checked program with the given `external`
/// assignments.
///
/// # Errors
///
/// Analysis errors (missing externals, non-constant placement filters,
/// non-linear utilities/intervals, unresolvable placements).
pub fn compile_machine(
    program: &Program,
    machine_name: &str,
    externals: &ConstEnv,
    controller: &SdnController<'_>,
) -> Result<CompiledMachine> {
    let machine = program
        .machine(machine_name)
        .ok_or_else(|| {
            AlmanacError::analysis(
                Default::default(),
                format!("unknown machine `{machine_name}`"),
            )
        })?
        .clone();

    // Build the constant environment: externals take precedence, then
    // constant initializers evaluated in declaration order.
    let mut consts = ConstEnv::new();
    for v in &machine.vars {
        if v.external {
            match externals.get(&v.name) {
                Some(val) => {
                    consts.insert(v.name.clone(), val.clone());
                }
                None => match &v.init {
                    Some(init) => {
                        let val = const_eval(init, &consts)?;
                        consts.insert(v.name.clone(), val);
                    }
                    None => {
                        return Err(AlmanacError::analysis(
                            v.span,
                            format!(
                                "external variable `{}` of `{}` has no value and no default",
                                v.name, machine.name
                            ),
                        ))
                    }
                },
            }
        } else if v.trigger().is_none() {
            if let Some(init) = &v.init {
                // Non-constant initializers are runtime state; skip them.
                if let Ok(val) = const_eval(init, &consts) {
                    consts.insert(v.name.clone(), val);
                }
            }
        }
    }
    // Reject unknown externals early (typo protection).
    for name in externals.keys() {
        let known = machine.vars.iter().any(|v| v.external && v.name == *name);
        if !known {
            return Err(AlmanacError::analysis(
                machine.span,
                format!("`{}` has no external variable `{name}`", machine.name),
            ));
        }
    }

    let seeds = resolve_placements(&machine, &consts, controller)?;

    let mut utils = BTreeMap::new();
    for s in &machine.states {
        if let Some(u) = &s.util {
            utils.insert(s.name.clone(), analyze_util(u, &consts)?);
        }
    }

    let mut triggers = Vec::new();
    for v in machine.trigger_vars() {
        triggers.push(analyze_trigger(v, &consts)?);
    }

    let initial_state = machine.states[0].name.clone();
    Ok(CompiledMachine {
        functions: program.functions.clone(),
        consts,
        utils,
        triggers,
        seeds,
        initial_state,
        machine,
    })
}

/// Compiles a whole task: every machine of `src`, with per-machine
/// external assignments.
///
/// # Errors
///
/// See [`frontend`] and [`compile_machine`].
pub fn compile_task(
    task_name: &str,
    src: &str,
    externals: &BTreeMap<String, ConstEnv>,
    controller: &SdnController<'_>,
) -> Result<CompiledTask> {
    let program = frontend(src)?;
    let empty = ConstEnv::new();
    let mut machines = Vec::new();
    for m in &program.machines {
        let ext = externals.get(&m.name).unwrap_or(&empty);
        machines.push(compile_machine(&program, &m.name, ext, controller)?);
    }
    Ok(CompiledTask {
        name: task_name.to_string(),
        machines,
    })
}

/// One compile error attributed to a machine (or to the whole program).
#[derive(Debug, Clone)]
pub struct MachineDiagnostic {
    /// Machine the error belongs to; empty for whole-program failures
    /// (lex, parse, typecheck), which precede machine boundaries.
    pub machine: String,
    pub error: AlmanacError,
}

/// Outcome of [`compile_task_with_diagnostics`]: the compiled task when
/// every machine compiled, else `None` plus everything that went wrong.
#[derive(Debug)]
pub struct CompileReport {
    pub task: Option<CompiledTask>,
    pub diagnostics: Vec<MachineDiagnostic>,
}

/// Like [`compile_task`], but keeps going past a failing machine so a
/// submission surface (farmd's `SubmitProgram`) can report *all* broken
/// machines in one round instead of one error per round-trip. Frontend
/// failures still end the compile — there is no program to walk.
pub fn compile_task_with_diagnostics(
    task_name: &str,
    src: &str,
    externals: &BTreeMap<String, ConstEnv>,
    controller: &SdnController<'_>,
) -> CompileReport {
    let program = match frontend(src) {
        Ok(p) => p,
        Err(error) => {
            return CompileReport {
                task: None,
                diagnostics: vec![MachineDiagnostic {
                    machine: String::new(),
                    error,
                }],
            }
        }
    };
    let empty = ConstEnv::new();
    let mut machines = Vec::new();
    let mut diagnostics = Vec::new();
    for m in &program.machines {
        let ext = externals.get(&m.name).unwrap_or(&empty);
        match compile_machine(&program, &m.name, ext, controller) {
            Ok(cm) => machines.push(cm),
            Err(error) => diagnostics.push(MachineDiagnostic {
                machine: m.name.clone(),
                error,
            }),
        }
    }
    let task = if diagnostics.is_empty() {
        Some(CompiledTask {
            name: task_name.to_string(),
            machines,
        })
    } else {
        None
    };
    CompileReport { task, diagnostics }
}

/// Convenience: an external-assignment environment from `(name, value)`
/// pairs.
pub fn externals(pairs: &[(&str, Value)]) -> ConstEnv {
    pairs
        .iter()
        .map(|(n, v)| (n.to_string(), v.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use farm_netsim::switch::SwitchModel;
    use farm_netsim::topology::Topology;

    fn fabric() -> Topology {
        Topology::spine_leaf(2, 3, SwitchModel::test_model(8), SwitchModel::test_model(8))
    }

    const HH: &str = r#"
        machine HH {
          place all;
          poll pollStats = Poll { .ival = 10/res().PCIe, .what = port ANY };
          external long threshold = 1000;
          list hitters;
          state observe {
            util (res) {
              if (res.vCPU >= 1 and res.RAM >= 100) then {
                return min(res.vCPU, res.PCIe);
              }
            }
            when (pollStats as stats) do { transit HHdetected; }
          }
          state HHdetected {
            util (res) { return 100; }
            when (enter) do { send hitters to harvester; transit observe; }
          }
          when (recv long newTh from harvester) do { threshold = newTh; }
        }
    "#;

    #[test]
    fn compiles_hh_end_to_end() {
        let topo = fabric();
        let ctl = SdnController::new(&topo);
        let program = frontend(HH).unwrap();
        let cm = compile_machine(
            &program,
            "HH",
            &externals(&[("threshold", Value::Int(5000))]),
            &ctl,
        )
        .unwrap();
        assert_eq!(cm.seeds.len(), 5, "place all on 5 switches");
        assert_eq!(cm.initial_state, "observe");
        assert_eq!(cm.consts.get("threshold"), Some(&Value::Int(5000)));
        assert_eq!(cm.triggers.len(), 1);
        assert_eq!(cm.utils.len(), 2);
        // min utility of observe: min(vCPU, PCIe) at vCPU=1, RAM=100 → 0
        // (PCIe unconstrained at 0).
        assert_eq!(cm.min_utility(), 0.0);
    }

    #[test]
    fn default_external_value_is_used() {
        let topo = fabric();
        let ctl = SdnController::new(&topo);
        let program = frontend(HH).unwrap();
        let cm = compile_machine(&program, "HH", &ConstEnv::new(), &ctl).unwrap();
        assert_eq!(cm.consts.get("threshold"), Some(&Value::Int(1000)));
    }

    #[test]
    fn unknown_external_is_rejected() {
        let topo = fabric();
        let ctl = SdnController::new(&topo);
        let program = frontend(HH).unwrap();
        let err = compile_machine(
            &program,
            "HH",
            &externals(&[("thresold", Value::Int(1))]), // typo
            &ctl,
        )
        .unwrap_err();
        assert!(err.message.contains("no external variable"), "{err}");
    }

    #[test]
    fn missing_external_without_default_fails() {
        let src = r#"
            machine M {
              place any;
              external long must_be_set;
              state s { }
            }
        "#;
        let topo = fabric();
        let ctl = SdnController::new(&topo);
        let program = frontend(src).unwrap();
        let err = compile_machine(&program, "M", &ConstEnv::new(), &ctl).unwrap_err();
        assert!(err.message.contains("no value and no default"), "{err}");
    }

    #[test]
    fn task_aggregates_machines() {
        let topo = fabric();
        let ctl = SdnController::new(&topo);
        let task = compile_task("hh-task", HH, &BTreeMap::new(), &ctl).unwrap();
        assert_eq!(task.machines.len(), 1);
        assert_eq!(task.num_seeds(), 5);
    }

    #[test]
    fn diagnostics_compile_reports_every_broken_machine() {
        // Two broken machines (missing externals) and one good one: the
        // report must name both failures, not stop at the first.
        let src = r#"
            machine A { place any; external long a; state s { } }
            machine B { place any; state s { } }
            machine C { place any; external long c; state s { } }
        "#;
        let topo = fabric();
        let ctl = SdnController::new(&topo);
        let report = compile_task_with_diagnostics("t", src, &BTreeMap::new(), &ctl);
        assert!(report.task.is_none());
        let machines: Vec<&str> = report
            .diagnostics
            .iter()
            .map(|d| d.machine.as_str())
            .collect();
        assert_eq!(machines, ["A", "C"]);
        for d in &report.diagnostics {
            assert!(d.error.message.contains("no value and no default"));
        }
    }

    #[test]
    fn diagnostics_compile_succeeds_like_compile_task() {
        let topo = fabric();
        let ctl = SdnController::new(&topo);
        let report = compile_task_with_diagnostics("hh-task", HH, &BTreeMap::new(), &ctl);
        assert!(report.diagnostics.is_empty());
        assert_eq!(report.task.unwrap().num_seeds(), 5);
    }

    #[test]
    fn diagnostics_compile_surfaces_frontend_errors() {
        let topo = fabric();
        let ctl = SdnController::new(&topo);
        let report = compile_task_with_diagnostics("t", "machine { nope", &BTreeMap::new(), &ctl);
        assert!(report.task.is_none());
        assert_eq!(report.diagnostics.len(), 1);
        assert!(report.diagnostics[0].machine.is_empty());
    }

    #[test]
    fn states_without_util_get_default_utility() {
        let src = "machine M { place any; state s { } }";
        let topo = fabric();
        let ctl = SdnController::new(&topo);
        let program = frontend(src).unwrap();
        let cm = compile_machine(&program, "M", &ConstEnv::new(), &ctl).unwrap();
        let u = cm.util_of("s");
        assert_eq!(
            u.eval(&farm_netsim::switch::Resources::ZERO),
            Some(DEFAULT_UTILITY)
        );
    }
}
