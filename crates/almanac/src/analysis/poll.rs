//! Static analysis of trigger variables (§ III-B c of the paper):
//! polling interval functions `y.ival(r̄)`, polling subjects `y.what`
//! (through the filter-encoding `φ_enc`), and plain timer periods.

use farm_netsim::types::{FilterAtom, FilterFormula, PortSel};

use super::consteval::{const_eval, ConstEnv};
use super::poly::Ratio;
use super::util::resource_ratio_no_param;
use crate::ast::*;
use crate::error::{AlmanacError, Result};
use crate::value::Value;

/// What a polling request reads from the ASIC — the output of `φ_enc`.
/// Subjects are canonical so the soil can aggregate identical requests
/// from different seeds (§ IV-B aggregation benefits).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PollSubject {
    /// Counters of every port.
    AllPorts,
    /// Counters of one port.
    Port(u16),
    /// Counters of monitoring TCAM rules matching a canonical pattern.
    Rule(String),
}

/// Analysis result for one trigger variable.
#[derive(Debug, Clone, PartialEq)]
pub struct TriggerAnalysis {
    pub name: String,
    pub kind: TriggerType,
    /// Interval in milliseconds as a function of allocated resources
    /// (`y.ival(r̄)`); constant for `time` triggers.
    pub ival: Ratio,
    /// Polling subjects (`y.what` through `φ_enc`); empty for `time`.
    pub subjects: Vec<PollSubject>,
    /// The raw filter formula of `.what` (used to install probe filters).
    pub what: Option<FilterFormula>,
}

/// The filter-encoding function `φ_enc`: maps a closed filter formula to
/// the set of polling subjects it requires.
pub fn encode_filter(f: &FilterFormula) -> Vec<PollSubject> {
    let atoms = f.atoms();
    let mut ports: Vec<PollSubject> = Vec::new();
    for a in &atoms {
        if let FilterAtom::IfPort(sel) = a {
            match sel {
                PortSel::Any => return vec![PollSubject::AllPorts],
                PortSel::Id(i) => {
                    let s = PollSubject::Port(*i);
                    if !ports.contains(&s) {
                        ports.push(s);
                    }
                }
            }
        }
    }
    if !ports.is_empty() {
        ports.sort();
        return ports;
    }
    // Flow-level filter: polled through matching monitoring TCAM rules,
    // keyed by the canonical pattern text.
    vec![PollSubject::Rule(f.to_string())]
}

/// Analyzes one trigger variable declaration.
///
/// # Errors
///
/// Analysis-phase errors when the initializer is missing/malformed, the
/// interval's *inverse* is not linear in resources (the paper's MILP
/// requirement, § IV-D), or the subject filter is not a deployment-time
/// constant.
pub fn analyze_trigger(var: &VarDecl, consts: &ConstEnv) -> Result<TriggerAnalysis> {
    let kind = var.trigger().ok_or_else(|| {
        AlmanacError::analysis(
            var.span,
            format!("`{}` is not a trigger variable", var.name),
        )
    })?;
    match kind {
        TriggerType::Time => {
            let e = var.init.as_ref().ok_or_else(|| {
                AlmanacError::analysis(var.span, "time trigger requires a period initializer")
            })?;
            let v = const_eval(e, consts)?;
            let ms = v.as_f64().ok_or_else(|| {
                AlmanacError::analysis(e.span(), "time trigger period must be numeric (ms)")
            })?;
            if ms <= 0.0 {
                return Err(AlmanacError::analysis(
                    e.span(),
                    "time trigger period must be positive",
                ));
            }
            Ok(TriggerAnalysis {
                name: var.name.clone(),
                kind,
                ival: Ratio::constant(ms),
                subjects: Vec::new(),
                what: None,
            })
        }
        TriggerType::Poll | TriggerType::Probe => {
            let Some(Expr::StructLit { fields, .. }) = &var.init else {
                return Err(AlmanacError::analysis(
                    var.span,
                    format!("`{}` requires a Poll/Probe initializer", var.name),
                ));
            };
            let ival_expr = fields
                .iter()
                .find(|(n, _)| n == "ival")
                .map(|(_, e)| e)
                .ok_or_else(|| AlmanacError::analysis(var.span, "missing .ival"))?;
            let what_expr = fields
                .iter()
                .find(|(n, _)| n == "what")
                .map(|(_, e)| e)
                .ok_or_else(|| AlmanacError::analysis(var.span, "missing .what"))?;

            let ival = resource_ratio_no_param(ival_expr, consts)?;
            // The polling demand 1/ival must stay linear for placement
            // optimization, which requires a constant numerator.
            if !ival.num.is_constant() {
                return Err(AlmanacError::analysis(
                    ival_expr.span(),
                    ".ival must be constant or of the form c / linear(resources) \
                     so that the polling demand 1/ival stays linear",
                ));
            }
            let what = match const_eval(what_expr, consts)? {
                Value::Filter(f) => f,
                other => {
                    return Err(AlmanacError::analysis(
                        what_expr.span(),
                        format!(".what must be a filter, found {}", other.type_name()),
                    ))
                }
            };
            let subjects = encode_filter(&what);
            Ok(TriggerAnalysis {
                name: var.name.clone(),
                kind,
                ival,
                subjects,
                what: Some(what),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use farm_netsim::switch::Resources;

    fn first_trigger(src: &str) -> Result<TriggerAnalysis> {
        let p = parse(src).unwrap();
        let var = p.machines[0]
            .trigger_vars()
            .next()
            .expect("machine has a trigger var")
            .clone();
        analyze_trigger(&var, &ConstEnv::new())
    }

    #[test]
    fn analyzes_the_papers_poll_example() {
        // y.ival(r̄) = 10/r_PCIe; y.what = all ports.
        let t = first_trigger(
            "machine HH { poll p = Poll { .ival = 10/res().PCIe, .what = port ANY }; state s { } }",
        )
        .unwrap();
        assert_eq!(t.kind, TriggerType::Poll);
        assert_eq!(t.subjects, vec![PollSubject::AllPorts]);
        let r = Resources::new(0.0, 0.0, 0.0, 5.0);
        assert_eq!(t.ival.eval(&r), 2.0);
        // Demand is linear: 1/ival = PCIe/10.
        let demand = t.ival.recip().as_poly().unwrap();
        assert!((demand.eval(&r) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn constant_interval_and_rule_subject() {
        let t = first_trigger(
            r#"machine M { poll p = Poll { .ival = 10, .what = dstIP "10.0.1.0/24" }; state s { } }"#,
        )
        .unwrap();
        assert!(t.ival.is_constant());
        assert_eq!(t.subjects.len(), 1);
        assert!(matches!(&t.subjects[0], PollSubject::Rule(_)));
    }

    #[test]
    fn specific_ports_encode_individually() {
        let t = first_trigger(
            "machine M { poll p = Poll { .ival = 5, .what = port 3 or port 7 }; state s { } }",
        )
        .unwrap();
        assert_eq!(t.subjects, vec![PollSubject::Port(3), PollSubject::Port(7)]);
    }

    #[test]
    fn rejects_nonlinear_demand() {
        // ival = PCIe (linear) → demand 1/PCIe nonlinear → reject.
        let e = first_trigger(
            "machine M { poll p = Poll { .ival = res().PCIe, .what = port ANY }; state s { } }",
        )
        .unwrap_err();
        assert!(e.message.contains("1/ival"), "{e}");
    }

    #[test]
    fn time_trigger_period() {
        let t = first_trigger("machine M { time tick = 250; state s { } }").unwrap();
        assert_eq!(t.kind, TriggerType::Time);
        assert_eq!(t.ival.eval(&Resources::ZERO), 250.0);
        assert!(t.subjects.is_empty());
    }

    #[test]
    fn rejects_nonpositive_time_period() {
        assert!(first_trigger("machine M { time tick = 0; state s { } }").is_err());
    }

    #[test]
    fn identical_filters_share_canonical_subjects() {
        let mk = |src: &str| first_trigger(src).unwrap().subjects;
        let a = mk(
            r#"machine M { poll p = Poll { .ival = 1, .what = dstIP "10.0.0.0/8" and dstPort 80 }; state s { } }"#,
        );
        let b = mk(
            r#"machine N { poll q = Poll { .ival = 9, .what = dstIP "10.0.0.0/8" and dstPort 80 }; state s { } }"#,
        );
        assert_eq!(a, b, "identical .what must aggregate to the same subject");
    }
}
