//! Static analysis of `util` callbacks → resource constraints `C^s(r̄)`
//! and utility functions `u^s(r̄)` (§ III-B b of the paper).
//!
//! Each root-to-`return` path of the (already restriction-checked) body
//! becomes a [`UtilBranch`]: the conjunction of conditions along the path,
//! converted by the constraint interpretation `κ^s⟦·⟧` into polynomials
//! that must be non-negative, plus the returned expression converted by
//! `ε^s⟦·⟧` into a [`UtilExpr`]. `or` operators and multiple `if`s produce
//! several branches — the paper's "splitting the seed into several copies,
//! at most one is to be placed".

use farm_netsim::switch::{ResourceKind, Resources};

use super::consteval::{const_eval, ConstEnv};
use super::poly::{Poly, Ratio, UtilExpr};
use crate::ast::*;
use crate::error::{AlmanacError, Result};

/// Result of analyzing one state's `util` callback.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilAnalysis {
    pub branches: Vec<UtilBranch>,
}

/// One feasibility region and its utility.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilBranch {
    /// Polynomials that must all be `≥ 0` for this branch to apply.
    pub constraints: Vec<Poly>,
    /// Utility returned when the constraints hold.
    pub utility: UtilExpr,
}

impl UtilAnalysis {
    /// A trivial analysis for states without `util`: always placeable with
    /// the given constant utility and no resource demands.
    pub fn constant(utility: f64) -> UtilAnalysis {
        UtilAnalysis {
            branches: vec![UtilBranch {
                constraints: Vec::new(),
                utility: UtilExpr::Poly(Poly::constant(utility)),
            }],
        }
    }

    /// Utility at a resource vector: the first branch whose constraints
    /// hold decides (branches are ordered by source position, mirroring
    /// execution order). `None` when the point is outside every domain.
    pub fn eval(&self, r: &Resources) -> Option<f64> {
        self.branches
            .iter()
            .find(|b| b.constraints.iter().all(|c| c.eval(r) >= -1e-9))
            .map(|b| b.utility.eval(r))
    }

    /// A minimal resource vector satisfying some branch, together with the
    /// utility there — the "minimum utility" that drives the heuristic's
    /// task ordering (Alg. 1 step 1). Resolves single-variable constraints
    /// exactly and relaxes multi-variable ones by a few lifting passes.
    pub fn min_feasible(&self) -> Option<(Resources, f64)> {
        let mut best: Option<(Resources, f64)> = None;
        for b in &self.branches {
            if let Some(r) = branch_min_point(b) {
                let u = b.utility.eval(&r);
                if best.as_ref().is_none_or(|(_, bu)| u < *bu) {
                    best = Some((r, u));
                }
            }
        }
        best
    }
}

fn branch_min_point(b: &UtilBranch) -> Option<Resources> {
    let mut r = Resources::ZERO;
    // Lift resources until all constraints hold (or give up).
    for _ in 0..8 {
        let mut all_ok = true;
        for c in &b.constraints {
            if c.eval(&r) < -1e-9 {
                all_ok = false;
                // Raise the first positive-coefficient resource enough to
                // satisfy this constraint at the current point.
                let deficit = -c.eval(&r);
                match (0..4).find(|i| c.coeffs[*i] > 0.0) {
                    Some(i) => r.0[i] += deficit / c.coeffs[i],
                    None => return None, // no way to satisfy by adding
                }
            }
        }
        if all_ok {
            return Some(r);
        }
    }
    // Final check after lifting passes.
    b.constraints
        .iter()
        .all(|c| c.eval(&r) >= -1e-9)
        .then_some(r)
}

/// Analyzes a `util` declaration against the machine's constant
/// environment.
///
/// # Errors
///
/// Analysis-phase errors for non-linear expressions, `min`/`max` inside
/// conditions, or fall-through `if` branches that do not return.
pub fn analyze_util(decl: &UtilDecl, consts: &ConstEnv) -> Result<UtilAnalysis> {
    let cx = Cx {
        param: &decl.param,
        consts,
    };
    let mut branches = Vec::new();
    walk(&decl.body, &cx, Vec::new(), &mut branches)?;
    Ok(UtilAnalysis { branches })
}

pub(crate) struct Cx<'a> {
    pub(crate) param: &'a str,
    pub(crate) consts: &'a ConstEnv,
}

fn walk(actions: &[Action], cx: &Cx<'_>, path: Vec<Poly>, out: &mut Vec<UtilBranch>) -> Result<()> {
    for (idx, a) in actions.iter().enumerate() {
        match a {
            Action::Return { value, span } => {
                let e = value
                    .as_ref()
                    .ok_or_else(|| AlmanacError::analysis(*span, "util must return a value"))?;
                let utility = util_expr(e, cx)?;
                out.push(UtilBranch {
                    constraints: path,
                    utility,
                });
                return Ok(());
            }
            Action::If {
                cond,
                then_branch,
                else_branch,
                span,
            } => {
                let dnf = cond_to_dnf(cond, cx)?;
                for conj in &dnf {
                    let mut p = path.clone();
                    p.extend(conj.iter().copied());
                    walk(then_branch, cx, p, out)?;
                }
                let has_tail = !else_branch.is_empty() || idx + 1 < actions.len();
                if has_tail {
                    // Statements after the `if` (or in `else`) execute when
                    // the condition is false; require the then-branch to
                    // return so paths stay disjoint.
                    if !ends_with_return(then_branch) {
                        return Err(AlmanacError::analysis(
                            *span,
                            "util if-branches followed by more code must end with return",
                        ));
                    }
                    let neg = negate_dnf(&dnf, *span)?;
                    for conj in &neg {
                        let mut p = path.clone();
                        p.extend(conj.iter().copied());
                        let mut rest: Vec<Action> = else_branch.clone();
                        rest.extend_from_slice(&actions[idx + 1..]);
                        walk(&rest, cx, p, out)?;
                    }
                    return Ok(());
                }
            }
            other => {
                return Err(AlmanacError::analysis(
                    other.span(),
                    "util bodies may only contain if-then-else and return",
                ))
            }
        }
    }
    // Falling off the end yields no utility for this path (domain hole).
    Ok(())
}

fn ends_with_return(actions: &[Action]) -> bool {
    match actions.last() {
        Some(Action::Return { .. }) => true,
        Some(Action::If {
            then_branch,
            else_branch,
            ..
        }) => {
            !else_branch.is_empty()
                && ends_with_return(then_branch)
                && ends_with_return(else_branch)
        }
        _ => false,
    }
}

/// Converts a condition into disjunctive normal form over `poly ≥ 0`
/// atoms — the constraint interpretation `κ^s⟦·⟧`.
fn cond_to_dnf(e: &Expr, cx: &Cx<'_>) -> Result<Vec<Vec<Poly>>> {
    match e {
        Expr::Lit(Literal::Bool(true), _) => Ok(vec![vec![]]),
        Expr::Lit(Literal::Bool(false), _) => Ok(vec![]),
        Expr::Binary(BinOp::And, a, b, _) => {
            let da = cond_to_dnf(a, cx)?;
            let db = cond_to_dnf(b, cx)?;
            let mut out = Vec::new();
            for ca in &da {
                for cb in &db {
                    let mut c = ca.clone();
                    c.extend(cb.iter().copied());
                    out.push(c);
                }
            }
            Ok(out)
        }
        Expr::Binary(BinOp::Or, a, b, _) => {
            let mut out = cond_to_dnf(a, cx)?;
            out.extend(cond_to_dnf(b, cx)?);
            Ok(out)
        }
        Expr::Binary(BinOp::Cmp(op), a, b, span) => {
            let pa = linear_expr(a, cx)?;
            let pb = linear_expr(b, cx)?;
            let diff_ab = pa.sub(&pb); // a - b
            let atoms = match op {
                CmpOp::Ge | CmpOp::Gt => vec![diff_ab],
                CmpOp::Le | CmpOp::Lt => vec![diff_ab.neg()],
                CmpOp::Eq => vec![diff_ab, diff_ab.neg()],
                CmpOp::Ne => {
                    return Err(AlmanacError::analysis(
                        *span,
                        "`<>` is not allowed in util conditions",
                    ))
                }
            };
            Ok(vec![atoms])
        }
        other => Err(AlmanacError::analysis(
            other.span(),
            "util conditions must be comparisons combined with and/or",
        )),
    }
}

/// Negates a DNF (yielding another DNF). Boundary points are shared
/// between a branch and its negation, matching the paper's non-strict
/// constraint semantics.
fn negate_dnf(dnf: &[Vec<Poly>], span: crate::error::Span) -> Result<Vec<Vec<Poly>>> {
    // not (C1 or C2 …) = not C1 and not C2 …
    // not (a and b)    = not a or not b
    let mut acc: Vec<Vec<Poly>> = vec![vec![]];
    for conj in dnf {
        let negs: Vec<Poly> = conj.iter().map(Poly::neg).collect();
        let mut next = Vec::new();
        for base in &acc {
            for n in &negs {
                let mut c = base.clone();
                c.push(*n);
                next.push(c);
            }
        }
        if next.len() > 64 {
            return Err(AlmanacError::analysis(
                span,
                "util condition too complex to negate for else-branch analysis",
            ));
        }
        acc = next;
    }
    Ok(acc)
}

/// The expression interpretation `ε^s⟦·⟧` extended with min/max trees.
fn util_expr(e: &Expr, cx: &Cx<'_>) -> Result<UtilExpr> {
    match e {
        Expr::Call { name, args, span } if name == "min" || name == "max" => {
            if args.len() != 2 {
                return Err(AlmanacError::analysis(
                    *span,
                    format!("{name} takes two arguments"),
                ));
            }
            let a = Box::new(util_expr(&args[0], cx)?);
            let b = Box::new(util_expr(&args[1], cx)?);
            Ok(if name == "min" {
                UtilExpr::Min(a, b)
            } else {
                UtilExpr::Max(a, b)
            })
        }
        _ => Ok(UtilExpr::Poly(linear_expr(e, cx)?)),
    }
}

/// Evaluates an expression to a linear polynomial over resources.
fn linear_expr(e: &Expr, cx: &Cx<'_>) -> Result<Poly> {
    let r = resource_ratio(e, cx)?;
    r.as_poly()
        .ok_or_else(|| AlmanacError::analysis(e.span(), "expression must be linear in resources"))
}

/// Evaluates an expression to a [`Ratio`] over resources. Shared with the
/// poll-interval analysis.
pub(crate) fn resource_ratio(e: &Expr, cx: &Cx<'_>) -> Result<Ratio> {
    match e {
        Expr::Lit(Literal::Int(i), _) => Ok(Ratio::constant(*i as f64)),
        Expr::Lit(Literal::Float(f), _) => Ok(Ratio::constant(*f)),
        Expr::Var(name, span) => {
            let v = const_eval(e, cx.consts).map_err(|_| {
                AlmanacError::analysis(
                    *span,
                    format!("`{name}` is neither a resource field nor a constant"),
                )
            })?;
            let x = v
                .as_f64()
                .ok_or_else(|| AlmanacError::analysis(*span, format!("`{name}` is not numeric")))?;
            Ok(Ratio::constant(x))
        }
        Expr::Field(base, field, span) => {
            let is_res = match base.as_ref() {
                Expr::Var(n, _) => n == cx.param,
                Expr::Call { name, args, .. } => name == "res" && args.is_empty(),
                _ => false,
            };
            if !is_res {
                return Err(AlmanacError::analysis(
                    *span,
                    "only res().<field> or the util parameter's fields are allowed",
                ));
            }
            let kind = ResourceKind::from_field_name(field).ok_or_else(|| {
                AlmanacError::analysis(*span, format!("unknown resource field `.{field}`"))
            })?;
            Ok(Ratio::from_poly(Poly::var(kind)))
        }
        Expr::Unary(UnOp::Neg, inner, _) => Ok(resource_ratio(inner, cx)?.scale(-1.0)),
        Expr::Binary(op, a, b, span) => {
            let ra = resource_ratio(a, cx)?;
            let rb = resource_ratio(b, cx)?;
            let res = match op {
                BinOp::Add => ra.add(&rb),
                BinOp::Sub => ra.sub(&rb),
                BinOp::Mul => ra.mul(&rb),
                BinOp::Div => ra.div(&rb),
                _ => {
                    return Err(AlmanacError::analysis(
                        *span,
                        "only + - * / are allowed in resource expressions",
                    ))
                }
            };
            res.map_err(|err| AlmanacError::analysis(*span, err.to_string()))
        }
        other => Err(AlmanacError::analysis(
            other.span(),
            "expression cannot be interpreted over resources",
        )),
    }
}

/// Entry point for the poll analysis to reuse the resource-expression
/// evaluator without a `util` parameter in scope.
pub(crate) fn resource_ratio_no_param(e: &Expr, consts: &ConstEnv) -> Result<Ratio> {
    let cx = Cx {
        param: "\u{0}no-param\u{0}",
        consts,
    };
    resource_ratio(e, &cx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn analyze(util_src: &str) -> Result<UtilAnalysis> {
        let src = format!("machine M {{ state s {{ util (res) {util_src} }} }}");
        let p = parse(&src).unwrap();
        let u = p.machines[0].states[0].util.clone().unwrap();
        analyze_util(&u, &ConstEnv::new())
    }

    #[test]
    fn analyzes_the_papers_observe_util() {
        // κ⟦res.vCPU >= 1 and res.RAM >= 100⟧ = {r1-1, r2-100};
        // ε⟦min(res.vCPU, res.PCIe)⟧ = min(r1, r4).
        let a = analyze(
            "{ if (res.vCPU >= 1 and res.RAM >= 100) then { return min(res.vCPU, res.PCIe); } }",
        )
        .unwrap();
        assert_eq!(a.branches.len(), 1);
        let b = &a.branches[0];
        assert_eq!(b.constraints.len(), 2);
        assert_eq!(b.constraints[0].coeffs[0], 1.0);
        assert_eq!(b.constraints[0].constant, -1.0);
        assert_eq!(b.constraints[1].coeffs[1], 1.0);
        assert_eq!(b.constraints[1].constant, -100.0);
        let r = Resources::new(2.0, 200.0, 0.0, 1.5);
        assert_eq!(a.eval(&r), Some(1.5));
        // Outside the domain → no utility.
        assert_eq!(a.eval(&Resources::new(0.5, 200.0, 0.0, 1.0)), None);
    }

    #[test]
    fn constant_util() {
        let a = analyze("{ return 100; }").unwrap();
        assert_eq!(a.branches.len(), 1);
        assert!(a.branches[0].constraints.is_empty());
        assert_eq!(a.eval(&Resources::ZERO), Some(100.0));
    }

    #[test]
    fn or_splits_into_branches() {
        let a = analyze("{ if (res.vCPU >= 2 or res.RAM >= 500) then { return 10; } }").unwrap();
        assert_eq!(a.branches.len(), 2, "or must split the seed into copies");
    }

    #[test]
    fn else_negates_condition() {
        let a = analyze("{ if (res.vCPU >= 2) then { return 10; } else { return 1; } }").unwrap();
        assert_eq!(a.branches.len(), 2);
        assert_eq!(a.eval(&Resources::new(3.0, 0.0, 0.0, 0.0)), Some(10.0));
        assert_eq!(a.eval(&Resources::new(1.0, 0.0, 0.0, 0.0)), Some(1.0));
    }

    #[test]
    fn sequential_ifs_partition_the_domain() {
        let a = analyze(
            "{ if (res.vCPU >= 4) then { return 20; }
               if (res.vCPU >= 1) then { return 5; } }",
        )
        .unwrap();
        assert_eq!(a.branches.len(), 2);
        assert_eq!(a.eval(&Resources::new(5.0, 0.0, 0.0, 0.0)), Some(20.0));
        assert_eq!(a.eval(&Resources::new(2.0, 0.0, 0.0, 0.0)), Some(5.0));
        assert_eq!(a.eval(&Resources::new(0.5, 0.0, 0.0, 0.0)), None);
    }

    #[test]
    fn min_feasible_solves_single_var_constraints() {
        let a =
            analyze("{ if (res.vCPU >= 1 and res.RAM >= 100) then { return res.vCPU; } }").unwrap();
        let (r, u) = a.min_feasible().unwrap();
        assert!((r.get(ResourceKind::VCpu) - 1.0).abs() < 1e-9);
        assert!((r.get(ResourceKind::RamMb) - 100.0).abs() < 1e-9);
        assert!((u - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_nonlinear_utility() {
        let e = analyze("{ return res.vCPU * res.RAM; }").unwrap_err();
        assert!(e.message.contains("resource-dependent"), "{e}");
    }

    #[test]
    fn division_by_resource_in_condition_is_rejected() {
        // 1/vCPU >= 2 is not linear.
        let e = analyze("{ if (1 / res.vCPU >= 2) then { return 1; } }").unwrap_err();
        assert!(e.message.contains("linear"), "{e}");
    }

    #[test]
    fn fallthrough_if_must_return() {
        let e = analyze(
            "{ if (res.vCPU >= 1) then { if (res.RAM >= 1) then { return 1; } } return 2; }",
        )
        .unwrap_err();
        assert!(e.message.contains("end with return"), "{e}");
    }
}
