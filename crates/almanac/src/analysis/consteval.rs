//! Compile-time (seeder-side) evaluation of Almanac expressions.
//!
//! The seeder must fully evaluate the expressions inside `place` directives
//! and `poll`/`probe` subjects before deployment (§ III-B: "each `ex`
//! inside `Π_i` fully evaluated to constants"). This module implements that
//! evaluator over a constant environment of `external` assignments and
//! machine-variable initializers. Anything runtime-dependent (e.g.
//! `res()`) is reported as non-constant.

use std::collections::HashMap;

use farm_netsim::types::{FilterAtom, FilterFormula, PortSel, Prefix, Proto};

use crate::ast::*;
use crate::error::{AlmanacError, Result};
use crate::value::{ActionValue, RuleValue, Value};

/// Constant environment for seeder-side evaluation.
pub type ConstEnv = HashMap<String, Value>;

/// Evaluates `expr` to a constant [`Value`].
///
/// # Errors
///
/// Analysis-phase error when the expression references runtime state
/// (`res()`, trigger payloads, unknown variables) or is ill-formed.
pub fn const_eval(expr: &Expr, env: &ConstEnv) -> Result<Value> {
    match expr {
        Expr::Lit(l, _) => Ok(match l {
            Literal::Bool(b) => Value::Bool(*b),
            Literal::Int(i) => Value::Int(*i),
            Literal::Float(f) => Value::Float(*f),
            Literal::Str(s) => Value::Str(s.clone()),
        }),
        Expr::Var(name, span) => env.get(name).cloned().ok_or_else(|| {
            AlmanacError::analysis(*span, format!("`{name}` is not a compile-time constant"))
        }),
        Expr::Filter(f, span) => {
            let atom = match f {
                FilterExpr::SrcIp(e) => FilterAtom::SrcIp(eval_prefix(e, env)?),
                FilterExpr::DstIp(e) => FilterAtom::DstIp(eval_prefix(e, env)?),
                FilterExpr::SrcPort(e) => FilterAtom::SrcPort(eval_u16(e, env)?),
                FilterExpr::DstPort(e) => FilterAtom::DstPort(eval_u16(e, env)?),
                FilterExpr::Proto(e) => {
                    let v = const_eval(e, env)?;
                    let s = v.as_str().ok_or_else(|| {
                        AlmanacError::analysis(e.span(), "proto expects a string")
                    })?;
                    let p = match s {
                        "tcp" => Proto::Tcp,
                        "udp" => Proto::Udp,
                        "icmp" => Proto::Icmp,
                        other => {
                            return Err(AlmanacError::analysis(
                                e.span(),
                                format!("unknown protocol `{other}`"),
                            ))
                        }
                    };
                    FilterAtom::Proto(p)
                }
                FilterExpr::IfPort(e) => FilterAtom::IfPort(PortSel::Id(eval_u16(e, env)?)),
                FilterExpr::IfPortAny => FilterAtom::IfPort(PortSel::Any),
            };
            let _ = span;
            Ok(Value::Filter(FilterFormula::Atom(atom)))
        }
        Expr::Unary(UnOp::Not, inner, span) => match const_eval(inner, env)? {
            Value::Bool(b) => Ok(Value::Bool(!b)),
            Value::Filter(f) => Ok(Value::Filter(f.not())),
            other => Err(AlmanacError::analysis(
                *span,
                format!("`not` expects bool or filter, found {}", other.type_name()),
            )),
        },
        Expr::Unary(UnOp::Neg, inner, span) => match const_eval(inner, env)? {
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Float(f) => Ok(Value::Float(-f)),
            other => Err(AlmanacError::analysis(
                *span,
                format!("negation expects a number, found {}", other.type_name()),
            )),
        },
        Expr::Binary(op, a, b, span) => {
            let va = const_eval(a, env)?;
            let vb = const_eval(b, env)?;
            binary_op(*op, va, vb).map_err(|m| AlmanacError::analysis(*span, m))
        }
        Expr::Call { name, args, span } => {
            let vals: Vec<Value> = args
                .iter()
                .map(|a| const_eval(a, env))
                .collect::<Result<_>>()?;
            const_builtin(name, &vals)
                .ok_or_else(|| {
                    AlmanacError::analysis(
                        *span,
                        format!("`{name}` cannot be evaluated at deployment time"),
                    )
                })?
                .map_err(|m| AlmanacError::analysis(*span, m))
        }
        Expr::Field(_, _, span) => Err(AlmanacError::analysis(
            *span,
            "field access is not a compile-time constant",
        )),
        Expr::StructLit { name, fields, span } => {
            if name == "Rule" {
                let mut pattern = None;
                let mut action = None;
                for (fname, fexpr) in fields {
                    match fname.as_str() {
                        "pattern" => match const_eval(fexpr, env)? {
                            Value::Filter(f) => pattern = Some(f),
                            other => {
                                return Err(AlmanacError::analysis(
                                    fexpr.span(),
                                    format!(".pattern expects filter, found {}", other.type_name()),
                                ))
                            }
                        },
                        "act" => match const_eval(fexpr, env)? {
                            Value::Action(a) => action = Some(a),
                            other => {
                                return Err(AlmanacError::analysis(
                                    fexpr.span(),
                                    format!(".act expects action, found {}", other.type_name()),
                                ))
                            }
                        },
                        _ => {}
                    }
                }
                return Ok(Value::Rule(RuleValue {
                    pattern: pattern
                        .ok_or_else(|| AlmanacError::analysis(*span, "Rule requires .pattern"))?,
                    action: action
                        .ok_or_else(|| AlmanacError::analysis(*span, "Rule requires .act"))?,
                }));
            }
            Err(AlmanacError::analysis(
                *span,
                format!("structure `{name}` is not a compile-time constant"),
            ))
        }
    }
}

/// Constant-foldable subset of the runtime library.
fn const_builtin(name: &str, args: &[Value]) -> Option<std::result::Result<Value, String>> {
    let num2 = |f: fn(f64, f64) -> f64| -> std::result::Result<Value, String> {
        let a = args[0]
            .as_f64()
            .ok_or_else(|| format!("expected number, found {}", args[0].type_name()))?;
        let b = args[1]
            .as_f64()
            .ok_or_else(|| format!("expected number, found {}", args[1].type_name()))?;
        Ok(Value::Float(f(a, b)))
    };
    Some(match (name, args.len()) {
        ("min", 2) => num2(f64::min),
        ("max", 2) => num2(f64::max),
        ("abs", 1) => args[0]
            .as_f64()
            .map(|x| Value::Float(x.abs()))
            .ok_or_else(|| "abs expects a number".to_string()),
        ("action_drop", 0) => Ok(Value::Action(ActionValue::Drop)),
        ("action_count", 0) => Ok(Value::Action(ActionValue::Count)),
        ("action_mirror", 0) => Ok(Value::Action(ActionValue::Mirror)),
        ("action_rate_limit", 1) => args[0]
            .as_int()
            .map(|bps| Value::Action(ActionValue::RateLimit(bps.max(0) as u64)))
            .ok_or_else(|| "rate limit expects an integer".to_string()),
        ("action_set_qos", 1) => args[0]
            .as_int()
            .map(|q| Value::Action(ActionValue::SetQos(q.clamp(0, 255) as u8)))
            .ok_or_else(|| "qos expects an integer".to_string()),
        ("rule", 2) => match (&args[0], &args[1]) {
            (Value::Filter(f), Value::Action(a)) => Ok(Value::Rule(RuleValue {
                pattern: f.clone(),
                action: a.clone(),
            })),
            _ => Err("rule expects (filter, action)".to_string()),
        },
        _ => return None,
    })
}

/// Applies a binary operator to constant values (shared with the runtime
/// interpreter, which re-exports it).
pub fn binary_op(op: BinOp, a: Value, b: Value) -> std::result::Result<Value, String> {
    use BinOp::*;
    match op {
        And | Or => match (&a, &b) {
            (Value::Bool(x), Value::Bool(y)) => {
                Ok(Value::Bool(if op == And { *x && *y } else { *x || *y }))
            }
            (Value::Filter(_), Value::Filter(_)) => {
                let (Value::Filter(x), Value::Filter(y)) = (a, b) else {
                    unreachable!()
                };
                Ok(Value::Filter(if op == And { x.and(y) } else { x.or(y) }))
            }
            (x, y) => Err(format!(
                "and/or require two bools or two filters, found {} and {}",
                x.type_name(),
                y.type_name()
            )),
        },
        Add | Sub | Mul | Div => match (&a, &b) {
            (Value::Int(x), Value::Int(y)) => {
                let r = match op {
                    Add => x.checked_add(*y),
                    Sub => x.checked_sub(*y),
                    Mul => x.checked_mul(*y),
                    Div => {
                        if *y == 0 {
                            return Err("integer division by zero".into());
                        }
                        x.checked_div(*y)
                    }
                    _ => unreachable!(),
                };
                r.map(Value::Int).ok_or_else(|| "integer overflow".into())
            }
            _ => {
                let x = a
                    .as_f64()
                    .ok_or_else(|| format!("arithmetic on {}", a.type_name()))?;
                let y = b
                    .as_f64()
                    .ok_or_else(|| format!("arithmetic on {}", b.type_name()))?;
                let r = match op {
                    Add => x + y,
                    Sub => x - y,
                    Mul => x * y,
                    Div => {
                        if y == 0.0 {
                            return Err("division by zero".into());
                        }
                        x / y
                    }
                    _ => unreachable!(),
                };
                Ok(Value::Float(r))
            }
        },
        Cmp(c) => {
            // Numeric comparison when both sides are numbers; structural
            // equality otherwise.
            if let (Some(x), Some(y)) = (a.as_f64(), b.as_f64()) {
                let r = match c {
                    CmpOp::Eq => x == y,
                    CmpOp::Ne => x != y,
                    CmpOp::Le => x <= y,
                    CmpOp::Ge => x >= y,
                    CmpOp::Lt => x < y,
                    CmpOp::Gt => x > y,
                };
                return Ok(Value::Bool(r));
            }
            match c {
                CmpOp::Eq => Ok(Value::Bool(a == b)),
                CmpOp::Ne => Ok(Value::Bool(a != b)),
                _ => Err(format!(
                    "ordering comparison on {} and {}",
                    a.type_name(),
                    b.type_name()
                )),
            }
        }
    }
}

fn eval_prefix(e: &Expr, env: &ConstEnv) -> Result<Prefix> {
    let v = const_eval(e, env)?;
    let s = v
        .as_str()
        .ok_or_else(|| AlmanacError::analysis(e.span(), "IP filter expects a string"))?;
    s.parse::<Prefix>()
        .map_err(|err| AlmanacError::analysis(e.span(), err.to_string()))
}

fn eval_u16(e: &Expr, env: &ConstEnv) -> Result<u16> {
    let v = const_eval(e, env)?;
    let i = v
        .as_int()
        .ok_or_else(|| AlmanacError::analysis(e.span(), "port expects an integer"))?;
    u16::try_from(i).map_err(|_| AlmanacError::analysis(e.span(), format!("port {i} out of range")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn eval_str(expr_src: &str, env: &ConstEnv) -> Result<Value> {
        // Wrap the expression in a machine variable initializer to reuse
        // the parser.
        let src = format!("machine M {{ list probeDummy = {expr_src}; state s {{ }} }}");
        let p = parse(&src).unwrap();
        let init = p.machines[0].vars[0].init.clone().unwrap();
        const_eval(&init, env)
    }

    #[test]
    fn evaluates_the_papers_filter_example() {
        let v = eval_str(
            r#"srcIP "10.1.1.4" and dstIP "10.0.1.0/24""#,
            &ConstEnv::new(),
        )
        .unwrap();
        let Value::Filter(f) = v else {
            panic!("expected filter")
        };
        assert_eq!(f.atoms().len(), 2);
        assert_eq!(f.src_prefix().unwrap().to_string(), "10.1.1.4/32");
    }

    #[test]
    fn arithmetic_and_comparison() {
        let env = ConstEnv::new();
        assert_eq!(eval_str("2 + 3 * 4", &env).unwrap(), Value::Int(14));
        assert_eq!(eval_str("10 / 4", &env).unwrap(), Value::Int(2));
        assert_eq!(eval_str("10.0 / 4", &env).unwrap(), Value::Float(2.5));
        assert_eq!(
            eval_str("3 <= 4 and 1 <> 2", &env).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(eval_str("min(3, 7)", &env).unwrap(), Value::Float(3.0));
    }

    #[test]
    fn environment_variables_resolve() {
        let mut env = ConstEnv::new();
        env.insert("threshold".into(), Value::Int(500));
        assert_eq!(eval_str("threshold * 2", &env).unwrap(), Value::Int(1000));
        assert!(eval_str("unknown + 1", &env).is_err());
    }

    #[test]
    fn res_is_not_constant() {
        let e = eval_str("res()", &ConstEnv::new()).unwrap_err();
        assert!(e.message.contains("deployment time"), "{e}");
    }

    #[test]
    fn action_and_rule_constants() {
        let env = ConstEnv::new();
        let v = eval_str(r#"rule(dstPort 80, action_rate_limit(1000))"#, &env).unwrap();
        let Value::Rule(r) = v else { panic!() };
        assert_eq!(r.action, ActionValue::RateLimit(1000));
        let v2 = eval_str(
            r#"Rule { .pattern = dstPort 80, .act = action_drop() }"#,
            &env,
        )
        .unwrap();
        assert!(matches!(v2, Value::Rule(_)));
    }

    #[test]
    fn division_by_zero_is_reported() {
        assert!(eval_str("1 / 0", &ConstEnv::new()).is_err());
        assert!(eval_str("1.0 / 0.0", &ConstEnv::new()).is_err());
    }

    #[test]
    fn port_any_filter() {
        let v = eval_str("port ANY", &ConstEnv::new()).unwrap();
        let Value::Filter(FilterFormula::Atom(FilterAtom::IfPort(PortSel::Any))) = v else {
            panic!("expected port ANY atom, got {v:?}")
        };
    }
}
