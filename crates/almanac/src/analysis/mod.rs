//! Seeder-side static analysis of Almanac machines (§ III-B).
//!
//! Three analyses feed the placement optimizer:
//!
//! 1. [`place`] — resolves `place` directives into seeds and candidate
//!    switch sets (`π⟦·⟧` with the controller's `φ_path`),
//! 2. [`util`] — converts `util` callbacks into resource-constraint
//!    polynomials `C^s(r̄)` and utility functions `u^s(r̄)`
//!    (`κ^s⟦·⟧`, `ε^s⟦·⟧`),
//! 3. [`poll`] — derives interval functions `y.ival(r̄)` and canonical
//!    polling subjects `y.what` (`φ_enc`) for aggregation.

pub mod consteval;
pub mod place;
pub mod poll;
pub mod poly;
pub mod util;

pub use consteval::{const_eval, ConstEnv};
pub use place::{resolve_placements, SeedSpec};
pub use poll::{analyze_trigger, encode_filter, PollSubject, TriggerAnalysis};
pub use poly::{Poly, Ratio, UtilExpr};
pub use util::{analyze_util, UtilAnalysis, UtilBranch};
