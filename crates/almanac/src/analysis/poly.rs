//! Linear polynomials over resource variables.
//!
//! The seeder's static analysis converts `util` bodies and `poll`
//! intervals into explicit polynomials over the allocated resource amounts
//! `r̄ = (vCPU, RAM, TCAM, PCIe)` so placement optimization can treat them
//! as LP rows (§ III-B of the paper).

use std::fmt;

use farm_netsim::switch::{ResourceKind, Resources};

/// An affine function `Σ cᵢ·rᵢ + k` of the four resource amounts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Poly {
    pub coeffs: [f64; 4],
    pub constant: f64,
}

impl Poly {
    /// The zero polynomial.
    pub const ZERO: Poly = Poly {
        coeffs: [0.0; 4],
        constant: 0.0,
    };

    /// A constant polynomial.
    pub fn constant(k: f64) -> Poly {
        Poly {
            coeffs: [0.0; 4],
            constant: k,
        }
    }

    /// The polynomial `1·r` for a single resource.
    pub fn var(kind: ResourceKind) -> Poly {
        let mut p = Poly::ZERO;
        p.coeffs[kind.index()] = 1.0;
        p
    }

    /// True when no resource coefficient is non-zero.
    pub fn is_constant(&self) -> bool {
        self.coeffs.iter().all(|c| *c == 0.0)
    }

    /// Evaluates at a resource vector.
    pub fn eval(&self, r: &Resources) -> f64 {
        self.constant
            + self
                .coeffs
                .iter()
                .zip(r.0.iter())
                .map(|(c, v)| c * v)
                .sum::<f64>()
    }

    /// Component-wise sum.
    pub fn add(&self, other: &Poly) -> Poly {
        let mut out = *self;
        for i in 0..4 {
            out.coeffs[i] += other.coeffs[i];
        }
        out.constant += other.constant;
        out
    }

    /// Component-wise difference.
    pub fn sub(&self, other: &Poly) -> Poly {
        let mut out = *self;
        for i in 0..4 {
            out.coeffs[i] -= other.coeffs[i];
        }
        out.constant -= other.constant;
        out
    }

    /// Scales by a constant.
    pub fn scale(&self, k: f64) -> Poly {
        let mut out = *self;
        for c in out.coeffs.iter_mut() {
            *c *= k;
        }
        out.constant *= k;
        out
    }

    /// Negation.
    pub fn neg(&self) -> Poly {
        self.scale(-1.0)
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut wrote = false;
        for (i, c) in self.coeffs.iter().enumerate() {
            if *c != 0.0 {
                if wrote {
                    write!(f, " + ")?;
                }
                write!(f, "{}·{}", c, ResourceKind::ALL[i].field_name())?;
                wrote = true;
            }
        }
        if self.constant != 0.0 || !wrote {
            if wrote {
                write!(f, " + ")?;
            }
            write!(f, "{}", self.constant)?;
        }
        Ok(())
    }
}

/// A ratio of polynomials `num/den`, at most one side non-constant.
///
/// This is exactly the shape the paper's model needs: `y.ival(r̄)` may be
/// `c / linear(r̄)` (so the polling *demand* `1/ival` stays linear) or a
/// plain linear function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ratio {
    pub num: Poly,
    pub den: Poly,
}

/// Error combining polynomials beyond linear/rational shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NonlinearError(pub String);

impl fmt::Display for NonlinearError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "expression is not linear/rational in resources: {}",
            self.0
        )
    }
}

impl std::error::Error for NonlinearError {}

impl Ratio {
    /// A plain polynomial as a ratio.
    pub fn from_poly(p: Poly) -> Ratio {
        Ratio {
            num: p,
            den: Poly::constant(1.0),
        }
    }

    /// A constant ratio.
    pub fn constant(k: f64) -> Ratio {
        Ratio::from_poly(Poly::constant(k))
    }

    /// True when both sides are constants.
    pub fn is_constant(&self) -> bool {
        self.num.is_constant() && self.den.is_constant()
    }

    /// The plain polynomial view, if the denominator is constant.
    pub fn as_poly(&self) -> Option<Poly> {
        if self.den.is_constant() && self.den.constant != 0.0 {
            Some(self.num.scale(1.0 / self.den.constant))
        } else {
            None
        }
    }

    /// Evaluates at a resource vector.
    ///
    /// Returns `f64::INFINITY` when the denominator evaluates to zero.
    pub fn eval(&self, r: &Resources) -> f64 {
        let d = self.den.eval(r);
        if d == 0.0 {
            f64::INFINITY
        } else {
            self.num.eval(r) / d
        }
    }

    /// The reciprocal (used for polling demand `1/ival`).
    pub fn recip(&self) -> Ratio {
        Ratio {
            num: self.den,
            den: self.num,
        }
    }

    fn check(self, ctx: &str) -> Result<Ratio, NonlinearError> {
        if !self.num.is_constant() && !self.den.is_constant() {
            return Err(NonlinearError(format!(
                "{ctx}: both numerator and denominator depend on resources"
            )));
        }
        Ok(self)
    }

    /// `self + other`.
    pub fn add(&self, other: &Ratio) -> Result<Ratio, NonlinearError> {
        if self.den == other.den {
            return Ratio {
                num: self.num.add(&other.num),
                den: self.den,
            }
            .check("+");
        }
        if self.den.is_constant() && other.den.is_constant() {
            let a = self
                .as_poly()
                .ok_or_else(|| NonlinearError("division by zero".into()))?;
            let b = other
                .as_poly()
                .ok_or_else(|| NonlinearError("division by zero".into()))?;
            return Ok(Ratio::from_poly(a.add(&b)));
        }
        Err(NonlinearError(
            "sum of ratios with different resource-dependent denominators".into(),
        ))
    }

    /// `self - other`.
    pub fn sub(&self, other: &Ratio) -> Result<Ratio, NonlinearError> {
        self.add(&other.scale(-1.0))
    }

    /// Scales by a constant.
    pub fn scale(&self, k: f64) -> Ratio {
        Ratio {
            num: self.num.scale(k),
            den: self.den,
        }
    }

    /// `self * other`.
    pub fn mul(&self, other: &Ratio) -> Result<Ratio, NonlinearError> {
        // (n1/d1)·(n2/d2): to stay rational-linear, at least one numerator
        // and one denominator pairing must be constant.
        let num = mul_polys(&self.num, &other.num)?;
        let den = mul_polys(&self.den, &other.den)?;
        Ratio { num, den }.check("*")
    }

    /// `self / other`.
    pub fn div(&self, other: &Ratio) -> Result<Ratio, NonlinearError> {
        self.mul(&other.recip())
    }
}

fn mul_polys(a: &Poly, b: &Poly) -> Result<Poly, NonlinearError> {
    if a.is_constant() {
        Ok(b.scale(a.constant))
    } else if b.is_constant() {
        Ok(a.scale(b.constant))
    } else {
        Err(NonlinearError(
            "product of two resource-dependent terms".into(),
        ))
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_constant() && self.den.constant == 1.0 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "({}) / ({})", self.num, self.den)
        }
    }
}

/// Utility expression: linear polynomials composed with `min`/`max`
/// (concave/convex piecewise-linear, which the MILP linearizes with
/// auxiliary variables).
#[derive(Debug, Clone, PartialEq)]
pub enum UtilExpr {
    Poly(Poly),
    Min(Box<UtilExpr>, Box<UtilExpr>),
    Max(Box<UtilExpr>, Box<UtilExpr>),
}

impl UtilExpr {
    /// Evaluates at a resource vector.
    pub fn eval(&self, r: &Resources) -> f64 {
        match self {
            UtilExpr::Poly(p) => p.eval(r),
            UtilExpr::Min(a, b) => a.eval(r).min(b.eval(r)),
            UtilExpr::Max(a, b) => a.eval(r).max(b.eval(r)),
        }
    }

    /// All linear pieces of the expression (leaves of the min/max tree).
    pub fn pieces(&self) -> Vec<Poly> {
        match self {
            UtilExpr::Poly(p) => vec![*p],
            UtilExpr::Min(a, b) | UtilExpr::Max(a, b) => {
                let mut v = a.pieces();
                v.extend(b.pieces());
                v
            }
        }
    }

    /// True when the expression contains no `max` (so it is concave and can
    /// be linearized exactly in a maximization objective).
    pub fn is_concave(&self) -> bool {
        match self {
            UtilExpr::Poly(_) => true,
            UtilExpr::Min(a, b) => a.is_concave() && b.is_concave(),
            UtilExpr::Max(_, _) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: f64, ram: f64, t: f64, p: f64) -> Resources {
        Resources::new(v, ram, t, p)
    }

    #[test]
    fn poly_arithmetic_and_eval() {
        let p = Poly::var(ResourceKind::VCpu)
            .scale(2.0)
            .add(&Poly::constant(3.0));
        assert_eq!(p.eval(&r(2.0, 0.0, 0.0, 0.0)), 7.0);
        let q = p.sub(&Poly::var(ResourceKind::PciePoll));
        assert_eq!(q.eval(&r(2.0, 0.0, 0.0, 5.0)), 2.0);
        assert!(!q.is_constant());
        assert!(Poly::constant(4.0).is_constant());
    }

    #[test]
    fn ratio_models_ival_shape() {
        // ival = 10 / PCIe  →  demand = PCIe / 10 (linear).
        let ival = Ratio::constant(10.0)
            .div(&Ratio::from_poly(Poly::var(ResourceKind::PciePoll)))
            .unwrap();
        assert_eq!(ival.eval(&r(0.0, 0.0, 0.0, 5.0)), 2.0);
        let demand = ival.recip();
        let p = demand.as_poly().unwrap();
        assert_eq!(p.eval(&r(0.0, 0.0, 0.0, 5.0)), 0.5);
    }

    #[test]
    fn nonlinear_products_are_rejected() {
        let v = Ratio::from_poly(Poly::var(ResourceKind::VCpu));
        assert!(v.mul(&v).is_err());
        let lin = Ratio::from_poly(Poly::var(ResourceKind::RamMb));
        assert!(v.div(&lin.recip()).is_err()); // v * lin
    }

    #[test]
    fn division_by_zero_is_infinite() {
        let q = Ratio::constant(1.0)
            .div(&Ratio::from_poly(Poly::var(ResourceKind::VCpu)))
            .unwrap();
        assert_eq!(q.eval(&r(0.0, 0.0, 0.0, 0.0)), f64::INFINITY);
    }

    #[test]
    fn util_expr_min_max_eval() {
        let e = UtilExpr::Min(
            Box::new(UtilExpr::Poly(Poly::var(ResourceKind::VCpu))),
            Box::new(UtilExpr::Poly(Poly::var(ResourceKind::PciePoll))),
        );
        assert_eq!(e.eval(&r(3.0, 0.0, 0.0, 1.0)), 1.0);
        assert!(e.is_concave());
        assert_eq!(e.pieces().len(), 2);
        let m = UtilExpr::Max(
            Box::new(e.clone()),
            Box::new(UtilExpr::Poly(Poly::constant(0.5))),
        );
        assert!(!m.is_concave());
        assert_eq!(m.eval(&r(0.2, 0.0, 0.0, 0.1)), 0.5);
    }

    #[test]
    fn display_is_informative() {
        let p = Poly::var(ResourceKind::VCpu).sub(&Poly::constant(1.0));
        assert_eq!(p.to_string(), "1·vCPU + -1");
        assert_eq!(Poly::ZERO.to_string(), "0");
    }
}
