//! Placement interpretation `π⟦q pc⟧` (§ III-B a of the paper).
//!
//! A machine's sequence of `place` directives resolves, against the SDN
//! controller's path queries, to the set of seeds `S^m` and for each seed
//! the non-empty candidate switch set `N^s` at exactly one of which it must
//! be placed:
//!
//! * `place all;` — one pinned seed per switch; `place any;` — one seed
//!   with every switch as candidate;
//! * `place all|any id…;` — same over the listed switches;
//! * `place q [role] [filter] range op k;` — `φ_path(filter)` gives the
//!   matching paths; each path contributes the set of its nodes whose
//!   distance from the anchor (sender / receiver / midpoint) satisfies
//!   `op k`. For `all`, every such node becomes a pinned seed (deduplicated
//!   as a set of sets). For `any`, singleton per-path sets merge into one
//!   seed whose candidates are their union (the paper's
//!   `π⟦any receiver ex range == 1⟧ = {{3, 8}}` example); larger per-path
//!   sets stay separate seeds (`π⟦any receiver ex range <= 1⟧ =
//!   {{3,4},{3,4},{8,9}}`).

use std::collections::BTreeSet;

use farm_netsim::controller::SdnController;
use farm_netsim::types::{FilterFormula, SwitchId};

use super::consteval::{const_eval, ConstEnv};
use crate::ast::*;
use crate::error::{AlmanacError, Result};
use crate::value::Value;

/// One seed to instantiate: it must be placed on exactly one of
/// `candidates`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedSpec {
    pub candidates: Vec<SwitchId>,
}

impl SeedSpec {
    /// A seed pinned to a single switch.
    pub fn pinned(n: SwitchId) -> SeedSpec {
        SeedSpec {
            candidates: vec![n],
        }
    }
}

/// Resolves all `place` directives of a machine into seed specs.
///
/// # Errors
///
/// Analysis-phase errors when expressions are not deployment-time
/// constants, reference unknown switches, or no directive yields any seed.
pub fn resolve_placements(
    machine: &Machine,
    consts: &ConstEnv,
    controller: &SdnController<'_>,
) -> Result<Vec<SeedSpec>> {
    if machine.placements.is_empty() {
        return Err(AlmanacError::analysis(
            machine.span,
            format!("machine `{}` has no place directive", machine.name),
        ));
    }
    let mut seeds = Vec::new();
    for p in &machine.placements {
        seeds.extend(resolve_one(p, consts, controller)?);
    }
    if seeds.is_empty() {
        return Err(AlmanacError::analysis(
            machine.span,
            format!(
                "place directives of `{}` resolve to no seeds (no matching paths?)",
                machine.name
            ),
        ));
    }
    Ok(seeds)
}

fn resolve_one(
    p: &PlaceDirective,
    consts: &ConstEnv,
    controller: &SdnController<'_>,
) -> Result<Vec<SeedSpec>> {
    match &p.constraint {
        PlaceConstraint::None => {
            let all = controller.all_switches();
            Ok(quantify_flat(p.quant, all))
        }
        PlaceConstraint::Switches(exprs) => {
            let known = controller.all_switches();
            let mut ids = Vec::new();
            for e in exprs {
                let v = const_eval(e, consts)?;
                let i = v.as_int().ok_or_else(|| {
                    AlmanacError::analysis(e.span(), "switch id must be an integer")
                })?;
                let id = SwitchId(u32::try_from(i).map_err(|_| {
                    AlmanacError::analysis(e.span(), format!("switch id {i} out of range"))
                })?);
                if !known.contains(&id) {
                    return Err(AlmanacError::analysis(
                        e.span(),
                        format!("unknown switch {id}"),
                    ));
                }
                if !ids.contains(&id) {
                    ids.push(id);
                }
            }
            Ok(quantify_flat(p.quant, ids))
        }
        PlaceConstraint::Range {
            role,
            filter,
            op,
            dist,
        } => {
            let formula = match filter {
                None => FilterFormula::True,
                Some(e) => match const_eval(e, consts)? {
                    Value::Filter(f) => f,
                    Value::Bool(true) => FilterFormula::True,
                    other => {
                        return Err(AlmanacError::analysis(
                            e.span(),
                            format!(
                                "path constraint must be a filter, found {}",
                                other.type_name()
                            ),
                        ))
                    }
                },
            };
            let k = const_eval(dist, consts)?.as_int().ok_or_else(|| {
                AlmanacError::analysis(dist.span(), "range distance must be an integer")
            })?;
            let paths = controller.paths_matching(&formula);
            let role = role.unwrap_or(PathRole::Receiver);
            let per_path: Vec<Vec<SwitchId>> = paths
                .iter()
                .map(|path| nodes_in_range(path, role, *op, k))
                .filter(|set| !set.is_empty())
                .collect();
            match p.quant {
                PlaceQuant::All => {
                    // Every selected node of every path, as pinned seeds;
                    // set-of-sets semantics deduplicates.
                    let mut set: BTreeSet<SwitchId> = BTreeSet::new();
                    for nodes in &per_path {
                        set.extend(nodes.iter().copied());
                    }
                    Ok(set.into_iter().map(SeedSpec::pinned).collect())
                }
                PlaceQuant::Any => {
                    if per_path.iter().all(|s| s.len() == 1) {
                        // Merge singletons into one seed with the union as
                        // its candidate set.
                        let mut set: BTreeSet<SwitchId> = BTreeSet::new();
                        for nodes in &per_path {
                            set.insert(nodes[0]);
                        }
                        if set.is_empty() {
                            return Ok(Vec::new());
                        }
                        Ok(vec![SeedSpec {
                            candidates: set.into_iter().collect(),
                        }])
                    } else {
                        Ok(per_path
                            .into_iter()
                            .map(|candidates| SeedSpec { candidates })
                            .collect())
                    }
                }
            }
        }
    }
}

fn quantify_flat(q: PlaceQuant, switches: Vec<SwitchId>) -> Vec<SeedSpec> {
    match q {
        PlaceQuant::All => switches.into_iter().map(SeedSpec::pinned).collect(),
        PlaceQuant::Any => {
            if switches.is_empty() {
                Vec::new()
            } else {
                vec![SeedSpec {
                    candidates: switches,
                }]
            }
        }
    }
}

/// Nodes of `path` whose distance from the anchor satisfies `op k`.
fn nodes_in_range(path: &[SwitchId], role: PathRole, op: CmpOp, k: i64) -> Vec<SwitchId> {
    let len = path.len();
    let dist = |i: usize| -> i64 {
        match role {
            PathRole::Sender => i as i64,
            PathRole::Receiver => (len - 1 - i) as i64,
            PathRole::Midpoint => {
                if len % 2 == 1 {
                    let m = (len - 1) / 2;
                    (i as i64 - m as i64).abs()
                } else {
                    let m1 = len / 2 - 1;
                    let m2 = len / 2;
                    (i as i64 - m1 as i64)
                        .abs()
                        .min((i as i64 - m2 as i64).abs())
                }
            }
        }
    };
    path.iter()
        .enumerate()
        .filter(|(i, _)| {
            let d = dist(*i);
            match op {
                CmpOp::Eq => d == k,
                CmpOp::Ne => d != k,
                CmpOp::Le => d <= k,
                CmpOp::Ge => d >= k,
                CmpOp::Lt => d < k,
                CmpOp::Gt => d > k,
            }
        })
        .map(|(_, n)| *n)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use farm_netsim::switch::SwitchModel;
    use farm_netsim::topology::Topology;

    fn resolve(place_src: &str, topo: &Topology) -> Result<Vec<SeedSpec>> {
        let src = format!("machine M {{ {place_src} state s {{ }} }}");
        let p = parse(&src).unwrap();
        let ctl = SdnController::new(topo);
        resolve_placements(&p.machines[0], &ConstEnv::new(), &ctl)
    }

    fn fabric() -> Topology {
        Topology::spine_leaf(2, 3, SwitchModel::test_model(8), SwitchModel::test_model(8))
    }

    #[test]
    fn place_all_pins_one_seed_per_switch() {
        let t = fabric();
        let seeds = resolve("place all;", &t).unwrap();
        assert_eq!(seeds.len(), 5);
        assert!(seeds.iter().all(|s| s.candidates.len() == 1));
    }

    #[test]
    fn place_any_yields_one_flexible_seed() {
        let t = fabric();
        let seeds = resolve("place any;", &t).unwrap();
        assert_eq!(seeds.len(), 1);
        assert_eq!(seeds[0].candidates.len(), 5);
    }

    #[test]
    fn explicit_switch_lists() {
        let t = fabric();
        let seeds = resolve("place all 0, 1;", &t).unwrap();
        assert_eq!(seeds.len(), 2);
        let seeds = resolve("place any 0, 1, 2;", &t).unwrap();
        assert_eq!(seeds.len(), 1);
        assert_eq!(seeds[0].candidates.len(), 3);
        assert!(resolve("place all 99;", &t).is_err());
    }

    #[test]
    fn the_papers_range_examples_shape() {
        // In a 2-spine/3-leaf fabric, leaf-to-leaf paths have length 3:
        // [src, spine, dst].
        let t = fabric();
        // receiver range == 1 → per-path singleton {spine}; any merges the
        // two spines into one candidate set.
        let seeds = resolve("place any receiver range == 1;", &t).unwrap();
        assert_eq!(seeds.len(), 1);
        assert_eq!(seeds[0].candidates.len(), 2, "both spines are midpoints");
        // midpoint range == 0 with all → each path's middle, deduplicated:
        // exactly the spines.
        let seeds = resolve("place all midpoint range == 0;", &t).unwrap();
        let spines: Vec<SwitchId> = t.spines().collect();
        let got: Vec<SwitchId> = seeds.iter().map(|s| s.candidates[0]).collect();
        assert_eq!(got, spines);
        // receiver range <= 1 → per-path sets of size 2 stay separate seeds.
        let seeds = resolve("place any receiver range <= 1;", &t).unwrap();
        assert!(seeds.len() > 1);
        assert!(seeds.iter().all(|s| s.candidates.len() == 2));
    }

    #[test]
    fn filtered_paths_narrow_placement() {
        let t = fabric();
        let leaves: Vec<SwitchId> = t.leaves().collect();
        let dst_pfx = t.node(leaves[1]).unwrap().prefix.unwrap();
        let seeds = resolve(
            &format!(r#"place all receiver dstIP "{dst_pfx}" range == 0;"#),
            &t,
        )
        .unwrap();
        // Receiver end of every matching path is leaf 1 only.
        assert_eq!(seeds.len(), 1);
        assert_eq!(seeds[0].candidates[0], leaves[1]);
    }

    #[test]
    fn sender_anchor() {
        let t = fabric();
        let leaves: Vec<SwitchId> = t.leaves().collect();
        let src_pfx = t.node(leaves[0]).unwrap().prefix.unwrap();
        let seeds = resolve(
            &format!(r#"place all sender srcIP "{src_pfx}" range == 0;"#),
            &t,
        )
        .unwrap();
        assert_eq!(seeds.len(), 1);
        assert_eq!(seeds[0].candidates[0], leaves[0]);
    }

    #[test]
    fn no_matching_paths_is_an_error() {
        let t = fabric();
        let e = resolve(
            r#"place any receiver srcIP "192.168.0.0/16" range == 0;"#,
            &t,
        )
        .unwrap_err();
        assert!(e.message.contains("no seeds"), "{e}");
    }

    #[test]
    fn multiple_directives_union() {
        let t = fabric();
        let seeds = resolve("place all 0; place any 3, 4;", &t).unwrap();
        assert_eq!(seeds.len(), 2);
        assert_eq!(seeds[0].candidates, vec![SwitchId(0)]);
        assert_eq!(seeds[1].candidates.len(), 2);
    }
}
