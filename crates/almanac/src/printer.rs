//! Canonical source rendering of Almanac ASTs.
//!
//! Used by the XML seed format (the seeder ships machine definitions to
//! soils as canonical source embedded in XML, § V-A d) and by tests as a
//! parse→print→parse round-trip oracle.

use std::fmt::Write;

use crate::ast::*;

/// Renders a whole program as canonical Almanac source.
pub fn program_to_source(p: &Program) -> String {
    let mut out = String::new();
    for f in &p.functions {
        function_to_source(f, &mut out);
        out.push('\n');
    }
    for m in &p.machines {
        machine_to_source_into(m, &mut out);
        out.push('\n');
    }
    out
}

/// Renders one machine as canonical Almanac source.
pub fn machine_to_source(m: &Machine) -> String {
    let mut out = String::new();
    machine_to_source_into(m, &mut out);
    out
}

fn function_to_source(f: &FunDecl, out: &mut String) {
    let params = f
        .params
        .iter()
        .map(|(t, n)| format!("{} {}", t.keyword(), n))
        .collect::<Vec<_>>()
        .join(", ");
    let _ = write!(out, "fun {}({params})", f.name);
    if let Some(r) = f.ret {
        let _ = write!(out, ": {}", r.keyword());
    }
    out.push_str(" {\n");
    for a in &f.body {
        action_to_source(a, 1, out);
    }
    out.push_str("}\n");
}

fn machine_to_source_into(m: &Machine, out: &mut String) {
    let _ = write!(out, "machine {}", m.name);
    if let Some(e) = &m.extends {
        let _ = write!(out, " extends {e}");
    }
    out.push_str(" {\n");
    for p in &m.placements {
        place_to_source(p, out);
    }
    for v in &m.vars {
        var_to_source(v, 1, out);
    }
    for s in &m.states {
        state_to_source(s, out);
    }
    for ev in &m.events {
        event_to_source(ev, 1, out);
    }
    out.push_str("}\n");
}

fn indent(n: usize, out: &mut String) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn place_to_source(p: &PlaceDirective, out: &mut String) {
    indent(1, out);
    out.push_str("place ");
    out.push_str(match p.quant {
        PlaceQuant::All => "all",
        PlaceQuant::Any => "any",
    });
    match &p.constraint {
        PlaceConstraint::None => {}
        PlaceConstraint::Switches(exprs) => {
            out.push(' ');
            let parts: Vec<String> = exprs.iter().map(expr_to_source).collect();
            out.push_str(&parts.join(", "));
        }
        PlaceConstraint::Range {
            role,
            filter,
            op,
            dist,
        } => {
            if let Some(r) = role {
                let _ = write!(
                    out,
                    " {}",
                    match r {
                        PathRole::Sender => "sender",
                        PathRole::Receiver => "receiver",
                        PathRole::Midpoint => "midpoint",
                    }
                );
            }
            if let Some(f) = filter {
                let _ = write!(out, " {}", expr_to_source(f));
            }
            let _ = write!(
                out,
                " range {} {}",
                cmp_to_source(*op),
                expr_to_source(dist)
            );
        }
    }
    out.push_str(";\n");
}

fn var_to_source(v: &VarDecl, level: usize, out: &mut String) {
    indent(level, out);
    if v.external {
        out.push_str("external ");
    }
    let kw = match v.kind {
        DeclKind::Plain(t) => t.keyword(),
        DeclKind::Trigger(t) => t.keyword(),
    };
    let _ = write!(out, "{kw} {}", v.name);
    if let Some(init) = &v.init {
        let _ = write!(out, " = {}", expr_to_source(init));
    }
    out.push_str(";\n");
}

fn state_to_source(s: &StateDecl, out: &mut String) {
    indent(1, out);
    let _ = writeln!(out, "state {} {{", s.name);
    for v in &s.vars {
        var_to_source(v, 2, out);
    }
    if let Some(u) = &s.util {
        indent(2, out);
        let _ = writeln!(out, "util ({}) {{", u.param);
        for a in &u.body {
            action_to_source(a, 3, out);
        }
        indent(2, out);
        out.push_str("}\n");
    }
    for ev in &s.events {
        event_to_source(ev, 2, out);
    }
    indent(1, out);
    out.push_str("}\n");
}

fn event_to_source(ev: &EventDecl, level: usize, out: &mut String) {
    indent(level, out);
    out.push_str("when (");
    match &ev.trigger {
        Trigger::Enter => out.push_str("enter"),
        Trigger::Exit => out.push_str("exit"),
        Trigger::Realloc => out.push_str("realloc"),
        Trigger::Var { name, bind } => {
            out.push_str(name);
            if let Some(b) = bind {
                let _ = write!(out, " as {b}");
            }
        }
        Trigger::Recv { ty, bind, from } => {
            let _ = write!(
                out,
                "recv {} {bind} from {}",
                ty.keyword(),
                endpoint_to_source(from)
            );
        }
    }
    out.push_str(") do {\n");
    for a in &ev.actions {
        action_to_source(a, level + 1, out);
    }
    indent(level, out);
    out.push_str("}\n");
}

fn endpoint_to_source(ep: &MsgEndpoint) -> String {
    match ep {
        MsgEndpoint::Harvester => "harvester".to_string(),
        MsgEndpoint::Machine { name, at } => match at {
            None => name.clone(),
            Some(e) => format!("{name}@{}", expr_to_source(e)),
        },
    }
}

fn action_to_source(a: &Action, level: usize, out: &mut String) {
    match a {
        Action::Assign {
            target,
            field,
            value,
            ..
        } => {
            indent(level, out);
            match field {
                Some(f) => {
                    let _ = writeln!(out, "{target}.{f} = {};", expr_to_source(value));
                }
                None => {
                    let _ = writeln!(out, "{target} = {};", expr_to_source(value));
                }
            }
        }
        Action::Transit { state, .. } => {
            indent(level, out);
            let _ = writeln!(out, "transit {state};");
        }
        Action::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            indent(level, out);
            let _ = writeln!(out, "if ({}) then {{", expr_to_source(cond));
            for b in then_branch {
                action_to_source(b, level + 1, out);
            }
            indent(level, out);
            out.push('}');
            if !else_branch.is_empty() {
                out.push_str(" else {\n");
                for b in else_branch {
                    action_to_source(b, level + 1, out);
                }
                indent(level, out);
                out.push('}');
            }
            out.push('\n');
        }
        Action::While { cond, body, .. } => {
            indent(level, out);
            let _ = writeln!(out, "while ({}) {{", expr_to_source(cond));
            for b in body {
                action_to_source(b, level + 1, out);
            }
            indent(level, out);
            out.push_str("}\n");
        }
        Action::Return { value, .. } => {
            indent(level, out);
            match value {
                Some(v) => {
                    let _ = writeln!(out, "return {};", expr_to_source(v));
                }
                None => out.push_str("return;\n"),
            }
        }
        Action::Send { value, to, .. } => {
            indent(level, out);
            let _ = writeln!(
                out,
                "send {} to {};",
                expr_to_source(value),
                endpoint_to_source(to)
            );
        }
        Action::ExprStmt { expr, .. } => {
            indent(level, out);
            let _ = writeln!(out, "{};", expr_to_source(expr));
        }
        Action::Local(v) => var_to_source(v, level, out),
    }
}

fn cmp_to_source(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "==",
        CmpOp::Ne => "<>",
        CmpOp::Le => "<=",
        CmpOp::Ge => ">=",
        CmpOp::Lt => "<",
        CmpOp::Gt => ">",
    }
}

/// Renders an expression with full parenthesization (unambiguous, so the
/// round trip re-parses to the same tree).
pub fn expr_to_source(e: &Expr) -> String {
    match e {
        Expr::Lit(l, _) => match l {
            Literal::Bool(b) => b.to_string(),
            Literal::Int(i) => i.to_string(),
            Literal::Float(f) => {
                // Keep a decimal point so the literal stays a float.
                let s = f.to_string();
                if s.contains('.') || s.contains('e') {
                    s
                } else {
                    format!("{s}.0")
                }
            }
            Literal::Str(s) => format!("{s:?}"),
        },
        Expr::Var(n, _) => n.clone(),
        Expr::Filter(f, _) => match f {
            FilterExpr::SrcIp(e) => format!("srcIP {}", expr_to_source(e)),
            FilterExpr::DstIp(e) => format!("dstIP {}", expr_to_source(e)),
            FilterExpr::SrcPort(e) => format!("srcPort {}", expr_to_source(e)),
            FilterExpr::DstPort(e) => format!("dstPort {}", expr_to_source(e)),
            FilterExpr::Proto(e) => format!("proto {}", expr_to_source(e)),
            FilterExpr::IfPort(e) => format!("port {}", expr_to_source(e)),
            FilterExpr::IfPortAny => "port ANY".to_string(),
        },
        Expr::Unary(op, inner, _) => {
            let o = match op {
                UnOp::Not => "not ",
                UnOp::Neg => "-",
            };
            format!("({o}{})", expr_to_source(inner))
        }
        Expr::Binary(op, a, b, _) => {
            let o = match op {
                BinOp::And => "and",
                BinOp::Or => "or",
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Cmp(c) => cmp_to_source(*c),
            };
            format!("({} {o} {})", expr_to_source(a), expr_to_source(b))
        }
        Expr::Call { name, args, .. } => {
            let parts: Vec<String> = args.iter().map(expr_to_source).collect();
            format!("{name}({})", parts.join(", "))
        }
        Expr::Field(base, field, _) => format!("{}.{field}", expr_to_source(base)),
        Expr::StructLit { name, fields, .. } => {
            let parts: Vec<String> = fields
                .iter()
                .map(|(n, e)| format!(".{n} = {}", expr_to_source(e)))
                .collect();
            format!("{name} {{ {} }}", parts.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Strips spans so round-trip comparison ignores positions.
    fn normalize(src: &str) -> String {
        program_to_source(&parse(src).unwrap())
    }

    #[test]
    fn print_parse_round_trip_is_stable() {
        let src = r#"
            fun f(list l, long t): list {
              list out;
              int i = 0;
              while (i < list_len(l)) {
                if (stat_tx_bytes(list_get(l, i)) >= t) then {
                  list_push(out, list_get(l, i));
                } else { i = i; }
                i = i + 1;
              }
              return out;
            }
            machine HH {
              place all;
              place any receiver srcIP "10.1.1.4" range <= 1;
              poll p = Poll { .ival = 10/res().PCIe, .what = port ANY };
              external long threshold = 1000;
              state observe {
                util (res) { if (res.vCPU >= 1) then { return min(res.vCPU, res.PCIe); } }
                when (p as stats) do { transit detected; }
              }
              state detected {
                when (enter) do { send threshold to harvester; transit observe; }
              }
              when (recv long x from harvester) do { threshold = x; }
            }
        "#;
        let once = normalize(src);
        let twice = normalize(&once);
        assert_eq!(once, twice, "printer must be a fixpoint of parse∘print");
    }

    #[test]
    fn float_literals_keep_their_type() {
        let src = "machine M { float x = 2.0; state s { } }";
        let printed = normalize(src);
        assert!(
            printed.contains("2.0") || printed.contains("2."),
            "{printed}"
        );
        // And the round trip still type-parses as float.
        let p = parse(&printed).unwrap();
        let Expr::Lit(Literal::Float(_), _) = p.machines[0].vars[0].init.as_ref().unwrap() else {
            panic!("float literal degraded to int");
        };
    }

    #[test]
    fn machine_source_contains_all_sections() {
        let src = r#"
            machine M {
              place any;
              long x;
              state s { when (enter) do { x = 1; } }
              when (realloc) do { x = 2; }
            }
        "#;
        let printed = machine_to_source(&parse(src).unwrap().machines[0]);
        for needle in ["place any;", "long x;", "state s {", "when (realloc)"] {
            assert!(printed.contains(needle), "missing {needle} in:\n{printed}");
        }
    }
}
