//! Type checking and inheritance flattening.
//!
//! Checks performed (§ III of the paper):
//!
//! * single inheritance: states may be overridden in child machines,
//!   variables may be neither overridden nor shadowed (§ III-A a),
//! * `external` only at machine level (enforced by the parser) and trigger
//!   variables initialized with the matching `Poll`/`Probe` structure,
//! * name/arity/type checking of every expression against declared
//!   variables, user functions and the runtime-library [`crate::builtins`],
//! * `transit` targets must name states of the machine,
//! * `util` bodies obey the paper's syntactic restrictions (only
//!   if-then-else and return; operators limited to `and or == <= >= + - * /`;
//!   calls limited to `min`/`max`),
//! * mutating list builtins receive a plain variable as first argument.
//!
//! [`check`] returns the *flattened* program: inheritance resolved, ready
//! for analysis and interpretation.

use std::collections::HashMap;

use crate::ast::*;
use crate::builtins::builtin;
use crate::error::{AlmanacError, Result, Span};

/// Type-checks `program` and returns it with inheritance flattened.
///
/// # Errors
///
/// The first typecheck-phase error encountered, with its source span.
pub fn check(program: &Program) -> Result<Program> {
    let flattened = flatten(program)?;
    let mut fn_sigs: HashMap<String, (Vec<Type>, Option<Type>)> = HashMap::new();
    for f in &flattened.functions {
        if builtin(&f.name).is_some() {
            return Err(AlmanacError::typeck(
                f.span,
                format!("function `{}` shadows a runtime-library builtin", f.name),
            ));
        }
        if fn_sigs
            .insert(
                f.name.clone(),
                (f.params.iter().map(|(t, _)| *t).collect(), f.ret),
            )
            .is_some()
        {
            return Err(AlmanacError::typeck(
                f.span,
                format!("duplicate function `{}`", f.name),
            ));
        }
    }
    let machine_names: Vec<String> = flattened.machines.iter().map(|m| m.name.clone()).collect();
    let checker = Checker {
        fn_sigs,
        machine_names,
    };
    for f in &flattened.functions {
        checker.check_function(f)?;
    }
    for m in &flattened.machines {
        checker.check_machine(m)?;
    }
    Ok(flattened)
}

/// Resolves `extends` chains: parent variables and events come first, child
/// states override parent states by name, and the child's placement
/// directives replace the parent's when present.
pub fn flatten(program: &Program) -> Result<Program> {
    let mut done: HashMap<String, Machine> = HashMap::new();
    let mut order = Vec::new();
    for m in &program.machines {
        flatten_one(program, m, &mut done, &mut Vec::new())?;
        order.push(m.name.clone());
    }
    Ok(Program {
        functions: program.functions.clone(),
        machines: order.into_iter().map(|n| done[&n].clone()).collect(),
    })
}

fn flatten_one(
    program: &Program,
    m: &Machine,
    done: &mut HashMap<String, Machine>,
    stack: &mut Vec<String>,
) -> Result<()> {
    if done.contains_key(&m.name) {
        return Ok(());
    }
    if stack.contains(&m.name) {
        return Err(AlmanacError::typeck(
            m.span,
            format!("inheritance cycle involving machine `{}`", m.name),
        ));
    }
    let Some(parent_name) = &m.extends else {
        done.insert(m.name.clone(), m.clone());
        return Ok(());
    };
    let parent = program.machine(parent_name).ok_or_else(|| {
        AlmanacError::typeck(
            m.span,
            format!(
                "machine `{}` extends unknown machine `{parent_name}`",
                m.name
            ),
        )
    })?;
    stack.push(m.name.clone());
    flatten_one(program, parent, done, stack)?;
    stack.pop();
    let parent = done[parent_name].clone();

    // Variables: no overriding or shadowing.
    let mut vars = parent.vars.clone();
    for v in &m.vars {
        if vars.iter().any(|p| p.name == v.name) {
            return Err(AlmanacError::typeck(
                v.span,
                format!(
                    "variable `{}` shadows an inherited variable of `{}`",
                    v.name, parent.name
                ),
            ));
        }
        vars.push(v.clone());
    }
    // States: child overrides by name; new child states appended.
    let mut states = parent.states.clone();
    for s in &m.states {
        if let Some(slot) = states.iter_mut().find(|p| p.name == s.name) {
            *slot = s.clone();
        } else {
            states.push(s.clone());
        }
    }
    let placements = if m.placements.is_empty() {
        parent.placements.clone()
    } else {
        m.placements.clone()
    };
    let mut events = parent.events.clone();
    events.extend(m.events.iter().cloned());
    done.insert(
        m.name.clone(),
        Machine {
            name: m.name.clone(),
            extends: m.extends.clone(),
            placements,
            vars,
            states,
            events,
            span: m.span,
        },
    );
    Ok(())
}

#[derive(Debug, Clone, Copy)]
struct VarInfo {
    ty: Type,
    trigger: Option<TriggerType>,
}

struct Env {
    scopes: Vec<HashMap<String, VarInfo>>,
}

impl Env {
    fn new() -> Env {
        Env {
            scopes: vec![HashMap::new()],
        }
    }

    fn push(&mut self) {
        self.scopes.push(HashMap::new());
    }

    fn pop(&mut self) {
        self.scopes.pop();
    }

    fn declare(&mut self, name: &str, info: VarInfo, span: Span) -> Result<()> {
        let top = self.scopes.last_mut().expect("scope stack never empty");
        if top.contains_key(name) {
            return Err(AlmanacError::typeck(
                span,
                format!("duplicate variable `{name}` in the same scope"),
            ));
        }
        top.insert(name.to_string(), info);
        Ok(())
    }

    fn lookup(&self, name: &str) -> Option<VarInfo> {
        self.scopes.iter().rev().find_map(|s| s.get(name)).copied()
    }
}

struct Checker {
    fn_sigs: HashMap<String, (Vec<Type>, Option<Type>)>,
    machine_names: Vec<String>,
}

impl Checker {
    fn check_function(&self, f: &FunDecl) -> Result<()> {
        let mut env = Env::new();
        for (ty, name) in &f.params {
            env.declare(
                name,
                VarInfo {
                    ty: *ty,
                    trigger: None,
                },
                f.span,
            )?;
        }
        let ctx = StmtCtx {
            machine: None,
            in_function: true,
            expected_return: f.ret,
        };
        self.check_actions(&f.body, &mut env, &ctx)
    }

    fn check_machine(&self, m: &Machine) -> Result<()> {
        let mut env = Env::new();
        // Declare all machine variables up front (machine scope is flat).
        for v in &m.vars {
            let info = match v.kind {
                DeclKind::Plain(t) => VarInfo {
                    ty: t,
                    trigger: None,
                },
                DeclKind::Trigger(t) => VarInfo {
                    ty: Type::Any,
                    trigger: Some(t),
                },
            };
            env.declare(&v.name, info, v.span)?;
        }
        for v in &m.vars {
            self.check_var_init(v, &mut env)?;
        }
        // Duplicate state names.
        for (i, s) in m.states.iter().enumerate() {
            if m.states[..i].iter().any(|p| p.name == s.name) {
                return Err(AlmanacError::typeck(
                    s.span,
                    format!("duplicate state `{}`", s.name),
                ));
            }
        }
        if m.states.is_empty() {
            return Err(AlmanacError::typeck(
                m.span,
                format!("machine `{}` declares no states", m.name),
            ));
        }
        // Placement directive expressions.
        for p in &m.placements {
            self.check_placement(p, &mut env)?;
        }
        // Machine-level events apply in every state.
        for ev in &m.events {
            self.check_event(ev, m, &mut env)?;
        }
        for s in &m.states {
            env.push();
            for v in &s.vars {
                if v.external {
                    return Err(AlmanacError::typeck(
                        v.span,
                        "`external` is only allowed at machine level",
                    ));
                }
                let info = match v.kind {
                    DeclKind::Plain(t) => VarInfo {
                        ty: t,
                        trigger: None,
                    },
                    DeclKind::Trigger(t) => VarInfo {
                        ty: Type::Any,
                        trigger: Some(t),
                    },
                };
                env.declare(&v.name, info, v.span)?;
                self.check_var_init(v, &mut env)?;
            }
            if let Some(u) = &s.util {
                self.check_util(u, &mut env)?;
            }
            for ev in &s.events {
                self.check_event(ev, m, &mut env)?;
            }
            env.pop();
        }
        Ok(())
    }

    fn check_var_init(&self, v: &VarDecl, env: &mut Env) -> Result<()> {
        let Some(init) = &v.init else {
            if let DeclKind::Trigger(t) = v.kind {
                if t != TriggerType::Time {
                    return Err(AlmanacError::typeck(
                        v.span,
                        format!(
                            "{} variable `{}` requires an initializer with .ival and .what",
                            t.keyword(),
                            v.name
                        ),
                    ));
                }
            }
            return Ok(());
        };
        match v.kind {
            DeclKind::Plain(ty) => {
                let got = self.ty_expr_value(init, env)?;
                if !ty.accepts(got) {
                    return Err(AlmanacError::typeck(
                        init.span(),
                        format!(
                            "cannot initialize `{}` of type {} with {}",
                            v.name,
                            ty.keyword(),
                            got.keyword()
                        ),
                    ));
                }
            }
            DeclKind::Trigger(t) => self.check_trigger_init(t, init, env)?,
        }
        Ok(())
    }

    fn check_trigger_init(&self, t: TriggerType, init: &Expr, env: &mut Env) -> Result<()> {
        match t {
            TriggerType::Time => {
                let got = self.ty_expr_value(init, env)?;
                if !Type::Float.accepts(got) {
                    return Err(AlmanacError::typeck(
                        init.span(),
                        "time trigger initializer must be a numeric period (ms)",
                    ));
                }
            }
            TriggerType::Poll | TriggerType::Probe => {
                let Expr::StructLit { name, fields, span } = init else {
                    return Err(AlmanacError::typeck(
                        init.span(),
                        format!(
                            "{} trigger must be initialized with a {} {{ .ival = …, .what = … }} structure",
                            t.keyword(),
                            expected_struct(t)
                        ),
                    ));
                };
                if name != expected_struct(t) {
                    return Err(AlmanacError::typeck(
                        *span,
                        format!(
                            "{} trigger must use the {} structure, found `{name}`",
                            t.keyword(),
                            expected_struct(t)
                        ),
                    ));
                }
                let mut saw_ival = false;
                let mut saw_what = false;
                for (fname, fexpr) in fields {
                    match fname.as_str() {
                        "ival" => {
                            saw_ival = true;
                            let got = self.ty_expr_value(fexpr, env)?;
                            if !Type::Float.accepts(got) {
                                return Err(AlmanacError::typeck(
                                    fexpr.span(),
                                    ".ival must be numeric (period in ms)",
                                ));
                            }
                        }
                        "what" => {
                            saw_what = true;
                            let got = self.ty_expr_value(fexpr, env)?;
                            if !Type::Filter.accepts(got) {
                                return Err(AlmanacError::typeck(
                                    fexpr.span(),
                                    ".what must be a filter expression",
                                ));
                            }
                        }
                        other => {
                            return Err(AlmanacError::typeck(
                                fexpr.span(),
                                format!("unknown {name} field `.{other}`"),
                            ))
                        }
                    }
                }
                if !saw_ival || !saw_what {
                    return Err(AlmanacError::typeck(
                        *span,
                        format!("{name} structure requires both .ival and .what"),
                    ));
                }
            }
        }
        Ok(())
    }

    fn check_placement(&self, p: &PlaceDirective, env: &mut Env) -> Result<()> {
        match &p.constraint {
            PlaceConstraint::None => Ok(()),
            PlaceConstraint::Switches(exprs) => {
                for e in exprs {
                    let got = self.ty_expr_value(e, env)?;
                    if !Type::Long.accepts(got) {
                        return Err(AlmanacError::typeck(
                            e.span(),
                            "placement switch ids must be integers",
                        ));
                    }
                }
                Ok(())
            }
            PlaceConstraint::Range { filter, dist, .. } => {
                if let Some(f) = filter {
                    let got = self.ty_expr_value(f, env)?;
                    if !Type::Filter.accepts(got) && got != Type::Bool {
                        return Err(AlmanacError::typeck(
                            f.span(),
                            "placement path constraint must be a filter expression",
                        ));
                    }
                }
                let got = self.ty_expr_value(dist, env)?;
                if !Type::Long.accepts(got) {
                    return Err(AlmanacError::typeck(
                        dist.span(),
                        "range distance must be an integer",
                    ));
                }
                Ok(())
            }
        }
    }

    fn check_util(&self, u: &UtilDecl, env: &mut Env) -> Result<()> {
        env.push();
        env.declare(
            &u.param,
            VarInfo {
                ty: Type::Resources,
                trigger: None,
            },
            u.span,
        )?;
        for a in &u.body {
            self.check_util_action(a, env)?;
        }
        env.pop();
        Ok(())
    }

    /// Enforces the paper's syntactic restrictions on `util` bodies.
    fn check_util_action(&self, a: &Action, env: &mut Env) -> Result<()> {
        match a {
            Action::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                self.check_util_expr(cond, env)?;
                for b in then_branch.iter().chain(else_branch) {
                    self.check_util_action(b, env)?;
                }
                Ok(())
            }
            Action::Return { value, span } => {
                let Some(v) = value else {
                    return Err(AlmanacError::typeck(
                        *span,
                        "util must return a numeric utility",
                    ));
                };
                self.check_util_expr(v, env)
            }
            other => Err(AlmanacError::typeck(
                other.span(),
                "util bodies may only contain if-then-else and return",
            )),
        }
    }

    fn check_util_expr(&self, e: &Expr, env: &mut Env) -> Result<()> {
        match e {
            Expr::Lit(Literal::Int(_) | Literal::Float(_) | Literal::Bool(_), _) => Ok(()),
            Expr::Lit(_, span) => Err(AlmanacError::typeck(
                *span,
                "only numeric and boolean literals are allowed in util",
            )),
            Expr::Var(name, span) => {
                env.lookup(name).ok_or_else(|| {
                    AlmanacError::typeck(*span, format!("unknown variable `{name}` in util"))
                })?;
                Ok(())
            }
            Expr::Field(base, field, span) => {
                // Only `<param>.<resource>` access.
                let Expr::Var(base_name, _) = base.as_ref() else {
                    return Err(AlmanacError::typeck(
                        *span,
                        "util may only access fields of its resource argument",
                    ));
                };
                let info = env.lookup(base_name).ok_or_else(|| {
                    AlmanacError::typeck(*span, format!("unknown variable `{base_name}`"))
                })?;
                if info.ty != Type::Resources {
                    return Err(AlmanacError::typeck(
                        *span,
                        "util may only access fields of its resource argument",
                    ));
                }
                check_resource_field(field, *span)
            }
            Expr::Unary(UnOp::Neg, inner, _) => self.check_util_expr(inner, env),
            Expr::Unary(UnOp::Not, _, span) => Err(AlmanacError::typeck(
                *span,
                "`not` is not allowed in util bodies",
            )),
            Expr::Binary(op, a, b, span) => {
                let allowed = matches!(
                    op,
                    BinOp::And
                        | BinOp::Or
                        | BinOp::Add
                        | BinOp::Sub
                        | BinOp::Mul
                        | BinOp::Div
                        | BinOp::Cmp(CmpOp::Eq)
                        | BinOp::Cmp(CmpOp::Le)
                        | BinOp::Cmp(CmpOp::Ge)
                );
                if !allowed {
                    return Err(AlmanacError::typeck(
                        *span,
                        "util operators are limited to and or == <= >= + - * /",
                    ));
                }
                self.check_util_expr(a, env)?;
                self.check_util_expr(b, env)
            }
            Expr::Call { name, args, span } => {
                if name != "min" && name != "max" {
                    return Err(AlmanacError::typeck(
                        *span,
                        "util may only call min and max",
                    ));
                }
                if args.len() != 2 {
                    return Err(AlmanacError::typeck(
                        *span,
                        format!("{name} takes exactly two arguments"),
                    ));
                }
                for a in args {
                    self.check_util_expr(a, env)?;
                }
                Ok(())
            }
            Expr::Filter(_, span) | Expr::StructLit { span, .. } => Err(AlmanacError::typeck(
                *span,
                "filters and structures are not allowed in util bodies",
            )),
        }
    }

    fn check_event(&self, ev: &EventDecl, m: &Machine, env: &mut Env) -> Result<()> {
        env.push();
        match &ev.trigger {
            Trigger::Enter | Trigger::Exit | Trigger::Realloc => {}
            Trigger::Var { name, bind } => {
                let info = env.lookup(name).ok_or_else(|| {
                    AlmanacError::typeck(ev.span, format!("unknown trigger variable `{name}`"))
                })?;
                let Some(tt) = info.trigger else {
                    return Err(AlmanacError::typeck(
                        ev.span,
                        format!("`{name}` is not a trigger variable"),
                    ));
                };
                if let Some(b) = bind {
                    let ty = match tt {
                        TriggerType::Poll => Type::List,
                        TriggerType::Probe => Type::Packet,
                        TriggerType::Time => Type::Long,
                    };
                    env.declare(b, VarInfo { ty, trigger: None }, ev.span)?;
                }
            }
            Trigger::Recv { ty, bind, from } => {
                self.check_endpoint(from, env, ev.span)?;
                env.declare(
                    bind,
                    VarInfo {
                        ty: *ty,
                        trigger: None,
                    },
                    ev.span,
                )?;
            }
        }
        let ctx = StmtCtx {
            machine: Some(m),
            in_function: false,
            expected_return: None,
        };
        self.check_actions(&ev.actions, env, &ctx)?;
        env.pop();
        Ok(())
    }

    fn check_endpoint(&self, ep: &MsgEndpoint, env: &mut Env, span: Span) -> Result<()> {
        match ep {
            MsgEndpoint::Harvester => Ok(()),
            MsgEndpoint::Machine { name, at } => {
                if !self.machine_names.iter().any(|m| m == name) {
                    return Err(AlmanacError::typeck(
                        span,
                        format!("message endpoint names unknown machine `{name}`"),
                    ));
                }
                if let Some(e) = at {
                    let got = self.ty_expr_value(e, env)?;
                    if !Type::Long.accepts(got) {
                        return Err(AlmanacError::typeck(
                            e.span(),
                            "@destination must be an integer switch id",
                        ));
                    }
                }
                Ok(())
            }
        }
    }

    fn check_actions(&self, actions: &[Action], env: &mut Env, ctx: &StmtCtx) -> Result<()> {
        env.push();
        for a in actions {
            self.check_action(a, env, ctx)?;
        }
        env.pop();
        Ok(())
    }

    fn check_action(&self, a: &Action, env: &mut Env, ctx: &StmtCtx) -> Result<()> {
        match a {
            Action::Local(v) => {
                if v.trigger().is_some() {
                    return Err(AlmanacError::typeck(
                        v.span,
                        "trigger variables cannot be declared inside blocks",
                    ));
                }
                let DeclKind::Plain(t) = v.kind else {
                    unreachable!()
                };
                env.declare(
                    &v.name,
                    VarInfo {
                        ty: t,
                        trigger: None,
                    },
                    v.span,
                )?;
                self.check_var_init(v, env)
            }
            Action::Assign {
                target,
                field,
                value,
                span,
            } => {
                let info = env.lookup(target).ok_or_else(|| {
                    AlmanacError::typeck(
                        *span,
                        format!("assignment to unknown variable `{target}`"),
                    )
                })?;
                match (info.trigger, field) {
                    (Some(tt), None) => self.check_trigger_init(tt, value, env),
                    (Some(_), Some(f)) => match f.as_str() {
                        "ival" => {
                            let got = self.ty_expr_value(value, env)?;
                            if !Type::Float.accepts(got) {
                                return Err(AlmanacError::typeck(
                                    value.span(),
                                    ".ival must be numeric",
                                ));
                            }
                            Ok(())
                        }
                        "what" => {
                            let got = self.ty_expr_value(value, env)?;
                            if !Type::Filter.accepts(got) {
                                return Err(AlmanacError::typeck(
                                    value.span(),
                                    ".what must be a filter",
                                ));
                            }
                            Ok(())
                        }
                        other => Err(AlmanacError::typeck(
                            *span,
                            format!("unknown trigger field `.{other}`"),
                        )),
                    },
                    (None, Some(f)) => Err(AlmanacError::typeck(
                        *span,
                        format!("`{target}` has no assignable field `.{f}`"),
                    )),
                    (None, None) => {
                        let got = self.ty_expr_value(value, env)?;
                        if !info.ty.accepts(got) {
                            return Err(AlmanacError::typeck(
                                value.span(),
                                format!(
                                    "cannot assign {} to `{target}` of type {}",
                                    got.keyword(),
                                    info.ty.keyword()
                                ),
                            ));
                        }
                        Ok(())
                    }
                }
            }
            Action::Transit { state, span } => {
                let Some(m) = ctx.machine else {
                    return Err(AlmanacError::typeck(
                        *span,
                        "transit is not allowed inside auxiliary functions",
                    ));
                };
                if m.state(state).is_none() {
                    return Err(AlmanacError::typeck(
                        *span,
                        format!("transit to unknown state `{state}`"),
                    ));
                }
                Ok(())
            }
            Action::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                let got = self.ty_expr_value(cond, env)?;
                if got != Type::Bool && got != Type::Any {
                    return Err(AlmanacError::typeck(
                        cond.span(),
                        format!("if condition must be bool, found {}", got.keyword()),
                    ));
                }
                self.check_actions(then_branch, env, ctx)?;
                self.check_actions(else_branch, env, ctx)
            }
            Action::While { cond, body, .. } => {
                let got = self.ty_expr_value(cond, env)?;
                if got != Type::Bool && got != Type::Any {
                    return Err(AlmanacError::typeck(
                        cond.span(),
                        format!("while condition must be bool, found {}", got.keyword()),
                    ));
                }
                self.check_actions(body, env, ctx)
            }
            Action::Return { value, span } => {
                match (ctx.in_function, ctx.expected_return, value) {
                    (true, Some(expected), Some(v)) => {
                        let got = self.ty_expr_value(v, env)?;
                        if !expected.accepts(got) {
                            return Err(AlmanacError::typeck(
                                v.span(),
                                format!(
                                    "return type mismatch: expected {}, found {}",
                                    expected.keyword(),
                                    got.keyword()
                                ),
                            ));
                        }
                        Ok(())
                    }
                    (true, None, Some(v)) => Err(AlmanacError::typeck(
                        v.span(),
                        "function without return type returns a value",
                    )),
                    (true, Some(_), None) => Err(AlmanacError::typeck(
                        *span,
                        "function with return type must return a value",
                    )),
                    (true, None, None) => Ok(()),
                    (false, _, _) => {
                        // `return` inside event handlers ends the handler.
                        if let Some(v) = value {
                            self.ty_expr_value(v, env)?;
                        }
                        Ok(())
                    }
                }
            }
            Action::Send { value, to, span } => {
                if ctx.in_function {
                    return Err(AlmanacError::typeck(
                        *span,
                        "send is not allowed inside auxiliary functions",
                    ));
                }
                self.ty_expr_value(value, env)?;
                self.check_endpoint(to, env, *span)
            }
            Action::ExprStmt { expr, .. } => {
                self.ty_expr(expr, env)?;
                Ok(())
            }
        }
    }

    /// Types an expression, requiring it to produce a value.
    fn ty_expr_value(&self, e: &Expr, env: &mut Env) -> Result<Type> {
        self.ty_expr(e, env)?
            .ok_or_else(|| AlmanacError::typeck(e.span(), "expression does not produce a value"))
    }

    /// Types an expression; `None` means unit (a call used for effect).
    fn ty_expr(&self, e: &Expr, env: &mut Env) -> Result<Option<Type>> {
        match e {
            Expr::Lit(l, _) => Ok(Some(match l {
                Literal::Bool(_) => Type::Bool,
                Literal::Int(_) => Type::Int,
                Literal::Float(_) => Type::Float,
                Literal::Str(_) => Type::Str,
            })),
            Expr::Var(name, span) => {
                let info = env.lookup(name).ok_or_else(|| {
                    AlmanacError::typeck(*span, format!("unknown variable `{name}`"))
                })?;
                Ok(Some(info.ty))
            }
            Expr::Filter(f, _) => {
                match f {
                    FilterExpr::SrcIp(e) | FilterExpr::DstIp(e) => {
                        let got = self.ty_expr_value(e, env)?;
                        if !Type::Str.accepts(got) {
                            return Err(AlmanacError::typeck(
                                e.span(),
                                "IP filter argument must be a string prefix",
                            ));
                        }
                    }
                    FilterExpr::SrcPort(e) | FilterExpr::DstPort(e) | FilterExpr::IfPort(e) => {
                        let got = self.ty_expr_value(e, env)?;
                        if !Type::Long.accepts(got) {
                            return Err(AlmanacError::typeck(
                                e.span(),
                                "port filter argument must be an integer",
                            ));
                        }
                    }
                    FilterExpr::Proto(e) => {
                        let got = self.ty_expr_value(e, env)?;
                        if !Type::Str.accepts(got) {
                            return Err(AlmanacError::typeck(
                                e.span(),
                                "proto filter argument must be a string",
                            ));
                        }
                    }
                    FilterExpr::IfPortAny => {}
                }
                Ok(Some(Type::Filter))
            }
            Expr::Unary(UnOp::Not, inner, span) => {
                let got = self.ty_expr_value(inner, env)?;
                match got {
                    Type::Bool | Type::Any => Ok(Some(Type::Bool)),
                    Type::Filter => Ok(Some(Type::Filter)),
                    other => Err(AlmanacError::typeck(
                        *span,
                        format!("`not` requires bool or filter, found {}", other.keyword()),
                    )),
                }
            }
            Expr::Unary(UnOp::Neg, inner, span) => {
                let got = self.ty_expr_value(inner, env)?;
                if !Type::Float.accepts(got) {
                    return Err(AlmanacError::typeck(
                        *span,
                        format!("negation requires a number, found {}", got.keyword()),
                    ));
                }
                Ok(Some(got))
            }
            Expr::Binary(op, a, b, span) => {
                let ta = self.ty_expr_value(a, env)?;
                let tb = self.ty_expr_value(b, env)?;
                match op {
                    BinOp::And | BinOp::Or => match (ta, tb) {
                        (Type::Filter, Type::Filter) => Ok(Some(Type::Filter)),
                        (x, y) if Type::Bool.accepts(x) && Type::Bool.accepts(y) => {
                            Ok(Some(Type::Bool))
                        }
                        _ => Err(AlmanacError::typeck(
                            *span,
                            format!(
                                "and/or require two bools or two filters, found {} and {}",
                                ta.keyword(),
                                tb.keyword()
                            ),
                        )),
                    },
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                        if !Type::Float.accepts(ta) || !Type::Float.accepts(tb) {
                            return Err(AlmanacError::typeck(
                                *span,
                                format!(
                                    "arithmetic requires numbers, found {} and {}",
                                    ta.keyword(),
                                    tb.keyword()
                                ),
                            ));
                        }
                        Ok(Some(numeric_join(ta, tb)))
                    }
                    BinOp::Cmp(_) => {
                        let both_numeric = Type::Float.accepts(ta) && Type::Float.accepts(tb);
                        if !(both_numeric || ta.accepts(tb) || tb.accepts(ta)) {
                            return Err(AlmanacError::typeck(
                                *span,
                                format!("cannot compare {} with {}", ta.keyword(), tb.keyword()),
                            ));
                        }
                        Ok(Some(Type::Bool))
                    }
                }
            }
            Expr::Call { name, args, span } => {
                if let Some(b) = builtin(name) {
                    if args.len() != b.params.len() {
                        return Err(AlmanacError::typeck(
                            *span,
                            format!(
                                "`{name}` expects {} argument(s), found {}",
                                b.params.len(),
                                args.len()
                            ),
                        ));
                    }
                    if b.mutates_first_arg && !matches!(args[0], Expr::Var(_, _)) {
                        return Err(AlmanacError::typeck(
                            args[0].span(),
                            format!(
                                "`{name}` mutates its first argument, which must be a variable"
                            ),
                        ));
                    }
                    for (arg, expected) in args.iter().zip(b.params) {
                        let got = self.ty_expr_value(arg, env)?;
                        if !expected.accepts(got) {
                            return Err(AlmanacError::typeck(
                                arg.span(),
                                format!(
                                    "`{name}` argument expects {}, found {}",
                                    expected.keyword(),
                                    got.keyword()
                                ),
                            ));
                        }
                    }
                    return Ok(b.ret);
                }
                if let Some((params, ret)) = self.fn_sigs.get(name) {
                    if args.len() != params.len() {
                        return Err(AlmanacError::typeck(
                            *span,
                            format!(
                                "function `{name}` expects {} argument(s), found {}",
                                params.len(),
                                args.len()
                            ),
                        ));
                    }
                    for (arg, expected) in args.iter().zip(params) {
                        let got = self.ty_expr_value(arg, env)?;
                        if !expected.accepts(got) {
                            return Err(AlmanacError::typeck(
                                arg.span(),
                                format!(
                                    "`{name}` argument expects {}, found {}",
                                    expected.keyword(),
                                    got.keyword()
                                ),
                            ));
                        }
                    }
                    return Ok(*ret);
                }
                Err(AlmanacError::typeck(
                    *span,
                    format!("unknown function `{name}`"),
                ))
            }
            Expr::Field(base, field, span) => {
                // `p.ival` / `p.what` on trigger variables.
                if let Expr::Var(base_name, _) = base.as_ref() {
                    if let Some(info) = env.lookup(base_name) {
                        if info.trigger.is_some() {
                            return match field.as_str() {
                                "ival" => Ok(Some(Type::Float)),
                                "what" => Ok(Some(Type::Filter)),
                                other => Err(AlmanacError::typeck(
                                    *span,
                                    format!("unknown trigger field `.{other}`"),
                                )),
                            };
                        }
                    }
                }
                let base_ty = self.ty_expr_value(base, env)?;
                match base_ty {
                    Type::Resources => {
                        check_resource_field(field, *span)?;
                        Ok(Some(Type::Float))
                    }
                    Type::Any => Ok(Some(Type::Any)),
                    other => Err(AlmanacError::typeck(
                        *span,
                        format!("type {} has no field `.{field}`", other.keyword()),
                    )),
                }
            }
            Expr::StructLit { name, fields, span } => match name.as_str() {
                "Rule" => {
                    let mut pattern = false;
                    let mut act = false;
                    for (fname, fexpr) in fields {
                        match fname.as_str() {
                            "pattern" => {
                                pattern = true;
                                let got = self.ty_expr_value(fexpr, env)?;
                                if !Type::Filter.accepts(got) {
                                    return Err(AlmanacError::typeck(
                                        fexpr.span(),
                                        ".pattern must be a filter",
                                    ));
                                }
                            }
                            "act" => {
                                act = true;
                                let got = self.ty_expr_value(fexpr, env)?;
                                if !Type::Action.accepts(got) {
                                    return Err(AlmanacError::typeck(
                                        fexpr.span(),
                                        ".act must be an action",
                                    ));
                                }
                            }
                            other => {
                                return Err(AlmanacError::typeck(
                                    fexpr.span(),
                                    format!("unknown Rule field `.{other}`"),
                                ))
                            }
                        }
                    }
                    if !pattern || !act {
                        return Err(AlmanacError::typeck(
                            *span,
                            "Rule requires .pattern and .act",
                        ));
                    }
                    Ok(Some(Type::Rule))
                }
                "Poll" | "Probe" => {
                    // Validated in trigger-variable context; typing the
                    // literal itself loosely lets it flow to assignments.
                    for (_, fexpr) in fields {
                        self.ty_expr(fexpr, env)?;
                    }
                    Ok(Some(Type::Any))
                }
                other => Err(AlmanacError::typeck(
                    *span,
                    format!("unknown structure `{other}`"),
                )),
            },
        }
    }
}

struct StmtCtx<'a> {
    machine: Option<&'a Machine>,
    in_function: bool,
    expected_return: Option<Type>,
}

/// Structure name expected as initializer of a poll/probe trigger.
fn expected_struct(t: TriggerType) -> &'static str {
    match t {
        TriggerType::Poll => "Poll",
        TriggerType::Probe => "Probe",
        TriggerType::Time => "Time",
    }
}

fn numeric_join(a: Type, b: Type) -> Type {
    use Type::*;
    match (a, b) {
        (Float, _) | (_, Float) | (Any, _) | (_, Any) => Float,
        (Long, _) | (_, Long) => Long,
        _ => Int,
    }
}

fn check_resource_field(field: &str, span: Span) -> Result<()> {
    if farm_netsim::switch::ResourceKind::from_field_name(field).is_none() {
        return Err(AlmanacError::typeck(
            span,
            format!("unknown resource field `.{field}` (expected one of vCPU, RAM, TCAM, PCIe)"),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<Program> {
        check(&parse(src).unwrap())
    }

    const HH_OK: &str = r#"
        fun getHH(list stats, long threshold): list {
          list result;
          int i = 0;
          while (i < list_len(stats)) {
            if (stat_tx_bytes(list_get(stats, i)) >= threshold) then {
              list_push(result, list_get(stats, i));
            }
            i = i + 1;
          }
          return result;
        }
        machine HH {
          place all;
          poll pollStats = Poll { .ival = 10/res().PCIe, .what = port ANY };
          external long threshold;
          action hitterAction;
          list hitters;
          state observe {
            util (res) {
              if (res.vCPU >= 1 and res.RAM >= 100) then {
                return min(res.vCPU, res.PCIe);
              }
            }
            when (pollStats as stats) do {
              hitters = getHH(stats, threshold);
              if (not is_list_empty(hitters)) then {
                transit HHdetected;
              }
            }
          }
          state HHdetected {
            util (res) { return 100; }
            when (enter) do {
              send hitters to harvester;
              transit observe;
            }
          }
          when (recv long newTh from harvester) do { threshold = newTh; }
          when (recv action hitAct from harvester) do { hitterAction = hitAct; }
        }
    "#;

    #[test]
    fn accepts_the_hh_program() {
        check_src(HH_OK).unwrap();
    }

    #[test]
    fn rejects_unknown_variable() {
        let src = "machine M { state s { when (enter) do { x = 1; } } }";
        let e = check_src(src).unwrap_err();
        assert!(e.message.contains("unknown variable"), "{e}");
    }

    #[test]
    fn rejects_transit_to_unknown_state() {
        let src = "machine M { state s { when (enter) do { transit nowhere; } } }";
        let e = check_src(src).unwrap_err();
        assert!(e.message.contains("unknown state"), "{e}");
    }

    #[test]
    fn rejects_bad_util_statement() {
        let src = r#"machine M { int x; state s { util (r) { x = 1; return 0; } } }"#;
        let e = check_src(src).unwrap_err();
        assert!(e.message.contains("if-then-else and return"), "{e}");
    }

    #[test]
    fn rejects_disallowed_util_call() {
        let src = r#"machine M { state s { util (r) { return list_len(r); } } }"#;
        let e = check_src(src).unwrap_err();
        assert!(e.message.contains("min and max"), "{e}");
    }

    #[test]
    fn rejects_unknown_resource_field() {
        let src = r#"machine M { state s { util (r) { return r.GPU; } } }"#;
        let e = check_src(src).unwrap_err();
        assert!(e.message.contains("unknown resource field"), "{e}");
    }

    #[test]
    fn rejects_poll_without_what() {
        let src = r#"machine M { poll p = Poll { .ival = 10 }; state s { } }"#;
        let e = check_src(src).unwrap_err();
        assert!(e.message.contains(".ival and .what"), "{e}");
    }

    #[test]
    fn rejects_type_mismatch_in_assignment() {
        let src = r#"machine M { long x; state s { when (enter) do { x = "hello"; } } }"#;
        let e = check_src(src).unwrap_err();
        assert!(e.message.contains("cannot assign"), "{e}");
    }

    #[test]
    fn inheritance_flattens_states_and_vars() {
        let src = r#"
            machine Base {
              place all;
              long threshold;
              state observe { when (enter) do { threshold = 1; } }
            }
            machine Child extends Base {
              list extra;
              state observe { when (enter) do { threshold = 2; } }
              state more { when (enter) do { transit observe; } }
            }
        "#;
        let p = check_src(src).unwrap();
        let c = p.machine("Child").unwrap();
        assert_eq!(c.vars.len(), 2);
        assert_eq!(c.states.len(), 2);
        assert_eq!(c.states[0].name, "observe"); // parent position kept
        assert!(!c.placements.is_empty()); // inherited place all
                                           // The override took effect.
        let Action::Assign { value, .. } = &c.states[0].events[0].actions[0] else {
            panic!()
        };
        assert_eq!(value, &Expr::Lit(Literal::Int(2), value.span()));
    }

    #[test]
    fn inheritance_rejects_variable_shadowing() {
        let src = r#"
            machine Base { long x; state s { } }
            machine Child extends Base { long x; state s { } }
        "#;
        let e = check_src(src).unwrap_err();
        assert!(e.message.contains("shadows"), "{e}");
    }

    #[test]
    fn inheritance_rejects_cycles() {
        let src = r#"
            machine A extends B { state s { } }
            machine B extends A { state s { } }
        "#;
        let e = check_src(src).unwrap_err();
        assert!(e.message.contains("cycle"), "{e}");
    }

    #[test]
    fn rejects_send_in_function() {
        let src = r#"
            fun f(int x) { send x to harvester; }
            machine M { state s { } }
        "#;
        let e = check_src(src).unwrap_err();
        assert!(e.message.contains("send is not allowed"), "{e}");
    }

    #[test]
    fn rejects_mutating_builtin_on_non_variable() {
        let src = r#"
            fun f(list l): list {
              list_push(f2(), 1);
              return l;
            }
            fun f2(): list { list r; return r; }
            machine M { state s { } }
        "#;
        let e = check_src(src).unwrap_err();
        assert!(e.message.contains("must be a variable"), "{e}");
    }

    #[test]
    fn rejects_machine_without_states() {
        let e = check_src("machine M { }").unwrap_err();
        assert!(e.message.contains("no states"), "{e}");
    }

    #[test]
    fn recv_binding_is_typed() {
        // newTh is long; assigning it to a string var must fail.
        let src = r#"
            machine M {
              string s;
              state st { }
              when (recv long newTh from harvester) do { s = newTh; }
            }
        "#;
        let e = check_src(src).unwrap_err();
        assert!(e.message.contains("cannot assign"), "{e}");
    }

    #[test]
    fn unknown_send_target_machine() {
        let src = r#"machine M { state s { when (enter) do { send 1 to Ghost; } } }"#;
        let e = check_src(src).unwrap_err();
        assert!(e.message.contains("unknown machine"), "{e}");
    }
}
