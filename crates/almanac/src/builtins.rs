//! Signatures of the soil runtime library (the paper's List. 1 plus the
//! stats/list/packet helpers every Tab. I use case relies on).
//!
//! The type checker validates calls against these signatures; the seed
//! interpreter in `farm-soil` provides the implementations.

use crate::ast::Type;

/// Signature of a runtime-library function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Builtin {
    pub name: &'static str,
    pub params: &'static [Type],
    /// `None` means the call returns no value (unit).
    pub ret: Option<Type>,
    /// True when the first argument is mutated in place and must be an
    /// lvalue (a plain variable), e.g. `list_push`.
    pub mutates_first_arg: bool,
}

macro_rules! b {
    ($name:literal, [$($p:expr),*], $ret:expr) => {
        Builtin { name: $name, params: &[$($p),*], ret: $ret, mutates_first_arg: false }
    };
    ($name:literal, [$($p:expr),*], $ret:expr, mutates) => {
        Builtin { name: $name, params: &[$($p),*], ret: $ret, mutates_first_arg: true }
    };
}

/// The full runtime-library signature table.
pub const BUILTINS: &[Builtin] = &[
    // Resource monitoring (List. 1).
    b!("res", [], Some(Type::Resources)),
    // Dataplane (List. 1).
    b!("addTCAMRule", [Type::Rule], None),
    b!("removeTCAMRule", [Type::Filter], None),
    b!("getTCAMRule", [Type::Filter], Some(Type::Rule)),
    // Running external code (List. 1); `exec_n` runs `n` iterations of the
    // command in one scheduling slot (the Fig. 6d partitioning knob).
    b!("exec", [Type::Str], None),
    b!("exec_n", [Type::Str, Type::Int], None),
    // Math.
    b!("min", [Type::Float, Type::Float], Some(Type::Float)),
    b!("max", [Type::Float, Type::Float], Some(Type::Float)),
    b!("abs", [Type::Float], Some(Type::Float)),
    b!("log2", [Type::Float], Some(Type::Float)),
    b!("to_float", [Type::Any], Some(Type::Float)),
    b!("to_int", [Type::Any], Some(Type::Int)),
    // Time (milliseconds since seed start).
    b!("now", [], Some(Type::Long)),
    // Action constructors.
    b!("action_drop", [], Some(Type::Action)),
    b!("action_rate_limit", [Type::Long], Some(Type::Action)),
    b!("action_set_qos", [Type::Int], Some(Type::Action)),
    b!("action_count", [], Some(Type::Action)),
    b!("action_mirror", [], Some(Type::Action)),
    b!("rule", [Type::Filter, Type::Action], Some(Type::Rule)),
    // Lists.
    b!("list_len", [Type::List], Some(Type::Int)),
    b!("list_get", [Type::List, Type::Int], Some(Type::Any)),
    b!("is_list_empty", [Type::List], Some(Type::Bool)),
    b!("list_contains", [Type::List, Type::Any], Some(Type::Bool)),
    b!("list_push", [Type::List, Type::Any], None, mutates),
    b!("list_push_unique", [Type::List, Type::Any], None, mutates),
    b!("list_clear", [Type::List], None, mutates),
    b!("list_remove_at", [Type::List, Type::Int], None, mutates),
    // Pairs (poor man's maps for per-key state).
    b!("pair", [Type::Any, Type::Any], Some(Type::Any)),
    b!("pair_first", [Type::Any], Some(Type::Any)),
    b!("pair_second", [Type::Any], Some(Type::Any)),
    // Statistics entries delivered by poll triggers.
    b!("stat_port", [Type::Stat], Some(Type::Int)),
    b!("stat_subject", [Type::Stat], Some(Type::Str)),
    b!("stat_tx_bytes", [Type::Stat], Some(Type::Long)),
    b!("stat_rx_bytes", [Type::Stat], Some(Type::Long)),
    b!("stat_tx_packets", [Type::Stat], Some(Type::Long)),
    b!("stat_rx_packets", [Type::Stat], Some(Type::Long)),
    // Packet accessors for probe triggers.
    b!("pkt_src_ip", [Type::Packet], Some(Type::Str)),
    b!("pkt_dst_ip", [Type::Packet], Some(Type::Str)),
    b!("pkt_src_port", [Type::Packet], Some(Type::Int)),
    b!("pkt_dst_port", [Type::Packet], Some(Type::Int)),
    b!("pkt_proto", [Type::Packet], Some(Type::Str)),
    b!("pkt_len", [Type::Packet], Some(Type::Int)),
    b!("pkt_is_syn", [Type::Packet], Some(Type::Bool)),
    b!("pkt_is_fin", [Type::Packet], Some(Type::Bool)),
    b!("pkt_is_ack", [Type::Packet], Some(Type::Bool)),
    b!(
        "filter_matches",
        [Type::Filter, Type::Packet],
        Some(Type::Bool)
    ),
    // Strings.
    b!("to_string", [Type::Any], Some(Type::Str)),
    b!("str_concat", [Type::Str, Type::Str], Some(Type::Str)),
    b!("str_contains", [Type::Str, Type::Str], Some(Type::Bool)),
];

/// Looks up a builtin by name.
pub fn builtin(name: &str) -> Option<&'static Builtin> {
    BUILTINS.iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_contains_the_papers_runtime_api() {
        for name in [
            "res",
            "addTCAMRule",
            "removeTCAMRule",
            "getTCAMRule",
            "exec",
        ] {
            assert!(builtin(name).is_some(), "missing List. 1 builtin {name}");
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = BUILTINS.iter().map(|b| b.name).collect();
        names.sort_unstable();
        let len = names.len();
        names.dedup();
        assert_eq!(names.len(), len, "duplicate builtin names");
    }

    #[test]
    fn mutating_builtins_return_unit() {
        for b in BUILTINS.iter().filter(|b| b.mutates_first_arg) {
            assert_eq!(b.ret, None, "{} must return unit", b.name);
            assert_eq!(b.params[0], Type::List, "{} must mutate a list", b.name);
        }
    }
}
