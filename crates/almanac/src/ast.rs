//! Abstract syntax tree of Almanac (the grammar of the paper's Fig. 3).

use crate::error::Span;

/// A whole Almanac compilation unit: auxiliary functions plus machines.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    pub functions: Vec<FunDecl>,
    pub machines: Vec<Machine>,
}

impl Program {
    /// Finds a machine by name.
    pub fn machine(&self, name: &str) -> Option<&Machine> {
        self.machines.iter().find(|m| m.name == name)
    }

    /// Finds an auxiliary function by name.
    pub fn function(&self, name: &str) -> Option<&FunDecl> {
        self.functions.iter().find(|f| f.name == name)
    }
}

/// An auxiliary function (`fundec` in the grammar).
#[derive(Debug, Clone, PartialEq)]
pub struct FunDecl {
    pub name: String,
    pub params: Vec<(Type, String)>,
    pub ret: Option<Type>,
    pub body: Vec<Action>,
    pub span: Span,
}

/// A seed state machine.
#[derive(Debug, Clone, PartialEq)]
pub struct Machine {
    pub name: String,
    pub extends: Option<String>,
    pub placements: Vec<PlaceDirective>,
    pub vars: Vec<VarDecl>,
    pub states: Vec<StateDecl>,
    /// Machine-level events apply in every state (overridable per state).
    pub events: Vec<EventDecl>,
    pub span: Span,
}

impl Machine {
    /// Finds a state by name.
    pub fn state(&self, name: &str) -> Option<&StateDecl> {
        self.states.iter().find(|s| s.name == name)
    }

    /// Trigger variables (time/poll/probe) declared on the machine.
    pub fn trigger_vars(&self) -> impl Iterator<Item = &VarDecl> {
        self.vars.iter().filter(|v| v.trigger().is_some())
    }
}

/// Value types (`typ`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    Bool,
    Int,
    Long,
    Float,
    Str,
    List,
    Packet,
    Action,
    Filter,
    Rule,
    /// The `res()` structure passed to `util` callbacks.
    Resources,
    /// One polled statistics entry.
    Stat,
    /// Escape hatch for heterogeneous list elements / pairs.
    Any,
}

impl Type {
    /// Keyword spelling of the type.
    pub fn keyword(self) -> &'static str {
        match self {
            Type::Bool => "bool",
            Type::Int => "int",
            Type::Long => "long",
            Type::Float => "float",
            Type::Str => "string",
            Type::List => "list",
            Type::Packet => "packet",
            Type::Action => "action",
            Type::Filter => "filter",
            Type::Rule => "rule",
            Type::Resources => "resources",
            Type::Stat => "stat",
            Type::Any => "any",
        }
    }

    /// True if a value of type `other` is acceptable where `self` is
    /// expected (int/long unify; everything matches `Any`).
    pub fn accepts(self, other: Type) -> bool {
        use Type::*;
        if self == Any || other == Any {
            return true;
        }
        matches!(
            (self, other),
            (Bool, Bool)
                | (Int, Int)
                | (Int, Long)
                | (Long, Long)
                | (Long, Int)
                | (Float, Float)
                | (Float, Int)
                | (Float, Long)
                | (Str, Str)
                | (List, List)
                | (Packet, Packet)
                | (Action, Action)
                | (Filter, Filter)
                | (Rule, Rule)
                | (Resources, Resources)
                | (Stat, Stat)
        )
    }
}

/// Trigger variable types (`tty`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TriggerType {
    /// Strictly periodic timer.
    Time,
    /// Periodic ASIC statistics polling (subject in `.what`).
    Poll,
    /// Packet sampling (subject in `.what`; period is a lower bound).
    Probe,
}

impl TriggerType {
    pub fn keyword(self) -> &'static str {
        match self {
            TriggerType::Time => "time",
            TriggerType::Poll => "poll",
            TriggerType::Probe => "probe",
        }
    }
}

/// Kind of a variable declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeclKind {
    Plain(Type),
    Trigger(TriggerType),
}

/// A variable declaration (`xd`).
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    /// Customizable at deployment (machine level only).
    pub external: bool,
    pub kind: DeclKind,
    pub name: String,
    pub init: Option<Expr>,
    pub span: Span,
}

impl VarDecl {
    /// The trigger type, if this is a trigger variable.
    pub fn trigger(&self) -> Option<TriggerType> {
        match self.kind {
            DeclKind::Trigger(t) => Some(t),
            DeclKind::Plain(_) => None,
        }
    }
}

/// A discrete state (`st`).
#[derive(Debug, Clone, PartialEq)]
pub struct StateDecl {
    pub name: String,
    pub vars: Vec<VarDecl>,
    pub util: Option<UtilDecl>,
    pub events: Vec<EventDecl>,
    pub span: Span,
}

/// The per-state utility callback (`ut`).
#[derive(Debug, Clone, PartialEq)]
pub struct UtilDecl {
    /// Name bound to the resource-allocation argument.
    pub param: String,
    pub body: Vec<Action>,
    pub span: Span,
}

/// An event handler (`ev`).
#[derive(Debug, Clone, PartialEq)]
pub struct EventDecl {
    pub trigger: Trigger,
    pub actions: Vec<Action>,
    pub span: Span,
}

/// Event triggers (`trg`).
#[derive(Debug, Clone, PartialEq)]
pub enum Trigger {
    /// Entering the state.
    Enter,
    /// Leaving the state.
    Exit,
    /// Resource reallocation by the seeder.
    Realloc,
    /// A trigger variable firing, optionally binding its payload.
    Var { name: String, bind: Option<String> },
    /// Message reception with a typed pattern.
    Recv {
        ty: Type,
        bind: String,
        from: MsgEndpoint,
    },
}

/// Message source/destination (`mname [@dst] | harvester`).
#[derive(Debug, Clone, PartialEq)]
pub enum MsgEndpoint {
    Harvester,
    Machine { name: String, at: Option<Expr> },
}

/// A placement directive (`pl`).
#[derive(Debug, Clone, PartialEq)]
pub struct PlaceDirective {
    pub quant: PlaceQuant,
    pub constraint: PlaceConstraint,
    pub span: Span,
}

/// `all` / `any` quantifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaceQuant {
    All,
    Any,
}

/// Placement constraint body (`pc`).
#[derive(Debug, Clone, PartialEq)]
pub enum PlaceConstraint {
    /// No constraint: all switches.
    None,
    /// Explicit switch-id expressions.
    Switches(Vec<Expr>),
    /// Path-relative constraint (`ra`).
    Range {
        role: Option<PathRole>,
        /// Filter expression selecting the paths (all paths if absent).
        filter: Option<Expr>,
        op: CmpOp,
        dist: Expr,
    },
}

/// Path anchor of a range constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathRole {
    Sender,
    Receiver,
    Midpoint,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    And,
    Or,
    Add,
    Sub,
    Mul,
    Div,
    Cmp(CmpOp),
}

/// Comparison operators (`<>` is not-equal).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Le,
    Ge,
    Lt,
    Gt,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Not,
    Neg,
}

/// Literals.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
}

/// Filter atoms as expression syntax (`fil`).
#[derive(Debug, Clone, PartialEq)]
pub enum FilterExpr {
    SrcIp(Box<Expr>),
    DstIp(Box<Expr>),
    SrcPort(Box<Expr>),
    DstPort(Box<Expr>),
    Proto(Box<Expr>),
    /// `port <expr>` — a switch interface.
    IfPort(Box<Expr>),
    /// `port ANY` — every switch interface.
    IfPortAny,
}

/// Expressions (`ex`).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Lit(Literal, Span),
    Var(String, Span),
    Filter(FilterExpr, Span),
    Unary(UnOp, Box<Expr>, Span),
    Binary(BinOp, Box<Expr>, Box<Expr>, Span),
    Call {
        name: String,
        args: Vec<Expr>,
        span: Span,
    },
    /// Field access: `res.vCPU`, `pkt.len` style.
    Field(Box<Expr>, String, Span),
    /// Struct literal: `Poll { .ival = …, .what = … }`.
    StructLit {
        name: String,
        fields: Vec<(String, Expr)>,
        span: Span,
    },
}

impl Expr {
    /// Source position of the expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Lit(_, s)
            | Expr::Var(_, s)
            | Expr::Filter(_, s)
            | Expr::Unary(_, _, s)
            | Expr::Binary(_, _, _, s)
            | Expr::Call { span: s, .. }
            | Expr::Field(_, _, s)
            | Expr::StructLit { span: s, .. } => *s,
        }
    }
}

/// Statements (`ac`).
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// `x = e;` or `x.field = e;`
    Assign {
        target: String,
        field: Option<String>,
        value: Expr,
        span: Span,
    },
    /// `transit sname;`
    Transit {
        state: String,
        span: Span,
    },
    If {
        cond: Expr,
        then_branch: Vec<Action>,
        else_branch: Vec<Action>,
        span: Span,
    },
    While {
        cond: Expr,
        body: Vec<Action>,
        span: Span,
    },
    Return {
        value: Option<Expr>,
        span: Span,
    },
    /// `send e to harvester;` / `send e to M;` / `send e to M@dst;`
    Send {
        value: Expr,
        to: MsgEndpoint,
        span: Span,
    },
    /// Bare call for side effects: `f(a, b);`
    ExprStmt {
        expr: Expr,
        span: Span,
    },
    /// Local declaration inside a block: `int i = 0;`
    Local(VarDecl),
}

impl Action {
    /// Source position of the statement.
    pub fn span(&self) -> Span {
        match self {
            Action::Assign { span, .. }
            | Action::Transit { span, .. }
            | Action::If { span, .. }
            | Action::While { span, .. }
            | Action::Return { span, .. }
            | Action::Send { span, .. }
            | Action::ExprStmt { span, .. } => *span,
            Action::Local(v) => v.span,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_acceptance_unifies_int_long() {
        assert!(Type::Long.accepts(Type::Int));
        assert!(Type::Int.accepts(Type::Long));
        assert!(Type::Float.accepts(Type::Int));
        assert!(!Type::Int.accepts(Type::Float));
        assert!(!Type::Str.accepts(Type::Int));
        assert!(Type::Any.accepts(Type::Rule));
        assert!(Type::List.accepts(Type::Any));
    }

    #[test]
    fn machine_lookup_helpers() {
        let m = Machine {
            name: "M".into(),
            extends: None,
            placements: vec![],
            vars: vec![VarDecl {
                external: false,
                kind: DeclKind::Trigger(TriggerType::Poll),
                name: "p".into(),
                init: None,
                span: Span::default(),
            }],
            states: vec![StateDecl {
                name: "s".into(),
                vars: vec![],
                util: None,
                events: vec![],
                span: Span::default(),
            }],
            events: vec![],
            span: Span::default(),
        };
        assert!(m.state("s").is_some());
        assert!(m.state("t").is_none());
        assert_eq!(m.trigger_vars().count(), 1);
    }
}
