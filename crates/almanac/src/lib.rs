//! Almanac — FARM's automata language for network management and
//! monitoring code (§ III of the ICDCS 2024 paper).
//!
//! M&M tasks are written as state machines ("seeds") with:
//!
//! * trigger variables (`time`, `poll`, `probe`) that fire periodic
//!   events, with resource-dependent intervals like
//!   `.ival = 10/res().PCIe`,
//! * per-state `util` callbacks from which the seeder derives resource
//!   constraints `C^s(r̄)` and utility polynomials `u^s(r̄)`,
//! * `place` directives (`all`/`any`, explicit switches, or path-relative
//!   `range` constraints) resolved against the SDN controller,
//! * local (re)actions: TCAM rule updates, state transitions, messages to
//!   other seeds or the task's harvester.
//!
//! The crate covers the full pipeline: [`lexer`] → [`parser`] →
//! [`typeck`] (inheritance flattening + validation) → [`analysis`]
//! (placement sets, utility polynomials, poll subjects) → [`compile`]
//! (the seeder front-end), plus the [`xml`] interchange format, the
//! canonical [`printer`], and the paper's 16 Tab. I use cases in
//! [`programs`]. Execution of compiled machines lives in `farm-soil`.
//!
//! # Example
//!
//! ```
//! use farm_almanac::compile::{compile_machine, frontend};
//! use farm_almanac::analysis::ConstEnv;
//! use farm_netsim::controller::SdnController;
//! use farm_netsim::switch::SwitchModel;
//! use farm_netsim::topology::Topology;
//!
//! let program = frontend(farm_almanac::programs::HEAVY_HITTER)?;
//! let topo = Topology::spine_leaf(2, 3,
//!     SwitchModel::accton_as7712(), SwitchModel::accton_as5712());
//! let ctl = SdnController::new(&topo);
//! let hh = compile_machine(&program, "HH", &ConstEnv::new(), &ctl)?;
//! assert_eq!(hh.seeds.len(), 5); // place all → one seed per switch
//! # Ok::<(), farm_almanac::error::AlmanacError>(())
//! ```

pub mod analysis;
pub mod ast;
pub mod builtins;
pub mod compile;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod programs;
pub mod typeck;
pub mod value;
pub mod xml;

pub use compile::{
    compile_machine, compile_task, compile_task_with_diagnostics, frontend, CompileReport,
    CompiledMachine, CompiledTask, MachineDiagnostic,
};
pub use error::{AlmanacError, Result};
pub use value::Value;
