//! Diagnostics for the Almanac compiler pipeline.

use std::fmt;

/// Source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    pub line: u32,
    pub col: u32,
}

impl Span {
    pub fn new(line: u32, col: u32) -> Span {
        Span { line, col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Phase of the pipeline an error originated from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    Lex,
    Parse,
    Typecheck,
    Analysis,
    Xml,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Typecheck => "typecheck",
            Phase::Analysis => "analysis",
            Phase::Xml => "xml",
        };
        f.write_str(s)
    }
}

/// A compiler diagnostic with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlmanacError {
    pub phase: Phase,
    pub span: Span,
    pub message: String,
}

impl AlmanacError {
    pub fn new(phase: Phase, span: Span, message: impl Into<String>) -> AlmanacError {
        AlmanacError {
            phase,
            span,
            message: message.into(),
        }
    }

    /// Parse-phase error helper.
    pub fn parse(span: Span, message: impl Into<String>) -> AlmanacError {
        AlmanacError::new(Phase::Parse, span, message)
    }

    /// Typecheck-phase error helper.
    pub fn typeck(span: Span, message: impl Into<String>) -> AlmanacError {
        AlmanacError::new(Phase::Typecheck, span, message)
    }

    /// Analysis-phase error helper.
    pub fn analysis(span: Span, message: impl Into<String>) -> AlmanacError {
        AlmanacError::new(Phase::Analysis, span, message)
    }
}

impl fmt::Display for AlmanacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error at {}: {}", self.phase, self.span, self.message)
    }
}

impl std::error::Error for AlmanacError {}

/// Pipeline result type.
pub type Result<T> = std::result::Result<T, AlmanacError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_includes_phase_and_span() {
        let e = AlmanacError::parse(Span::new(3, 14), "unexpected token");
        assert_eq!(e.to_string(), "parse error at 3:14: unexpected token");
    }
}
