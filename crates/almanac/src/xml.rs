//! XML seed interchange format.
//!
//! Per § V-A d of the paper, the seeder compiles Almanac machines into XML
//! which each switch's soil transforms into executable seeds; XML is used
//! for interoperability and portability across switch OSes. The document
//! carries structural metadata (name, states, trigger variables, placement
//! count) for tooling plus the canonical machine source, which the
//! receiving soil re-parses — so export → import is an exact round trip.

use crate::ast::Machine;
use crate::error::{AlmanacError, Phase, Result, Span};
use crate::parser;
use crate::printer::machine_to_source;

/// Serializes a machine into the XML seed format.
pub fn machine_to_xml(m: &Machine) -> String {
    let mut out = String::new();
    out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    out.push_str(&format!("<seed name=\"{}\"", escape(&m.name)));
    if let Some(e) = &m.extends {
        out.push_str(&format!(" extends=\"{}\"", escape(e)));
    }
    out.push_str(">\n");
    out.push_str("  <states>\n");
    for s in &m.states {
        out.push_str(&format!(
            "    <state name=\"{}\" events=\"{}\" util=\"{}\"/>\n",
            escape(&s.name),
            s.events.len(),
            s.util.is_some()
        ));
    }
    out.push_str("  </states>\n");
    out.push_str("  <triggers>\n");
    for v in m.trigger_vars() {
        out.push_str(&format!(
            "    <trigger name=\"{}\" type=\"{}\"/>\n",
            escape(&v.name),
            v.trigger().expect("trigger var").keyword()
        ));
    }
    out.push_str("  </triggers>\n");
    out.push_str(&format!(
        "  <placements count=\"{}\"/>\n",
        m.placements.len()
    ));
    out.push_str("  <source>");
    out.push_str(&escape(&machine_to_source(m)));
    out.push_str("</source>\n");
    out.push_str("</seed>\n");
    out
}

/// Deserializes a machine from the XML seed format.
///
/// # Errors
///
/// XML-phase errors for a malformed document and parse errors for a
/// malformed embedded source.
pub fn machine_from_xml(xml: &str) -> Result<Machine> {
    let body = extract_element(xml, "source").ok_or_else(|| {
        AlmanacError::new(Phase::Xml, Span::default(), "missing <source> element")
    })?;
    let src = unescape(body);
    let program = parser::parse(&src)?;
    program.machines.into_iter().next().ok_or_else(|| {
        AlmanacError::new(
            Phase::Xml,
            Span::default(),
            "embedded source contains no machine",
        )
    })
}

/// Extracts the text content of the first `<tag>…</tag>` element.
fn extract_element<'a>(xml: &'a str, tag: &str) -> Option<&'a str> {
    let open = format!("<{tag}>");
    let close = format!("</{tag}>");
    let start = xml.find(&open)? + open.len();
    let end = xml[start..].find(&close)? + start;
    Some(&xml[start..end])
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

fn unescape(s: &str) -> String {
    s.replace("&quot;", "\"")
        .replace("&gt;", ">")
        .replace("&lt;", "<")
        .replace("&amp;", "&")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::machine_to_source;

    const SRC: &str = r#"
        machine HH {
          place all;
          poll p = Poll { .ival = 10/res().PCIe, .what = port ANY };
          external long threshold = 1000;
          state observe {
            util (res) { if (res.vCPU >= 1) then { return res.vCPU; } }
            when (p as stats) do { transit detected; }
          }
          state detected {
            when (enter) do { send threshold to harvester; transit observe; }
          }
        }
    "#;

    fn machine() -> Machine {
        parser::parse(SRC).unwrap().machines.remove(0)
    }

    #[test]
    fn round_trip_preserves_canonical_source() {
        let m = machine();
        let xml = machine_to_xml(&m);
        let back = machine_from_xml(&xml).unwrap();
        assert_eq!(machine_to_source(&m), machine_to_source(&back));
        assert_eq!(back.name, "HH");
        assert_eq!(back.states.len(), 2);
    }

    #[test]
    fn xml_contains_structural_metadata() {
        let xml = machine_to_xml(&machine());
        assert!(xml.contains("<seed name=\"HH\">"));
        assert!(xml.contains("<state name=\"observe\" events=\"1\" util=\"true\"/>"));
        assert!(xml.contains("<trigger name=\"p\" type=\"poll\"/>"));
        assert!(xml.contains("<placements count=\"1\"/>"));
    }

    #[test]
    fn strings_with_specials_survive() {
        let src = r#"
            machine M {
              place any;
              filter f = dstIP "10.0.0.0/8" and dstPort 80;
              state s { }
            }
        "#;
        let m = parser::parse(src).unwrap().machines.remove(0);
        let back = machine_from_xml(&machine_to_xml(&m)).unwrap();
        assert_eq!(machine_to_source(&m), machine_to_source(&back));
    }

    #[test]
    fn missing_source_is_reported() {
        let err = machine_from_xml("<seed name=\"x\"></seed>").unwrap_err();
        assert!(err.message.contains("<source>"), "{err}");
    }
}
