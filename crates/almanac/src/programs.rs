//! The 16 network monitoring and attack-detection use cases of the
//! paper's Tab. I, implemented in Almanac.
//!
//! Every program compiles through the full front-end (see this module's
//! tests) and is executable by the `farm-soil` interpreter. Line counts
//! are compared against the paper's reported numbers by the Tab. I
//! reproduction in `farm-bench`.

/// One Tab. I use case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UseCase {
    /// Display name as in Tab. I.
    pub name: &'static str,
    /// Almanac source (may contain several machines/functions).
    pub source: &'static str,
    /// The principal machine to deploy.
    pub machine: &'static str,
    /// Seed lines of code reported by the paper.
    pub paper_seed_loc: usize,
    /// Harvester lines of code reported by the paper.
    pub paper_harvester_loc: usize,
}

/// Counts non-empty, non-comment source lines (the paper's convention of
/// counting all code including abstracted functions).
pub fn loc(source: &str) -> usize {
    source
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//"))
        .count()
}

/// Heavy hitter detection — the paper's List. 2 with its abstracted
/// auxiliary functions written out.
pub const HEAVY_HITTER: &str = r#"
fun getHH(list stats, long threshold): list {
  list result;
  int i = 0;
  while (i < list_len(stats)) {
    if (stat_tx_bytes(list_get(stats, i)) >= threshold) then {
      list_push(result, list_get(stats, i));
    }
    i = i + 1;
  }
  return result;
}
fun setHitterRules(list hitters, action hitterAction) {
  int i = 0;
  while (i < list_len(hitters)) {
    removeTCAMRule(port stat_port(list_get(hitters, i)));
    addTCAMRule(Rule { .pattern = port stat_port(list_get(hitters, i)), .act = hitterAction });
    i = i + 1;
  }
}
machine HH {
  place all;
  poll pollStats = Poll {
    .ival = 10/res().PCIe, .what = port ANY
  };
  external long threshold = 1000000;
  external action hitterAction = action_set_qos(1);
  list hitters;
  state observe {
    util (res) {
      if (res.vCPU >= 1 and res.RAM >= 100) then {
        return min(res.vCPU, res.PCIe);
      }
    }
    when (pollStats as stats) do {
      hitters = getHH(stats, threshold);
      if (not is_list_empty(hitters)) then {
        transit HHdetected;
      }
    }
  }
  state HHdetected {
    util (res) { return 100; }
    when (enter) do {
      send hitters to harvester;
      setHitterRules(hitters, hitterAction);
      transit observe;
    }
  }
  when (recv long newTh from harvester)
  do { threshold = newTh; }
  when (recv action hitAct from harvester)
  do { hitterAction = hitAct; }
}
"#;

/// Hierarchical heavy hitters by inheritance: reuses HH's polling and
/// reaction machinery, overriding `observe` to also aggregate port groups
/// (one hierarchy level above individual ports).
pub const HIER_HH_INHERITED: &str = r#"
fun getHH(list stats, long threshold): list {
  list result;
  int i = 0;
  while (i < list_len(stats)) {
    if (stat_tx_bytes(list_get(stats, i)) >= threshold) then {
      list_push(result, list_get(stats, i));
    }
    i = i + 1;
  }
  return result;
}
fun setHitterRules(list hitters, action hitterAction) {
  int i = 0;
  while (i < list_len(hitters)) {
    removeTCAMRule(port stat_port(list_get(hitters, i)));
    addTCAMRule(Rule { .pattern = port stat_port(list_get(hitters, i)), .act = hitterAction });
    i = i + 1;
  }
}
fun groupVolume(list stats, int group, int groupSize): long {
  long total = 0;
  int i = 0;
  while (i < list_len(stats)) {
    if (stat_port(list_get(stats, i)) / groupSize == group) then {
      total = total + stat_tx_bytes(list_get(stats, i));
    }
    i = i + 1;
  }
  return total;
}
machine HH {
  place all;
  poll pollStats = Poll {
    .ival = 10/res().PCIe, .what = port ANY
  };
  external long threshold = 1000000;
  external action hitterAction = action_set_qos(1);
  list hitters;
  state observe {
    util (res) {
      if (res.vCPU >= 1 and res.RAM >= 100) then {
        return min(res.vCPU, res.PCIe);
      }
    }
    when (pollStats as stats) do {
      hitters = getHH(stats, threshold);
      if (not is_list_empty(hitters)) then {
        transit HHdetected;
      }
    }
  }
  state HHdetected {
    util (res) { return 100; }
    when (enter) do {
      send hitters to harvester;
      setHitterRules(hitters, hitterAction);
      transit observe;
    }
  }
  when (recv long newTh from harvester)
  do { threshold = newTh; }
  when (recv action hitAct from harvester)
  do { hitterAction = hitAct; }
}
machine HHH extends HH {
  external long groupThreshold = 8000000;
  external int groupSize = 8;
  list groupHitters;
  state observe {
    util (res) {
      if (res.vCPU >= 1 and res.RAM >= 100) then {
        return min(res.vCPU, res.PCIe);
      }
    }
    when (pollStats as stats) do {
      hitters = getHH(stats, threshold);
      list_clear(groupHitters);
      int g = 0;
      while (g * groupSize < 64) {
        if (groupVolume(stats, g, groupSize) >= groupThreshold) then {
          list_push(groupHitters, g);
        }
        g = g + 1;
      }
      if (not is_list_empty(hitters)) then {
        transit HHdetected;
      }
      if (not is_list_empty(groupHitters)) then {
        send groupHitters to harvester;
      }
    }
  }
}
"#;

/// Hierarchical heavy hitters, standalone two-level implementation.
pub const HIER_HH_STANDALONE: &str = r#"
fun levelHitters(list stats, long threshold, int groupSize): list {
  list result;
  int g = 0;
  while (g * groupSize < 64) {
    long total = 0;
    int i = 0;
    while (i < list_len(stats)) {
      if (stat_port(list_get(stats, i)) / groupSize == g) then {
        total = total + stat_tx_bytes(list_get(stats, i));
      }
      i = i + 1;
    }
    if (total >= threshold) then {
      list_push(result, pair(g, total));
    }
    g = g + 1;
  }
  return result;
}
machine HHH2 {
  place all;
  poll pollStats = Poll { .ival = 10/res().PCIe, .what = port ANY };
  external long leafThreshold = 1000000;
  external long innerThreshold = 8000000;
  external int groupSize = 8;
  list leafHitters;
  list innerHitters;
  state observe {
    util (res) {
      if (res.vCPU >= 1 and res.RAM >= 200) then {
        return min(res.vCPU, res.PCIe);
      }
    }
    when (pollStats as stats) do {
      leafHitters = levelHitters(stats, leafThreshold, 1);
      innerHitters = levelHitters(stats, innerThreshold, groupSize);
      if (not is_list_empty(innerHitters)) then {
        transit report;
      }
    }
  }
  state report {
    util (res) { return 50; }
    when (enter) do {
      send leafHitters to harvester;
      send innerHitters to harvester;
      transit observe;
    }
  }
  when (recv long newLeaf from harvester) do { leafThreshold = newLeaf; }
}
"#;

/// Volumetric DDoS detection with local mitigation (drop rule on the
/// victim prefix) and harvester-coordinated recovery.
pub const DDOS: &str = r#"
fun victimsOver(list stats, long limitBytes): list {
  list victims;
  int i = 0;
  while (i < list_len(stats)) {
    if (stat_rx_bytes(list_get(stats, i)) + stat_tx_bytes(list_get(stats, i)) >= limitBytes) then {
      list_push(victims, stat_subject(list_get(stats, i)));
    }
    i = i + 1;
  }
  return victims;
}
machine DDoS {
  place all;
  external string protectedPrefix = "10.0.0.0/8";
  external long volumeThreshold = 50000000;
  external long sustainWindows = 2;
  poll victimStats = Poll {
    .ival = 100/res().PCIe,
    .what = dstIP protectedPrefix
  };
  long suspectWindows = 0;
  list victims;
  state observe {
    util (res) {
      if (res.vCPU >= 1 and res.RAM >= 200 and res.TCAM >= 4) then {
        return min(2 * res.vCPU, res.PCIe);
      }
    }
    when (victimStats as stats) do {
      victims = victimsOver(stats, volumeThreshold);
      if (not is_list_empty(victims)) then {
        suspectWindows = 1;
        transit suspect;
      }
    }
  }
  state suspect {
    util (res) { return 60; }
    when (victimStats as stats) do {
      victims = victimsOver(stats, volumeThreshold);
      if (is_list_empty(victims)) then {
        suspectWindows = 0;
        transit observe;
      } else {
        suspectWindows = suspectWindows + 1;
        if (suspectWindows >= sustainWindows) then {
          transit mitigate;
        }
      }
    }
  }
  state mitigate {
    util (res) { return 100; }
    when (enter) do {
      addTCAMRule(Rule {
        .pattern = dstIP protectedPrefix,
        .act = action_rate_limit(1000000)
      });
      send victims to harvester;
    }
    when (victimStats as stats) do {
      victims = victimsOver(stats, volumeThreshold / 2);
      if (is_list_empty(victims)) then {
        transit recover;
      }
    }
    when (recv string release from harvester) do {
      transit recover;
    }
  }
  state recover {
    util (res) { return 20; }
    when (enter) do {
      removeTCAMRule(dstIP protectedPrefix);
      send suspectWindows to harvester;
      suspectWindows = 0;
      transit observe;
    }
  }
  when (recv long newThreshold from harvester) do {
    volumeThreshold = newThreshold;
  }
}
"#;

/// New TCP connection counting (NetQRE example): count SYNs per window
/// and report the rate to the harvester.
pub const NEW_TCP_CONN: &str = r#"
machine NewTcpConn {
  place all;
  probe synProbe = Probe { .ival = 1, .what = proto "tcp" };
  time report = 1000;
  long conns = 0;
  state counting {
    util (res) {
      if (res.vCPU >= 1) then { return res.vCPU; }
    }
    when (synProbe as pkt) do {
      if (pkt_is_syn(pkt) and not pkt_is_ack(pkt)) then {
        conns = conns + 1;
      }
    }
    when (report) do {
      send conns to harvester;
      conns = 0;
    }
  }
}
"#;

/// TCP SYN flood detection: per-destination SYN-minus-ACK imbalance with
/// local rate-limit reaction.
pub const TCP_SYN_FLOOD: &str = r#"
fun bump(list counters, string key, int delta): list {
  list updated;
  bool found = false;
  int i = 0;
  while (i < list_len(counters)) {
    if (pair_first(list_get(counters, i)) == key) then {
      list_push(updated, pair(key, to_int(pair_second(list_get(counters, i))) + delta));
      found = true;
    } else {
      list_push(updated, list_get(counters, i));
    }
    i = i + 1;
  }
  if (not found) then {
    list_push(updated, pair(key, delta));
  }
  return updated;
}
fun overLimit(list counters, int limit): list {
  list hot;
  int i = 0;
  while (i < list_len(counters)) {
    if (to_int(pair_second(list_get(counters, i))) >= limit) then {
      list_push(hot, pair_first(list_get(counters, i)));
    }
    i = i + 1;
  }
  return hot;
}
machine SynFlood {
  place all;
  probe synProbe = Probe { .ival = 1, .what = proto "tcp" };
  time window = 1000;
  external int imbalanceLimit = 200;
  list imbalance;
  list targets;
  state observe {
    util (res) {
      if (res.vCPU >= 1 and res.RAM >= 100) then { return res.vCPU; }
    }
    when (synProbe as pkt) do {
      if (pkt_is_syn(pkt) and not pkt_is_ack(pkt)) then {
        imbalance = bump(imbalance, pkt_dst_ip(pkt), 1);
      }
      if (pkt_is_ack(pkt)) then {
        imbalance = bump(imbalance, pkt_dst_ip(pkt), 0 - 1);
      }
    }
    when (window) do {
      targets = overLimit(imbalance, imbalanceLimit);
      if (not is_list_empty(targets)) then {
        transit mitigate;
      }
      list_clear(imbalance);
    }
  }
  state mitigate {
    util (res) { return 90; }
    when (enter) do {
      int i = 0;
      while (i < list_len(targets)) {
        addTCAMRule(Rule {
          .pattern = dstIP to_string(list_get(targets, i)) and proto "tcp",
          .act = action_rate_limit(500000)
        });
        i = i + 1;
      }
      send targets to harvester;
      list_clear(imbalance);
      transit observe;
    }
  }
  when (recv int newLimit from harvester) do { imbalanceLimit = newLimit; }
}
"#;

/// Partial TCP flow detection (NetQRE): flows that opened (SYN) but never
/// completed (no FIN/ACK teardown) within a timeout.
pub const PARTIAL_TCP_FLOW: &str = r#"
fun removeKey(list entries, string key): list {
  list updated;
  int i = 0;
  while (i < list_len(entries)) {
    if (pair_first(list_get(entries, i)) <> key) then {
      list_push(updated, list_get(entries, i));
    }
    i = i + 1;
  }
  return updated;
}
fun flowKeyOf(packet pkt): string {
  return str_concat(str_concat(pkt_src_ip(pkt), "-"), pkt_dst_ip(pkt));
}
fun expired(list entries, long nowMs, long timeoutMs): list {
  list result;
  int i = 0;
  while (i < list_len(entries)) {
    if (nowMs - to_int(pair_second(list_get(entries, i))) >= timeoutMs) then {
      list_push(result, pair_first(list_get(entries, i)));
    }
    i = i + 1;
  }
  return result;
}
machine PartialTcpFlow {
  place all;
  probe tcpProbe = Probe { .ival = 1, .what = proto "tcp" };
  time sweep = 1000;
  external long timeoutMs = 5000;
  list open;
  list partials;
  state tracking {
    util (res) {
      if (res.vCPU >= 1 and res.RAM >= 150) then { return res.vCPU; }
    }
    when (tcpProbe as pkt) do {
      string key = flowKeyOf(pkt);
      if (pkt_is_syn(pkt) and not pkt_is_ack(pkt)) then {
        open = removeKey(open, key);
        list_push(open, pair(key, now()));
      }
      if (pkt_is_fin(pkt)) then {
        open = removeKey(open, key);
      }
    }
    when (sweep) do {
      partials = expired(open, now(), timeoutMs);
      if (not is_list_empty(partials)) then {
        transit report;
      }
    }
  }
  state report {
    util (res) { return 40; }
    when (enter) do {
      send partials to harvester;
      int i = 0;
      while (i < list_len(partials)) {
        open = removeKey(open, to_string(list_get(partials, i)));
        i = i + 1;
      }
      transit tracking;
    }
  }
  when (recv long newTimeout from harvester) do { timeoutMs = newTimeout; }
}
"#;

/// Slowloris (slow DoS) detection: many long-lived, low-volume
/// connections toward a protected service.
pub const SLOWLORIS: &str = r#"
fun slowConns(list stats, long maxBytes): int {
  int n = 0;
  int i = 0;
  while (i < list_len(stats)) {
    if (stat_tx_bytes(list_get(stats, i)) <= maxBytes
        and stat_tx_packets(list_get(stats, i)) >= 1) then {
      n = n + 1;
    }
    i = i + 1;
  }
  return n;
}
machine Slowloris {
  place all;
  external string service = "10.0.1.0/24";
  external long slowBytes = 2048;
  external int connLimit = 64;
  poll connStats = Poll {
    .ival = 500/res().PCIe,
    .what = dstIP service and dstPort 80
  };
  int slowCount = 0;
  state observe {
    util (res) {
      if (res.vCPU >= 1 and res.TCAM >= 2) then { return min(res.vCPU, res.PCIe); }
    }
    when (connStats as stats) do {
      slowCount = slowConns(stats, slowBytes);
      if (slowCount >= connLimit) then {
        transit throttle;
      }
    }
  }
  state throttle {
    util (res) { return 80; }
    when (enter) do {
      addTCAMRule(Rule {
        .pattern = dstIP service and dstPort 80,
        .act = action_rate_limit(250000)
      });
      send slowCount to harvester;
    }
    when (connStats as stats) do {
      slowCount = slowConns(stats, slowBytes);
      if (slowCount < connLimit / 2) then {
        removeTCAMRule(dstIP service and dstPort 80);
        transit observe;
      }
    }
  }
}
"#;

/// Link failure detection (Everflow-style): a previously active port that
/// stops moving packets across consecutive polls is reported.
pub const LINK_FAILURE: &str = r#"
fun idlePorts(list prev, list cur): list {
  list dead;
  int i = 0;
  while (i < list_len(cur)) {
    int j = 0;
    while (j < list_len(prev)) {
      if (stat_port(list_get(prev, j)) == stat_port(list_get(cur, i))
          and stat_tx_packets(list_get(prev, j)) > 0
          and stat_tx_packets(list_get(cur, i)) == 0) then {
        list_push(dead, stat_port(list_get(cur, i)));
      }
      j = j + 1;
    }
    i = i + 1;
  }
  return dead;
}
machine LinkFailure {
  place all;
  poll portStats = Poll { .ival = 50/res().PCIe, .what = port ANY };
  list previous;
  list suspects;
  state watching {
    util (res) {
      if (res.vCPU >= 1) then { return min(res.vCPU, res.PCIe); }
    }
    when (portStats as stats) do {
      if (not is_list_empty(previous)) then {
        suspects = idlePorts(previous, stats);
        if (not is_list_empty(suspects)) then {
          transit alarmed;
        }
      }
      previous = stats;
    }
  }
  state alarmed {
    util (res) { return 70; }
    when (enter) do {
      send suspects to harvester;
      transit watching;
    }
  }
}
"#;

/// Traffic change detection — the paper's smallest task (7 LoC): forward
/// fresh statistics; the harvester runs the change detector.
pub const TRAFFIC_CHANGE: &str = r#"
machine TrafficChange {
  place all;
  poll stats = Poll { .ival = 1000, .what = port ANY };
  state forwarding {
    when (stats as s) do { send s to harvester; }
  }
}
"#;

/// Flow size distribution estimation: log2 histogram of per-subject
/// volumes, refreshed every poll and reported periodically.
pub const FLOW_SIZE_DIST: &str = r#"
fun bucketOf(long bytes): int {
  int b = 0;
  long v = bytes;
  while (v > 1) {
    v = v / 2;
    b = b + 1;
  }
  return b;
}
fun histogram(list stats, int buckets): list {
  list hist;
  int b = 0;
  while (b < buckets) {
    int count = 0;
    int i = 0;
    while (i < list_len(stats)) {
      if (bucketOf(stat_tx_bytes(list_get(stats, i))) == b) then {
        count = count + 1;
      }
      i = i + 1;
    }
    list_push(hist, count);
    b = b + 1;
  }
  return hist;
}
machine FlowSizeDist {
  place all;
  poll flowStats = Poll { .ival = 1000, .what = port ANY };
  external int buckets = 32;
  list hist;
  state estimating {
    util (res) {
      if (res.vCPU >= 1 and res.RAM >= 100) then { return res.vCPU; }
    }
    when (flowStats as stats) do {
      hist = histogram(stats, buckets);
      send hist to harvester;
    }
  }
}
"#;

/// Superspreader detection: sources contacting many distinct
/// destinations.
pub const SUPERSPREADER: &str = r#"
fun noteContact(list contacts, string src, string dst): list {
  list updated;
  bool found = false;
  int i = 0;
  while (i < list_len(contacts)) {
    if (pair_first(list_get(contacts, i)) == src) then {
      list dsts = pair_second(list_get(contacts, i));
      list_push_unique(dsts, dst);
      list_push(updated, pair(src, dsts));
      found = true;
    } else {
      list_push(updated, list_get(contacts, i));
    }
    i = i + 1;
  }
  if (not found) then {
    list fresh;
    list_push(fresh, dst);
    list_push(updated, pair(src, fresh));
  }
  return updated;
}
fun spreaders(list contacts, int fanoutLimit): list {
  list hot;
  int i = 0;
  while (i < list_len(contacts)) {
    list dsts = pair_second(list_get(contacts, i));
    if (list_len(dsts) >= fanoutLimit) then {
      list_push(hot, pair_first(list_get(contacts, i)));
    }
    i = i + 1;
  }
  return hot;
}
machine Superspreader {
  place all;
  probe pkts = Probe { .ival = 1, .what = proto "tcp" or proto "udp" };
  time window = 2000;
  external int fanoutLimit = 100;
  list contacts;
  list suspects;
  state observe {
    util (res) {
      if (res.vCPU >= 1 and res.RAM >= 200) then { return res.vCPU; }
    }
    when (pkts as pkt) do {
      contacts = noteContact(contacts, pkt_src_ip(pkt), pkt_dst_ip(pkt));
    }
    when (window) do {
      suspects = spreaders(contacts, fanoutLimit);
      list_clear(contacts);
      if (not is_list_empty(suspects)) then {
        transit flag;
      }
    }
  }
  state flag {
    util (res) { return 85; }
    when (enter) do {
      send suspects to harvester;
      int i = 0;
      while (i < list_len(suspects)) {
        addTCAMRule(Rule {
          .pattern = srcIP to_string(list_get(suspects, i)),
          .act = action_count()
        });
        i = i + 1;
      }
      transit observe;
    }
  }
  when (recv int newLimit from harvester) do { fanoutLimit = newLimit; }
}
"#;

/// SSH brute-force detection: repeated short connections to port 22 from
/// one source.
pub const SSH_BRUTE_FORCE: &str = r#"
fun bumpStr(list counters, string key): list {
  list updated;
  bool found = false;
  int i = 0;
  while (i < list_len(counters)) {
    if (pair_first(list_get(counters, i)) == key) then {
      list_push(updated, pair(key, to_int(pair_second(list_get(counters, i))) + 1));
      found = true;
    } else {
      list_push(updated, list_get(counters, i));
    }
    i = i + 1;
  }
  if (not found) then { list_push(updated, pair(key, 1)); }
  return updated;
}
machine SshBruteForce {
  place all;
  probe sshProbe = Probe { .ival = 1, .what = dstPort 22 and proto "tcp" };
  time window = 5000;
  external int attemptLimit = 20;
  list attempts;
  state observe {
    util (res) {
      if (res.vCPU >= 1) then { return res.vCPU; }
    }
    when (sshProbe as pkt) do {
      if (pkt_is_syn(pkt) and not pkt_is_ack(pkt)) then {
        attempts = bumpStr(attempts, pkt_src_ip(pkt));
      }
    }
    when (window) do {
      int i = 0;
      while (i < list_len(attempts)) {
        if (to_int(pair_second(list_get(attempts, i))) >= attemptLimit) then {
          addTCAMRule(Rule {
            .pattern = srcIP to_string(pair_first(list_get(attempts, i))) and dstPort 22,
            .act = action_drop()
          });
          send pair_first(list_get(attempts, i)) to harvester;
        }
        i = i + 1;
      }
      list_clear(attempts);
    }
  }
}
"#;

/// Port scan detection (Jung et al. style sequential counting): one
/// source probing many distinct destination ports.
pub const PORT_SCAN: &str = r#"
fun notePort(list scans, string src, int dport): list {
  list updated;
  bool found = false;
  int i = 0;
  while (i < list_len(scans)) {
    if (pair_first(list_get(scans, i)) == src) then {
      list ports = pair_second(list_get(scans, i));
      list_push_unique(ports, dport);
      list_push(updated, pair(src, ports));
      found = true;
    } else {
      list_push(updated, list_get(scans, i));
    }
    i = i + 1;
  }
  if (not found) then {
    list fresh;
    list_push(fresh, dport);
    list_push(updated, pair(src, fresh));
  }
  return updated;
}
fun scanners(list scans, int portLimit): list {
  list hot;
  int i = 0;
  while (i < list_len(scans)) {
    if (list_len(pair_second(list_get(scans, i))) >= portLimit) then {
      list_push(hot, pair_first(list_get(scans, i)));
    }
    i = i + 1;
  }
  return hot;
}
machine PortScan {
  place all;
  probe synProbe = Probe { .ival = 1, .what = proto "tcp" };
  time window = 1000;
  external int portLimit = 50;
  list scans;
  list suspects;
  state observe {
    util (res) {
      if (res.vCPU >= 1 and res.RAM >= 100) then { return res.vCPU; }
    }
    when (synProbe as pkt) do {
      if (pkt_is_syn(pkt) and not pkt_is_ack(pkt)) then {
        scans = notePort(scans, pkt_src_ip(pkt), pkt_dst_port(pkt));
      }
    }
    when (window) do {
      suspects = scanners(scans, portLimit);
      list_clear(scans);
      if (not is_list_empty(suspects)) then {
        transit block;
      }
    }
  }
  state block {
    util (res) { return 90; }
    when (enter) do {
      int i = 0;
      while (i < list_len(suspects)) {
        addTCAMRule(Rule {
          .pattern = srcIP to_string(list_get(suspects, i)),
          .act = action_drop()
        });
        i = i + 1;
      }
      send suspects to harvester;
      transit observe;
    }
  }
  when (recv int newLimit from harvester) do { portLimit = newLimit; }
}
"#;

/// DNS reflection/amplification defense: large UDP/53 responses toward
/// victims that issued few requests.
pub const DNS_REFLECTION: &str = r#"
fun bumpBy(list counters, string key, int delta): list {
  list updated;
  bool found = false;
  int i = 0;
  while (i < list_len(counters)) {
    if (pair_first(list_get(counters, i)) == key) then {
      list_push(updated, pair(key, to_int(pair_second(list_get(counters, i))) + delta));
      found = true;
    } else {
      list_push(updated, list_get(counters, i));
    }
    i = i + 1;
  }
  if (not found) then { list_push(updated, pair(key, delta)); }
  return updated;
}
fun lookup(list counters, string key): int {
  int i = 0;
  while (i < list_len(counters)) {
    if (pair_first(list_get(counters, i)) == key) then {
      return to_int(pair_second(list_get(counters, i)));
    }
    i = i + 1;
  }
  return 0;
}
fun amplified(list respBytes, list reqCount, int ratioLimit): list {
  list victims;
  int i = 0;
  while (i < list_len(respBytes)) {
    string victim = to_string(pair_first(list_get(respBytes, i)));
    int resp = to_int(pair_second(list_get(respBytes, i)));
    int reqs = lookup(reqCount, victim);
    if (resp >= ratioLimit * (reqs + 1) * 512) then {
      list_push(victims, victim);
    }
    i = i + 1;
  }
  return victims;
}
machine DnsReflection {
  place all;
  probe dnsResp = Probe { .ival = 1, .what = srcPort 53 and proto "udp" };
  probe dnsReq = Probe { .ival = 1, .what = dstPort 53 and proto "udp" };
  time window = 1000;
  external int ratioLimit = 10;
  list respBytes;
  list reqCount;
  list victims;
  state observe {
    util (res) {
      if (res.vCPU >= 1 and res.RAM >= 200 and res.TCAM >= 4) then {
        return res.vCPU;
      }
    }
    when (dnsResp as pkt) do {
      respBytes = bumpBy(respBytes, pkt_dst_ip(pkt), pkt_len(pkt));
    }
    when (dnsReq as pkt) do {
      reqCount = bumpBy(reqCount, pkt_src_ip(pkt), 1);
    }
    when (window) do {
      victims = amplified(respBytes, reqCount, ratioLimit);
      list_clear(respBytes);
      list_clear(reqCount);
      if (not is_list_empty(victims)) then {
        transit mitigate;
      }
    }
  }
  state mitigate {
    util (res) { return 95; }
    when (enter) do {
      int i = 0;
      while (i < list_len(victims)) {
        addTCAMRule(Rule {
          .pattern = dstIP to_string(list_get(victims, i)) and srcPort 53,
          .act = action_rate_limit(1000000)
        });
        i = i + 1;
      }
      send victims to harvester;
    }
    when (window) do {
      transit cooldown;
    }
    when (recv string release from harvester) do { transit cooldown; }
  }
  state cooldown {
    util (res) { return 30; }
    when (enter) do {
      int i = 0;
      while (i < list_len(victims)) {
        removeTCAMRule(dstIP to_string(list_get(victims, i)) and srcPort 53);
        i = i + 1;
      }
      list_clear(victims);
      transit observe;
    }
  }
  when (recv int newRatio from harvester) do { ratioLimit = newRatio; }
}
"#;

/// Traffic entropy estimation: Shannon entropy of the per-port volume
/// distribution; a sharp drop signals concentration (e.g. an attack).
pub const ENTROPY_ESTIMATION: &str = r#"
fun totalBytes(list stats): long {
  long total = 0;
  int i = 0;
  while (i < list_len(stats)) {
    total = total + stat_tx_bytes(list_get(stats, i));
    i = i + 1;
  }
  return total;
}
fun entropyOf(list stats): float {
  long total = totalBytes(stats);
  if (total <= 0) then {
    return 0.0;
  }
  float h = 0.0;
  int i = 0;
  while (i < list_len(stats)) {
    long b = stat_tx_bytes(list_get(stats, i));
    if (b > 0) then {
      float p = to_float(b) / to_float(total);
      h = h - p * log2(p);
    }
    i = i + 1;
  }
  return h;
}
machine EntropyEstimation {
  place all;
  poll portStats = Poll { .ival = 100/res().PCIe, .what = port ANY };
  external float alarmDrop = 2.0;
  float baseline = 0.0;
  float current = 0.0;
  long samples = 0;
  state estimating {
    util (res) {
      if (res.vCPU >= 1 and res.RAM >= 100) then {
        return min(res.vCPU, res.PCIe);
      }
    }
    when (portStats as stats) do {
      current = entropyOf(stats);
      samples = samples + 1;
      if (samples <= 10) then {
        baseline = (baseline * to_float(samples - 1) + current) / to_float(samples);
      } else {
        if (baseline - current >= alarmDrop) then {
          transit alarmed;
        }
        baseline = baseline * 0.95 + current * 0.05;
      }
    }
  }
  state alarmed {
    util (res) { return 75; }
    when (enter) do {
      send current to harvester;
      send baseline to harvester;
      transit estimating;
    }
  }
  when (recv float newDrop from harvester) do { alarmDrop = newDrop; }
}
"#;

/// FloodDefender: protects the SDN control plane and flow tables from
/// table-miss flooding — the largest Tab. I task (four states: detection,
/// table-miss engineering, packet filtering, recovery).
pub const FLOOD_DEFENDER: &str = r#"
fun distinctFlows(list seen, string key): list {
  list_push_unique(seen, key);
  return seen;
}
fun flowKey4(packet pkt): string {
  return str_concat(
    str_concat(pkt_src_ip(pkt), str_concat(":", to_string(pkt_src_port(pkt)))),
    str_concat("-", str_concat(pkt_dst_ip(pkt), str_concat(":", to_string(pkt_dst_port(pkt))))));
}
fun topSources(list counters, int limit): list {
  list hot;
  int i = 0;
  while (i < list_len(counters)) {
    if (to_int(pair_second(list_get(counters, i))) >= limit) then {
      list_push(hot, pair_first(list_get(counters, i)));
    }
    i = i + 1;
  }
  return hot;
}
fun bumpSrc(list counters, string key): list {
  list updated;
  bool found = false;
  int i = 0;
  while (i < list_len(counters)) {
    if (pair_first(list_get(counters, i)) == key) then {
      list_push(updated, pair(key, to_int(pair_second(list_get(counters, i))) + 1));
      found = true;
    } else {
      list_push(updated, list_get(counters, i));
    }
    i = i + 1;
  }
  if (not found) then { list_push(updated, pair(key, 1)); }
  return updated;
}
machine FloodDefender {
  place all;
  probe misses = Probe { .ival = 1, .what = proto "tcp" or proto "udp" };
  time window = 500;
  external int floodLimit = 400;
  external int srcLimit = 100;
  external long protectBudget = 8;
  list flows;
  list srcCounts;
  list attackers;
  long protecting = 0;
  state detect {
    util (res) {
      if (res.vCPU >= 2 and res.RAM >= 300 and res.TCAM >= 8) then {
        return min(res.vCPU, 2 * res.PCIe);
      }
    }
    when (misses as pkt) do {
      flows = distinctFlows(flows, flowKey4(pkt));
      srcCounts = bumpSrc(srcCounts, pkt_src_ip(pkt));
    }
    when (window) do {
      if (list_len(flows) >= floodLimit) then {
        transit engineer;
      }
      list_clear(flows);
      list_clear(srcCounts);
    }
  }
  state engineer {
    util (res) { return 100; }
    when (enter) do {
      addTCAMRule(Rule { .pattern = proto "tcp", .act = action_set_qos(7) });
      addTCAMRule(Rule { .pattern = proto "udp", .act = action_set_qos(7) });
      attackers = topSources(srcCounts, srcLimit);
      send attackers to harvester;
      transit filter;
    }
  }
  state filter {
    util (res) { return 100; }
    when (enter) do {
      int i = 0;
      while (i < list_len(attackers)) {
        if (i < protectBudget) then {
          addTCAMRule(Rule {
            .pattern = srcIP to_string(list_get(attackers, i)),
            .act = action_drop()
          });
        }
        i = i + 1;
      }
      protecting = now();
    }
    when (misses as pkt) do {
      srcCounts = bumpSrc(srcCounts, pkt_src_ip(pkt));
    }
    when (window) do {
      if (list_len(srcCounts) < floodLimit / 4) then {
        transit recover;
      }
      list_clear(srcCounts);
    }
    when (recv string release from harvester) do { transit recover; }
  }
  state recover {
    util (res) { return 40; }
    when (enter) do {
      int i = 0;
      while (i < list_len(attackers)) {
        if (i < protectBudget) then {
          removeTCAMRule(srcIP to_string(list_get(attackers, i)));
        }
        i = i + 1;
      }
      removeTCAMRule(proto "tcp");
      removeTCAMRule(proto "udp");
      send protecting to harvester;
      list_clear(attackers);
      list_clear(flows);
      list_clear(srcCounts);
      transit detect;
    }
  }
  when (recv int newFlood from harvester) do { floodLimit = newFlood; }
}
"#;

/// KISS-style volume anomaly detection (arXiv:1902.02082): simple
/// statistics beat deep models for network anomaly detection. Tracks an
/// EWMA mean and mean absolute deviation of the aggregate per-poll
/// volume; alarms when the deviation is both statistically
/// (`sigma × dev`) and practically (20 % of the mean) significant. The
/// baseline is frozen while alarming so a sustained anomaly keeps
/// reporting instead of being absorbed.
pub const KISS_VOLUME_ANOMALY: &str = r#"
fun sumVolume(list stats): long {
  long total = 0;
  int i = 0;
  while (i < list_len(stats)) {
    total = total + stat_tx_bytes(list_get(stats, i)) + stat_rx_bytes(list_get(stats, i));
    i = i + 1;
  }
  return total;
}
machine KissVolume {
  place all;
  poll portStats = Poll { .ival = 100/res().PCIe, .what = port ANY };
  external float sigma = 4.0;
  external long warmup = 8;
  float mean = 0.0;
  float dev = 0.0;
  float current = 0.0;
  long samples = 0;
  state estimating {
    util (res) {
      if (res.vCPU >= 1 and res.RAM >= 100) then {
        return min(res.vCPU, res.PCIe);
      }
    }
    when (portStats as stats) do {
      current = to_float(sumVolume(stats));
      samples = samples + 1;
      float d = current - mean;
      if (d < 0.0) then { d = 0.0 - d; }
      bool hot = samples > warmup and d > sigma * dev and d > mean * 0.2;
      if (hot) then {
        transit alarmed;
      } else {
        mean = mean * 0.8 + current * 0.2;
        dev = dev * 0.8 + d * 0.2;
      }
    }
  }
  state alarmed {
    util (res) { return 80; }
    when (enter) do {
      send pair(current, mean) to harvester;
      transit estimating;
    }
  }
  when (recv float newSigma from harvester) do { sigma = newSigma; }
}
"#;

/// KISS-style per-port spike detection: one EWMA baseline per port,
/// alarm listing every port whose fresh delta exceeds `factor ×` its
/// baseline. Baselines are not updated while a port is spiking, so a
/// port stays reported for as long as it stays hot. The baseline list
/// is kept positionally aligned with the poll result (an ANY-port poll
/// returns ports in a fixed order), so a poll costs O(ports), not
/// O(ports²) — at 54-port leaves this is what keeps the seed inside its
/// switch-CPU allocation.
pub const KISS_PORT_SPIKE: &str = r#"
machine KissPortSpike {
  place all;
  poll portStats = Poll { .ival = 100/res().PCIe, .what = port ANY };
  external float factor = 8.0;
  external long warmup = 5;
  external float minBytes = 1000.0;
  list baseline;
  list spikes;
  long samples = 0;
  state observe {
    util (res) {
      if (res.vCPU >= 1 and res.RAM >= 200) then {
        return min(res.vCPU, res.PCIe);
      }
    }
    when (portStats as stats) do {
      samples = samples + 1;
      list_clear(spikes);
      bool seeded = list_len(baseline) == list_len(stats);
      list fresh;
      int i = 0;
      while (i < list_len(stats)) {
        float x = to_float(stat_tx_bytes(list_get(stats, i)));
        if (not seeded) then {
          list_push(fresh, x);
        } else {
          float base = to_float(list_get(baseline, i));
          if (samples > warmup and x > factor * base and x > minBytes) then {
            list_push(spikes, stat_port(list_get(stats, i)));
            list_push(fresh, base);
          } else {
            list_push(fresh, base * 0.7 + x * 0.3);
          }
        }
        i = i + 1;
      }
      baseline = fresh;
      if (not is_list_empty(spikes)) then {
        transit alarm;
      }
    }
  }
  state alarm {
    util (res) { return 80; }
    when (enter) do {
      send spikes to harvester;
      transit observe;
    }
  }
  when (recv float newFactor from harvester) do { factor = newFactor; }
}
"#;

/// DiG-style microburst watcher (arXiv:1806.02698): polls port counters
/// at the fastest interval the PCIe budget sustains (sub-ms on the
/// modelled switches) and reports any port whose per-poll delta crosses
/// the burst threshold — the high-resolution regime the paper never
/// measured.
pub const DIG_MICROBURST: &str = r#"
machine DigMicroburst {
  place all;
  poll fastStats = Poll { .ival = 1/res().PCIe, .what = port ANY };
  external long burstBytes = 100000;
  list bursting;
  state watch {
    util (res) {
      if (res.vCPU >= 1 and res.PCIe >= 1) then { return res.PCIe; }
    }
    when (fastStats as stats) do {
      list_clear(bursting);
      int i = 0;
      while (i < list_len(stats)) {
        if (stat_tx_bytes(list_get(stats, i)) >= burstBytes) then {
          list_push(bursting, stat_port(list_get(stats, i)));
        }
        i = i + 1;
      }
      if (not is_list_empty(bursting)) then {
        send bursting to harvester;
      }
    }
  }
  when (recv long newBurst from harvester) do { burstBytes = newBurst; }
}
"#;

/// The anomaly-detection programs added beyond Tab. I: KISS-style simple
/// statistics (arXiv:1902.02082) and the DiG sub-ms poller
/// (arXiv:1806.02698), as `(machine, source)` pairs.
pub const ANOMALY_PROGRAMS: &[(&str, &str)] = &[
    ("KissVolume", KISS_VOLUME_ANOMALY),
    ("KissPortSpike", KISS_PORT_SPIKE),
    ("DigMicroburst", DIG_MICROBURST),
];

/// All Tab. I use cases, in the paper's order.
pub const USE_CASES: &[UseCase] = &[
    UseCase {
        name: "Heavy hitter (HH)",
        source: HEAVY_HITTER,
        machine: "HH",
        paper_seed_loc: 29,
        paper_harvester_loc: 12,
    },
    UseCase {
        name: "Hier. HH (inherited)",
        source: HIER_HH_INHERITED,
        machine: "HHH",
        paper_seed_loc: 21,
        paper_harvester_loc: 26,
    },
    UseCase {
        name: "Hier. HH",
        source: HIER_HH_STANDALONE,
        machine: "HHH2",
        paper_seed_loc: 38,
        paper_harvester_loc: 26,
    },
    UseCase {
        name: "DDoS",
        source: DDOS,
        machine: "DDoS",
        paper_seed_loc: 71,
        paper_harvester_loc: 30,
    },
    UseCase {
        name: "New TCP conn.",
        source: NEW_TCP_CONN,
        machine: "NewTcpConn",
        paper_seed_loc: 19,
        paper_harvester_loc: 5,
    },
    UseCase {
        name: "TCP SYN flood",
        source: TCP_SYN_FLOOD,
        machine: "SynFlood",
        paper_seed_loc: 63,
        paper_harvester_loc: 18,
    },
    UseCase {
        name: "Partial TCP flow",
        source: PARTIAL_TCP_FLOW,
        machine: "PartialTcpFlow",
        paper_seed_loc: 73,
        paper_harvester_loc: 18,
    },
    UseCase {
        name: "Slowloris",
        source: SLOWLORIS,
        machine: "Slowloris",
        paper_seed_loc: 44,
        paper_harvester_loc: 29,
    },
    UseCase {
        name: "Link failure",
        source: LINK_FAILURE,
        machine: "LinkFailure",
        paper_seed_loc: 31,
        paper_harvester_loc: 8,
    },
    UseCase {
        name: "Traffic change",
        source: TRAFFIC_CHANGE,
        machine: "TrafficChange",
        paper_seed_loc: 7,
        paper_harvester_loc: 5,
    },
    UseCase {
        name: "Flow size distr.",
        source: FLOW_SIZE_DIST,
        machine: "FlowSizeDist",
        paper_seed_loc: 30,
        paper_harvester_loc: 15,
    },
    UseCase {
        name: "Superspreader",
        source: SUPERSPREADER,
        machine: "Superspreader",
        paper_seed_loc: 58,
        paper_harvester_loc: 21,
    },
    UseCase {
        name: "SSH brute force",
        source: SSH_BRUTE_FORCE,
        machine: "SshBruteForce",
        paper_seed_loc: 34,
        paper_harvester_loc: 9,
    },
    UseCase {
        name: "Port scan",
        source: PORT_SCAN,
        machine: "PortScan",
        paper_seed_loc: 44,
        paper_harvester_loc: 23,
    },
    UseCase {
        name: "DNS reflection",
        source: DNS_REFLECTION,
        machine: "DnsReflection",
        paper_seed_loc: 83,
        paper_harvester_loc: 22,
    },
    UseCase {
        name: "Entropy estim.",
        source: ENTROPY_ESTIMATION,
        machine: "EntropyEstimation",
        paper_seed_loc: 67,
        paper_harvester_loc: 15,
    },
    UseCase {
        name: "FloodDefender",
        source: FLOOD_DEFENDER,
        machine: "FloodDefender",
        paper_seed_loc: 126,
        paper_harvester_loc: 35,
    },
];

/// Looks up a use case by machine name.
pub fn use_case(machine: &str) -> Option<&'static UseCase> {
    USE_CASES.iter().find(|u| u.machine == machine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::frontend;

    #[test]
    fn every_use_case_compiles() {
        for u in USE_CASES {
            frontend(u.source).unwrap_or_else(|e| panic!("{} failed to compile: {e}", u.name));
        }
    }

    #[test]
    fn every_use_case_declares_its_machine() {
        for u in USE_CASES {
            let p = frontend(u.source).unwrap();
            assert!(
                p.machine(u.machine).is_some(),
                "{}: machine {} missing",
                u.name,
                u.machine
            );
        }
    }

    #[test]
    fn every_anomaly_program_compiles_and_declares_its_machine() {
        for (machine, source) in ANOMALY_PROGRAMS {
            let p = frontend(source).unwrap_or_else(|e| panic!("{machine} failed to compile: {e}"));
            assert!(p.machine(machine).is_some(), "machine {machine} missing");
        }
    }

    #[test]
    fn table_matches_paper_row_count() {
        // Tab. I lists 16 use cases; HHH appears in inherited and
        // standalone variants → 17 rows.
        assert_eq!(USE_CASES.len(), 17);
    }

    #[test]
    fn loc_counts_are_in_the_papers_ballpark() {
        // We do not chase exact numbers (different concrete syntax), but
        // relative sizes must hold: TrafficChange is the smallest,
        // FloodDefender the largest.
        let locs: Vec<(usize, &str)> = USE_CASES.iter().map(|u| (loc(u.source), u.name)).collect();
        let tc = loc(TRAFFIC_CHANGE);
        let fd = loc(FLOOD_DEFENDER);
        assert!(tc <= 10, "traffic change should be tiny, got {tc}");
        for (l, name) in &locs {
            if *name != "FloodDefender" {
                assert!(*l < fd, "{name} ({l}) >= FloodDefender ({fd})");
            }
        }
    }

    #[test]
    fn loc_skips_blank_and_comment_lines() {
        assert_eq!(loc("a\n\n// c\n  b\n"), 2);
    }

    #[test]
    fn inherited_hhh_is_smaller_than_standalone_plus_base() {
        // The point of inheritance (Tab. I): the inherited variant's
        // *extension* is smaller than a standalone reimplementation.
        let p = frontend(HIER_HH_INHERITED).unwrap();
        let hhh = p.machine("HHH").unwrap();
        assert_eq!(hhh.extends.as_deref(), Some("HH"));
        // Flattened machine carries the parent's poll trigger.
        assert!(hhh.trigger_vars().any(|v| v.name == "pollStats"));
    }
}
