//! Runtime values of the Almanac language.
//!
//! Values are shared between the compiler (constant evaluation of `place`
//! constraints, `external` assignments, `poll` subjects) and the seed
//! interpreter in `farm-soil`.

use std::fmt;

use farm_netsim::switch::Resources;
use farm_netsim::types::{FilterFormula, FlowKey};

/// A switch-local action value (the `action` Almanac type), mirroring the
//  data-plane capabilities of the TCAM model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActionValue {
    Drop,
    /// Rate limit in bits/s.
    RateLimit(u64),
    SetQos(u8),
    Count,
    Mirror,
}

impl fmt::Display for ActionValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActionValue::Drop => write!(f, "drop"),
            ActionValue::RateLimit(bps) => write!(f, "rate_limit({bps})"),
            ActionValue::SetQos(q) => write!(f, "set_qos({q})"),
            ActionValue::Count => write!(f, "count"),
            ActionValue::Mirror => write!(f, "mirror"),
        }
    }
}

/// A TCAM rule value (`Rule { .pattern = …, .act = … }`).
#[derive(Debug, Clone, PartialEq)]
pub struct RuleValue {
    pub pattern: FilterFormula,
    pub action: ActionValue,
}

/// A sampled packet delivered by a `probe` trigger.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketRecord {
    pub flow: FlowKey,
    pub len: u32,
    pub syn: bool,
    pub fin: bool,
    pub ack: bool,
}

/// What a statistics entry refers to.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum StatSubject {
    /// A physical switch port.
    Port(u16),
    /// A monitoring TCAM rule, keyed by its canonical pattern text.
    Rule(String),
}

/// One entry of polled statistics delivered by a `poll` trigger.
#[derive(Debug, Clone, PartialEq)]
pub struct StatEntry {
    pub subject: StatSubject,
    pub tx_bytes: u64,
    pub rx_bytes: u64,
    pub tx_packets: u64,
    pub rx_packets: u64,
}

/// A dynamically typed Almanac value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Unit,
    Bool(bool),
    /// `int` and `long` share this representation.
    Int(i64),
    Float(f64),
    Str(String),
    List(Vec<Value>),
    Packet(PacketRecord),
    Filter(FilterFormula),
    Action(ActionValue),
    Rule(RuleValue),
    Resources(Resources),
    Stat(StatEntry),
    Pair(Box<Value>, Box<Value>),
}

impl Value {
    /// Short type name for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Unit => "unit",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::List(_) => "list",
            Value::Packet(_) => "packet",
            Value::Filter(_) => "filter",
            Value::Action(_) => "action",
            Value::Rule(_) => "rule",
            Value::Resources(_) => "resources",
            Value::Stat(_) => "stat",
            Value::Pair(_, _) => "pair",
        }
    }

    /// Truthiness; only booleans are truthy/falsy.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Integer view (ints only; floats are not silently truncated).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric view: ints widen to floats.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// List view.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Packet(p) => write!(f, "packet({})", p.flow),
            Value::Filter(ff) => write!(f, "filter({ff})"),
            Value::Action(a) => write!(f, "action({a})"),
            Value::Rule(r) => write!(f, "rule({} -> {})", r.pattern, r.action),
            Value::Resources(r) => write!(f, "res({r})"),
            Value::Stat(s) => write!(
                f,
                "stat({:?}: tx={}B/{}p rx={}B/{}p)",
                s.subject, s.tx_bytes, s.tx_packets, s.rx_bytes, s.rx_packets
            ),
            Value::Pair(a, b) => write!(f, "({a}, {b})"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::Float(x)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_views_widen_ints() {
        assert_eq!(Value::Int(4).as_f64(), Some(4.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Float(2.5).as_int(), None);
        assert_eq!(Value::Str("x".into()).as_f64(), None);
    }

    #[test]
    fn display_is_never_empty() {
        let vals = [
            Value::Unit,
            Value::Bool(true),
            Value::Int(0),
            Value::List(vec![]),
            Value::Action(ActionValue::Count),
        ];
        for v in vals {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn type_names_are_stable() {
        assert_eq!(Value::List(vec![]).type_name(), "list");
        assert_eq!(
            Value::Pair(Box::new(Value::Unit), Box::new(Value::Unit)).type_name(),
            "pair"
        );
    }
}
