//! Properties of the hostile-traffic scenario generator.
//!
//! 1. **Determinism** — one `(class, scale, seed)` spec yields exactly
//!    one trace and one ground truth, no matter how many times it is
//!    built. Detection scores are only comparable across runs (and CI
//!    gates only sound) when the input is bit-stable.
//! 2. **Label/trace consistency** — for keyed attack windows, every
//!    traffic event matching a window's flow keys falls inside that
//!    window's span; an attack never leaks traffic outside its label.
//! 3. **Window sanity** — same-kind label windows never overlap and
//!    every window lies inside the scenario span, so "detected during
//!    the window" is unambiguous.

use farm_netsim::time::Time;
use farm_netsim::topology::Topology;
use farm_netsim::traffic::record_trace;
use farm_netsim::types::{Prefix, SwitchId};
use farm_scenario::{
    AttackKind, ScenarioClass, ScenarioEnv, ScenarioScale, ScenarioSpec, TruthKey,
};
use proptest::prelude::*;

fn env() -> ScenarioEnv {
    ScenarioEnv {
        switch: SwitchId(2),
        n_ports: 54,
        prefix: "10.0.1.0/24".parse::<Prefix>().unwrap(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Same spec twice ⇒ identical event trace and identical truth.
    #[test]
    fn same_seed_is_deterministic(ci in 0usize..ScenarioClass::ALL.len(), seed in 0u64..10_000) {
        let class = ScenarioClass::ALL[ci];
        let spec = ScenarioSpec { class, scale: ScenarioScale::Smoke, seed };
        let mut a = spec.build(&env());
        let mut b = spec.build(&env());
        prop_assert_eq!(&a.truth, &b.truth);
        let ta = record_trace(&mut a.workload, a.until, a.tick);
        let tb = record_trace(&mut b.workload, b.until, b.tick);
        prop_assert_eq!(ta, tb);
    }

    /// A different seed must change the trace (the generator actually
    /// consumes its seed).
    #[test]
    fn different_seeds_differ(ci in 0usize..ScenarioClass::ALL.len(), seed in 0u64..10_000) {
        let class = ScenarioClass::ALL[ci];
        let base = ScenarioSpec { class, scale: ScenarioScale::Smoke, seed };
        let other = ScenarioSpec { seed: seed + 1, ..base };
        let mut a = base.build(&env());
        let mut b = other.build(&env());
        let ta = record_trace(&mut a.workload, a.until, a.tick);
        let tb = record_trace(&mut b.workload, b.until, b.tick);
        prop_assert_ne!(ta, tb);
    }

    /// Keyed labels are consistent with the emitted trace: any event
    /// whose flow matches a window's Src/Dst key happens inside that
    /// window (attack primitives are window-gated).
    #[test]
    fn keyed_labels_cover_their_traffic(seed in 0u64..10_000) {
        let spec = ScenarioSpec {
            class: ScenarioClass::MultiVector,
            scale: ScenarioScale::Smoke,
            seed,
        };
        let mut s = spec.build(&env());
        let trace = record_trace(&mut s.workload, s.until, s.tick);
        for w in &s.truth.windows {
            for (at, e) in &trace {
                let hit = w.keys.iter().any(|k| match k {
                    TruthKey::Src(ip) => e.flow.src == *ip,
                    TruthKey::Dst(ip) => e.flow.dst == *ip,
                    TruthKey::Port(_) => false,
                });
                if hit {
                    prop_assert!(
                        *at >= w.start && *at < w.end,
                        "{:?} event at {at:?} outside its window [{:?}, {:?})",
                        w.kind, w.start, w.end
                    );
                }
            }
        }
    }

    /// Windows of the same attack kind never overlap, and every window
    /// sits inside the scenario's span with a non-empty extent.
    #[test]
    fn windows_are_sane(ci in 0usize..ScenarioClass::ALL.len(), seed in 0u64..10_000) {
        let class = ScenarioClass::ALL[ci];
        let spec = ScenarioSpec { class, scale: ScenarioScale::Smoke, seed };
        let s = spec.build(&env());
        prop_assert!(!s.truth.windows.is_empty());
        for w in &s.truth.windows {
            prop_assert!(w.start < w.end, "empty window {w:?}");
            prop_assert!(w.end <= s.until, "window {w:?} past scenario end");
        }
        for kind in [
            AttackKind::FlashCrowd,
            AttackKind::VolumeBurst,
            AttackKind::Ddos,
            AttackKind::PortScan,
            AttackKind::SshBruteForce,
            AttackKind::HeavyHitter,
            AttackKind::Microburst,
        ] {
            let of_kind = s.truth.of_kinds(&[kind]);
            for (i, a) in of_kind.iter().enumerate() {
                for b in of_kind.iter().skip(i + 1) {
                    prop_assert!(
                        a.end <= b.start || b.end <= a.start,
                        "overlapping {kind:?} windows {a:?} / {b:?}"
                    );
                }
            }
        }
    }
}

/// The scenario env derived from the replay fabric is the one the suite
/// actually runs under; the determinism property must hold there too.
#[test]
fn fabric_env_matches_generator_expectations() {
    let topo = Topology::spine_leaf(
        2,
        4,
        farm_netsim::switch::SwitchModel::accton_as7712(),
        farm_netsim::switch::SwitchModel::accton_as5712(),
    );
    let leaf = topo.leaves().next().unwrap();
    let node = topo.node(leaf).unwrap();
    assert!(node.prefix.is_some());
    assert!(node.model.num_ports >= 12);
    let e = ScenarioEnv {
        switch: leaf,
        n_ports: node.model.num_ports,
        prefix: node.prefix.unwrap(),
    };
    let spec = ScenarioSpec {
        class: ScenarioClass::FlashCrowd,
        scale: ScenarioScale::Smoke,
        seed: 7,
    };
    let s = spec.build(&e);
    assert!(s.until > Time::ZERO);
    assert_eq!(s.tasks.len(), 3);
}
