//! The shared detection-task suite: which Almanac programs run against
//! the scenarios, how their externals are built, and how their harvester
//! messages are decoded into [`Alarm`](crate::score::Alarm) keys.
//!
//! Examples (`ddos_mitigation`, `portscan_detection`) and the
//! `detection_scale` benchmark both load task definitions from here, so
//! the program under demonstration is always the program under test.

use std::collections::{BTreeMap, BTreeSet};

use farm_almanac::analysis::ConstEnv;
use farm_almanac::programs;
use farm_almanac::value::{StatSubject, Value};
use farm_netsim::types::{Ipv4, PortId, Prefix};

use crate::truth::TruthKey;

/// One deployable detection task: the Almanac source, the machine it
/// declares, and a decoder turning its harvester messages into alarms.
pub struct TaskDef {
    /// Task name used at deploy time (and in benchmark JSON).
    pub name: &'static str,
    /// Machine the program declares (externals are keyed by it).
    pub machine: &'static str,
    /// Almanac source text.
    pub source: &'static str,
    /// Decodes one harvester message value. `None` means the message is
    /// not an alarm (e.g. a recovery report); `Some(keys)` is an alarm
    /// naming the given offending keys (possibly none).
    pub extract: fn(&Value) -> Option<BTreeSet<TruthKey>>,
}

fn ports_of_stats(v: &Value) -> Option<BTreeSet<TruthKey>> {
    match v {
        Value::List(items) if !items.is_empty() => Some(
            items
                .iter()
                .filter_map(|it| match it {
                    Value::Stat(s) => match s.subject {
                        StatSubject::Port(p) => Some(TruthKey::Port(PortId(p))),
                        StatSubject::Rule(_) => None,
                    },
                    _ => None,
                })
                .collect(),
        ),
        _ => None,
    }
}

fn ports_of_ints(v: &Value) -> Option<BTreeSet<TruthKey>> {
    match v {
        Value::List(items) if !items.is_empty() => Some(
            items
                .iter()
                .filter_map(|it| match it {
                    Value::Int(p) if (0..=u16::MAX as i64).contains(p) => {
                        Some(TruthKey::Port(PortId(*p as u16)))
                    }
                    _ => None,
                })
                .collect(),
        ),
        _ => None,
    }
}

fn srcs_of_strs(v: &Value) -> Option<BTreeSet<TruthKey>> {
    match v {
        Value::List(items) if !items.is_empty() => Some(
            items
                .iter()
                .filter_map(|it| match it {
                    Value::Str(s) => s.parse::<Ipv4>().ok().map(TruthKey::Src),
                    _ => None,
                })
                .collect(),
        ),
        _ => None,
    }
}

fn src_of_str(v: &Value) -> Option<BTreeSet<TruthKey>> {
    match v {
        Value::Str(s) => Some(
            s.parse::<Ipv4>()
                .ok()
                .map(TruthKey::Src)
                .into_iter()
                .collect(),
        ),
        _ => None,
    }
}

fn ddos_victims(v: &Value) -> Option<BTreeSet<TruthKey>> {
    // The machine reports the *rule subjects* over threshold ("dstIP
    // a.b.c.d/32"); a trailing Int is the recovery report, not an alarm.
    match v {
        Value::List(items) if !items.is_empty() => Some(
            items
                .iter()
                .filter_map(|it| match it {
                    Value::Str(s) => s
                        .strip_prefix("dstIP ")
                        .and_then(|p| p.parse::<Prefix>().ok())
                        .filter(|p| p.len == 32)
                        .map(|p| TruthKey::Dst(p.addr)),
                    _ => None,
                })
                .collect(),
        ),
        _ => None,
    }
}

fn pair_alarm(v: &Value) -> Option<BTreeSet<TruthKey>> {
    match v {
        Value::Pair(_, _) => Some(BTreeSet::new()),
        _ => None,
    }
}

fn nonempty_list_alarm(v: &Value) -> Option<BTreeSet<TruthKey>> {
    match v {
        Value::List(items) if !items.is_empty() => Some(BTreeSet::new()),
        _ => None,
    }
}

/// Per-port heavy-hitter detection (Tab. I row 1).
pub static HH_TASK: TaskDef = TaskDef {
    name: "hh",
    machine: "HH",
    source: programs::HEAVY_HITTER,
    extract: ports_of_stats,
};

/// Standalone two-level hierarchical heavy hitters.
pub static HHH2_TASK: TaskDef = TaskDef {
    name: "hhh2",
    machine: "HHH2",
    source: programs::HIER_HH_STANDALONE,
    extract: nonempty_list_alarm,
};

/// Volumetric DDoS detection + local mitigation.
pub static DDOS_TASK: TaskDef = TaskDef {
    name: "ddos",
    machine: "DDoS",
    source: programs::DDOS,
    extract: ddos_victims,
};

/// Port-scan detection (one source probing many destination ports).
pub static PORTSCAN_TASK: TaskDef = TaskDef {
    name: "portscan",
    machine: "PortScan",
    source: programs::PORT_SCAN,
    extract: srcs_of_strs,
};

/// SSH brute-force detection (repeated dst-port-22 SYNs per source).
pub static SSH_TASK: TaskDef = TaskDef {
    name: "ssh_brute",
    machine: "SshBruteForce",
    source: programs::SSH_BRUTE_FORCE,
    extract: src_of_str,
};

/// KISS-style aggregate volume anomaly (EWMA mean/deviation).
pub static KISS_VOLUME_TASK: TaskDef = TaskDef {
    name: "kiss_volume",
    machine: "KissVolume",
    source: programs::KISS_VOLUME_ANOMALY,
    extract: pair_alarm,
};

/// KISS-style per-port spike detection (per-port EWMA baselines).
pub static KISS_SPIKE_TASK: TaskDef = TaskDef {
    name: "kiss_spike",
    machine: "KissPortSpike",
    source: programs::KISS_PORT_SPIKE,
    extract: ports_of_ints,
};

/// DiG-style sub-ms microburst watcher.
pub static DIG_TASK: TaskDef = TaskDef {
    name: "dig_microburst",
    machine: "DigMicroburst",
    source: programs::DIG_MICROBURST,
    extract: ports_of_ints,
};

fn env_for(machine: &str, pairs: &[(&str, Value)]) -> BTreeMap<String, ConstEnv> {
    let mut m = BTreeMap::new();
    m.insert(machine.to_string(), farm_almanac::compile::externals(pairs));
    m
}

/// Externals for [`HH_TASK`]: per-poll tx-byte threshold.
pub fn hh_externals(threshold: i64) -> BTreeMap<String, ConstEnv> {
    env_for("HH", &[("threshold", Value::Int(threshold))])
}

/// Externals for [`HHH2_TASK`]: leaf/inner thresholds and group size.
pub fn hhh2_externals(leaf: i64, inner: i64, group_size: i64) -> BTreeMap<String, ConstEnv> {
    env_for(
        "HHH2",
        &[
            ("leafThreshold", Value::Int(leaf)),
            ("innerThreshold", Value::Int(inner)),
            ("groupSize", Value::Int(group_size)),
        ],
    )
}

/// Externals for [`DDOS_TASK`]: protected prefix, per-poll volume
/// threshold, and the sustained-window count before mitigation.
pub fn ddos_externals(
    prefix: &str,
    volume_threshold: i64,
    sustain: i64,
) -> BTreeMap<String, ConstEnv> {
    env_for(
        "DDoS",
        &[
            ("protectedPrefix", Value::Str(prefix.to_string())),
            ("volumeThreshold", Value::Int(volume_threshold)),
            ("sustainWindows", Value::Int(sustain)),
        ],
    )
}

/// Externals for [`PORTSCAN_TASK`]: distinct-port count per window.
pub fn portscan_externals(port_limit: i64) -> BTreeMap<String, ConstEnv> {
    env_for("PortScan", &[("portLimit", Value::Int(port_limit))])
}

/// Externals for [`SSH_TASK`]: SYN attempts per window before blocking.
pub fn ssh_externals(attempt_limit: i64) -> BTreeMap<String, ConstEnv> {
    env_for(
        "SshBruteForce",
        &[("attemptLimit", Value::Int(attempt_limit))],
    )
}

/// Externals for [`KISS_VOLUME_TASK`]: deviation multiplier and warmup
/// sample count.
pub fn kiss_volume_externals(sigma: f64, warmup: i64) -> BTreeMap<String, ConstEnv> {
    env_for(
        "KissVolume",
        &[
            ("sigma", Value::Float(sigma)),
            ("warmup", Value::Int(warmup)),
        ],
    )
}

/// Externals for [`KISS_SPIKE_TASK`]: baseline multiplier, warmup, and
/// the absolute floor below which spikes are ignored.
pub fn kiss_spike_externals(
    factor: f64,
    warmup: i64,
    min_bytes: f64,
) -> BTreeMap<String, ConstEnv> {
    env_for(
        "KissPortSpike",
        &[
            ("factor", Value::Float(factor)),
            ("warmup", Value::Int(warmup)),
            ("minBytes", Value::Float(min_bytes)),
        ],
    )
}

/// Externals for [`DIG_TASK`]: per-poll tx-byte burst threshold.
pub fn dig_externals(burst_bytes: i64) -> BTreeMap<String, ConstEnv> {
    env_for("DigMicroburst", &[("burstBytes", Value::Int(burst_bytes))])
}

#[cfg(test)]
mod tests {
    use super::*;
    use farm_almanac::value::StatEntry;

    #[test]
    fn every_task_source_declares_its_machine() {
        for task in [
            &HH_TASK,
            &HHH2_TASK,
            &DDOS_TASK,
            &PORTSCAN_TASK,
            &SSH_TASK,
            &KISS_VOLUME_TASK,
            &KISS_SPIKE_TASK,
            &DIG_TASK,
        ] {
            let program = farm_almanac::frontend(task.source)
                .unwrap_or_else(|e| panic!("{}: {e:?}", task.name));
            assert!(
                program.machine(task.machine).is_some(),
                "{} does not declare machine {}",
                task.name,
                task.machine
            );
        }
    }

    #[test]
    fn hh_extract_names_ports() {
        let stat = |p: u16| {
            Value::Stat(StatEntry {
                subject: StatSubject::Port(p),
                tx_bytes: 10,
                rx_bytes: 0,
                tx_packets: 1,
                rx_packets: 0,
            })
        };
        let keys = (HH_TASK.extract)(&Value::List(vec![stat(3), stat(7)])).unwrap();
        assert_eq!(
            keys,
            [TruthKey::Port(PortId(3)), TruthKey::Port(PortId(7))]
                .into_iter()
                .collect()
        );
        assert_eq!((HH_TASK.extract)(&Value::List(vec![])), None);
    }

    #[test]
    fn ddos_extract_parses_victim_and_skips_recovery() {
        let msg = Value::List(vec![Value::Str("dstIP 10.0.1.9/32".to_string())]);
        let keys = (DDOS_TASK.extract)(&msg).unwrap();
        assert_eq!(
            keys,
            [TruthKey::Dst(Ipv4::new(10, 0, 1, 9))]
                .into_iter()
                .collect()
        );
        assert_eq!((DDOS_TASK.extract)(&Value::Int(3)), None);
    }

    #[test]
    fn scan_and_ssh_extract_parse_sources() {
        let scan = Value::List(vec![Value::Str("192.0.2.66".to_string())]);
        assert_eq!(
            (PORTSCAN_TASK.extract)(&scan).unwrap(),
            [TruthKey::Src(Ipv4::new(192, 0, 2, 66))]
                .into_iter()
                .collect()
        );
        let ssh = Value::Str("198.51.100.7".to_string());
        assert_eq!(
            (SSH_TASK.extract)(&ssh).unwrap(),
            [TruthKey::Src(Ipv4::new(198, 51, 100, 7))]
                .into_iter()
                .collect()
        );
    }

    #[test]
    fn spike_extract_names_int_ports() {
        let msg = Value::List(vec![Value::Int(5), Value::Int(12)]);
        assert_eq!(
            (KISS_SPIKE_TASK.extract)(&msg).unwrap(),
            [TruthKey::Port(PortId(5)), TruthKey::Port(PortId(12))]
                .into_iter()
                .collect()
        );
    }

    #[test]
    fn externals_land_under_the_machine_name() {
        let env = ddos_externals("10.0.1.9/32", 200_000, 2);
        let consts = env.get("DDoS").unwrap();
        assert_eq!(
            consts.get("protectedPrefix"),
            Some(&Value::Str("10.0.1.9/32".to_string()))
        );
        assert_eq!(consts.get("volumeThreshold"), Some(&Value::Int(200_000)));
    }
}
