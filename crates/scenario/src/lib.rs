//! Hostile-traffic scenario engine with ground-truth detection scoring.
//!
//! The FARM paper evaluates detection *latency* under cooperative
//! traffic; this crate supplies the missing axis — detection *quality*
//! under hostile traffic. A [`gen::ScenarioSpec`] deterministically
//! builds a [`gen::Scenario`]: a composed traffic workload (flash
//! crowds, diurnal drift, coordinated multi-vector attacks, high-churn
//! heavy-hitter sets, DiG-style sub-ms microbursts) together with
//! planted ground-truth labels ([`truth::GroundTruth`]) — attack
//! windows, offending flow keys, and heavy-set membership over time.
//!
//! The scenario replays through the ordinary netsim/soil/harvester path
//! against the Almanac detection tasks named by [`suite`]; the scorer
//! ([`score`]) matches harvester output against the planted truth and
//! computes per-task precision, recall, and time-to-detect. Everything
//! is deterministic per seed: the same [`gen::ScenarioSpec`] always
//! produces byte-identical traces, labels, and (through the
//! deterministic simulator) scores.

pub mod gen;
pub mod score;
pub mod suite;
pub mod truth;

pub use gen::{Scenario, ScenarioClass, ScenarioEnv, ScenarioScale, ScenarioSpec, TaskBinding};
pub use score::{score, Alarm, TaskScore};
pub use suite::TaskDef;
pub use truth::{AttackKind, GroundTruth, LabelWindow, TruthKey};
