//! Detection-quality scoring: match alarms against planted ground truth.
//!
//! Scoring rules (see EXPERIMENTS.md "Detection quality"):
//!
//! - A window counts as **detected** when at least one alarm fires inside
//!   `[start, end + grace]`; `grace` absorbs poll intervals and report
//!   latency.
//! - **Recall** = detected windows / labeled windows (1.0 when the task
//!   has no windows — nothing to miss).
//! - **Precision** = alarms covered by some window / all alarms (1.0 when
//!   the task raised no alarms — nothing false).
//! - **Time-to-detect** for a window is the first alarm at or after its
//!   start minus the start; `mean_ttd_ms` averages over detected windows.
//! - **Key precision/recall** compare the offending keys an alarm names
//!   (ports, source/destination addresses) against the window's planted
//!   key set; `None` when neither side names keys.

use std::collections::BTreeSet;

use farm_netsim::time::{Dur, Time};

use crate::truth::{LabelWindow, TruthKey};

/// One alarm extracted from a detector's harvester output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alarm {
    /// Arrival time at the harvester (poll time + report latency).
    pub at: Time,
    /// Offending keys the detector named, if any.
    pub keys: BTreeSet<TruthKey>,
}

impl Alarm {
    /// An alarm that names no keys.
    pub fn at(at: Time) -> Alarm {
        Alarm {
            at,
            keys: BTreeSet::new(),
        }
    }
}

/// Detection quality of one task on one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskScore {
    /// Labeled windows this task was responsible for.
    pub windows: usize,
    /// Windows with at least one covering alarm.
    pub detected: usize,
    /// Total alarms the task raised.
    pub alarms: usize,
    /// Alarms covered by at least one window.
    pub true_alarms: usize,
    /// `detected / windows` (1.0 when `windows == 0`).
    pub recall: f64,
    /// `true_alarms / alarms` (1.0 when `alarms == 0`).
    pub precision: f64,
    /// Mean time-to-detect over detected windows, in milliseconds.
    pub mean_ttd_ms: Option<f64>,
    /// Share of named alarm keys that the covering windows planted.
    pub key_precision: Option<f64>,
    /// Share of planted window keys that some covering alarm named.
    pub key_recall: Option<f64>,
}

/// Scores `alarms` against the task's `windows` with the given `grace`.
pub fn score(windows: &[&LabelWindow], alarms: &[Alarm], grace: Dur) -> TaskScore {
    let mut detected = 0usize;
    let mut ttd_ms = Vec::new();
    let mut keyed_windows = 0usize;
    let mut window_keys = 0usize;
    let mut window_keys_hit = 0usize;

    for w in windows {
        let covering: Vec<&Alarm> = alarms.iter().filter(|a| w.covers(a.at, grace)).collect();
        if covering.is_empty() {
            continue;
        }
        detected += 1;
        if let Some(first) = covering.iter().map(|a| a.at).min() {
            // Alarms can only arrive at or after the window start here
            // (covers() rejects earlier ones), so `since` never saturates.
            ttd_ms.push(first.since(w.start).as_nanos() as f64 / 1e6);
        }
        if !w.keys.is_empty() {
            keyed_windows += 1;
            window_keys += w.keys.len();
            let named: BTreeSet<&TruthKey> = covering.iter().flat_map(|a| a.keys.iter()).collect();
            window_keys_hit += w.keys.iter().filter(|k| named.contains(k)).count();
        }
    }

    let mut true_alarms = 0usize;
    let mut alarm_keys = 0usize;
    let mut alarm_keys_true = 0usize;
    for a in alarms {
        let covering: Vec<&&LabelWindow> =
            windows.iter().filter(|w| w.covers(a.at, grace)).collect();
        if covering.is_empty() {
            continue;
        }
        true_alarms += 1;
        if !a.keys.is_empty() {
            alarm_keys += a.keys.len();
            alarm_keys_true += a
                .keys
                .iter()
                .filter(|k| covering.iter().any(|w| w.keys.contains(k)))
                .count();
        }
    }

    TaskScore {
        windows: windows.len(),
        detected,
        alarms: alarms.len(),
        true_alarms,
        recall: if windows.is_empty() {
            1.0
        } else {
            detected as f64 / windows.len() as f64
        },
        precision: if alarms.is_empty() {
            1.0
        } else {
            true_alarms as f64 / alarms.len() as f64
        },
        mean_ttd_ms: if ttd_ms.is_empty() {
            None
        } else {
            Some(ttd_ms.iter().sum::<f64>() / ttd_ms.len() as f64)
        },
        key_precision: if alarm_keys == 0 {
            None
        } else {
            Some(alarm_keys_true as f64 / alarm_keys as f64)
        },
        key_recall: if keyed_windows == 0 {
            None
        } else {
            Some(window_keys_hit as f64 / window_keys as f64)
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::AttackKind;
    use farm_netsim::types::PortId;

    fn window(start_ms: u64, end_ms: u64, keys: &[TruthKey]) -> LabelWindow {
        LabelWindow {
            kind: AttackKind::HeavyHitter,
            start: Time::from_millis(start_ms),
            end: Time::from_millis(end_ms),
            keys: keys.iter().copied().collect(),
        }
    }

    fn keyed(at_ms: u64, keys: &[TruthKey]) -> Alarm {
        Alarm {
            at: Time::from_millis(at_ms),
            keys: keys.iter().copied().collect(),
        }
    }

    #[test]
    fn empty_truth_and_alarms_score_perfect() {
        let s = score(&[], &[], Dur::from_millis(100));
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.mean_ttd_ms, None);
        assert_eq!(s.key_precision, None);
        assert_eq!(s.key_recall, None);
    }

    #[test]
    fn missed_window_and_false_alarm() {
        let w1 = window(1000, 2000, &[]);
        let w2 = window(5000, 6000, &[]);
        let alarms = vec![
            Alarm::at(Time::from_millis(1500)),
            Alarm::at(Time::from_millis(9000)),
        ];
        let s = score(&[&w1, &w2], &alarms, Dur::from_millis(200));
        assert_eq!(s.detected, 1);
        assert_eq!(s.recall, 0.5);
        assert_eq!(s.true_alarms, 1);
        assert_eq!(s.precision, 0.5);
        assert_eq!(s.mean_ttd_ms, Some(500.0));
    }

    #[test]
    fn ttd_uses_first_covering_alarm() {
        let w = window(1000, 3000, &[]);
        let alarms = vec![
            Alarm::at(Time::from_millis(2500)),
            Alarm::at(Time::from_millis(1200)),
        ];
        let s = score(&[&w], &alarms, Dur::ZERO);
        assert_eq!(s.mean_ttd_ms, Some(200.0));
    }

    #[test]
    fn key_scores_compare_named_against_planted() {
        let p = |n: u16| TruthKey::Port(PortId(n));
        let w = window(1000, 2000, &[p(1), p(2), p(3)]);
        // Names two real keys and one wrong one.
        let alarms = vec![keyed(1500, &[p(1), p(2), p(9)])];
        let s = score(&[&w], &alarms, Dur::ZERO);
        assert_eq!(s.key_recall, Some(2.0 / 3.0));
        assert_eq!(s.key_precision, Some(2.0 / 3.0));
    }

    #[test]
    fn alarm_in_grace_counts() {
        let w = window(1000, 2000, &[]);
        let alarms = vec![Alarm::at(Time::from_millis(2300))];
        let s = score(&[&w], &alarms, Dur::from_millis(400));
        assert_eq!(s.detected, 1);
        assert_eq!(s.true_alarms, 1);
        // TTD measured from window start even when the alarm lands in grace.
        assert_eq!(s.mean_ttd_ms, Some(1300.0));
    }
}
