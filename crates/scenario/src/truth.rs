//! Planted ground-truth labels: what a perfect detector would report.

use std::collections::BTreeSet;

use farm_netsim::time::{Dur, Time};
use farm_netsim::types::{Ipv4, PortId};

/// The class of hostile behavior a label window marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AttackKind {
    /// Legitimate but sudden demand surge onto a few service ports.
    FlashCrowd,
    /// An injected volume anomaly riding on top of slow diurnal drift.
    VolumeBurst,
    /// Volumetric flood toward one victim from many sources.
    Ddos,
    /// One source probing many destination ports.
    PortScan,
    /// Repeated SSH connection attempts from one source.
    SshBruteForce,
    /// A port transmitting at the heavy rate (per churn epoch).
    HeavyHitter,
    /// A sub-ms burst saturating one port.
    Microburst,
}

impl AttackKind {
    /// Stable lowercase identifier (used in benchmark JSON).
    pub fn name(&self) -> &'static str {
        match self {
            AttackKind::FlashCrowd => "flash_crowd",
            AttackKind::VolumeBurst => "volume_burst",
            AttackKind::Ddos => "ddos",
            AttackKind::PortScan => "port_scan",
            AttackKind::SshBruteForce => "ssh_brute_force",
            AttackKind::HeavyHitter => "heavy_hitter",
            AttackKind::Microburst => "microburst",
        }
    }
}

/// An offending entity a detector can name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TruthKey {
    /// A switch port carrying the hostile traffic.
    Port(PortId),
    /// The offending source address (scanner, brute-forcer).
    Src(Ipv4),
    /// The targeted destination address (flood victim).
    Dst(Ipv4),
}

/// One labeled attack window: the kind, its extent in virtual time, and
/// the offending keys active during it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelWindow {
    pub kind: AttackKind,
    /// First instant the hostile traffic is on the wire.
    pub start: Time,
    /// Last instant (inclusive) the hostile traffic is on the wire.
    pub end: Time,
    /// Offending keys; empty when the anomaly has no nameable key
    /// (e.g. an aggregate volume shift).
    pub keys: BTreeSet<TruthKey>,
}

impl LabelWindow {
    /// True when an alarm at `t` counts as detecting this window:
    /// inside the window, or within the post-window `grace` that absorbs
    /// polling intervals and report latency.
    pub fn covers(&self, t: Time, grace: Dur) -> bool {
        t >= self.start && t <= self.end + grace
    }
}

/// All labels planted in one scenario.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GroundTruth {
    pub windows: Vec<LabelWindow>,
}

impl GroundTruth {
    pub fn push(&mut self, w: LabelWindow) {
        self.windows.push(w);
    }

    /// Windows of the given kinds, in label order.
    pub fn of_kinds(&self, kinds: &[AttackKind]) -> Vec<&LabelWindow> {
        self.windows
            .iter()
            .filter(|w| kinds.contains(&w.kind))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_includes_grace() {
        let w = LabelWindow {
            kind: AttackKind::Ddos,
            start: Time::from_secs(1),
            end: Time::from_secs(2),
            keys: BTreeSet::new(),
        };
        let grace = Dur::from_millis(500);
        assert!(!w.covers(Time::from_millis(999), grace));
        assert!(w.covers(Time::from_secs(1), grace));
        assert!(w.covers(Time::from_millis(2400), grace));
        assert!(!w.covers(Time::from_millis(2501), grace));
    }

    #[test]
    fn of_kinds_filters() {
        let mut t = GroundTruth::default();
        for kind in [AttackKind::Ddos, AttackKind::PortScan, AttackKind::Ddos] {
            t.push(LabelWindow {
                kind,
                start: Time::ZERO,
                end: Time::from_secs(1),
                keys: BTreeSet::new(),
            });
        }
        assert_eq!(t.of_kinds(&[AttackKind::Ddos]).len(), 2);
        assert_eq!(
            t.of_kinds(&[AttackKind::PortScan, AttackKind::Ddos]).len(),
            3
        );
    }
}
