//! Deterministic scenario generation.
//!
//! A [`ScenarioSpec`] (class + scale + seed) builds a [`Scenario`]:
//! a composed [`CompositeWorkload`] of traffic primitives together with
//! the [`GroundTruth`] labels the composition plants and the
//! [`TaskBinding`]s naming which detection tasks are responsible for
//! which labels. Everything derives from one seeded RNG in a fixed
//! order, so the same spec always yields the same trace and labels.
//!
//! Five scenario classes cover the axes the FARM paper leaves
//! unmeasured:
//!
//! - **flash_crowd** — sudden legitimate demand surges on a few service
//!   ports, with high-churn crowds of distinct client flows.
//! - **diurnal_drift** — a slow sinusoidal load drift with injected
//!   volume bursts riding on top (detectors must not alarm on drift).
//! - **multi_vector** — a coordinated attack: UDP flood toward one
//!   victim, a port scan, and an SSH brute force, all overlapping in
//!   time, buried in benign flow churn.
//! - **churn_hh** — the heavy-hitter set reshuffles every epoch; labels
//!   track set membership over time.
//! - **microburst** — DiG-style sub-ms bursts injected through a
//!   pre-scheduled [`TraceWorkload`], exercising the PCIe model at the
//!   fastest polling interval the budget sustains.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use farm_netsim::network::TrafficEvent;
use farm_netsim::time::{Dur, Time};
use farm_netsim::traffic::{
    bytes_for, packets_for, CompositeWorkload, TraceWorkload, Workload, MTU_BYTES,
};
use farm_netsim::types::{FlowKey, Ipv4, PortId, Prefix, Proto, SwitchId};

use crate::suite::{self, TaskDef};
use crate::truth::{AttackKind, GroundTruth, LabelWindow, TruthKey};

/// The scenario families the engine can compose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ScenarioClass {
    FlashCrowd,
    DiurnalDrift,
    MultiVector,
    ChurnHh,
    Microburst,
}

impl ScenarioClass {
    /// All classes, in benchmark order.
    pub const ALL: [ScenarioClass; 5] = [
        ScenarioClass::FlashCrowd,
        ScenarioClass::DiurnalDrift,
        ScenarioClass::MultiVector,
        ScenarioClass::ChurnHh,
        ScenarioClass::Microburst,
    ];

    /// Stable identifier used in benchmark JSON and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            ScenarioClass::FlashCrowd => "flash_crowd",
            ScenarioClass::DiurnalDrift => "diurnal_drift",
            ScenarioClass::MultiVector => "multi_vector",
            ScenarioClass::ChurnHh => "churn_hh",
            ScenarioClass::Microburst => "microburst",
        }
    }

    /// Parses a [`name`](Self::name) back into a class.
    pub fn from_name(s: &str) -> Option<ScenarioClass> {
        ScenarioClass::ALL.into_iter().find(|c| c.name() == s)
    }
}

/// How big a scenario to compose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioScale {
    /// Seconds of virtual time, tens of thousands of events — CI-fast.
    Smoke,
    /// The full benchmark size (million-flow traces on multi_vector).
    Full,
}

impl ScenarioScale {
    pub fn name(&self) -> &'static str {
        match self {
            ScenarioScale::Smoke => "smoke",
            ScenarioScale::Full => "full",
        }
    }
}

/// Where a scenario runs: the leaf switch carrying the traffic, how many
/// of its ports participate, and the address prefix of the hosts behind
/// it.
#[derive(Debug, Clone)]
pub struct ScenarioEnv {
    pub switch: SwitchId,
    pub n_ports: u16,
    pub prefix: Prefix,
}

impl ScenarioEnv {
    /// The `j`-th host address behind the leaf.
    pub fn host(&self, j: u32) -> Ipv4 {
        Ipv4(self.prefix.addr.0 + j)
    }
}

/// One detection task deployed against a scenario: its definition and
/// externals, the label kinds it is responsible for, and the scoring
/// grace that absorbs its polling/report latency.
pub struct TaskBinding {
    pub def: &'static TaskDef,
    pub externals: std::collections::BTreeMap<String, farm_almanac::analysis::ConstEnv>,
    pub kinds: Vec<AttackKind>,
    pub grace: Dur,
}

/// A fully composed scenario, ready to replay.
pub struct Scenario {
    /// `<class>-<scale>`, e.g. `flash_crowd-smoke`.
    pub name: String,
    pub class: ScenarioClass,
    pub scale: ScenarioScale,
    pub seed: u64,
    /// Virtual end of the replay.
    pub until: Time,
    /// Simulation tick used to drive the workload.
    pub tick: Dur,
    pub workload: CompositeWorkload,
    pub truth: GroundTruth,
    pub tasks: Vec<TaskBinding>,
    /// Heavy-hitter threshold handed to the sFlow/Sonata baselines;
    /// `None` skips baseline scoring for this scenario.
    pub baseline_hh_bps: Option<u64>,
    /// Label kinds the baselines are scored against.
    pub baseline_kinds: Vec<AttackKind>,
}

/// A seedable recipe for one scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioSpec {
    pub class: ScenarioClass,
    pub scale: ScenarioScale,
    pub seed: u64,
}

impl ScenarioSpec {
    /// Composes the scenario. Deterministic: the same spec and env
    /// always produce the same workload, labels, and task bindings.
    pub fn build(&self, env: &ScenarioEnv) -> Scenario {
        // Salt the seed per class so the same numeric seed yields
        // unrelated streams across classes.
        let salt = self
            .class
            .name()
            .bytes()
            .fold(0u64, |acc, b| acc.wrapping_mul(31).wrapping_add(b as u64));
        let rng = StdRng::seed_from_u64(self.seed ^ salt.rotate_left(17));
        let mut scenario = match self.class {
            ScenarioClass::FlashCrowd => flash_crowd(env, self.scale, rng),
            ScenarioClass::DiurnalDrift => diurnal_drift(env, self.scale, rng),
            ScenarioClass::MultiVector => multi_vector(env, self.scale, rng),
            ScenarioClass::ChurnHh => churn_hh(env, self.scale, rng),
            ScenarioClass::Microburst => microburst(env, self.scale, rng),
        };
        scenario.name = format!("{}-{}", self.class.name(), self.scale.name());
        scenario.seed = self.seed;
        scenario.scale = self.scale;
        scenario
    }
}

// ---------------------------------------------------------------------------
// Traffic primitives
// ---------------------------------------------------------------------------

/// A scheduled multiplicative surge on a set of ports.
#[derive(Debug, Clone)]
pub struct Surge {
    pub ports: Vec<PortId>,
    pub start: Time,
    pub end: Time,
    pub factor: f64,
}

/// Configuration of a [`PortBaseline`].
#[derive(Debug, Clone)]
pub struct PortBaselineCfg {
    pub switch: SwitchId,
    /// Ports `0..n_ports` each carry one long-lived flow.
    pub n_ports: u16,
    /// Steady per-port byte rate, bits/s.
    pub rate_bps: u64,
    /// Sinusoidal drift amplitude as a fraction of `rate_bps`
    /// (0 disables drift).
    pub drift_amp: f64,
    /// Period of the drift sinusoid.
    pub drift_period: Dur,
    /// Scheduled surges (flash crowds, volume bursts, churn epochs).
    pub surges: Vec<Surge>,
    pub seed: u64,
}

/// Steady per-port transmit traffic with multiplicative jitter, optional
/// slow sinusoidal drift, and scheduled surges. One MTU-sized long-lived
/// TCP flow per port (so probe-based detectors ignore it).
#[derive(Debug)]
pub struct PortBaseline {
    cfg: PortBaselineCfg,
    rng: StdRng,
    flows: Vec<FlowKey>,
}

impl PortBaseline {
    pub fn new(cfg: PortBaselineCfg) -> PortBaseline {
        let rng = StdRng::seed_from_u64(cfg.seed);
        let flows = (0..cfg.n_ports)
            .map(|p| {
                FlowKey::tcp(
                    Ipv4::new(10, 100, (p >> 8) as u8, (p & 0xff) as u8),
                    40_000 + p,
                    Ipv4::new(10, 200, 0, 1),
                    443,
                )
            })
            .collect();
        PortBaseline { cfg, rng, flows }
    }
}

impl Workload for PortBaseline {
    fn advance(&mut self, now: Time, dt: Dur) -> Vec<TrafficEvent> {
        let drift = if self.cfg.drift_amp > 0.0 {
            let phase = now.as_secs_f64() / self.cfg.drift_period.as_secs_f64();
            1.0 + self.cfg.drift_amp * (2.0 * std::f64::consts::PI * phase).sin()
        } else {
            1.0
        };
        let mut out = Vec::with_capacity(self.cfg.n_ports as usize);
        for p in 0..self.cfg.n_ports {
            let jitter: f64 = self.rng.random_range(0.95..1.05);
            let mut rate = self.cfg.rate_bps as f64 * jitter * drift;
            for s in &self.cfg.surges {
                if now >= s.start && now < s.end && s.ports.contains(&PortId(p)) {
                    rate *= s.factor;
                }
            }
            let bytes = bytes_for(rate as u64, dt);
            if bytes == 0 {
                continue;
            }
            out.push(TrafficEvent {
                switch: self.cfg.switch,
                rx_port: None,
                tx_port: Some(PortId(p)),
                flow: self.flows[p as usize],
                bytes,
                packets: packets_for(bytes, MTU_BYTES),
            });
        }
        out
    }
}

/// Configuration of a [`FlowChurn`].
#[derive(Debug, Clone)]
pub struct FlowChurnCfg {
    pub switch: SwitchId,
    /// Transmit ports cycled round-robin; empty → events carry none.
    pub tx_ports: Vec<PortId>,
    pub rx_port: Option<PortId>,
    pub dst: Ipv4,
    pub dst_port: u16,
    pub proto: Proto,
    /// Bytes carried by each fresh flow's event.
    pub bytes_per_flow: u64,
    /// Average packet size (drives SYN classification: TCP ≤ 128 bytes
    /// is treated as a connection attempt by the probe path).
    pub pkt_bytes: u64,
    /// Fresh flows per tick.
    pub flows_per_tick: u32,
    /// Active window; `None` runs for the whole scenario.
    pub window: Option<(Time, Time)>,
    /// Fresh sources are `src_base + k` for a global counter `k`.
    pub src_base: Ipv4,
}

/// High-churn traffic: every tick introduces `flows_per_tick` flows from
/// never-before-seen sources. This is what pushes full-scale traces to
/// million-flow cardinality without million-event baselines.
#[derive(Debug)]
pub struct FlowChurn {
    cfg: FlowChurnCfg,
    counter: u32,
}

impl FlowChurn {
    pub fn new(cfg: FlowChurnCfg) -> FlowChurn {
        FlowChurn { cfg, counter: 0 }
    }
}

impl Workload for FlowChurn {
    fn advance(&mut self, now: Time, _dt: Dur) -> Vec<TrafficEvent> {
        if let Some((start, end)) = self.cfg.window {
            if now < start || now >= end {
                return Vec::new();
            }
        }
        let mut out = Vec::with_capacity(self.cfg.flows_per_tick as usize);
        for _ in 0..self.cfg.flows_per_tick {
            let src = Ipv4(self.cfg.src_base.0.wrapping_add(self.counter));
            let tx_port = if self.cfg.tx_ports.is_empty() {
                None
            } else {
                Some(self.cfg.tx_ports[self.counter as usize % self.cfg.tx_ports.len()])
            };
            self.counter = self.counter.wrapping_add(1);
            let flow = FlowKey {
                src,
                dst: self.cfg.dst,
                proto: self.cfg.proto,
                src_port: 40_000,
                dst_port: self.cfg.dst_port,
            };
            out.push(TrafficEvent {
                switch: self.cfg.switch,
                rx_port: self.cfg.rx_port,
                tx_port,
                flow,
                bytes: self.cfg.bytes_per_flow,
                packets: packets_for(self.cfg.bytes_per_flow, self.cfg.pkt_bytes),
            });
        }
        out
    }
}

/// A windowed port scan: one source sweeping destination ports with
/// 64-byte TCP SYN probes.
#[derive(Debug)]
pub struct ScanBurst {
    pub switch: SwitchId,
    pub rx_port: PortId,
    pub src: Ipv4,
    pub dst: Ipv4,
    pub window: (Time, Time),
    pub probes_per_tick: u32,
    next_port: u16,
}

impl ScanBurst {
    pub fn new(
        switch: SwitchId,
        rx_port: PortId,
        src: Ipv4,
        dst: Ipv4,
        window: (Time, Time),
        probes_per_tick: u32,
    ) -> ScanBurst {
        ScanBurst {
            switch,
            rx_port,
            src,
            dst,
            window,
            probes_per_tick,
            next_port: 1024,
        }
    }
}

impl Workload for ScanBurst {
    fn advance(&mut self, now: Time, _dt: Dur) -> Vec<TrafficEvent> {
        if now < self.window.0 || now >= self.window.1 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.probes_per_tick as usize);
        for _ in 0..self.probes_per_tick {
            // Skip port 22 so the scan never pollutes SSH accounting.
            if self.next_port == 22 {
                self.next_port += 1;
            }
            out.push(TrafficEvent {
                switch: self.switch,
                rx_port: Some(self.rx_port),
                tx_port: None,
                flow: FlowKey::tcp(self.src, 55_000, self.dst, self.next_port),
                bytes: 64,
                packets: 1,
            });
            self.next_port = self.next_port.checked_add(1).unwrap_or(1024);
        }
        out
    }
}

/// A windowed SSH brute force: repeated 64-byte SYNs to port 22 from one
/// source.
#[derive(Debug)]
pub struct SshBrute {
    pub switch: SwitchId,
    pub rx_port: PortId,
    pub src: Ipv4,
    pub dst: Ipv4,
    pub window: (Time, Time),
    pub attempts_per_tick: u32,
}

impl Workload for SshBrute {
    fn advance(&mut self, now: Time, _dt: Dur) -> Vec<TrafficEvent> {
        if now < self.window.0 || now >= self.window.1 {
            return Vec::new();
        }
        (0..self.attempts_per_tick)
            .map(|_| TrafficEvent {
                switch: self.switch,
                rx_port: Some(self.rx_port),
                tx_port: None,
                flow: FlowKey::tcp(self.src, 51_000, self.dst, 22),
                bytes: 64,
                packets: 1,
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Window scheduling helpers
// ---------------------------------------------------------------------------

/// Splits `[from, until)` into `n` equal segments and places one window
/// of `min_len..=max_len` at a random offset inside each — globally
/// disjoint by construction.
fn disjoint_windows(
    rng: &mut StdRng,
    from: Time,
    until: Time,
    n: usize,
    min_len: Dur,
    max_len: Dur,
) -> Vec<(Time, Time)> {
    let span_ns = until.since(from).as_nanos();
    let seg_ns = span_ns / n as u64;
    assert!(
        seg_ns > max_len.as_nanos(),
        "segments too short for requested windows"
    );
    (0..n as u64)
        .map(|i| {
            let len = Dur(rng.random_range(min_len.as_nanos()..=max_len.as_nanos()));
            let slack = seg_ns - len.as_nanos();
            let off = Dur(rng.random_range(0..=slack));
            let start = from + Dur(i * seg_ns) + off;
            (start, start + len)
        })
        .collect()
}

/// Picks `k` distinct ports from `0..n_ports`.
fn pick_ports(rng: &mut StdRng, n_ports: u16, k: usize) -> Vec<PortId> {
    let mut picked = BTreeSet::new();
    while picked.len() < k.min(n_ports as usize) {
        picked.insert(rng.random_range(0..n_ports));
    }
    picked.into_iter().map(PortId).collect()
}

fn port_keys(ports: &[PortId]) -> BTreeSet<TruthKey> {
    ports.iter().map(|p| TruthKey::Port(*p)).collect()
}

/// Snaps a window to tick boundaries so labels line up exactly with the
/// ticks that carry the labeled traffic.
fn snap(w: (Time, Time), tick: Dur) -> (Time, Time) {
    let t = tick.as_nanos();
    let start = Time(w.0.as_nanos() / t * t);
    let end = Time(w.1.as_nanos().div_ceil(t) * t);
    (start, end)
}

// ---------------------------------------------------------------------------
// Scenario builders
// ---------------------------------------------------------------------------

/// Ports that actively carry baseline traffic in a scenario.
fn active_ports(env: &ScenarioEnv) -> u16 {
    env.n_ports.min(12)
}

fn flash_crowd(env: &ScenarioEnv, scale: ScenarioScale, mut rng: StdRng) -> Scenario {
    let tick = Dur::from_millis(10);
    let (until, n_windows, crowd_per_tick) = match scale {
        ScenarioScale::Smoke => (Time::from_secs(12), 3, 50),
        ScenarioScale::Full => (Time::from_secs(60), 6, 220),
    };
    let ports = active_ports(env);
    let hot = pick_ports(&mut rng, ports, 2);
    let windows: Vec<(Time, Time)> = disjoint_windows(
        &mut rng,
        Time::from_secs(2),
        until,
        n_windows,
        Dur::from_millis(1500),
        Dur::from_millis(2500),
    )
    .into_iter()
    .map(|w| snap(w, tick))
    .collect();

    let mut truth = GroundTruth::default();
    let mut workload = CompositeWorkload::new();
    let surges = windows
        .iter()
        .map(|&(start, end)| Surge {
            ports: hot.clone(),
            start,
            end,
            factor: 50.0,
        })
        .collect();
    workload.push(Box::new(PortBaseline::new(PortBaselineCfg {
        switch: env.switch,
        n_ports: ports,
        rate_bps: 10_000_000,
        drift_amp: 0.0,
        drift_period: Dur::from_secs(1),
        surges,
        seed: rng.random_range(0..u64::MAX),
    })));
    for &(start, end) in &windows {
        // The crowd itself: fresh client flows converging on the hot
        // service ports for the duration of the surge.
        workload.push(Box::new(FlowChurn::new(FlowChurnCfg {
            switch: env.switch,
            tx_ports: hot.clone(),
            rx_port: None,
            dst: env.host(1),
            dst_port: 443,
            proto: Proto::Tcp,
            bytes_per_flow: 1500,
            pkt_bytes: MTU_BYTES,
            flows_per_tick: crowd_per_tick,
            window: Some((start, end)),
            src_base: Ipv4::new(100, 64, 0, 0),
        })));
        truth.push(LabelWindow {
            kind: AttackKind::FlashCrowd,
            start,
            end,
            keys: port_keys(&hot),
        });
    }

    Scenario {
        name: String::new(),
        class: ScenarioClass::FlashCrowd,
        scale,
        seed: 0,
        until,
        tick,
        workload,
        truth,
        tasks: vec![
            TaskBinding {
                def: &suite::HH_TASK,
                externals: suite::hh_externals(60_000),
                kinds: vec![AttackKind::FlashCrowd],
                grace: Dur::from_millis(500),
            },
            TaskBinding {
                def: &suite::KISS_VOLUME_TASK,
                externals: suite::kiss_volume_externals(4.0, 8),
                kinds: vec![AttackKind::FlashCrowd],
                grace: Dur::from_millis(1000),
            },
            TaskBinding {
                def: &suite::KISS_SPIKE_TASK,
                externals: suite::kiss_spike_externals(8.0, 5, 1000.0),
                kinds: vec![AttackKind::FlashCrowd],
                grace: Dur::from_millis(1000),
            },
        ],
        baseline_hh_bps: Some(100_000_000),
        baseline_kinds: vec![AttackKind::FlashCrowd],
    }
}

fn diurnal_drift(env: &ScenarioEnv, scale: ScenarioScale, mut rng: StdRng) -> Scenario {
    let tick = Dur::from_millis(10);
    let (until, n_bursts) = match scale {
        ScenarioScale::Smoke => (Time::from_secs(12), 2),
        ScenarioScale::Full => (Time::from_secs(60), 5),
    };
    let ports = active_ports(env);
    let windows: Vec<(Time, Time)> = disjoint_windows(
        &mut rng,
        Time::from_secs(2),
        until,
        n_bursts,
        Dur::from_millis(1200),
        Dur::from_millis(2200),
    )
    .into_iter()
    .map(|w| snap(w, tick))
    .collect();
    // Each burst hits its own pair of ports.
    let burst_ports: Vec<Vec<PortId>> = windows
        .iter()
        .map(|_| pick_ports(&mut rng, ports, 2))
        .collect();

    let mut truth = GroundTruth::default();
    let surges = windows
        .iter()
        .zip(&burst_ports)
        .map(|(&(start, end), bp)| {
            truth.push(LabelWindow {
                kind: AttackKind::VolumeBurst,
                start,
                end,
                keys: port_keys(bp),
            });
            Surge {
                ports: bp.clone(),
                start,
                end,
                factor: 40.0,
            }
        })
        .collect();
    let mut workload = CompositeWorkload::new();
    workload.push(Box::new(PortBaseline::new(PortBaselineCfg {
        switch: env.switch,
        n_ports: ports,
        rate_bps: 10_000_000,
        drift_amp: 0.5,
        // Half a diurnal cycle over the run: load rises and falls.
        drift_period: Dur(2 * until.as_nanos()),
        surges,
        seed: rng.random_range(0..u64::MAX),
    })));

    Scenario {
        name: String::new(),
        class: ScenarioClass::DiurnalDrift,
        scale,
        seed: 0,
        until,
        tick,
        workload,
        truth,
        tasks: vec![
            TaskBinding {
                def: &suite::HH_TASK,
                externals: suite::hh_externals(100_000),
                kinds: vec![AttackKind::VolumeBurst],
                grace: Dur::from_millis(500),
            },
            TaskBinding {
                def: &suite::KISS_VOLUME_TASK,
                externals: suite::kiss_volume_externals(4.0, 8),
                kinds: vec![AttackKind::VolumeBurst],
                grace: Dur::from_millis(1000),
            },
            TaskBinding {
                def: &suite::KISS_SPIKE_TASK,
                externals: suite::kiss_spike_externals(8.0, 5, 1000.0),
                kinds: vec![AttackKind::VolumeBurst],
                grace: Dur::from_millis(1000),
            },
        ],
        baseline_hh_bps: Some(100_000_000),
        baseline_kinds: vec![AttackKind::VolumeBurst],
    }
}

fn multi_vector(env: &ScenarioEnv, scale: ScenarioScale, mut rng: StdRng) -> Scenario {
    let tick = Dur::from_millis(10);
    let (until, benign_per_tick, flood_per_tick) = match scale {
        ScenarioScale::Smoke => (Time::from_secs(14), 50, 40),
        ScenarioScale::Full => (Time::from_secs(30), 400, 60),
    };
    let ports = active_ports(env);
    let victim = env.host(9);
    let scanner = Ipv4::new(192, 0, 2, 66);
    let brute = Ipv4::new(203, 0, 113, 5);
    let secs = until.as_secs_f64() as u64;
    let ddos_win = (Time::from_secs(3), Time::from_secs(secs * 8 / 14));
    let scan_win = (Time::from_secs(4), Time::from_secs(secs * 10 / 14));
    let ssh_win = (Time::from_secs(2), Time::from_secs(secs * 12 / 14));

    let mut workload = CompositeWorkload::new();
    // Attack vectors come before the benign floor: probe triggers are
    // rate-limited to one mirrored packet per interval, and within a
    // simulation tick the first matching packet wins. Listing attacks
    // first models a mirror that catches the attack packets at line
    // rate instead of being permanently shadowed by the benign bulk
    // (which would starve any `proto tcp` probe of every SYN).
    // Vector 1: UDP flood toward the victim from rotating sources.
    workload.push(Box::new(FlowChurn::new(FlowChurnCfg {
        switch: env.switch,
        tx_ports: Vec::new(),
        rx_port: Some(PortId(9 % ports)),
        dst: victim,
        dst_port: 80,
        proto: Proto::Udp,
        bytes_per_flow: 5000,
        pkt_bytes: 512,
        flows_per_tick: flood_per_tick,
        window: Some(ddos_win),
        src_base: Ipv4::new(198, 18, 0, 0),
    })));
    // Vector 2: port scan.
    workload.push(Box::new(ScanBurst::new(
        env.switch,
        PortId(3 % ports),
        scanner,
        env.host(20),
        scan_win,
        2,
    )));
    // Vector 3: SSH brute force against a bastion host (distinct from
    // the flood victim so each label's keys match only its own vector).
    workload.push(Box::new(SshBrute {
        switch: env.switch,
        rx_port: PortId(11 % ports),
        src: brute,
        dst: env.host(11),
        window: ssh_win,
        attempts_per_tick: 1,
    }));
    // Benign floor: steady per-port load plus high-churn MTU flows that
    // never trip the probe-based detectors (full packets, no SYN flag).
    workload.push(Box::new(PortBaseline::new(PortBaselineCfg {
        switch: env.switch,
        n_ports: ports,
        rate_bps: 10_000_000,
        drift_amp: 0.0,
        drift_period: Dur::from_secs(1),
        surges: Vec::new(),
        seed: rng.random_range(0..u64::MAX),
    })));
    workload.push(Box::new(FlowChurn::new(FlowChurnCfg {
        switch: env.switch,
        tx_ports: (0..ports).map(PortId).collect(),
        rx_port: None,
        dst: env.host(30),
        dst_port: 8080,
        proto: Proto::Tcp,
        bytes_per_flow: 3000,
        pkt_bytes: MTU_BYTES,
        flows_per_tick: benign_per_tick,
        window: None,
        src_base: Ipv4::new(100, 64, 0, 0),
    })));

    let mut truth = GroundTruth::default();
    truth.push(LabelWindow {
        kind: AttackKind::Ddos,
        start: ddos_win.0,
        end: ddos_win.1,
        keys: [TruthKey::Dst(victim)].into_iter().collect(),
    });
    truth.push(LabelWindow {
        kind: AttackKind::PortScan,
        start: scan_win.0,
        end: scan_win.1,
        keys: [TruthKey::Src(scanner)].into_iter().collect(),
    });
    truth.push(LabelWindow {
        kind: AttackKind::SshBruteForce,
        start: ssh_win.0,
        end: ssh_win.1,
        keys: [TruthKey::Src(brute)].into_iter().collect(),
    });

    Scenario {
        name: String::new(),
        class: ScenarioClass::MultiVector,
        scale,
        seed: 0,
        until,
        tick,
        workload,
        truth,
        tasks: vec![
            TaskBinding {
                def: &suite::DDOS_TASK,
                externals: suite::ddos_externals(&format!("{victim}/32"), 100_000, 2),
                kinds: vec![AttackKind::Ddos],
                grace: Dur::from_millis(1000),
            },
            TaskBinding {
                def: &suite::PORTSCAN_TASK,
                externals: suite::portscan_externals(50),
                kinds: vec![AttackKind::PortScan],
                grace: Dur::from_millis(1500),
            },
            TaskBinding {
                def: &suite::SSH_TASK,
                externals: suite::ssh_externals(20),
                kinds: vec![AttackKind::SshBruteForce],
                // The program's counting window fires every 5 s, so an
                // attack ending mid-window reports up to 5 s late.
                grace: Dur::from_millis(5500),
            },
        ],
        // The flood is receive-side only: counter-polling baselines
        // (sFlow reads tx counters) cannot see it, which is the point.
        baseline_hh_bps: None,
        baseline_kinds: Vec::new(),
    }
}

fn churn_hh(env: &ScenarioEnv, scale: ScenarioScale, mut rng: StdRng) -> Scenario {
    let tick = Dur::from_millis(10);
    let warmup = Time::from_secs(3);
    let (n_epochs, epoch, churn_per_tick) = match scale {
        ScenarioScale::Smoke => (5usize, Dur::from_secs(2), 30),
        ScenarioScale::Full => (10usize, Dur::from_secs(3), 150),
    };
    let until = warmup + Dur(epoch.as_nanos() * n_epochs as u64);
    let ports = active_ports(env);

    let mut truth = GroundTruth::default();
    let mut surges = Vec::with_capacity(n_epochs);
    for e in 0..n_epochs {
        let heavy = pick_ports(&mut rng, ports, 4);
        let start = warmup + Dur(epoch.as_nanos() * e as u64);
        let end = start + epoch;
        truth.push(LabelWindow {
            kind: AttackKind::HeavyHitter,
            start,
            end,
            keys: port_keys(&heavy),
        });
        surges.push(Surge {
            ports: heavy,
            start,
            end,
            factor: 100.0,
        });
    }

    let mut workload = CompositeWorkload::new();
    workload.push(Box::new(PortBaseline::new(PortBaselineCfg {
        switch: env.switch,
        n_ports: ports,
        rate_bps: 10_000_000,
        drift_amp: 0.0,
        drift_period: Dur::from_secs(1),
        surges,
        seed: rng.random_range(0..u64::MAX),
    })));
    workload.push(Box::new(FlowChurn::new(FlowChurnCfg {
        switch: env.switch,
        tx_ports: (0..ports).map(PortId).collect(),
        rx_port: None,
        dst: env.host(40),
        dst_port: 8080,
        proto: Proto::Tcp,
        bytes_per_flow: 3000,
        pkt_bytes: MTU_BYTES,
        flows_per_tick: churn_per_tick,
        window: None,
        src_base: Ipv4::new(100, 64, 0, 0),
    })));

    Scenario {
        name: String::new(),
        class: ScenarioClass::ChurnHh,
        scale,
        seed: 0,
        until,
        tick,
        workload,
        truth,
        tasks: vec![
            TaskBinding {
                def: &suite::HH_TASK,
                externals: suite::hh_externals(60_000),
                kinds: vec![AttackKind::HeavyHitter],
                grace: Dur::from_millis(500),
            },
            TaskBinding {
                def: &suite::HHH2_TASK,
                externals: suite::hhh2_externals(60_000, 250_000, 8),
                kinds: vec![AttackKind::HeavyHitter],
                grace: Dur::from_millis(800),
            },
            TaskBinding {
                def: &suite::KISS_SPIKE_TASK,
                externals: suite::kiss_spike_externals(8.0, 5, 1000.0),
                kinds: vec![AttackKind::HeavyHitter],
                grace: Dur::from_millis(1000),
            },
        ],
        baseline_hh_bps: Some(200_000_000),
        baseline_kinds: vec![AttackKind::HeavyHitter],
    }
}

fn microburst(env: &ScenarioEnv, scale: ScenarioScale, mut rng: StdRng) -> Scenario {
    let tick = Dur::from_micros(100);
    let (until, n_bursts) = match scale {
        ScenarioScale::Smoke => (Time::from_millis(400), 6),
        ScenarioScale::Full => (Time::from_millis(1200), 18),
    };
    let ports = active_ports(env).min(8);

    // One burst per disjoint segment: a random port at 10 Gbit/s for
    // 1–4 ms, delivered as a pre-scheduled trace through the injection
    // hook (the same path externally captured traces would use).
    let windows: Vec<(Time, Time)> = disjoint_windows(
        &mut rng,
        Time::from_millis(50),
        until,
        n_bursts,
        Dur::from_millis(1),
        Dur::from_millis(4),
    )
    .into_iter()
    .map(|w| snap(w, tick))
    .collect();
    let mut truth = GroundTruth::default();
    let mut events = Vec::new();
    for &(start, end) in &windows {
        let port = PortId(rng.random_range(0..ports));
        truth.push(LabelWindow {
            kind: AttackKind::Microburst,
            start,
            end,
            keys: port_keys(&[port]),
        });
        let slice_bytes = bytes_for(10_000_000_000, tick);
        let mut t = start;
        while t < end {
            events.push((
                t,
                TrafficEvent {
                    switch: env.switch,
                    rx_port: None,
                    tx_port: Some(port),
                    flow: FlowKey::udp(Ipv4::new(10, 250, 0, 1), 9000, env.host(2), 9000),
                    bytes: slice_bytes,
                    packets: packets_for(slice_bytes, MTU_BYTES),
                },
            ));
            t += tick;
        }
    }

    let mut workload = CompositeWorkload::new();
    workload.push(Box::new(PortBaseline::new(PortBaselineCfg {
        switch: env.switch,
        n_ports: ports,
        rate_bps: 100_000_000,
        drift_amp: 0.0,
        drift_period: Dur::from_secs(1),
        surges: Vec::new(),
        seed: rng.random_range(0..u64::MAX),
    })));
    workload.push(Box::new(TraceWorkload::new(events)));

    Scenario {
        name: String::new(),
        class: ScenarioClass::Microburst,
        scale,
        seed: 0,
        until,
        tick,
        workload,
        truth,
        tasks: vec![
            TaskBinding {
                def: &suite::DIG_TASK,
                externals: suite::dig_externals(30_000),
                kinds: vec![AttackKind::Microburst],
                grace: Dur::from_millis(20),
            },
            TaskBinding {
                // With only two tasks on the fabric the planner hands hh
                // a large opportunistic PCIe share (~625), so its poll
                // interval (10/PCIe ms) lands in the 16 µs–100 µs range.
                // A 10 Gbit/s burst moves ≥ 20 KB per 16 µs poll while
                // the 100 Mbit/s benign floor stays ≤ 1.25 KB per port
                // even over a full 100 µs tick — 10 KB separates the two
                // with ≥ 2x margin on both sides at any sub-tick cadence.
                def: &suite::HH_TASK,
                externals: suite::hh_externals(10_000),
                kinds: vec![AttackKind::Microburst],
                grace: Dur::from_millis(100),
            },
        ],
        // Included to demonstrate the counter-interval floor: 100 ms
        // sFlow polling cannot resolve millisecond bursts.
        baseline_hh_bps: Some(1_000_000_000),
        baseline_kinds: vec![AttackKind::Microburst],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farm_netsim::traffic::record_trace;

    fn env() -> ScenarioEnv {
        ScenarioEnv {
            switch: SwitchId(2),
            n_ports: 48,
            prefix: "10.0.1.0/24".parse().unwrap(),
        }
    }

    #[test]
    fn class_names_round_trip() {
        for c in ScenarioClass::ALL {
            assert_eq!(ScenarioClass::from_name(c.name()), Some(c));
        }
        assert_eq!(ScenarioClass::from_name("nope"), None);
    }

    #[test]
    fn every_class_builds_with_truth_and_tasks() {
        for class in ScenarioClass::ALL {
            let spec = ScenarioSpec {
                class,
                scale: ScenarioScale::Smoke,
                seed: 42,
            };
            let s = spec.build(&env());
            assert!(!s.truth.windows.is_empty(), "{}: no labels", s.name);
            assert!(s.tasks.len() >= 2, "{}: too few tasks", s.name);
            assert!(s.until > Time::ZERO && !s.tick.is_zero());
            for w in &s.truth.windows {
                assert!(w.start < w.end, "{}: empty window", s.name);
                assert!(w.end <= s.until + s.tick, "{}: window past end", s.name);
            }
        }
    }

    #[test]
    fn same_seed_same_trace_and_labels() {
        for class in [ScenarioClass::FlashCrowd, ScenarioClass::MultiVector] {
            let spec = ScenarioSpec {
                class,
                scale: ScenarioScale::Smoke,
                seed: 1337,
            };
            let mut a = spec.build(&env());
            let mut b = spec.build(&env());
            assert_eq!(a.truth, b.truth);
            let ta = record_trace(&mut a.workload, a.until, a.tick);
            let tb = record_trace(&mut b.workload, b.until, b.tick);
            assert_eq!(ta.len(), tb.len());
            assert_eq!(ta, tb);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let base = ScenarioSpec {
            class: ScenarioClass::ChurnHh,
            scale: ScenarioScale::Smoke,
            seed: 1,
        };
        let other = ScenarioSpec { seed: 2, ..base };
        let a = base.build(&env());
        let b = other.build(&env());
        assert_ne!(a.truth, b.truth);
    }

    #[test]
    fn multi_vector_attack_flows_stay_inside_their_windows() {
        let spec = ScenarioSpec {
            class: ScenarioClass::MultiVector,
            scale: ScenarioScale::Smoke,
            seed: 7,
        };
        let mut s = spec.build(&env());
        let trace = record_trace(&mut s.workload, s.until, s.tick);
        for w in &s.truth.windows {
            for (t, e) in &trace {
                let hit = w.keys.iter().any(|k| match k {
                    TruthKey::Src(ip) => e.flow.src == *ip,
                    TruthKey::Dst(ip) => e.flow.dst == *ip,
                    TruthKey::Port(_) => false,
                });
                if hit {
                    assert!(
                        *t >= w.start && *t < w.end,
                        "{:?} event at {t} outside window [{}, {})",
                        w.kind,
                        w.start,
                        w.end
                    );
                }
            }
        }
    }

    #[test]
    fn disjoint_windows_do_not_overlap() {
        let mut rng = StdRng::seed_from_u64(3);
        let ws = disjoint_windows(
            &mut rng,
            Time::from_secs(1),
            Time::from_secs(13),
            4,
            Dur::from_millis(800),
            Dur::from_millis(2000),
        );
        for pair in ws.windows(2) {
            assert!(pair[0].1 <= pair[1].0, "{pair:?} overlap");
        }
    }
}
