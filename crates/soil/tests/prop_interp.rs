//! Property-based tests of the seed interpreter: HH semantics against a
//! Rust oracle, migration round trips, and determinism.

use std::sync::Arc;

use farm_almanac::analysis::ConstEnv;
use farm_almanac::compile::{compile_machine, frontend, CompiledMachine};
use farm_almanac::value::{StatEntry, StatSubject, Value};
use farm_netsim::controller::SdnController;
use farm_netsim::switch::{Resources, SwitchModel};
use farm_netsim::topology::Topology;
use farm_soil::interp::{stats_payload, FixedHost, SeedEvent, SeedId, SeedInstance};
use farm_soil::Effect;
use proptest::prelude::*;

fn compile(src: &str, machine: &str) -> Arc<CompiledMachine> {
    let topo = Topology::spine_leaf(1, 2, SwitchModel::test_model(8), SwitchModel::test_model(8));
    let ctl = SdnController::new(&topo);
    let program = frontend(src).unwrap();
    Arc::new(compile_machine(&program, machine, &ConstEnv::new(), &ctl).unwrap())
}

fn stat(port: u16, tx_bytes: u64) -> StatEntry {
    StatEntry {
        subject: StatSubject::Port(port),
        tx_bytes,
        rx_bytes: 0,
        tx_packets: tx_bytes / 1500,
        rx_packets: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The HH seed's detection agrees with a Rust oracle on arbitrary
    /// polled statistics: it transitions (and reports) iff some entry
    /// meets the threshold, and the reported list matches exactly.
    #[test]
    fn hh_seed_matches_oracle(
        volumes in proptest::collection::vec(0u64..3_000_000, 1..24),
        threshold in 1i64..2_000_000,
    ) {
        let def = compile(farm_almanac::programs::HEAVY_HITTER, "HH");
        let mut seed = SeedInstance::new(SeedId(1), def, Resources::ZERO);
        let host = FixedHost::default();
        // Set the threshold through the harvester path.
        seed.handle(
            &SeedEvent::Recv { from_machine: None, value: Value::Int(threshold) },
            &host,
        ).unwrap();
        let entries: Vec<StatEntry> = volumes
            .iter()
            .enumerate()
            .map(|(i, &v)| stat(i as u16, v))
            .collect();
        let out = seed.handle(
            &SeedEvent::Trigger {
                name: "pollStats".into(),
                payload: stats_payload(entries),
            },
            &host,
        ).unwrap();
        let oracle: Vec<u16> = volumes
            .iter()
            .enumerate()
            .filter(|(_, &v)| v as i64 >= threshold)
            .map(|(i, _)| i as u16)
            .collect();
        prop_assert_eq!(out.transitioned, !oracle.is_empty());
        let sent: Option<Vec<u16>> = out.effects.iter().find_map(|e| match e {
            Effect::Send { value: Value::List(items), .. } => Some(
                items
                    .iter()
                    .filter_map(|v| match v {
                        Value::Stat(s) => match s.subject {
                            StatSubject::Port(p) => Some(p),
                            _ => None,
                        },
                        _ => None,
                    })
                    .collect(),
            ),
            _ => None,
        });
        match sent {
            Some(ports) => prop_assert_eq!(ports, oracle),
            None => prop_assert!(oracle.is_empty(), "missing report for {:?}", oracle),
        }
    }

    /// Migration invariant: snapshot → restore reproduces *behaviour*,
    /// not just variables — the restored seed reacts to the next poll
    /// exactly as the original would.
    #[test]
    fn snapshot_restore_preserves_behaviour(
        pre in proptest::collection::vec(0u64..2_000_000, 0..8),
        post in proptest::collection::vec(0u64..2_000_000, 1..8),
        threshold in 1i64..1_500_000,
    ) {
        let def = compile(farm_almanac::programs::HEAVY_HITTER, "HH");
        let host = FixedHost::default();
        let mut original = SeedInstance::new(SeedId(1), def.clone(), Resources::ZERO);
        original.handle(
            &SeedEvent::Recv { from_machine: None, value: Value::Int(threshold) },
            &host,
        ).unwrap();
        for (i, &v) in pre.iter().enumerate() {
            original.handle(
                &SeedEvent::Trigger {
                    name: "pollStats".into(),
                    payload: stats_payload(vec![stat(i as u16, v)]),
                },
                &host,
            ).unwrap();
        }
        // Migrate.
        let snap = original.snapshot();
        let mut migrated = SeedInstance::new(SeedId(2), def, Resources::ZERO);
        migrated.restore(&snap).unwrap();
        // Both must now behave identically on the same future input.
        let payload: Vec<StatEntry> = post
            .iter()
            .enumerate()
            .map(|(i, &v)| stat(i as u16, v))
            .collect();
        let ev = SeedEvent::Trigger {
            name: "pollStats".into(),
            payload: stats_payload(payload),
        };
        let a = original.handle(&ev, &host).unwrap();
        let b = migrated.handle(&ev, &host).unwrap();
        prop_assert_eq!(a.effects, b.effects);
        prop_assert_eq!(a.transitioned, b.transitioned);
        prop_assert_eq!(original.state(), migrated.state());
    }

    /// Handlers are pure functions of (seed state, event, host): two
    /// identical seeds fed the same event sequence stay identical.
    #[test]
    fn interpreter_is_deterministic(
        seq in proptest::collection::vec((0u16..8, 0u64..2_000_000), 1..16),
    ) {
        let def = compile(farm_almanac::programs::HEAVY_HITTER, "HH");
        let host = FixedHost::default();
        let mut a = SeedInstance::new(SeedId(1), def.clone(), Resources::ZERO);
        let mut b = SeedInstance::new(SeedId(2), def, Resources::ZERO);
        for (port, v) in seq {
            let ev = SeedEvent::Trigger {
                name: "pollStats".into(),
                payload: stats_payload(vec![stat(port, v)]),
            };
            let ra = a.handle(&ev, &host).unwrap();
            let rb = b.handle(&ev, &host).unwrap();
            prop_assert_eq!(ra.effects, rb.effects);
        }
        prop_assert_eq!(a.snapshot().vars, b.snapshot().vars);
    }
}
