//! Property: a soil-level undeploy → import round trip is lossless.
//!
//! Whatever state an HH seed accumulated — state machine position,
//! variables (threshold, detected hitters), trigger schedule, resource
//! accounting — survives migration to a fresh soil, and the source soil
//! is left fully clean. This is the invariant FARM's crash recovery
//! leans on when it restores orphans from their last checkpoint.

use std::sync::Arc;

use farm_almanac::analysis::ConstEnv;
use farm_almanac::compile::{compile_machine, frontend, CompiledMachine};
use farm_almanac::value::Value;
use farm_netsim::controller::SdnController;
use farm_netsim::switch::{Resources, Switch, SwitchModel};
use farm_netsim::time::{Dur, Time};
use farm_netsim::topology::Topology;
use farm_netsim::types::{FlowKey, Ipv4, PortId, SwitchId};
use farm_soil::{Soil, SoilConfig};
use proptest::prelude::*;

fn compile(src: &str, machine: &str) -> Arc<CompiledMachine> {
    let topo = Topology::spine_leaf(1, 2, SwitchModel::test_model(8), SwitchModel::test_model(8));
    let ctl = SdnController::new(&topo);
    let program = frontend(src).unwrap();
    Arc::new(compile_machine(&program, machine, &ConstEnv::new(), &ctl).unwrap())
}

fn rig(id: u32) -> (Soil, Switch) {
    (
        Soil::new(SwitchId(id), SoilConfig::default()),
        Switch::new(SwitchId(id), SwitchModel::test_model(8)),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn undeploy_import_round_trip_is_lossless(
        pcie in 1u32..=20,
        threshold in 1i64..2_000_000,
        volumes in proptest::collection::vec(1u64..5_000_000, 1..8),
        migrate_after_ms in 1u64..40,
    ) {
        let def = compile(farm_almanac::programs::HEAVY_HITTER, "HH");
        let alloc = Resources::new(2.0, 512.0, 16.0, f64::from(pcie));

        // Deploy on soil A, retune the threshold, and let the seed run
        // over arbitrary per-port traffic so it accumulates real state.
        let (mut soil_a, mut switch_a) = rig(0);
        let (id, _) = soil_a
            .deploy(def.clone(), "hh", alloc, Time::ZERO, &mut switch_a)
            .unwrap();
        soil_a.deliver_to_machine("HH", None, &Value::Int(threshold), Time::ZERO, &mut switch_a);
        let mut now = Time::ZERO;
        for (i, &bytes) in volumes.iter().enumerate() {
            let flow = FlowKey::tcp(
                Ipv4::new(10, 0, 0, 1),
                1000 + i as u16,
                Ipv4::new(10, 1, 0, 1),
                80,
            );
            switch_a.record_traffic(&flow, None, Some(PortId(i as u16)), bytes, bytes / 1500 + 1);
            now += Dur::from_millis(1);
            soil_a.advance(now, &mut switch_a);
        }

        // Resource accounting while deployed is exactly the allocation.
        prop_assert_eq!(soil_a.resources_in_use(), alloc);
        let interval_a = soil_a.trigger_interval_ms(id, "pollStats").unwrap();
        let rate_a = soil_a.poll_rate_per_sec();
        let seed_a = soil_a.seed(id).unwrap();
        let state_a = seed_a.state().to_string();
        let vars_a = seed_a.snapshot().vars;

        let migrate_at = now + Dur::from_millis(migrate_after_ms);
        let snap = soil_a.undeploy(id, &mut switch_a).unwrap();

        // The source soil forgets the seed entirely: no residual seeds,
        // no claimed resources, no scheduled polling.
        prop_assert_eq!(soil_a.num_seeds(), 0);
        prop_assert_eq!(soil_a.resources_in_use(), Resources::ZERO);
        prop_assert_eq!(soil_a.poll_rate_per_sec(), 0.0);
        prop_assert!(soil_a.seed(id).is_none());

        // Import on a fresh soil B.
        let (mut soil_b, mut switch_b) = rig(1);
        let new_id = soil_b
            .import(def, "hh", alloc, &snap, migrate_at, &mut switch_b)
            .unwrap();

        // State machine position and every variable are preserved.
        let seed_b = soil_b.seed(new_id).unwrap();
        prop_assert_eq!(seed_b.state(), state_a.as_str());
        prop_assert_eq!(seed_b.snapshot().vars, vars_a);

        // Trigger deadlines: the same allocation yields the same poll
        // interval and aggregate polling rate on the new soil...
        let interval_b = soil_b.trigger_interval_ms(new_id, "pollStats").unwrap();
        prop_assert!((interval_b - interval_a).abs() < 1e-9);
        prop_assert!((soil_b.poll_rate_per_sec() - rate_a).abs() < 1e-9);
        // ...and the next poll is due within one interval of the import
        // instant, not rescheduled from zero.
        let one_ival = Dur::from_secs_f64(interval_b / 1000.0);
        let report = soil_b.advance(migrate_at + one_ival + Dur::from_millis(1), &mut switch_b);
        prop_assert!(report.asic_polls >= 1, "migrated trigger never fired");
        prop_assert_eq!(report.errors, vec![]);

        // Resource accounting transferred with the seed.
        prop_assert_eq!(soil_b.resources_in_use(), alloc);
    }
}
