//! The soil: FARM's per-switch seed foundation layer (§ II-B b).
//!
//! The soil manages seed execution, tracks switch resources, aggregates
//! polling across seeds (one ASIC transfer for all seeds sharing a
//! subject), schedules trigger events on virtual time, applies seeds'
//! local (re)actions to the TCAM, and queues outbound messages for the
//! communication service. It also installs the monitoring-region `Count`
//! rules backing flow-level polling subjects, reference-counted across
//! seeds so shared subjects cost one TCAM entry.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

use farm_almanac::analysis::PollSubject;
use farm_almanac::ast::TriggerType;
use farm_almanac::compile::CompiledMachine;
use farm_almanac::value::{ActionValue, PacketRecord, RuleValue, StatEntry, StatSubject, Value};
use farm_netsim::switch::{ResourceKind, Resources, Switch};
use farm_netsim::tcam::{RuleAction, RuleId, TcamRegion};
use farm_netsim::time::{Dur, Time};
use farm_netsim::types::{FilterFormula, PortSel, SwitchId};

use farm_telemetry::{Counter, Event, Histogram, PressureResource, Telemetry, UndeployReason};

use crate::channel::{record_ipc_delivery, CommModel};
use crate::interp::{
    stats_payload, Effect, Endpoint, SeedError, SeedEvent, SeedHost, SeedId, SeedInstance,
    SeedSnapshot,
};

/// Soil configuration knobs (the § VI-E microbenchmark axes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoilConfig {
    pub comm: CommModel,
    /// Aggregate identical poll subjects across seeds (§ II-B b).
    pub aggregation: bool,
    /// CPU cycles one `exec()` iteration costs (the ML task's SVR
    /// matrix-multiply payload; calibrated to Fig. 6c/d).
    pub exec_cost_cycles: u64,
    /// CPU cycles per abstract interpreter operation.
    pub cycles_per_op: u64,
}

impl Default for SoilConfig {
    fn default() -> Self {
        SoilConfig {
            comm: CommModel::default(),
            aggregation: true,
            exec_cost_cycles: 170_000,
            cycles_per_op: 25,
        }
    }
}

/// Soil-level failure.
///
/// `#[non_exhaustive]`: more variants may appear as the soil grows;
/// callers must keep a wildcard arm.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SoilError {
    /// A trigger's interval is non-positive or non-finite under the
    /// given allocation (e.g. zero PCIe budget).
    BadTriggerInterval {
        trigger: String,
        interval_ms: f64,
        context: String,
    },
    /// The monitoring TCAM region rejected a polling rule.
    TcamInstall(String),
    /// The referenced seed is not deployed on this soil.
    UnknownSeed(SeedId),
    /// A migrated snapshot could not be restored into the new instance.
    Restore(String),
    /// Seeds no longer fit the switch's (possibly degraded) resource
    /// budget; the soil sheds rather than failing the tick. Carried as
    /// the structured reason on [`ShedSeed`].
    ResourcePressure {
        resource: ResourceKind,
        /// Demand on the pressured resource across deployed seeds.
        demand: f64,
        /// The budget the demand exceeded.
        budget: f64,
    },
}

impl fmt::Display for SoilError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SoilError::BadTriggerInterval {
                trigger,
                interval_ms,
                context,
            } => write!(
                f,
                "soil error: trigger `{trigger}` has interval {interval_ms} ms {context}"
            ),
            SoilError::TcamInstall(e) => {
                write!(f, "soil error: cannot install polling rule: {e}")
            }
            SoilError::UnknownSeed(id) => write!(f, "soil error: unknown seed {id}"),
            SoilError::Restore(e) => write!(f, "soil error: cannot restore snapshot: {e}"),
            SoilError::ResourcePressure {
                resource,
                demand,
                budget,
            } => write!(
                f,
                "soil error: resource pressure on {resource}: demand {demand:.2} exceeds budget {budget:.2}"
            ),
        }
    }
}

/// A seed the soil dropped under resource pressure, with everything the
/// control plane needs to re-place it elsewhere.
#[derive(Debug, Clone, PartialEq)]
pub struct ShedSeed {
    pub seed: SeedId,
    pub task: String,
    /// State captured at shed time, for warm recovery.
    pub snapshot: SeedSnapshot,
    /// The structured [`SoilError::ResourcePressure`] that forced the shed.
    pub reason: SoilError,
}

impl std::error::Error for SoilError {}

/// A message leaving the switch toward a harvester or another seed.
#[derive(Debug, Clone, PartialEq)]
pub struct OutboundMessage {
    pub from_switch: SwitchId,
    pub from_seed: SeedId,
    pub from_machine: String,
    pub task: String,
    pub to: Endpoint,
    pub value: Value,
    /// Instant the handler emitted the message.
    pub at: Time,
    /// Switch-local latency until the message hits the wire (PCIe +
    /// compute + channel).
    pub latency: Dur,
    /// Estimated serialized size.
    pub bytes: u64,
}

/// Accounting for one scheduling step / call.
#[derive(Debug, Clone, Default)]
pub struct TickReport {
    /// Events delivered to seeds.
    pub deliveries: u64,
    /// ASIC polls actually issued over PCIe.
    pub asic_polls: u64,
    /// Seed-level poll deliveries served from an aggregated transfer.
    pub polls_saved: u64,
    pub messages: Vec<OutboundMessage>,
    pub errors: Vec<(SeedId, SeedError)>,
}

impl TickReport {
    fn merge(&mut self, other: TickReport) {
        self.deliveries += other.deliveries;
        self.asic_polls += other.asic_polls;
        self.polls_saved += other.polls_saved;
        self.messages.extend(other.messages);
        self.errors.extend(other.errors);
    }
}

/// Cumulative soil statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SoilStats {
    pub deliveries: u64,
    pub asic_polls: u64,
    pub polls_saved: u64,
    pub exec_iterations: u64,
    pub messages_out: u64,
}

impl std::ops::Add for SoilStats {
    type Output = SoilStats;

    /// Field-wise sum, for fabric-wide aggregation across soils.
    fn add(self, rhs: SoilStats) -> SoilStats {
        SoilStats {
            deliveries: self.deliveries + rhs.deliveries,
            asic_polls: self.asic_polls + rhs.asic_polls,
            polls_saved: self.polls_saved + rhs.polls_saved,
            exec_iterations: self.exec_iterations + rhs.exec_iterations,
            messages_out: self.messages_out + rhs.messages_out,
        }
    }
}

impl std::iter::Sum for SoilStats {
    fn sum<I: Iterator<Item = SoilStats>>(iter: I) -> SoilStats {
        iter.fold(SoilStats::default(), |a, b| a + b)
    }
}

#[derive(Debug, Clone)]
struct TriggerSched {
    seed: SeedId,
    name: String,
    kind: TriggerType,
    subjects: Vec<PollSubject>,
    what: Option<FilterFormula>,
    ival: Dur,
    next_due: Time,
    tick: u64,
    /// Last-seen cumulative counters per subject: poll events deliver
    /// *deltas since the previous poll* (monitoring semantics — counters
    /// on real ASICs are cumulative since boot).
    baseline: HashMap<StatSubject, [u64; 4]>,
}

struct SwitchHost<'a> {
    resources: Resources,
    now_ms: i64,
    switch: &'a Switch,
}

impl SeedHost for SwitchHost<'_> {
    fn resources(&self) -> Resources {
        self.resources
    }
    fn now_ms(&self) -> i64 {
        self.now_ms
    }
    fn get_rule(&self, pattern: &FilterFormula) -> Option<RuleValue> {
        self.switch
            .tcam()
            .rules()
            .iter()
            .find(|r| r.region == TcamRegion::Monitoring && &r.pattern == pattern)
            .map(|r| RuleValue {
                pattern: r.pattern.clone(),
                action: from_rule_action(&r.action),
            })
    }
}

/// Maps the soil's resource kinds onto telemetry's dependency-free enum.
fn pressure_resource(kind: ResourceKind) -> PressureResource {
    match kind {
        ResourceKind::VCpu => PressureResource::Cpu,
        ResourceKind::RamMb => PressureResource::Ram,
        ResourceKind::TcamEntries => PressureResource::Tcam,
        ResourceKind::PciePoll => PressureResource::PciePoll,
    }
}

fn to_rule_action(a: &ActionValue) -> RuleAction {
    match a {
        ActionValue::Drop => RuleAction::Drop,
        ActionValue::RateLimit(bps) => RuleAction::RateLimit(*bps),
        ActionValue::SetQos(q) => RuleAction::SetQos(*q),
        ActionValue::Count => RuleAction::Count,
        ActionValue::Mirror => RuleAction::Mirror,
    }
}

fn from_rule_action(a: &RuleAction) -> ActionValue {
    match a {
        RuleAction::Drop => ActionValue::Drop,
        RuleAction::RateLimit(bps) => ActionValue::RateLimit(*bps),
        RuleAction::SetQos(q) => ActionValue::SetQos(*q),
        RuleAction::Mirror => ActionValue::Mirror,
        RuleAction::Count | RuleAction::Forward(_) => ActionValue::Count,
    }
}

/// Rough serialized size of a value (network-load accounting).
pub fn value_bytes(v: &Value) -> u64 {
    match v {
        Value::Unit | Value::Bool(_) => 1,
        Value::Int(_) | Value::Float(_) => 8,
        Value::Str(s) => 8 + s.len() as u64,
        Value::List(items) => 8 + items.iter().map(value_bytes).sum::<u64>(),
        Value::Packet(_) => 64,
        Value::Filter(f) => 16 + f.to_string().len() as u64,
        Value::Action(_) => 8,
        Value::Rule(r) => 24 + r.pattern.to_string().len() as u64,
        Value::Resources(_) => 32,
        Value::Stat(_) => 40,
        Value::Pair(a, b) => value_bytes(a) + value_bytes(b),
    }
}

/// Cached instrument handles so hot paths skip the registry name lookup.
#[derive(Debug, Clone)]
struct SoilInstruments {
    telemetry: Telemetry,
    deliveries: Arc<Counter>,
    asic_polls: Arc<Counter>,
    polls_saved: Arc<Counter>,
    seed_errors: Arc<Counter>,
    messages_out: Arc<Counter>,
    poll_latency_us: Arc<Histogram>,
}

impl SoilInstruments {
    fn new(telemetry: Telemetry) -> SoilInstruments {
        SoilInstruments {
            deliveries: telemetry.counter("soil.deliveries"),
            asic_polls: telemetry.counter("soil.asic_polls"),
            polls_saved: telemetry.counter("soil.polls_saved"),
            seed_errors: telemetry.counter("soil.seed_errors"),
            messages_out: telemetry.counter("soil.messages_out"),
            poll_latency_us: telemetry.latency_histogram("poll.latency_us"),
            telemetry,
        }
    }
}

/// The per-switch soil instance.
#[derive(Debug)]
pub struct Soil {
    switch_id: SwitchId,
    config: SoilConfig,
    seeds: BTreeMap<SeedId, SeedInstance>,
    tasks: HashMap<SeedId, String>,
    deployed_at: HashMap<SeedId, Time>,
    triggers: Vec<TriggerSched>,
    /// Canonical rule pattern → installed Count rule + refcount.
    rule_refs: HashMap<String, (RuleId, usize)>,
    next_id: u64,
    stats: SoilStats,
    instruments: Option<SoilInstruments>,
}

impl Soil {
    /// Creates the soil for a switch.
    pub fn new(switch_id: SwitchId, config: SoilConfig) -> Soil {
        Soil {
            switch_id,
            config,
            seeds: BTreeMap::new(),
            tasks: HashMap::new(),
            deployed_at: HashMap::new(),
            triggers: Vec::new(),
            rule_refs: HashMap::new(),
            next_id: 0,
            stats: SoilStats::default(),
            instruments: None,
        }
    }

    /// Attaches a telemetry handle: seed lifecycle, poll aggregation and
    /// IPC deliveries start updating the `soil.*` instruments and
    /// emitting [`Event`]s.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.instruments = Some(SoilInstruments::new(telemetry));
    }

    /// The switch this soil runs on.
    pub fn switch_id(&self) -> SwitchId {
        self.switch_id
    }

    /// Current configuration.
    pub fn config(&self) -> &SoilConfig {
        &self.config
    }

    /// Number of deployed seeds.
    pub fn num_seeds(&self) -> usize {
        self.seeds.len()
    }

    /// Iterates deployed seeds.
    pub fn seeds(&self) -> impl Iterator<Item = &SeedInstance> {
        self.seeds.values()
    }

    /// A deployed seed by id.
    pub fn seed(&self, id: SeedId) -> Option<&SeedInstance> {
        self.seeds.get(&id)
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> SoilStats {
        self.stats
    }

    /// Sum of resources allocated to deployed seeds.
    pub fn resources_in_use(&self) -> Resources {
        self.seeds
            .values()
            .fold(Resources::ZERO, |acc, s| acc.add(&s.allocated()))
    }

    /// Deploys a seed of `def` with the given allocation.
    ///
    /// Installs monitoring `Count` rules for flow-level polling subjects
    /// (reference-counted across seeds) and delivers the initial `enter`
    /// event.
    ///
    /// # Errors
    ///
    /// Fails when a trigger's interval is non-positive under the
    /// allocation (e.g. no PCIe capacity assigned) or the monitoring TCAM
    /// region is full.
    pub fn deploy(
        &mut self,
        def: Arc<CompiledMachine>,
        task: &str,
        alloc: Resources,
        now: Time,
        switch: &mut Switch,
    ) -> Result<(SeedId, TickReport), SoilError> {
        let id = SeedId(self.next_id);
        self.next_id += 1;

        let mut scheds = Vec::new();
        for t in &def.triggers {
            let ival_ms = t.ival.eval(&alloc);
            if !ival_ms.is_finite() || ival_ms <= 0.0 {
                return Err(SoilError::BadTriggerInterval {
                    trigger: t.name.clone(),
                    interval_ms: ival_ms,
                    context: format!("under allocation {alloc}"),
                });
            }
            scheds.push(TriggerSched {
                seed: id,
                name: t.name.clone(),
                kind: t.kind,
                subjects: t.subjects.clone(),
                what: t.what.clone(),
                ival: Dur::from_secs_f64(ival_ms / 1000.0),
                next_due: now + Dur::from_secs_f64(ival_ms / 1000.0),
                tick: 0,
                baseline: HashMap::new(),
            });
        }
        // Install flow-level polling subjects as Count rules. Track both
        // freshly installed rules and refcounts claimed on pre-existing
        // ones, so a failure mid-deploy rolls back *everything* this
        // deploy touched (a claimed refcount leaks the TCAM entry forever
        // otherwise: the shared rule would never drop back to zero).
        let mut installed: Vec<String> = Vec::new();
        let mut claimed: Vec<String> = Vec::new();
        for s in scheds.iter().flat_map(|t| t.subjects.iter()) {
            if let PollSubject::Rule(key) = s {
                if let Some((_, refs)) = self.rule_refs.get_mut(key) {
                    *refs += 1;
                    claimed.push(key.clone());
                    continue;
                }
                let formula = scheds
                    .iter()
                    .filter(|t| t.subjects.contains(s))
                    .find_map(|t| t.what.clone())
                    .expect("rule subject implies a formula");
                match switch.tcam_mut().add_rule(
                    TcamRegion::Monitoring,
                    0,
                    formula,
                    RuleAction::Count,
                ) {
                    Ok(rid) => {
                        self.rule_refs.insert(key.clone(), (rid, 1));
                        installed.push(key.clone());
                    }
                    Err(e) => {
                        self.rollback_rules(&installed, &claimed, switch);
                        return Err(SoilError::TcamInstall(e.to_string()));
                    }
                }
            }
        }

        let seed = SeedInstance::new(id, def, alloc);
        self.seeds.insert(id, seed);
        self.tasks.insert(id, task.to_string());
        self.deployed_at.insert(id, now);
        let poll_interval_ns = scheds.iter().map(|t| t.ival.as_nanos()).min().unwrap_or(0);
        self.triggers.extend(scheds);
        if let Some(ins) = &self.instruments {
            ins.telemetry.counter("soil.seeds_deployed").inc();
            let (switch_id, task) = (self.switch_id.0, task.to_string());
            ins.telemetry.emit_with(|| Event::SeedDeployed {
                at_ns: now.as_nanos(),
                switch: switch_id,
                seed: id.0,
                task,
                poll_interval_ns,
            });
        }

        let report = self.deliver(id, &SeedEvent::Enter, now, switch, Dur::ZERO);
        self.stats.deliveries += report.deliveries;
        Ok((id, report))
    }

    /// Undoes the TCAM side of a partially completed deploy: removes
    /// rules it installed and releases refcounts it claimed on shared
    /// rules (dropping those rules too when the count reaches zero).
    fn rollback_rules(&mut self, installed: &[String], claimed: &[String], switch: &mut Switch) {
        for key in installed {
            if let Some((rid, _)) = self.rule_refs.remove(key) {
                let _ = switch.tcam_mut().remove_rule(rid);
            }
        }
        for key in claimed {
            if let Some((rid, refs)) = self.rule_refs.get_mut(key) {
                *refs -= 1;
                if *refs == 0 {
                    let rid = *rid;
                    self.rule_refs.remove(key);
                    let _ = switch.tcam_mut().remove_rule(rid);
                }
            }
        }
    }

    /// Removes a seed, returning its state snapshot (for migration).
    ///
    /// # Errors
    ///
    /// Fails when the seed is unknown.
    pub fn undeploy(&mut self, id: SeedId, switch: &mut Switch) -> Result<SeedSnapshot, SoilError> {
        self.undeploy_with_reason(id, UndeployReason::TaskRemoved, Time::ZERO, switch)
    }

    /// [`Soil::undeploy`] with explicit event context: the reason and
    /// instant recorded in the emitted [`Event::SeedUndeployed`].
    pub fn undeploy_with_reason(
        &mut self,
        id: SeedId,
        reason: UndeployReason,
        now: Time,
        switch: &mut Switch,
    ) -> Result<SeedSnapshot, SoilError> {
        let seed = self.seeds.remove(&id).ok_or(SoilError::UnknownSeed(id))?;
        if let Some(ins) = &self.instruments {
            ins.telemetry.counter("soil.seeds_undeployed").inc();
            let task = self.tasks.get(&id).cloned().unwrap_or_default();
            let switch_id = self.switch_id.0;
            ins.telemetry.emit_with(|| Event::SeedUndeployed {
                at_ns: now.as_nanos(),
                switch: switch_id,
                seed: id.0,
                task,
                reason,
            });
        }
        self.tasks.remove(&id);
        self.deployed_at.remove(&id);
        let removed: Vec<TriggerSched> = {
            let (gone, keep): (Vec<_>, Vec<_>) =
                self.triggers.drain(..).partition(|t| t.seed == id);
            self.triggers = keep;
            gone
        };
        for t in removed {
            for s in &t.subjects {
                if let PollSubject::Rule(key) = s {
                    if let Some((rid, refs)) = self.rule_refs.get_mut(key) {
                        *refs -= 1;
                        if *refs == 0 {
                            let rid = *rid;
                            self.rule_refs.remove(key);
                            let _ = switch.tcam_mut().remove_rule(rid);
                        }
                    }
                }
            }
        }
        Ok(seed.snapshot())
    }

    /// Imports a migrated seed: deploy + state restore.
    ///
    /// # Errors
    ///
    /// See [`Soil::deploy`] and [`SeedInstance::restore`].
    pub fn import(
        &mut self,
        def: Arc<CompiledMachine>,
        task: &str,
        alloc: Resources,
        snapshot: &SeedSnapshot,
        now: Time,
        switch: &mut Switch,
    ) -> Result<SeedId, SoilError> {
        let (id, _) = self.deploy(def, task, alloc, now, switch)?;
        if let Err(e) = self.restore_seed(id, snapshot) {
            // Don't leave a half-imported seed deployed: roll the deploy
            // back so the caller can retry or cold-start cleanly.
            let _ = self.undeploy(id, switch);
            return Err(e);
        }
        Ok(id)
    }

    /// Restores a deployed seed's interpreter state from a snapshot
    /// (recovery after a crash: cold deploy first, then restore).
    ///
    /// # Errors
    ///
    /// Fails when the seed is unknown or the snapshot does not match the
    /// seed's machine; the seed keeps its current (cold) state then.
    pub fn restore_seed(&mut self, id: SeedId, snapshot: &SeedSnapshot) -> Result<(), SoilError> {
        self.seeds
            .get_mut(&id)
            .ok_or(SoilError::UnknownSeed(id))?
            .restore(snapshot)
            .map_err(|e| SoilError::Restore(e.to_string()))
    }

    /// Sheds seeds until the deployed set fits `budget`, dropping the
    /// highest [`SeedId`] (lowest priority: the most recently deployed)
    /// first. Each shed seed is undeployed with a snapshot and a
    /// structured [`SoilError::ResourcePressure`] reason so the control
    /// plane can re-place it — the tick itself never fails.
    pub fn shed_over_budget(
        &mut self,
        budget: Resources,
        now: Time,
        switch: &mut Switch,
    ) -> Vec<ShedSeed> {
        let mut shed = Vec::new();
        loop {
            let in_use = self.resources_in_use();
            let Some(kind) = ResourceKind::ALL
                .into_iter()
                .find(|k| in_use.get(*k) > budget.get(*k) + 1e-9)
            else {
                break;
            };
            let Some(victim) = self.seeds.keys().next_back().copied() else {
                break;
            };
            let task = self.tasks.get(&victim).cloned().unwrap_or_default();
            let reason = SoilError::ResourcePressure {
                resource: kind,
                demand: in_use.get(kind),
                budget: budget.get(kind),
            };
            if let Some(ins) = &self.instruments {
                ins.telemetry.counter("soil.seeds_shed").inc();
                let (switch_id, task, demand, budget_v) = (
                    self.switch_id.0,
                    task.clone(),
                    in_use.get(kind),
                    budget.get(kind),
                );
                ins.telemetry.emit_with(|| Event::SeedShed {
                    at_ns: now.as_nanos(),
                    switch: switch_id,
                    seed: victim.0,
                    task,
                    resource: pressure_resource(kind),
                    demand,
                    budget: budget_v,
                });
            }
            let Ok(snapshot) = self.undeploy_with_reason(victim, UndeployReason::Shed, now, switch)
            else {
                break;
            };
            shed.push(ShedSeed {
                seed: victim,
                task,
                snapshot,
                reason,
            });
        }
        shed
    }

    /// Aggregate ASIC statistics-polling rate across all deployed seeds,
    /// in polls per second — the load the PCIe bus must sustain, in the
    /// same unit as the [`ResourceKind::PciePoll`] capacity.
    pub fn poll_rate_per_sec(&self) -> f64 {
        self.triggers
            .iter()
            .filter(|t| t.kind == TriggerType::Poll)
            .map(|t| {
                let s = t.ival.as_secs_f64();
                if s > 0.0 {
                    1.0 / s
                } else {
                    0.0
                }
            })
            .sum()
    }

    /// Sheds lowest-priority seeds while the aggregate polling rate
    /// exceeds `polls_per_sec`. This is the degraded-PCIe companion of
    /// [`Soil::shed_over_budget`]: it budgets the *polling rate* in
    /// polls/second (the unit of [`ResourceKind::PciePoll`] capacities)
    /// rather than granted allocations, so a degraded bus sheds exactly
    /// the seeds whose polling it can no longer carry.
    pub fn shed_over_poll_budget(
        &mut self,
        polls_per_sec: f64,
        now: Time,
        switch: &mut Switch,
    ) -> Vec<ShedSeed> {
        let mut shed = Vec::new();
        loop {
            let rate = self.poll_rate_per_sec();
            if rate <= polls_per_sec + 1e-9 {
                break;
            }
            let Some(victim) = self.seeds.keys().next_back().copied() else {
                break;
            };
            let task = self.tasks.get(&victim).cloned().unwrap_or_default();
            let reason = SoilError::ResourcePressure {
                resource: ResourceKind::PciePoll,
                demand: rate,
                budget: polls_per_sec,
            };
            if let Some(ins) = &self.instruments {
                ins.telemetry.counter("soil.seeds_shed").inc();
                let (switch_id, task) = (self.switch_id.0, task.clone());
                ins.telemetry.emit_with(|| Event::SeedShed {
                    at_ns: now.as_nanos(),
                    switch: switch_id,
                    seed: victim.0,
                    task,
                    resource: pressure_resource(ResourceKind::PciePoll),
                    demand: rate,
                    budget: polls_per_sec,
                });
            }
            let Ok(snapshot) = self.undeploy_with_reason(victim, UndeployReason::Shed, now, switch)
            else {
                break;
            };
            shed.push(ShedSeed {
                seed: victim,
                task,
                snapshot,
                reason,
            });
        }
        shed
    }

    /// Changes a seed's allocation (the seeder's `realloc`), recomputing
    /// trigger intervals and delivering the `realloc` event.
    ///
    /// # Errors
    ///
    /// Fails when the seed is unknown or the new allocation yields a
    /// non-positive trigger interval.
    pub fn realloc(
        &mut self,
        id: SeedId,
        alloc: Resources,
        now: Time,
        switch: &mut Switch,
    ) -> Result<TickReport, SoilError> {
        let seed = self.seeds.get_mut(&id).ok_or(SoilError::UnknownSeed(id))?;
        seed.set_allocated(alloc);
        let def = seed.def().clone();
        for t in self.triggers.iter_mut().filter(|t| t.seed == id) {
            if let Some(analysis) = def.triggers.iter().find(|a| a.name == t.name) {
                let ival_ms = analysis.ival.eval(&alloc);
                if !ival_ms.is_finite() || ival_ms <= 0.0 {
                    return Err(SoilError::BadTriggerInterval {
                        trigger: t.name.clone(),
                        interval_ms: ival_ms,
                        context: "after realloc".to_string(),
                    });
                }
                t.ival = Dur::from_secs_f64(ival_ms / 1000.0);
                t.next_due = now + t.ival;
            }
        }
        let report = self.deliver(id, &SeedEvent::Realloc, now, switch, Dur::ZERO);
        Ok(report)
    }

    /// Current polling interval of a seed's trigger (ms), if scheduled.
    pub fn trigger_interval_ms(&self, id: SeedId, name: &str) -> Option<f64> {
        self.triggers
            .iter()
            .find(|t| t.seed == id && t.name == name)
            .map(|t| t.ival.as_secs_f64() * 1000.0)
    }

    /// Advances the trigger scheduler to `to`, firing every due poll and
    /// timer (aggregating identical poll subjects when enabled).
    pub fn advance(&mut self, to: Time, switch: &mut Switch) -> TickReport {
        let mut report = TickReport::default();
        while let Some(due) = self
            .triggers
            .iter()
            .filter(|t| t.kind != TriggerType::Probe)
            .map(|t| t.next_due)
            .min()
        {
            if due > to {
                break;
            }
            let due_idx: Vec<usize> = self
                .triggers
                .iter()
                .enumerate()
                .filter(|(_, t)| t.kind != TriggerType::Probe && t.next_due <= due)
                .map(|(i, _)| i)
                .collect();
            // Context-switch pressure of this scheduling round.
            switch.cpu_mut().schedule_round(due_idx.len() as u64);
            let step = self.fire_round(&due_idx, due, switch);
            report.merge(step);
        }
        self.stats.deliveries += report.deliveries;
        self.stats.asic_polls += report.asic_polls;
        self.stats.polls_saved += report.polls_saved;
        self.stats.messages_out += report.messages.len() as u64;
        report
    }

    /// Earliest pending (poll/time) trigger deadline.
    pub fn next_deadline(&self) -> Option<Time> {
        self.triggers
            .iter()
            .filter(|t| t.kind != TriggerType::Probe)
            .map(|t| t.next_due)
            .min()
    }

    fn fire_round(&mut self, due_idx: &[usize], now: Time, switch: &mut Switch) -> TickReport {
        let mut report = TickReport::default();
        // Group due polls by subject key for aggregation.
        let mut poll_groups: HashMap<String, Vec<usize>> = HashMap::new();
        let mut timers: Vec<usize> = Vec::new();
        for &i in due_idx {
            let t = &self.triggers[i];
            match t.kind {
                TriggerType::Poll => {
                    let key = format!("{:?}", t.subjects);
                    poll_groups.entry(key).or_default().push(i);
                }
                TriggerType::Time => timers.push(i),
                TriggerType::Probe => {}
            }
        }
        for (_, group) in poll_groups {
            let subjects = self.triggers[group[0]].subjects.clone();
            if self.config.aggregation {
                let (entries, latency) = self.poll_subjects(&subjects, switch);
                report.asic_polls += 1;
                report.polls_saved += group.len() as u64 - 1;
                self.observe_poll(self.triggers[group[0]].seed, entries.len(), latency, now);
                if group.len() > 1 {
                    if let Some(ins) = &self.instruments {
                        ins.polls_saved.add(group.len() as u64 - 1);
                        let (switch_id, group_len) = (self.switch_id.0, group.len() as u64);
                        ins.telemetry.emit_with(|| Event::PollAggregated {
                            at_ns: now.as_nanos(),
                            switch: switch_id,
                            group: group_len,
                            saved: group_len - 1,
                        });
                    }
                }
                for &i in &group {
                    let aggregated = group.len() > 1;
                    let step = self.fire_poll(i, now, entries.clone(), latency, aggregated, switch);
                    report.merge(step);
                }
            } else {
                for &i in &group {
                    let (entries, latency) = self.poll_subjects(&subjects, switch);
                    report.asic_polls += 1;
                    self.observe_poll(self.triggers[i].seed, entries.len(), latency, now);
                    let step = self.fire_poll(i, now, entries, latency, false, switch);
                    report.merge(step);
                }
            }
        }
        for i in timers {
            let t = &mut self.triggers[i];
            t.tick += 1;
            let (seed, name, tick, ival) = (t.seed, t.name.clone(), t.tick, t.ival);
            t.next_due = advance_deadline(t.next_due, ival, now);
            let step = self.deliver(
                seed,
                &SeedEvent::Trigger {
                    name,
                    payload: Value::Int(tick as i64),
                },
                now,
                switch,
                Dur::ZERO,
            );
            report.merge(step);
        }
        report
    }

    /// Records one actual ASIC poll into the instruments.
    fn observe_poll(&self, seed: SeedId, subjects: usize, latency: Dur, now: Time) {
        let Some(ins) = &self.instruments else {
            return;
        };
        ins.asic_polls.inc();
        ins.poll_latency_us.record(latency.as_nanos() / 1_000);
        let switch_id = self.switch_id.0;
        ins.telemetry.emit_with(|| Event::PollIssued {
            at_ns: now.as_nanos(),
            switch: switch_id,
            seed: seed.0,
            subjects: subjects as u64,
            latency_ns: latency.as_nanos(),
        });
    }

    fn fire_poll(
        &mut self,
        idx: usize,
        now: Time,
        entries: Vec<StatEntry>,
        poll_latency: Dur,
        aggregated: bool,
        switch: &mut Switch,
    ) -> TickReport {
        if aggregated {
            switch
                .cpu_mut()
                .charge_cycles(self.config.comm.aggregation_cpu_cycles());
        }
        let t = &mut self.triggers[idx];
        let (seed, name, ival) = (t.seed, t.name.clone(), t.ival);
        t.next_due = advance_deadline(t.next_due, ival, now);
        // Convert cumulative counters into per-interval deltas against
        // this trigger's own baseline (the first poll delivers absolute
        // values; each trigger keeps its own view under aggregation).
        let deltas: Vec<StatEntry> = entries
            .into_iter()
            .map(|e| {
                let cur = [e.tx_bytes, e.rx_bytes, e.tx_packets, e.rx_packets];
                let prev = t.baseline.insert(e.subject.clone(), cur).unwrap_or([0; 4]);
                StatEntry {
                    subject: e.subject,
                    tx_bytes: cur[0].saturating_sub(prev[0]),
                    rx_bytes: cur[1].saturating_sub(prev[1]),
                    tx_packets: cur[2].saturating_sub(prev[2]),
                    rx_packets: cur[3].saturating_sub(prev[3]),
                }
            })
            .collect();
        self.deliver(
            seed,
            &SeedEvent::Trigger {
                name,
                payload: stats_payload(deltas),
            },
            now,
            switch,
            poll_latency,
        )
    }

    fn poll_subjects(
        &self,
        subjects: &[PollSubject],
        switch: &mut Switch,
    ) -> (Vec<StatEntry>, Dur) {
        let mut entries = Vec::new();
        let mut latency = Dur::ZERO;
        for s in subjects {
            match s {
                PollSubject::AllPorts => {
                    let (stats, l) = switch.poll_ports(PortSel::Any);
                    latency = latency.max(l);
                    entries.extend(stats.into_iter().map(|ps| StatEntry {
                        subject: StatSubject::Port(ps.port.0),
                        tx_bytes: ps.counters.tx_bytes,
                        rx_bytes: ps.counters.rx_bytes,
                        tx_packets: ps.counters.tx_packets,
                        rx_packets: ps.counters.rx_packets,
                    }));
                }
                PollSubject::Port(p) => {
                    let (stats, l) = switch.poll_ports(PortSel::Id(*p));
                    latency = latency.max(l);
                    entries.extend(stats.into_iter().map(|ps| StatEntry {
                        subject: StatSubject::Port(ps.port.0),
                        tx_bytes: ps.counters.tx_bytes,
                        rx_bytes: ps.counters.rx_bytes,
                        tx_packets: ps.counters.tx_packets,
                        rx_packets: ps.counters.rx_packets,
                    }));
                }
                PollSubject::Rule(key) => {
                    if let Some((rid, _)) = self.rule_refs.get(key) {
                        let stats = switch.tcam().stats(*rid).unwrap_or_default();
                        let l = switch
                            .pcie_mut()
                            .request(farm_netsim::switch::POLL_STAT_BYTES);
                        latency = latency.max(l);
                        entries.push(StatEntry {
                            subject: StatSubject::Rule(key.clone()),
                            tx_bytes: stats.bytes,
                            rx_bytes: 0,
                            tx_packets: stats.packets,
                            rx_packets: 0,
                        });
                    }
                }
            }
        }
        (entries, latency)
    }

    /// Offers sampled packets to probe triggers (rate-limited by each
    /// trigger's `.ival` lower bound). Charges PCIe for mirrored bytes.
    pub fn offer_packets(
        &mut self,
        packets: &[PacketRecord],
        now: Time,
        switch: &mut Switch,
    ) -> TickReport {
        let mut report = TickReport::default();
        for pkt in packets {
            let due: Vec<(usize, SeedId, String)> = self
                .triggers
                .iter()
                .enumerate()
                .filter(|(_, t)| {
                    t.kind == TriggerType::Probe
                        && t.next_due <= now
                        && t.what
                            .as_ref()
                            .map(|f| f.matches_flow(&pkt.flow))
                            .unwrap_or(true)
                })
                .map(|(i, t)| (i, t.seed, t.name.clone()))
                .collect();
            if due.is_empty() {
                continue;
            }
            // Mirroring one packet over PCIe, shared by all probes.
            let latency = switch.pcie_mut().request(pkt.len as u64);
            for (i, seed, name) in due {
                let ival = self.triggers[i].ival;
                self.triggers[i].next_due = now + ival;
                let step = self.deliver(
                    seed,
                    &SeedEvent::Trigger {
                        name,
                        payload: Value::Packet(*pkt),
                    },
                    now,
                    switch,
                    latency,
                );
                report.merge(step);
            }
        }
        self.stats.deliveries += report.deliveries;
        self.stats.messages_out += report.messages.len() as u64;
        report
    }

    /// Delivers a message from the harvester or another machine to every
    /// local seed of `machine`.
    pub fn deliver_to_machine(
        &mut self,
        machine: &str,
        from_machine: Option<&str>,
        value: &Value,
        now: Time,
        switch: &mut Switch,
    ) -> TickReport {
        let ids: Vec<SeedId> = self
            .seeds
            .values()
            .filter(|s| s.machine_name() == machine)
            .map(|s| s.id)
            .collect();
        let mut report = TickReport::default();
        for id in ids {
            let step = self.deliver(
                id,
                &SeedEvent::Recv {
                    from_machine: from_machine.map(str::to_string),
                    value: value.clone(),
                },
                now,
                switch,
                Dur::ZERO,
            );
            report.merge(step);
        }
        self.stats.deliveries += report.deliveries;
        self.stats.messages_out += report.messages.len() as u64;
        report
    }

    /// Records one seed runtime error into the instruments.
    fn observe_seed_error(&self, id: SeedId, err: &SeedError, now: Time) {
        let Some(ins) = &self.instruments else {
            return;
        };
        ins.seed_errors.inc();
        let switch_id = self.switch_id.0;
        ins.telemetry.emit_with(|| Event::SeedErrored {
            at_ns: now.as_nanos(),
            switch: switch_id,
            seed: id.0,
            message: err.to_string(),
        });
    }

    fn deliver(
        &mut self,
        id: SeedId,
        event: &SeedEvent,
        now: Time,
        switch: &mut Switch,
        base_latency: Dur,
    ) -> TickReport {
        let mut report = TickReport::default();
        let Some(seed) = self.seeds.get_mut(&id) else {
            return report;
        };
        let started = self.deployed_at.get(&id).copied().unwrap_or(Time::ZERO);
        let outcome = {
            let host = SwitchHost {
                resources: seed.allocated(),
                now_ms: now.since(started).as_millis() as i64,
                switch,
            };
            seed.handle(event, &host)
        };
        report.deliveries += 1;
        if let Some(ins) = &self.instruments {
            ins.deliveries.inc();
        }
        let machine = seed.machine_name().to_string();
        let task = self.tasks.get(&id).cloned().unwrap_or_default();
        match outcome {
            Err(e) => {
                self.observe_seed_error(id, &e, now);
                report.errors.push((id, e));
            }
            Ok(out) => {
                let compute = Dur::from_secs_f64(
                    (out.ops * self.config.cycles_per_op) as f64
                        / switch.cpu().spec().freq_hz as f64,
                );
                switch
                    .cpu_mut()
                    .charge_cycles(out.ops * self.config.cycles_per_op);
                switch
                    .cpu_mut()
                    .charge_cycles(self.config.comm.delivery_cpu_cycles());
                let channel_latency = self.config.comm.delivery_latency(self.seeds.len());
                for effect in out.effects {
                    match effect {
                        Effect::Send { to, value } => {
                            let bytes = value_bytes(&value);
                            if let Some(ins) = &self.instruments {
                                ins.messages_out.inc();
                                record_ipc_delivery(
                                    &ins.telemetry,
                                    self.switch_id.0,
                                    id.0,
                                    bytes,
                                    now.as_nanos(),
                                    channel_latency,
                                );
                            }
                            report.messages.push(OutboundMessage {
                                from_switch: self.switch_id,
                                from_seed: id,
                                from_machine: machine.clone(),
                                task: task.clone(),
                                to,
                                value,
                                at: now,
                                latency: base_latency + compute + channel_latency,
                                bytes,
                            });
                        }
                        Effect::AddRule(r) => {
                            if let Err(e) = switch.tcam_mut().add_rule(
                                TcamRegion::Monitoring,
                                10,
                                r.pattern,
                                to_rule_action(&r.action),
                            ) {
                                let err = SeedError(e.to_string());
                                self.observe_seed_error(id, &err, now);
                                report.errors.push((id, err));
                            }
                        }
                        Effect::RemoveRule(pattern) => {
                            // Removing a rule that is already gone is not
                            // an error for idempotent reactions.
                            let _ = switch.tcam_mut().remove_by_pattern(&pattern);
                        }
                        Effect::Exec { iterations, .. } => {
                            switch
                                .cpu_mut()
                                .charge_cycles(self.config.exec_cost_cycles * iterations as u64);
                            self.stats.exec_iterations += iterations as u64;
                        }
                    }
                }
            }
        }
        report
    }
}

/// Advances a periodic deadline past `now` without drift (catching up in
/// whole periods when the scheduler fell behind).
fn advance_deadline(due: Time, ival: Dur, now: Time) -> Time {
    let mut next = due + ival;
    if next <= now {
        let behind = now.since(next).as_nanos();
        let periods = behind / ival.as_nanos().max(1) + 1;
        next += Dur::from_nanos(periods * ival.as_nanos());
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use farm_almanac::analysis::ConstEnv;
    use farm_almanac::compile::{compile_machine, frontend};
    use farm_netsim::controller::SdnController;
    use farm_netsim::switch::SwitchModel;
    use farm_netsim::topology::Topology;
    use farm_netsim::types::{FlowKey, Ipv4, PortId};

    fn compile(src: &str, machine: &str) -> Arc<CompiledMachine> {
        let topo =
            Topology::spine_leaf(1, 2, SwitchModel::test_model(8), SwitchModel::test_model(8));
        let ctl = SdnController::new(&topo);
        let program = frontend(src).unwrap();
        Arc::new(compile_machine(&program, machine, &ConstEnv::new(), &ctl).unwrap())
    }

    fn rig() -> (Soil, Switch) {
        let soil = Soil::new(SwitchId(0), SoilConfig::default());
        let switch = Switch::new(SwitchId(0), SwitchModel::test_model(8));
        (soil, switch)
    }

    fn alloc() -> Resources {
        Resources::new(2.0, 512.0, 16.0, 10.0)
    }

    #[test]
    fn deploys_and_polls_hh_seed() {
        let (mut soil, mut switch) = rig();
        let def = compile(farm_almanac::programs::HEAVY_HITTER, "HH");
        let (id, _) = soil
            .deploy(def, "hh", alloc(), Time::ZERO, &mut switch)
            .unwrap();
        // ival = 10/PCIe ms = 1 ms at PCIe=10.
        assert!((soil.trigger_interval_ms(id, "pollStats").unwrap() - 1.0).abs() < 1e-9);
        // Heavy traffic on port 2.
        let flow = FlowKey::tcp(Ipv4::new(10, 0, 0, 1), 1, Ipv4::new(10, 1, 0, 1), 80);
        switch.record_traffic(&flow, None, Some(PortId(2)), 5_000_000, 3000);
        let report = soil.advance(Time::from_millis(2), &mut switch);
        assert!(report.asic_polls >= 1);
        assert_eq!(report.errors, vec![]);
        let msgs: Vec<_> = report
            .messages
            .iter()
            .filter(|m| m.to == Endpoint::Harvester)
            .collect();
        assert!(!msgs.is_empty(), "HH must report to its harvester");
        // The local reaction installed a monitoring rule for port 2.
        assert!(switch
            .tcam()
            .rules()
            .iter()
            .any(|r| r.region == TcamRegion::Monitoring && r.priority == 10));
    }

    #[test]
    fn aggregation_shares_asic_polls() {
        let (mut soil, mut switch) = rig();
        let def = compile(farm_almanac::programs::HEAVY_HITTER, "HH");
        for _ in 0..4 {
            soil.deploy(def.clone(), "hh", alloc(), Time::ZERO, &mut switch)
                .unwrap();
        }
        let report = soil.advance(Time::from_millis(1), &mut switch);
        // Four seeds share one AllPorts subject: 1 ASIC poll, 3 saved.
        assert_eq!(report.asic_polls, 1);
        assert_eq!(report.polls_saved, 3);
        assert_eq!(report.deliveries, 4);
    }

    #[test]
    fn no_aggregation_polls_per_seed() {
        let cfg = SoilConfig {
            aggregation: false,
            ..SoilConfig::default()
        };
        let mut soil = Soil::new(SwitchId(0), cfg);
        let mut switch = Switch::new(SwitchId(0), SwitchModel::test_model(8));
        let def = compile(farm_almanac::programs::HEAVY_HITTER, "HH");
        for _ in 0..4 {
            soil.deploy(def.clone(), "hh", alloc(), Time::ZERO, &mut switch)
                .unwrap();
        }
        let report = soil.advance(Time::from_millis(1), &mut switch);
        assert_eq!(report.asic_polls, 4);
        assert_eq!(report.polls_saved, 0);
    }

    #[test]
    fn rule_subjects_install_refcounted_tcam_rules() {
        let (mut soil, mut switch) = rig();
        let def = compile(farm_almanac::programs::DDOS, "DDoS");
        let before = switch.tcam().region_used(TcamRegion::Monitoring);
        let (a, _) = soil
            .deploy(def.clone(), "ddos", alloc(), Time::ZERO, &mut switch)
            .unwrap();
        let (b, _) = soil
            .deploy(def, "ddos", alloc(), Time::ZERO, &mut switch)
            .unwrap();
        // One shared Count rule despite two seeds.
        assert_eq!(
            switch.tcam().region_used(TcamRegion::Monitoring),
            before + 1
        );
        soil.undeploy(a, &mut switch).unwrap();
        assert_eq!(
            switch.tcam().region_used(TcamRegion::Monitoring),
            before + 1
        );
        soil.undeploy(b, &mut switch).unwrap();
        assert_eq!(switch.tcam().region_used(TcamRegion::Monitoring), before);
    }

    #[test]
    fn failed_deploy_rolls_back_claimed_refcounts() {
        // A switch whose monitoring region holds exactly one rule.
        let model = SwitchModel {
            tcam_capacity: 8,
            tcam_monitoring_reserve: 1,
            ..SwitchModel::test_model(8)
        };
        let mut switch = Switch::new(SwitchId(0), model);
        let mut soil = Soil::new(SwitchId(0), SoilConfig::default());

        // Seed A installs the single rule the region can hold.
        let one = compile(
            r#"machine One {
                 place any;
                 poll p = Poll { .ival = 10, .what = dstIP "10.0.1.0/24" };
                 state s { }
               }"#,
            "One",
        );
        let (a, _) = soil
            .deploy(one, "one", alloc(), Time::ZERO, &mut switch)
            .unwrap();
        assert_eq!(switch.tcam().region_used(TcamRegion::Monitoring), 1);

        // Seed B shares A's rule (refcount claim) but also needs a second
        // rule the full region rejects — the whole deploy must fail AND
        // release the claimed refcount.
        let two = compile(
            r#"machine Two {
                 place any;
                 poll p = Poll { .ival = 10, .what = dstIP "10.0.1.0/24" };
                 poll q = Poll { .ival = 10, .what = dstIP "10.0.2.0/24" };
                 state s { }
               }"#,
            "Two",
        );
        let err = soil
            .deploy(two, "two", alloc(), Time::ZERO, &mut switch)
            .unwrap_err();
        assert!(matches!(err, SoilError::TcamInstall(_)), "{err}");
        assert_eq!(soil.num_seeds(), 1);

        // Regression: undeploying A must now drop the shared rule to
        // zero refs and free the TCAM entry. With the leak, B's claimed
        // refcount kept the entry installed forever.
        soil.undeploy(a, &mut switch).unwrap();
        assert_eq!(switch.tcam().region_used(TcamRegion::Monitoring), 0);
    }

    #[test]
    fn import_restore_failure_rolls_back_the_deploy() {
        let (mut soil, mut switch) = rig();
        let def = compile(farm_almanac::programs::HEAVY_HITTER, "HH");
        let bogus = SeedSnapshot {
            machine: "NotHH".to_string(),
            state: "nope".to_string(),
            vars: vec![],
        };
        let before = switch.tcam().region_used(TcamRegion::Monitoring);
        let err = soil
            .import(def, "hh", alloc(), &bogus, Time::ZERO, &mut switch)
            .unwrap_err();
        assert!(matches!(err, SoilError::Restore(_)), "{err}");
        // The half-imported seed is gone and the TCAM is clean.
        assert_eq!(soil.num_seeds(), 0);
        assert_eq!(switch.tcam().region_used(TcamRegion::Monitoring), before);
    }

    #[test]
    fn shedding_drops_lowest_priority_seeds_with_reason() {
        let (mut soil, mut switch) = rig();
        let def = compile(farm_almanac::programs::HEAVY_HITTER, "HH");
        let mut ids = Vec::new();
        for _ in 0..3 {
            let (id, _) = soil
                .deploy(def.clone(), "hh", alloc(), Time::ZERO, &mut switch)
                .unwrap();
            ids.push(id);
        }
        // Three seeds use 30 PCIe polls; a degraded budget of 12 keeps
        // exactly one.
        let budget = Resources::new(100.0, 10_000.0, 64.0, 12.0);
        let shed = soil.shed_over_budget(budget, Time::from_millis(1), &mut switch);
        assert_eq!(shed.len(), 2);
        // Highest SeedId (lowest priority) goes first.
        assert_eq!(shed[0].seed, ids[2]);
        assert_eq!(shed[1].seed, ids[1]);
        assert!(matches!(
            shed[0].reason,
            SoilError::ResourcePressure {
                resource: ResourceKind::PciePoll,
                ..
            }
        ));
        assert_eq!(soil.num_seeds(), 1);
        assert!(soil.seed(ids[0]).is_some());
        // The fit now holds; shedding again is a no-op.
        assert!(soil
            .shed_over_budget(budget, Time::from_millis(2), &mut switch)
            .is_empty());
        // Snapshots are restorable: re-import the shed seed elsewhere.
        let mut soil_b = Soil::new(SwitchId(1), SoilConfig::default());
        let mut switch_b = Switch::new(SwitchId(1), SwitchModel::test_model(8));
        soil_b
            .import(
                compile(farm_almanac::programs::HEAVY_HITTER, "HH"),
                "hh",
                alloc(),
                &shed[0].snapshot,
                Time::from_millis(2),
                &mut switch_b,
            )
            .unwrap();
    }

    #[test]
    fn probes_deliver_matching_packets_only() {
        let (mut soil, mut switch) = rig();
        let def = compile(farm_almanac::programs::SSH_BRUTE_FORCE, "SshBruteForce");
        let (id, _) = soil
            .deploy(def, "ssh", alloc(), Time::ZERO, &mut switch)
            .unwrap();
        let ssh_syn = PacketRecord {
            flow: FlowKey::tcp(Ipv4::new(9, 9, 9, 9), 1000, Ipv4::new(10, 1, 0, 1), 22),
            len: 64,
            syn: true,
            fin: false,
            ack: false,
        };
        let http = PacketRecord {
            flow: FlowKey::tcp(Ipv4::new(9, 9, 9, 9), 1000, Ipv4::new(10, 1, 0, 1), 80),
            len: 64,
            syn: true,
            fin: false,
            ack: false,
        };
        let report = soil.offer_packets(&[ssh_syn, http], Time::from_millis(10), &mut switch);
        assert_eq!(report.deliveries, 1, "only the port-22 packet matches");
        let seed = soil.seed(id).unwrap();
        let Some(Value::List(attempts)) = seed.var("attempts") else {
            panic!("attempts missing")
        };
        assert_eq!(attempts.len(), 1);
    }

    #[test]
    fn migration_snapshot_restores_on_another_soil() {
        let (mut soil_a, mut switch_a) = rig();
        let def = compile(farm_almanac::programs::HEAVY_HITTER, "HH");
        let (id, _) = soil_a
            .deploy(def.clone(), "hh", alloc(), Time::ZERO, &mut switch_a)
            .unwrap();
        // Harvester retunes the threshold on A.
        soil_a.deliver_to_machine("HH", None, &Value::Int(777), Time::ZERO, &mut switch_a);
        let snap = soil_a.undeploy(id, &mut switch_a).unwrap();

        let mut soil_b = Soil::new(SwitchId(1), SoilConfig::default());
        let mut switch_b = Switch::new(SwitchId(1), SwitchModel::test_model(8));
        let new_id = soil_b
            .import(
                def,
                "hh",
                alloc(),
                &snap,
                Time::from_millis(5),
                &mut switch_b,
            )
            .unwrap();
        assert_eq!(
            soil_b.seed(new_id).unwrap().var("threshold"),
            Some(&Value::Int(777))
        );
    }

    #[test]
    fn realloc_rescales_polling() {
        let (mut soil, mut switch) = rig();
        let def = compile(farm_almanac::programs::HEAVY_HITTER, "HH");
        let (id, _) = soil
            .deploy(def, "hh", alloc(), Time::ZERO, &mut switch)
            .unwrap();
        assert!((soil.trigger_interval_ms(id, "pollStats").unwrap() - 1.0).abs() < 1e-9);
        soil.realloc(
            id,
            Resources::new(2.0, 512.0, 16.0, 5.0),
            Time::from_millis(1),
            &mut switch,
        )
        .unwrap();
        assert!((soil.trigger_interval_ms(id, "pollStats").unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_pcie_allocation_is_rejected() {
        let (mut soil, mut switch) = rig();
        let def = compile(farm_almanac::programs::HEAVY_HITTER, "HH");
        let err = soil
            .deploy(
                def,
                "hh",
                Resources::new(1.0, 128.0, 4.0, 0.0),
                Time::ZERO,
                &mut switch,
            )
            .unwrap_err();
        assert!(matches!(err, SoilError::BadTriggerInterval { .. }), "{err}");
        assert!(err.to_string().contains("interval"), "{err}");
    }

    #[test]
    fn exec_charges_cpu() {
        let src = r#"
            machine Ml {
              place any;
              time tick = 1;
              state s { when (tick) do { exec("svr"); } }
            }
        "#;
        let (mut soil, mut switch) = rig();
        let def = compile(src, "Ml");
        soil.deploy(def, "ml", alloc(), Time::ZERO, &mut switch)
            .unwrap();
        switch.cpu_mut().reset();
        soil.advance(Time::from_millis(10), &mut switch);
        assert_eq!(soil.stats().exec_iterations, 10);
        let expected_exec_secs = 10.0 * SoilConfig::default().exec_cost_cycles as f64
            / switch.cpu().spec().freq_hz as f64;
        assert!(switch.cpu().busy().as_secs_f64() >= expected_exec_secs);
    }

    #[test]
    fn periodic_deadlines_do_not_drift() {
        assert_eq!(
            advance_deadline(
                Time::from_millis(5),
                Dur::from_millis(5),
                Time::from_millis(5)
            ),
            Time::from_millis(10)
        );
        // Fell behind: catch up in whole periods beyond `now`.
        let next = advance_deadline(
            Time::from_millis(5),
            Dur::from_millis(5),
            Time::from_millis(23),
        );
        assert!(next > Time::from_millis(23));
        assert_eq!(next.as_nanos() % Dur::from_millis(5).as_nanos(), 0);
    }
}
