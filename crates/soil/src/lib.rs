//! FARM's switch-local runtime: the seed interpreter and the soil layer.
//!
//! Seeds (§ II-B a of the ICDCS 2024 paper) are state-machine instances
//! compiled from Almanac; the [`interp`] module executes them, producing
//! effects (messages, TCAM mutations, `exec()` runs) plus an abstract CPU
//! cost. The [`soil`] module is the per-switch foundation layer: it
//! schedules poll/probe/time triggers on virtual time, **aggregates
//! identical poll subjects across seeds** so the PCIe bus is crossed once
//! (§ II-B b), applies local (re)actions to the monitoring TCAM region,
//! supports migration via state snapshots, and accounts CPU/PCIe costs on
//! the simulated switch. The [`channel`] module models the two seed
//! execution modes (threads/processes) and channels (shared buffer/gRPC)
//! of § VI-E, including a real shared-memory ring buffer.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use farm_almanac::analysis::ConstEnv;
//! use farm_almanac::compile::{compile_machine, frontend};
//! use farm_netsim::controller::SdnController;
//! use farm_netsim::switch::{Resources, Switch, SwitchModel};
//! use farm_netsim::time::Time;
//! use farm_netsim::topology::Topology;
//! use farm_netsim::types::SwitchId;
//! use farm_soil::soil::{Soil, SoilConfig};
//!
//! let topo = Topology::spine_leaf(1, 2,
//!     SwitchModel::accton_as7712(), SwitchModel::accton_as5712());
//! let ctl = SdnController::new(&topo);
//! let program = frontend(farm_almanac::programs::HEAVY_HITTER).unwrap();
//! let hh = Arc::new(compile_machine(&program, "HH", &ConstEnv::new(), &ctl).unwrap());
//!
//! let mut switch = Switch::new(SwitchId(0), SwitchModel::accton_as5712());
//! let mut soil = Soil::new(SwitchId(0), SoilConfig::default());
//! let alloc = Resources::new(1.0, 256.0, 8.0, 10.0);
//! let (seed, _) = soil.deploy(hh, "hh-task", alloc, Time::ZERO, &mut switch).unwrap();
//! let report = soil.advance(Time::from_millis(5), &mut switch);
//! assert!(report.asic_polls > 0);
//! assert!(soil.seed(seed).is_some());
//! ```

pub mod channel;
pub mod interp;
pub mod soil;

pub use channel::{record_ipc_delivery, ChannelKind, CommModel, ExecMode, SharedRingBuffer};
pub use interp::{Effect, Endpoint, SeedError, SeedEvent, SeedId, SeedInstance, SeedSnapshot};
pub use soil::{OutboundMessage, ShedSeed, Soil, SoilConfig, SoilError, SoilStats, TickReport};
