//! The seed virtual machine: executes compiled Almanac machines.
//!
//! Seeds are stateful, event-driven instances (§ II-B a of the paper).
//! The interpreter evaluates one event handler at a time, producing
//! [`Effect`]s (messages, TCAM mutations, external executions) that the
//! soil applies, plus an abstract CPU cost the soil charges to the switch
//! CPU meter. State transitions fire `exit`/`enter` handlers with a chain
//! cap so misbehaving seeds cannot livelock a switch.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use farm_almanac::analysis::consteval::binary_op;
use farm_almanac::ast::*;
use farm_almanac::compile::CompiledMachine;
use farm_almanac::value::{ActionValue, PacketRecord, RuleValue, StatEntry, StatSubject, Value};
use farm_netsim::switch::Resources;
use farm_netsim::types::{FilterAtom, FilterFormula, PortSel, Prefix, Proto, SwitchId};

/// Identifier of a deployed seed instance (unique per soil lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SeedId(pub u64);

impl fmt::Display for SeedId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed{}", self.0)
    }
}

/// Runtime failure inside a seed handler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedError(pub String);

impl fmt::Display for SeedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed runtime error: {}", self.0)
    }
}

impl std::error::Error for SeedError {}

/// Message destination.
#[derive(Debug, Clone, PartialEq)]
pub enum Endpoint {
    Harvester,
    /// A machine, optionally at a specific switch (broadcast if `None`).
    Machine {
        name: String,
        at: Option<SwitchId>,
    },
}

/// Side effect requested by a handler, applied by the soil.
#[derive(Debug, Clone, PartialEq)]
pub enum Effect {
    Send {
        to: Endpoint,
        value: Value,
    },
    AddRule(RuleValue),
    RemoveRule(FilterFormula),
    /// `exec(cmd)` / `exec_n(cmd, n)`: run external code `n` times.
    Exec {
        cmd: String,
        iterations: u32,
    },
}

/// Input event delivered to a seed.
#[derive(Debug, Clone, PartialEq)]
pub enum SeedEvent {
    Enter,
    Exit,
    Realloc,
    /// A trigger variable fired with its payload (poll → list of stats,
    /// probe → packet, time → tick count).
    Trigger {
        name: String,
        payload: Value,
    },
    /// A message arrived (from another machine or the harvester).
    Recv {
        from_machine: Option<String>,
        value: Value,
    },
}

/// Result of delivering one event.
#[derive(Debug, Clone, Default)]
pub struct Outcome {
    pub effects: Vec<Effect>,
    /// Abstract interpreter operations executed (converted to CPU cycles
    /// by the soil's cost model).
    pub ops: u64,
    /// Whether a state transition occurred.
    pub transitioned: bool,
}

/// Execution statistics of one seed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SeedStats {
    pub events_handled: u64,
    pub transitions: u64,
    pub messages_sent: u64,
    pub ops: u64,
}

/// Host services the interpreter needs from its soil.
pub trait SeedHost {
    /// Resources currently allocated to the seed (`res()`).
    fn resources(&self) -> Resources;
    /// Milliseconds since the seed started (`now()`).
    fn now_ms(&self) -> i64;
    /// Installed monitoring rule with the given pattern (`getTCAMRule`).
    fn get_rule(&self, pattern: &FilterFormula) -> Option<RuleValue>;
}

/// A fixed host for tests and detached execution.
#[derive(Debug, Clone, Default)]
pub struct FixedHost {
    pub resources: Resources,
    pub now_ms: i64,
    pub rules: Vec<RuleValue>,
}

impl SeedHost for FixedHost {
    fn resources(&self) -> Resources {
        self.resources
    }
    fn now_ms(&self) -> i64 {
        self.now_ms
    }
    fn get_rule(&self, pattern: &FilterFormula) -> Option<RuleValue> {
        self.rules.iter().find(|r| &r.pattern == pattern).cloned()
    }
}

/// Portable snapshot of a seed's mutable state (used for migration:
/// "transferring its state over from the source switch", § IV-B a).
#[derive(Debug, Clone, PartialEq)]
pub struct SeedSnapshot {
    pub machine: String,
    pub state: String,
    pub vars: Vec<(String, Value)>,
}

/// Maximum chained transitions per delivered event.
const MAX_TRANSIT_CHAIN: usize = 16;
/// Maximum loop iterations per handler (runaway protection).
const MAX_LOOP_ITERS: u64 = 1_000_000;
/// Maximum user-function call depth.
const MAX_CALL_DEPTH: usize = 64;

/// A live seed instance.
#[derive(Debug, Clone)]
pub struct SeedInstance {
    pub id: SeedId,
    def: Arc<CompiledMachine>,
    state: String,
    vars: HashMap<String, Value>,
    allocated: Resources,
    stats: SeedStats,
}

impl SeedInstance {
    /// Creates an instance in the machine's initial state with variables
    /// initialized from the compiled constants (externals included).
    /// The caller should deliver [`SeedEvent::Enter`] afterwards.
    pub fn new(id: SeedId, def: Arc<CompiledMachine>, allocated: Resources) -> SeedInstance {
        let mut vars = HashMap::new();
        for v in &def.machine.vars {
            if v.trigger().is_some() {
                continue;
            }
            let init = def
                .consts
                .get(&v.name)
                .cloned()
                .unwrap_or_else(|| default_value(v));
            vars.insert(v.name.clone(), init);
        }
        SeedInstance {
            id,
            state: def.initial_state.clone(),
            def,
            vars,
            allocated,
            stats: SeedStats::default(),
        }
    }

    /// The machine definition.
    pub fn def(&self) -> &CompiledMachine {
        &self.def
    }

    /// Machine name.
    pub fn machine_name(&self) -> &str {
        &self.def.machine.name
    }

    /// Current state name.
    pub fn state(&self) -> &str {
        &self.state
    }

    /// Current resource allocation.
    pub fn allocated(&self) -> Resources {
        self.allocated
    }

    /// Updates the allocation (the caller should deliver
    /// [`SeedEvent::Realloc`]).
    pub fn set_allocated(&mut self, r: Resources) {
        self.allocated = r;
    }

    /// Execution statistics.
    pub fn stats(&self) -> SeedStats {
        self.stats
    }

    /// Reads a machine variable (tests/harvesters).
    pub fn var(&self, name: &str) -> Option<&Value> {
        self.vars.get(name)
    }

    /// Captures the mutable state for migration.
    pub fn snapshot(&self) -> SeedSnapshot {
        let mut vars: Vec<(String, Value)> = self
            .vars
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        vars.sort_by(|a, b| a.0.cmp(&b.0));
        SeedSnapshot {
            machine: self.def.machine.name.clone(),
            state: self.state.clone(),
            vars,
        }
    }

    /// Restores mutable state from a snapshot (migration target side).
    ///
    /// # Errors
    ///
    /// Fails if the snapshot belongs to a different machine or names an
    /// unknown state.
    pub fn restore(&mut self, snap: &SeedSnapshot) -> Result<(), SeedError> {
        if snap.machine != self.def.machine.name {
            return Err(SeedError(format!(
                "snapshot of `{}` cannot restore into `{}`",
                snap.machine, self.def.machine.name
            )));
        }
        if self.def.machine.state(&snap.state).is_none() {
            return Err(SeedError(format!("unknown state `{}`", snap.state)));
        }
        self.state = snap.state.clone();
        for (k, v) in &snap.vars {
            self.vars.insert(k.clone(), v.clone());
        }
        Ok(())
    }

    /// Delivers an event, returning the effects and cost.
    ///
    /// # Errors
    ///
    /// Runtime errors (bad dynamic types, loop/recursion limits,
    /// transition livelock).
    pub fn handle(&mut self, event: &SeedEvent, host: &dyn SeedHost) -> Result<Outcome, SeedError> {
        let mut out = Outcome::default();
        self.stats.events_handled += 1;
        self.dispatch(event, host, &mut out, 0)?;
        self.stats.ops += out.ops;
        self.stats.messages_sent += out
            .effects
            .iter()
            .filter(|e| matches!(e, Effect::Send { .. }))
            .count() as u64;
        Ok(out)
    }

    fn dispatch(
        &mut self,
        event: &SeedEvent,
        host: &dyn SeedHost,
        out: &mut Outcome,
        chain: usize,
    ) -> Result<(), SeedError> {
        if chain > MAX_TRANSIT_CHAIN {
            return Err(SeedError("transition chain exceeded limit".into()));
        }
        let Some(handler) = self.find_handler(event) else {
            return Ok(()); // no handler in this state: event is dropped
        };
        let mut interp = Interp {
            seed: self,
            host,
            out,
            depth: 0,
        };
        let mut scope = Scope::new();
        bind_event(&handler.trigger, event, &mut scope);
        let flow = interp.run_block(&handler.actions, &mut scope)?;
        if let Flow::Transit(next) = flow {
            self.transition(&next, host, out, chain)?;
        }
        Ok(())
    }

    fn transition(
        &mut self,
        next: &str,
        host: &dyn SeedHost,
        out: &mut Outcome,
        chain: usize,
    ) -> Result<(), SeedError> {
        out.transitioned = true;
        self.stats.transitions += 1;
        self.dispatch(&SeedEvent::Exit, host, out, chain + 1)?;
        self.state = next.to_string();
        self.dispatch(&SeedEvent::Enter, host, out, chain + 1)?;
        Ok(())
    }

    /// State handlers take precedence over machine-level handlers with
    /// the same trigger shape (§ III-A b: "with the possibility of
    /// overriding such global definitions").
    fn find_handler(&self, event: &SeedEvent) -> Option<EventDecl> {
        let state = self.def.machine.state(&self.state)?;
        state
            .events
            .iter()
            .chain(self.def.machine.events.iter())
            .find(|ev| trigger_matches(&ev.trigger, event))
            .cloned()
    }
}

fn default_value(v: &VarDecl) -> Value {
    match v.kind {
        DeclKind::Plain(t) => match t {
            Type::Bool => Value::Bool(false),
            Type::Int | Type::Long => Value::Int(0),
            Type::Float => Value::Float(0.0),
            Type::Str => Value::Str(String::new()),
            Type::List => Value::List(Vec::new()),
            Type::Filter => Value::Filter(FilterFormula::True),
            Type::Action => Value::Action(ActionValue::Count),
            _ => Value::Unit,
        },
        DeclKind::Trigger(_) => Value::Unit,
    }
}

fn trigger_matches(decl: &Trigger, event: &SeedEvent) -> bool {
    match (decl, event) {
        (Trigger::Enter, SeedEvent::Enter) => true,
        (Trigger::Exit, SeedEvent::Exit) => true,
        (Trigger::Realloc, SeedEvent::Realloc) => true,
        (Trigger::Var { name, .. }, SeedEvent::Trigger { name: n, .. }) => name == n,
        (
            Trigger::Recv { ty, from, .. },
            SeedEvent::Recv {
                from_machine,
                value,
            },
        ) => {
            let source_ok = match (from, from_machine) {
                (MsgEndpoint::Harvester, None) => true,
                (MsgEndpoint::Machine { name, .. }, Some(m)) => name == m,
                _ => false,
            };
            source_ok && value_has_type(value, *ty)
        }
        _ => false,
    }
}

fn value_has_type(v: &Value, t: Type) -> bool {
    match t {
        Type::Any => true,
        Type::Bool => matches!(v, Value::Bool(_)),
        Type::Int | Type::Long => matches!(v, Value::Int(_)),
        Type::Float => matches!(v, Value::Float(_) | Value::Int(_)),
        Type::Str => matches!(v, Value::Str(_)),
        Type::List => matches!(v, Value::List(_)),
        Type::Packet => matches!(v, Value::Packet(_)),
        Type::Action => matches!(v, Value::Action(_)),
        Type::Filter => matches!(v, Value::Filter(_)),
        Type::Rule => matches!(v, Value::Rule(_)),
        Type::Resources => matches!(v, Value::Resources(_)),
        Type::Stat => matches!(v, Value::Stat(_)),
    }
}

fn bind_event(decl: &Trigger, event: &SeedEvent, scope: &mut Scope) {
    match (decl, event) {
        (Trigger::Var { bind: Some(b), .. }, SeedEvent::Trigger { payload, .. }) => {
            scope.declare(b.clone(), payload.clone());
        }
        (Trigger::Recv { bind, .. }, SeedEvent::Recv { value, .. }) => {
            scope.declare(bind.clone(), value.clone());
        }
        _ => {}
    }
}

/// Lexical scopes for handler execution (machine vars live in the seed).
#[derive(Debug, Default)]
struct Scope {
    frames: Vec<HashMap<String, Value>>,
}

impl Scope {
    fn new() -> Scope {
        Scope {
            frames: vec![HashMap::new()],
        }
    }

    fn push(&mut self) {
        self.frames.push(HashMap::new());
    }

    fn pop(&mut self) {
        self.frames.pop();
    }

    fn declare(&mut self, name: String, v: Value) {
        self.frames
            .last_mut()
            .expect("scope stack never empty")
            .insert(name, v);
    }

    fn get(&self, name: &str) -> Option<&Value> {
        self.frames.iter().rev().find_map(|f| f.get(name))
    }

    fn set(&mut self, name: &str, v: Value) -> bool {
        for f in self.frames.iter_mut().rev() {
            if let Some(slot) = f.get_mut(name) {
                *slot = v;
                return true;
            }
        }
        false
    }
}

/// Control flow result of running a block.
enum Flow {
    Normal,
    Return(Value),
    Transit(String),
}

struct Interp<'a> {
    seed: &'a mut SeedInstance,
    host: &'a dyn SeedHost,
    out: &'a mut Outcome,
    depth: usize,
}

impl Interp<'_> {
    fn charge(&mut self, ops: u64) {
        self.out.ops += ops;
    }

    fn run_block(&mut self, actions: &[Action], scope: &mut Scope) -> Result<Flow, SeedError> {
        scope.push();
        let flow = self.run_block_inner(actions, scope);
        scope.pop();
        flow
    }

    fn run_block_inner(
        &mut self,
        actions: &[Action],
        scope: &mut Scope,
    ) -> Result<Flow, SeedError> {
        for a in actions {
            self.charge(2);
            match a {
                Action::Local(v) => {
                    let val = match &v.init {
                        Some(e) => self.eval(e, scope)?,
                        None => default_value(v),
                    };
                    scope.declare(v.name.clone(), val);
                }
                Action::Assign {
                    target,
                    field,
                    value,
                    ..
                } => {
                    let val = self.eval(value, scope)?;
                    if field.is_some() {
                        // Trigger reconfiguration (`p.ival = …`) is applied
                        // by the soil, which recomputes schedules from the
                        // analysis; at the VM level it is a no-op on vars.
                        continue;
                    }
                    if !scope.set(target, val.clone()) {
                        match self.seed.vars.get_mut(target) {
                            Some(slot) => *slot = val,
                            None => {
                                return Err(SeedError(format!(
                                    "assignment to unknown variable `{target}`"
                                )))
                            }
                        }
                    }
                }
                Action::Transit { state, .. } => return Ok(Flow::Transit(state.clone())),
                Action::If {
                    cond,
                    then_branch,
                    else_branch,
                    ..
                } => {
                    let c = self
                        .eval(cond, scope)?
                        .as_bool()
                        .ok_or_else(|| SeedError("if condition is not a bool".into()))?;
                    let flow = if c {
                        self.run_block(then_branch, scope)?
                    } else {
                        self.run_block(else_branch, scope)?
                    };
                    if !matches!(flow, Flow::Normal) {
                        return Ok(flow);
                    }
                }
                Action::While { cond, body, .. } => {
                    let mut iters = 0u64;
                    loop {
                        let c = self
                            .eval(cond, scope)?
                            .as_bool()
                            .ok_or_else(|| SeedError("while condition is not a bool".into()))?;
                        if !c {
                            break;
                        }
                        iters += 1;
                        if iters > MAX_LOOP_ITERS {
                            return Err(SeedError("loop iteration limit exceeded".into()));
                        }
                        let flow = self.run_block(body, scope)?;
                        if !matches!(flow, Flow::Normal) {
                            return Ok(flow);
                        }
                    }
                }
                Action::Return { value, .. } => {
                    let v = match value {
                        Some(e) => self.eval(e, scope)?,
                        None => Value::Unit,
                    };
                    return Ok(Flow::Return(v));
                }
                Action::Send { value, to, .. } => {
                    let v = self.eval(value, scope)?;
                    let endpoint = match to {
                        MsgEndpoint::Harvester => Endpoint::Harvester,
                        MsgEndpoint::Machine { name, at } => {
                            let at = match at {
                                None => None,
                                Some(e) => {
                                    let id = self.eval(e, scope)?.as_int().ok_or_else(|| {
                                        SeedError("@destination is not an integer".into())
                                    })?;
                                    Some(SwitchId(id as u32))
                                }
                            };
                            Endpoint::Machine {
                                name: name.clone(),
                                at,
                            }
                        }
                    };
                    self.out.effects.push(Effect::Send {
                        to: endpoint,
                        value: v,
                    });
                }
                Action::ExprStmt { expr, .. } => {
                    self.eval(expr, scope)?;
                }
            }
        }
        Ok(Flow::Normal)
    }

    fn eval(&mut self, e: &Expr, scope: &mut Scope) -> Result<Value, SeedError> {
        self.charge(1);
        match e {
            Expr::Lit(l, _) => Ok(match l {
                Literal::Bool(b) => Value::Bool(*b),
                Literal::Int(i) => Value::Int(*i),
                Literal::Float(f) => Value::Float(*f),
                Literal::Str(s) => Value::Str(s.clone()),
            }),
            Expr::Var(name, _) => scope
                .get(name)
                .or_else(|| self.seed.vars.get(name))
                .cloned()
                .ok_or_else(|| SeedError(format!("unknown variable `{name}`"))),
            Expr::Filter(f, _) => self.eval_filter(f, scope),
            Expr::Unary(op, inner, _) => {
                let v = self.eval(inner, scope)?;
                match op {
                    UnOp::Not => match v {
                        Value::Bool(b) => Ok(Value::Bool(!b)),
                        Value::Filter(f) => Ok(Value::Filter(f.not())),
                        other => Err(SeedError(format!("`not` on {}", other.type_name()))),
                    },
                    UnOp::Neg => match v {
                        Value::Int(i) => Ok(Value::Int(-i)),
                        Value::Float(f) => Ok(Value::Float(-f)),
                        other => Err(SeedError(format!("negation of {}", other.type_name()))),
                    },
                }
            }
            Expr::Binary(op, a, b, _) => {
                // Short-circuit booleans.
                if matches!(op, BinOp::And | BinOp::Or) {
                    let va = self.eval(a, scope)?;
                    if let Value::Bool(ba) = va {
                        if (*op == BinOp::And && !ba) || (*op == BinOp::Or && ba) {
                            return Ok(Value::Bool(ba));
                        }
                        let vb = self.eval(b, scope)?;
                        return binary_op(*op, Value::Bool(ba), vb).map_err(SeedError);
                    }
                    let vb = self.eval(b, scope)?;
                    return binary_op(*op, va, vb).map_err(SeedError);
                }
                let va = self.eval(a, scope)?;
                let vb = self.eval(b, scope)?;
                binary_op(*op, va, vb).map_err(SeedError)
            }
            Expr::Field(base, field, _) => {
                let v = self.eval(base, scope)?;
                match (&v, field.as_str()) {
                    (Value::Resources(r), f) => {
                        let kind = farm_netsim::switch::ResourceKind::from_field_name(f)
                            .ok_or_else(|| SeedError(format!("unknown resource field {f}")))?;
                        Ok(Value::Float(r.get(kind)))
                    }
                    (other, f) => Err(SeedError(format!(
                        "no field `.{f}` on {}",
                        other.type_name()
                    ))),
                }
            }
            Expr::StructLit { name, fields, .. } => {
                if name == "Rule" {
                    let mut pattern = None;
                    let mut action = None;
                    for (fname, fexpr) in fields {
                        let v = self.eval(fexpr, scope)?;
                        match (fname.as_str(), v) {
                            ("pattern", Value::Filter(f)) => pattern = Some(f),
                            ("act", Value::Action(a)) => action = Some(a),
                            (f, other) => {
                                return Err(SeedError(format!(
                                    "bad Rule field .{f} = {}",
                                    other.type_name()
                                )))
                            }
                        }
                    }
                    return Ok(Value::Rule(RuleValue {
                        pattern: pattern
                            .ok_or_else(|| SeedError("Rule without .pattern".into()))?,
                        action: action.ok_or_else(|| SeedError("Rule without .act".into()))?,
                    }));
                }
                // Poll/Probe literals are handled by the soil's scheduler.
                Ok(Value::Unit)
            }
            Expr::Call { name, args, .. } => self.call(name, args, scope),
        }
    }

    fn eval_filter(&mut self, f: &FilterExpr, scope: &mut Scope) -> Result<Value, SeedError> {
        let atom = match f {
            FilterExpr::SrcIp(e) => FilterAtom::SrcIp(self.eval_prefix(e, scope)?),
            FilterExpr::DstIp(e) => FilterAtom::DstIp(self.eval_prefix(e, scope)?),
            FilterExpr::SrcPort(e) => FilterAtom::SrcPort(self.eval_port(e, scope)?),
            FilterExpr::DstPort(e) => FilterAtom::DstPort(self.eval_port(e, scope)?),
            FilterExpr::IfPort(e) => FilterAtom::IfPort(PortSel::Id(self.eval_port(e, scope)?)),
            FilterExpr::IfPortAny => FilterAtom::IfPort(PortSel::Any),
            FilterExpr::Proto(e) => {
                let v = self.eval(e, scope)?;
                let p = match v.as_str() {
                    Some("tcp") => Proto::Tcp,
                    Some("udp") => Proto::Udp,
                    Some("icmp") => Proto::Icmp,
                    _ => return Err(SeedError(format!("bad protocol {v}"))),
                };
                FilterAtom::Proto(p)
            }
        };
        Ok(Value::Filter(FilterFormula::Atom(atom)))
    }

    fn eval_prefix(&mut self, e: &Expr, scope: &mut Scope) -> Result<Prefix, SeedError> {
        let v = self.eval(e, scope)?;
        let s = v
            .as_str()
            .ok_or_else(|| SeedError("IP filter expects a string".into()))?;
        s.parse().map_err(|err| SeedError(format!("{err}")))
    }

    fn eval_port(&mut self, e: &Expr, scope: &mut Scope) -> Result<u16, SeedError> {
        let v = self.eval(e, scope)?;
        let i = v
            .as_int()
            .ok_or_else(|| SeedError("port expects an integer".into()))?;
        u16::try_from(i).map_err(|_| SeedError(format!("port {i} out of range")))
    }

    fn call(&mut self, name: &str, args: &[Expr], scope: &mut Scope) -> Result<Value, SeedError> {
        // User functions first (the checker forbids shadowing builtins).
        if let Some(f) = self
            .seed
            .def
            .functions
            .iter()
            .find(|f| f.name == name)
            .cloned()
        {
            if self.depth >= MAX_CALL_DEPTH {
                return Err(SeedError("call depth exceeded".into()));
            }
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(self.eval(a, scope)?);
            }
            let mut fscope = Scope::new();
            for ((_, pname), v) in f.params.iter().zip(vals) {
                fscope.declare(pname.clone(), v);
            }
            self.depth += 1;
            let flow = self.run_block(&f.body, &mut fscope);
            self.depth -= 1;
            return match flow? {
                Flow::Return(v) => Ok(v),
                Flow::Normal => Ok(Value::Unit),
                Flow::Transit(_) => Err(SeedError("transit inside function".into())),
            };
        }
        self.call_builtin(name, args, scope)
    }

    fn call_builtin(
        &mut self,
        name: &str,
        args: &[Expr],
        scope: &mut Scope,
    ) -> Result<Value, SeedError> {
        // Mutating list builtins operate on the variable in place.
        if matches!(
            name,
            "list_push" | "list_push_unique" | "list_clear" | "list_remove_at"
        ) {
            let Expr::Var(var_name, _) = &args[0] else {
                return Err(SeedError(format!("`{name}` needs a variable argument")));
            };
            let extra = if args.len() > 1 {
                Some(self.eval(&args[1], scope)?)
            } else {
                None
            };
            let slot = match scope.get(var_name) {
                Some(_) => None, // mutate through scope below
                None => Some(()),
            };
            let list_val = scope
                .get(var_name)
                .or_else(|| self.seed.vars.get(var_name))
                .cloned()
                .ok_or_else(|| SeedError(format!("unknown list `{var_name}`")))?;
            let Value::List(mut items) = list_val else {
                return Err(SeedError(format!("`{var_name}` is not a list")));
            };
            self.charge(items.len() as u64 / 4 + 1);
            match name {
                "list_push" => items.push(extra.expect("arity checked")),
                "list_push_unique" => {
                    let v = extra.expect("arity checked");
                    if !items.contains(&v) {
                        items.push(v);
                    }
                }
                "list_clear" => items.clear(),
                "list_remove_at" => {
                    let i = extra
                        .and_then(|v| v.as_int())
                        .ok_or_else(|| SeedError("list_remove_at expects an index".into()))?;
                    if i < 0 || i as usize >= items.len() {
                        return Err(SeedError(format!("index {i} out of bounds")));
                    }
                    items.remove(i as usize);
                }
                _ => unreachable!(),
            }
            let updated = Value::List(items);
            if slot.is_none() {
                scope.set(var_name, updated);
            } else {
                self.seed.vars.insert(var_name.clone(), updated);
            }
            return Ok(Value::Unit);
        }

        let mut vals = Vec::with_capacity(args.len());
        for a in args {
            vals.push(self.eval(a, scope)?);
        }
        let arity_err = || SeedError(format!("bad arguments to `{name}`"));
        let num = |v: &Value| v.as_f64().ok_or_else(arity_err);
        match name {
            "res" => Ok(Value::Resources(self.host.resources())),
            "now" => Ok(Value::Int(self.host.now_ms())),
            "min" => Ok(Value::Float(num(&vals[0])?.min(num(&vals[1])?))),
            "max" => Ok(Value::Float(num(&vals[0])?.max(num(&vals[1])?))),
            "abs" => Ok(Value::Float(num(&vals[0])?.abs())),
            "log2" => Ok(Value::Float(num(&vals[0])?.log2())),
            "to_float" => Ok(Value::Float(num(&vals[0])?)),
            "to_int" => Ok(Value::Int(match &vals[0] {
                Value::Int(i) => *i,
                Value::Float(f) => *f as i64,
                Value::Bool(b) => *b as i64,
                Value::Str(s) => s.parse().unwrap_or(0),
                _ => return Err(arity_err()),
            })),
            "to_string" => Ok(Value::Str(match &vals[0] {
                Value::Str(s) => s.clone(),
                other => other.to_string(),
            })),
            "str_concat" => match (&vals[0], &vals[1]) {
                (Value::Str(a), Value::Str(b)) => Ok(Value::Str(format!("{a}{b}"))),
                _ => Err(arity_err()),
            },
            "str_contains" => match (&vals[0], &vals[1]) {
                (Value::Str(a), Value::Str(b)) => Ok(Value::Bool(a.contains(b.as_str()))),
                _ => Err(arity_err()),
            },
            "list_len" => Ok(Value::Int(
                vals[0].as_list().ok_or_else(arity_err)?.len() as i64
            )),
            "is_list_empty" => Ok(Value::Bool(
                vals[0].as_list().ok_or_else(arity_err)?.is_empty(),
            )),
            "list_get" => {
                let items = vals[0].as_list().ok_or_else(arity_err)?;
                let i = vals[1].as_int().ok_or_else(arity_err)?;
                items
                    .get(usize::try_from(i).map_err(|_| arity_err())?)
                    .cloned()
                    .ok_or_else(|| SeedError(format!("index {i} out of bounds")))
            }
            "list_contains" => {
                let items = vals[0].as_list().ok_or_else(arity_err)?;
                self.charge(items.len() as u64 / 4 + 1);
                Ok(Value::Bool(items.contains(&vals[1])))
            }
            "pair" => Ok(Value::Pair(
                Box::new(vals[0].clone()),
                Box::new(vals[1].clone()),
            )),
            "pair_first" => match &vals[0] {
                Value::Pair(a, _) => Ok((**a).clone()),
                _ => Err(arity_err()),
            },
            "pair_second" => match &vals[0] {
                Value::Pair(_, b) => Ok((**b).clone()),
                _ => Err(arity_err()),
            },
            "stat_port" => match &vals[0] {
                Value::Stat(s) => Ok(Value::Int(match s.subject {
                    StatSubject::Port(p) => p as i64,
                    StatSubject::Rule(_) => -1,
                })),
                _ => Err(arity_err()),
            },
            "stat_subject" => match &vals[0] {
                Value::Stat(s) => Ok(Value::Str(match &s.subject {
                    StatSubject::Port(p) => format!("port {p}"),
                    StatSubject::Rule(r) => r.clone(),
                })),
                _ => Err(arity_err()),
            },
            "stat_tx_bytes" | "stat_rx_bytes" | "stat_tx_packets" | "stat_rx_packets" => {
                match &vals[0] {
                    Value::Stat(s) => Ok(Value::Int(match name {
                        "stat_tx_bytes" => s.tx_bytes as i64,
                        "stat_rx_bytes" => s.rx_bytes as i64,
                        "stat_tx_packets" => s.tx_packets as i64,
                        _ => s.rx_packets as i64,
                    })),
                    _ => Err(arity_err()),
                }
            }
            "pkt_src_ip" => packet(&vals[0]).map(|p| Value::Str(p.flow.src.to_string())),
            "pkt_dst_ip" => packet(&vals[0]).map(|p| Value::Str(p.flow.dst.to_string())),
            "pkt_src_port" => packet(&vals[0]).map(|p| Value::Int(p.flow.src_port as i64)),
            "pkt_dst_port" => packet(&vals[0]).map(|p| Value::Int(p.flow.dst_port as i64)),
            "pkt_proto" => packet(&vals[0]).map(|p| Value::Str(p.flow.proto.to_string())),
            "pkt_len" => packet(&vals[0]).map(|p| Value::Int(p.len as i64)),
            "pkt_is_syn" => packet(&vals[0]).map(|p| Value::Bool(p.syn)),
            "pkt_is_fin" => packet(&vals[0]).map(|p| Value::Bool(p.fin)),
            "pkt_is_ack" => packet(&vals[0]).map(|p| Value::Bool(p.ack)),
            "filter_matches" => match (&vals[0], &vals[1]) {
                (Value::Filter(f), Value::Packet(p)) => Ok(Value::Bool(f.matches_flow(&p.flow))),
                _ => Err(arity_err()),
            },
            "action_drop" => Ok(Value::Action(ActionValue::Drop)),
            "action_count" => Ok(Value::Action(ActionValue::Count)),
            "action_mirror" => Ok(Value::Action(ActionValue::Mirror)),
            "action_rate_limit" => Ok(Value::Action(ActionValue::RateLimit(
                vals[0].as_int().ok_or_else(arity_err)?.max(0) as u64,
            ))),
            "action_set_qos" => Ok(Value::Action(ActionValue::SetQos(
                vals[0].as_int().ok_or_else(arity_err)?.clamp(0, 255) as u8,
            ))),
            "rule" => match (&vals[0], &vals[1]) {
                (Value::Filter(f), Value::Action(a)) => Ok(Value::Rule(RuleValue {
                    pattern: f.clone(),
                    action: a.clone(),
                })),
                _ => Err(arity_err()),
            },
            "addTCAMRule" => match &vals[0] {
                Value::Rule(r) => {
                    self.out.effects.push(Effect::AddRule(r.clone()));
                    Ok(Value::Unit)
                }
                _ => Err(arity_err()),
            },
            "removeTCAMRule" => match &vals[0] {
                Value::Filter(f) => {
                    self.out.effects.push(Effect::RemoveRule(f.clone()));
                    Ok(Value::Unit)
                }
                _ => Err(arity_err()),
            },
            "getTCAMRule" => match &vals[0] {
                Value::Filter(f) => match self.host.get_rule(f) {
                    Some(r) => Ok(Value::Rule(r)),
                    None => Err(SeedError(format!("no TCAM rule matching {f}"))),
                },
                _ => Err(arity_err()),
            },
            "exec" => match &vals[0] {
                Value::Str(cmd) => {
                    self.out.effects.push(Effect::Exec {
                        cmd: cmd.clone(),
                        iterations: 1,
                    });
                    Ok(Value::Unit)
                }
                _ => Err(arity_err()),
            },
            "exec_n" => match (&vals[0], &vals[1]) {
                (Value::Str(cmd), Value::Int(n)) => {
                    self.out.effects.push(Effect::Exec {
                        cmd: cmd.clone(),
                        iterations: (*n).max(0) as u32,
                    });
                    Ok(Value::Unit)
                }
                _ => Err(arity_err()),
            },
            other => Err(SeedError(format!("unknown builtin `{other}`"))),
        }
    }
}

fn packet(v: &Value) -> Result<&PacketRecord, SeedError> {
    match v {
        Value::Packet(p) => Ok(p),
        other => Err(SeedError(format!(
            "expected packet, found {}",
            other.type_name()
        ))),
    }
}

/// Builds stat-entry values for a poll delivery.
pub fn stats_payload(entries: Vec<StatEntry>) -> Value {
    Value::List(entries.into_iter().map(Value::Stat).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use farm_almanac::analysis::ConstEnv;
    use farm_almanac::compile::{compile_machine, frontend};
    use farm_netsim::controller::SdnController;
    use farm_netsim::switch::SwitchModel;
    use farm_netsim::topology::Topology;

    fn compile(src: &str, machine: &str) -> Arc<CompiledMachine> {
        let topo =
            Topology::spine_leaf(1, 2, SwitchModel::test_model(8), SwitchModel::test_model(8));
        let ctl = SdnController::new(&topo);
        let program = frontend(src).unwrap();
        Arc::new(compile_machine(&program, machine, &ConstEnv::new(), &ctl).unwrap())
    }

    fn hh_instance() -> SeedInstance {
        let def = compile(farm_almanac::programs::HEAVY_HITTER, "HH");
        SeedInstance::new(SeedId(1), def, Resources::new(2.0, 512.0, 16.0, 10.0))
    }

    fn stat(port: u16, tx_bytes: u64) -> StatEntry {
        StatEntry {
            subject: StatSubject::Port(port),
            tx_bytes,
            rx_bytes: 0,
            tx_packets: tx_bytes / 1500,
            rx_packets: 0,
        }
    }

    #[test]
    fn hh_detects_heavy_hitters_and_reacts_locally() {
        let mut seed = hh_instance();
        let host = FixedHost::default();
        assert_eq!(seed.state(), "observe");
        // Below threshold: nothing happens.
        let out = seed
            .handle(
                &SeedEvent::Trigger {
                    name: "pollStats".into(),
                    payload: stats_payload(vec![stat(0, 10), stat(1, 20)]),
                },
                &host,
            )
            .unwrap();
        assert!(out.effects.is_empty());
        assert_eq!(seed.state(), "observe");
        // Above threshold (default external threshold = 1_000_000):
        // transition to HHdetected, send to harvester, install a TCAM
        // rule, and bounce back to observe.
        let out = seed
            .handle(
                &SeedEvent::Trigger {
                    name: "pollStats".into(),
                    payload: stats_payload(vec![stat(3, 5_000_000), stat(1, 10)]),
                },
                &host,
            )
            .unwrap();
        assert_eq!(seed.state(), "observe");
        assert!(out.transitioned);
        let sends: Vec<_> = out
            .effects
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    Effect::Send {
                        to: Endpoint::Harvester,
                        ..
                    }
                )
            })
            .collect();
        assert_eq!(sends.len(), 1);
        let rules: Vec<_> = out
            .effects
            .iter()
            .filter_map(|e| match e {
                Effect::AddRule(r) => Some(r),
                _ => None,
            })
            .collect();
        assert_eq!(rules.len(), 1);
        assert_eq!(
            rules[0].pattern,
            FilterFormula::Atom(FilterAtom::IfPort(PortSel::Id(3)))
        );
    }

    #[test]
    fn harvester_can_retune_threshold() {
        let mut seed = hh_instance();
        let host = FixedHost::default();
        seed.handle(
            &SeedEvent::Recv {
                from_machine: None,
                value: Value::Int(10),
            },
            &host,
        )
        .unwrap();
        assert_eq!(seed.var("threshold"), Some(&Value::Int(10)));
        // Now a tiny flow is a heavy hitter.
        let out = seed
            .handle(
                &SeedEvent::Trigger {
                    name: "pollStats".into(),
                    payload: stats_payload(vec![stat(0, 50)]),
                },
                &host,
            )
            .unwrap();
        assert!(out.transitioned);
    }

    #[test]
    fn recv_dispatches_on_payload_type() {
        let mut seed = hh_instance();
        let host = FixedHost::default();
        // An action payload must hit the hitterAction handler, not the
        // threshold one.
        seed.handle(
            &SeedEvent::Recv {
                from_machine: None,
                value: Value::Action(ActionValue::Drop),
            },
            &host,
        )
        .unwrap();
        assert_eq!(
            seed.var("hitterAction"),
            Some(&Value::Action(ActionValue::Drop))
        );
        assert_ne!(seed.var("threshold"), Some(&Value::Int(0)));
    }

    #[test]
    fn unhandled_events_are_dropped() {
        let mut seed = hh_instance();
        let host = FixedHost::default();
        let out = seed
            .handle(
                &SeedEvent::Trigger {
                    name: "nonexistent".into(),
                    payload: Value::Unit,
                },
                &host,
            )
            .unwrap();
        assert!(out.effects.is_empty());
        assert!(!out.transitioned);
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut seed = hh_instance();
        let host = FixedHost::default();
        seed.handle(
            &SeedEvent::Recv {
                from_machine: None,
                value: Value::Int(42),
            },
            &host,
        )
        .unwrap();
        let snap = seed.snapshot();
        let def = compile(farm_almanac::programs::HEAVY_HITTER, "HH");
        let mut other = SeedInstance::new(SeedId(2), def, Resources::ZERO);
        other.restore(&snap).unwrap();
        assert_eq!(other.var("threshold"), Some(&Value::Int(42)));
        assert_eq!(other.state(), seed.state());
    }

    #[test]
    fn restore_rejects_wrong_machine() {
        let seed = hh_instance();
        let snap = seed.snapshot();
        let def = compile(farm_almanac::programs::TRAFFIC_CHANGE, "TrafficChange");
        let mut other = SeedInstance::new(SeedId(3), def, Resources::ZERO);
        assert!(other.restore(&snap).is_err());
    }

    #[test]
    fn transition_chain_is_bounded() {
        let src = r#"
            machine Loop {
              place any;
              state a { when (enter) do { transit b; } }
              state b { when (enter) do { transit a; } }
            }
        "#;
        let def = compile(src, "Loop");
        let mut seed = SeedInstance::new(SeedId(4), def, Resources::ZERO);
        let err = seed
            .handle(&SeedEvent::Enter, &FixedHost::default())
            .unwrap_err();
        assert!(err.0.contains("transition chain"), "{err}");
    }

    #[test]
    fn while_loops_are_bounded() {
        let src = r#"
            machine Spin {
              place any;
              long x = 0;
              state s { when (enter) do { while (x <= 1) { x = 0; } } }
            }
        "#;
        let def = compile(src, "Spin");
        let mut seed = SeedInstance::new(SeedId(5), def, Resources::ZERO);
        let err = seed
            .handle(&SeedEvent::Enter, &FixedHost::default())
            .unwrap_err();
        assert!(err.0.contains("loop iteration"), "{err}");
    }

    #[test]
    fn exec_task_emits_exec_effect() {
        let src = r#"
            machine Ml {
              place any;
              time tick = 10;
              state s {
                when (tick) do { exec_n("svr 1000x1000", 10); }
              }
            }
        "#;
        let def = compile(src, "Ml");
        let mut seed = SeedInstance::new(SeedId(6), def, Resources::ZERO);
        let out = seed
            .handle(
                &SeedEvent::Trigger {
                    name: "tick".into(),
                    payload: Value::Int(1),
                },
                &FixedHost::default(),
            )
            .unwrap();
        assert_eq!(
            out.effects,
            vec![Effect::Exec {
                cmd: "svr 1000x1000".into(),
                iterations: 10
            }]
        );
    }

    #[test]
    fn ops_scale_with_work() {
        let mut seed = hh_instance();
        let host = FixedHost::default();
        let small = seed
            .handle(
                &SeedEvent::Trigger {
                    name: "pollStats".into(),
                    payload: stats_payload((0..4).map(|p| stat(p, 10)).collect()),
                },
                &host,
            )
            .unwrap();
        let big = seed
            .handle(
                &SeedEvent::Trigger {
                    name: "pollStats".into(),
                    payload: stats_payload((0..64).map(|p| stat(p, 10)).collect()),
                },
                &host,
            )
            .unwrap();
        assert!(big.ops > small.ops * 4, "{} vs {}", big.ops, small.ops);
    }

    #[test]
    fn entropy_program_computes_shannon_entropy() {
        let def = compile(
            farm_almanac::programs::ENTROPY_ESTIMATION,
            "EntropyEstimation",
        );
        let mut seed = SeedInstance::new(SeedId(7), def, Resources::ZERO);
        let host = FixedHost::default();
        // Uniform traffic over 4 ports → entropy 2 bits.
        seed.handle(
            &SeedEvent::Trigger {
                name: "portStats".into(),
                payload: stats_payload((0..4).map(|p| stat(p, 1000)).collect()),
            },
            &host,
        )
        .unwrap();
        let Some(Value::Float(h)) = seed.var("current") else {
            panic!("entropy not computed")
        };
        assert!((h - 2.0).abs() < 1e-9, "expected 2 bits, got {h}");
    }
}
