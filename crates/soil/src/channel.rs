//! Seed ↔ soil communication: execution modes and channel cost models,
//! plus the real shared-memory ring buffer used when seeds run as threads
//! of the soil process.
//!
//! The paper evaluates two seed execution models (threads within the soil
//! process vs isolated processes) and two channels (a tailor-fitted shared
//! buffer vs gRPC); § VI-E shows gRPC latency grows linearly with the seed
//! count while the shared buffer stays flat (Fig. 10), and that request
//! aggregation is CPU-free for threads but costly for processes (Fig. 9).
//! The cost models below are calibrated to those shapes; the ring buffer
//! demonstrates the shared-memory mechanism with real threads.

use std::collections::VecDeque;
use std::time::Duration;

use farm_netsim::time::Dur;
use farm_telemetry::{Event, Telemetry};
use parking_lot::{Condvar, Mutex};

/// Records one soil→seed channel delivery: bumps the `ipc.messages`
/// counter, samples the `ipc.latency_us` histogram (the Fig. 10 metric)
/// and emits an [`Event::ChannelDelivery`].
pub fn record_ipc_delivery(
    telemetry: &Telemetry,
    switch: u32,
    seed: u64,
    bytes: u64,
    at_ns: u64,
    latency: Dur,
) {
    telemetry.counter("ipc.messages").inc();
    telemetry.counter("ipc.bytes").add(bytes);
    telemetry
        .latency_histogram("ipc.latency_us")
        .record(latency.as_nanos() / 1_000);
    telemetry.emit_with(|| Event::ChannelDelivery {
        at_ns,
        switch,
        seed,
        bytes,
        latency_ns: latency.as_nanos(),
    });
}

/// How seeds execute on the switch (§ V-A b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecMode {
    /// Seeds are threads of the soil process (the configuration the paper
    /// selects after the microbenchmarks).
    #[default]
    Threads,
    /// Seeds are isolated processes.
    Processes,
}

/// Transport between seeds and the soil.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ChannelKind {
    /// Tailor-fitted shared memory buffer (threads only in the real
    /// system; under processes it degrades to a shared-mapping variant).
    #[default]
    SharedBuffer,
    /// gRPC over loopback.
    Grpc,
}

/// Combined communication configuration with calibrated cost models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CommModel {
    pub exec: ExecMode,
    pub channel: ChannelKind,
}

impl CommModel {
    /// One-way soil→seed delivery latency with `active_seeds` deployed.
    ///
    /// Fig. 10 calibration: gRPC grows linearly with the seed count
    /// (≈1.5 ms at 150 seeds); the shared buffer stays in the tens of
    /// microseconds with a marginal slope.
    pub fn delivery_latency(&self, active_seeds: usize) -> Dur {
        let n = active_seeds as u64;
        match self.channel {
            ChannelKind::Grpc => {
                let base = Dur::from_micros(120);
                let per_seed = Dur::from_nanos(9_000 * n);
                let proc_penalty = match self.exec {
                    ExecMode::Processes => Dur::from_micros(30),
                    ExecMode::Threads => Dur::ZERO,
                };
                base + per_seed + proc_penalty
            }
            ChannelKind::SharedBuffer => {
                let base = match self.exec {
                    ExecMode::Threads => Dur::from_micros(3),
                    // Cross-process shared mapping: extra syscall + fence.
                    ExecMode::Processes => Dur::from_micros(18),
                };
                base + Dur::from_nanos(20 * n)
            }
        }
    }

    /// CPU cycles the soil spends delivering one event to one seed.
    pub fn delivery_cpu_cycles(&self) -> u64 {
        match (self.exec, self.channel) {
            (ExecMode::Threads, ChannelKind::SharedBuffer) => 300,
            (ExecMode::Threads, ChannelKind::Grpc) => 18_000,
            (ExecMode::Processes, ChannelKind::SharedBuffer) => 8_000,
            (ExecMode::Processes, ChannelKind::Grpc) => 30_000,
        }
    }

    /// Extra soil CPU cycles for aggregating one poll request on behalf of
    /// one seed (Fig. 9): free-ish for threads (the soil and seeds share an
    /// address space), expensive for processes (marshal + copy).
    pub fn aggregation_cpu_cycles(&self) -> u64 {
        match self.exec {
            ExecMode::Threads => 150,
            ExecMode::Processes => 22_000,
        }
    }
}

/// A bounded, blocking MPMC ring buffer — the "tailor-fitted shared
/// memory buffer" used between soil and thread seeds.
///
/// Supports graceful shutdown: after [`close`](Self::close) producers
/// get their item back immediately and consumers blocked in
/// [`pop_timeout`](Self::pop_timeout) wake promptly, draining whatever
/// is still queued before seeing `None`.
#[derive(Debug)]
pub struct SharedRingBuffer<T> {
    inner: Mutex<RingState<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

#[derive(Debug)]
struct RingState<T> {
    q: VecDeque<T>,
    closed: bool,
}

impl<T> SharedRingBuffer<T> {
    /// Creates a buffer holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer capacity must be positive");
        SharedRingBuffer {
            inner: Mutex::new(RingState {
                q: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Non-blocking push; returns the item back when full or closed.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut s = self.inner.lock();
        if s.closed || s.q.len() >= self.capacity {
            return Err(item);
        }
        s.q.push_back(item);
        drop(s);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking push; returns the item back if the buffer is (or gets)
    /// closed while waiting for space.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut s = self.inner.lock();
        while !s.closed && s.q.len() >= self.capacity {
            self.not_full.wait(&mut s);
        }
        if s.closed {
            return Err(item);
        }
        s.q.push_back(item);
        drop(s);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Non-blocking pop. Keeps draining queued items after close.
    pub fn try_pop(&self) -> Option<T> {
        let mut s = self.inner.lock();
        let item = s.q.pop_front();
        if item.is_some() {
            drop(s);
            self.not_full.notify_one();
        }
        item
    }

    /// Pop with a timeout; `None` when it elapses empty or the buffer
    /// is closed and drained.
    ///
    /// Blocks on the condvar (no spinning) and re-waits until the full
    /// deadline on spurious wakeups or when a concurrent consumer races
    /// the item away — a single `wait_for` would return early then.
    /// A close() wakes every blocked consumer promptly.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let deadline = std::time::Instant::now() + timeout;
        let mut s = self.inner.lock();
        while s.q.is_empty() {
            if s.closed {
                return None;
            }
            if self.not_empty.wait_until(&mut s, deadline).timed_out() {
                return s.q.pop_front();
            }
        }
        let item = s.q.pop_front();
        if item.is_some() {
            drop(s);
            self.not_full.notify_one();
        }
        item
    }

    /// Closes the buffer: subsequent pushes fail, blocked producers and
    /// consumers wake promptly, queued items remain poppable.
    pub fn close(&self) {
        let mut s = self.inner.lock();
        s.closed = true;
        drop(s);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// True after [`close`](Self::close).
    pub fn is_closed(&self) -> bool {
        self.inner.lock().closed
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().q.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().q.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn grpc_latency_grows_linearly_shared_buffer_stays_flat() {
        let grpc = CommModel {
            exec: ExecMode::Threads,
            channel: ChannelKind::Grpc,
        };
        let shared = CommModel::default();
        let g1 = grpc.delivery_latency(1);
        let g150 = grpc.delivery_latency(150);
        let s1 = shared.delivery_latency(1);
        let s150 = shared.delivery_latency(150);
        assert!(
            g150.as_nanos() > g1.as_nanos() * 5,
            "gRPC must scale with seeds: {g1} → {g150}"
        );
        assert!(
            s150.as_nanos() < s1.as_nanos() * 3,
            "shared buffer must stay near-flat: {s1} → {s150}"
        );
        assert!(s150 < g1, "shared buffer beats gRPC even at 150 seeds");
    }

    #[test]
    fn aggregation_is_cheap_for_threads_costly_for_processes() {
        let threads = CommModel {
            exec: ExecMode::Threads,
            channel: ChannelKind::SharedBuffer,
        };
        let processes = CommModel {
            exec: ExecMode::Processes,
            channel: ChannelKind::SharedBuffer,
        };
        assert!(processes.aggregation_cpu_cycles() > threads.aggregation_cpu_cycles() * 50);
    }

    #[test]
    fn ring_buffer_fifo_and_capacity() {
        let rb = SharedRingBuffer::new(2);
        rb.try_push(1).unwrap();
        rb.try_push(2).unwrap();
        assert_eq!(rb.try_push(3), Err(3));
        assert_eq!(rb.try_pop(), Some(1));
        assert_eq!(rb.try_pop(), Some(2));
        assert_eq!(rb.try_pop(), None);
        assert!(rb.is_empty());
    }

    #[test]
    fn ring_buffer_works_across_threads() {
        let rb = Arc::new(SharedRingBuffer::new(16));
        let producer = {
            let rb = Arc::clone(&rb);
            std::thread::spawn(move || {
                for i in 0..1000 {
                    rb.push(i).unwrap();
                }
            })
        };
        let mut got = Vec::new();
        while got.len() < 1000 {
            if let Some(v) = rb.pop_timeout(Duration::from_secs(5)) {
                got.push(v);
            }
        }
        producer.join().unwrap();
        assert_eq!(got, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn pop_timeout_elapses_on_empty_buffer() {
        let rb: SharedRingBuffer<u8> = SharedRingBuffer::new(1);
        let start = std::time::Instant::now();
        assert_eq!(rb.pop_timeout(Duration::from_millis(10)), None);
        assert!(
            start.elapsed() >= Duration::from_millis(10),
            "must block for the full timeout, not return early"
        );
    }

    #[test]
    fn pop_timeout_survives_a_racing_consumer() {
        // A notified waiter whose item was raced away by try_pop must
        // keep waiting for the next item instead of returning None.
        let rb: Arc<SharedRingBuffer<u32>> = Arc::new(SharedRingBuffer::new(4));
        let waiter = {
            let rb = Arc::clone(&rb);
            std::thread::spawn(move || rb.pop_timeout(Duration::from_secs(5)))
        };
        std::thread::sleep(Duration::from_millis(20));
        rb.push(1).unwrap(); // wakes the waiter...
        while rb.try_pop().is_none() {
            // ...but this thread may steal the item first.
            if waiter.is_finished() {
                break;
            }
        }
        rb.push(2).unwrap(); // the waiter must still get this one
        let got = waiter.join().unwrap();
        assert!(got.is_some(), "waiter returned before its deadline");
    }

    #[test]
    fn blocking_push_waits_for_space() {
        let rb: Arc<SharedRingBuffer<u32>> = Arc::new(SharedRingBuffer::new(1));
        rb.push(1).unwrap();
        let pusher = {
            let rb = Arc::clone(&rb);
            std::thread::spawn(move || rb.push(2))
        };
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rb.try_pop(), Some(1));
        pusher.join().unwrap().unwrap();
        assert_eq!(rb.try_pop(), Some(2));
    }

    #[test]
    fn close_wakes_blocked_consumer_promptly() {
        let rb: Arc<SharedRingBuffer<u32>> = Arc::new(SharedRingBuffer::new(4));
        let waiter = {
            let rb = Arc::clone(&rb);
            std::thread::spawn(move || {
                let start = std::time::Instant::now();
                let got = rb.pop_timeout(Duration::from_secs(30));
                (got, start.elapsed())
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        rb.close();
        let (got, waited) = waiter.join().unwrap();
        assert_eq!(got, None);
        assert!(
            waited < Duration::from_secs(5),
            "close must wake the consumer long before its deadline, waited {waited:?}"
        );
    }

    #[test]
    fn close_wakes_blocked_producer_and_returns_item() {
        let rb: Arc<SharedRingBuffer<u32>> = Arc::new(SharedRingBuffer::new(1));
        rb.push(1).unwrap();
        let pusher = {
            let rb = Arc::clone(&rb);
            std::thread::spawn(move || rb.push(2))
        };
        std::thread::sleep(Duration::from_millis(20));
        rb.close();
        assert_eq!(pusher.join().unwrap(), Err(2));
        // Queued items survive the close and drain normally.
        assert_eq!(rb.pop_timeout(Duration::from_millis(5)), Some(1));
        assert_eq!(rb.pop_timeout(Duration::from_millis(5)), None);
        assert!(rb.is_closed());
        assert_eq!(rb.try_push(3), Err(3));
    }

    #[test]
    fn ipc_deliveries_feed_the_latency_histogram() {
        use farm_telemetry::RingBufferSink;

        let telemetry = Telemetry::new();
        let ring = Arc::new(RingBufferSink::new(8));
        telemetry.add_sink(ring.clone());
        record_ipc_delivery(&telemetry, 2, 5, 48, 1_000, Dur::from_micros(3));
        record_ipc_delivery(&telemetry, 2, 5, 48, 2_000, Dur::from_micros(9));

        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("ipc.messages"), 2);
        assert_eq!(snap.counter("ipc.bytes"), 96);
        let h = snap.histogram("ipc.latency_us").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 12);
        assert!(matches!(
            ring.events()[0],
            farm_telemetry::Event::ChannelDelivery {
                latency_ns: 3_000,
                ..
            }
        ));
    }
}
