//! Ablation: Alg. 1 design choices — LP resource redistribution (step 3)
//! and the migration pass (steps 4–5) — measured on re-optimization
//! instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use farm_placement::heuristic::{solve_heuristic, HeuristicOptions};
use farm_placement::model::PreviousPlacement;
use farm_placement::workload::{generate, WorkloadConfig};
use std::hint::black_box;

fn reopt_instance() -> farm_placement::model::PlacementInstance {
    // First placement, then shrink half the candidate sets so the
    // re-optimization has real migration pressure.
    let mut inst = generate(&WorkloadConfig {
        n_switches: 64,
        n_tasks: 6,
        n_seeds: 600,
        rng_seed: 11,
        ..Default::default()
    });
    let first = solve_heuristic(&inst, HeuristicOptions::default());
    let mut prev = PreviousPlacement::default();
    for (s, slot) in first.assignment.iter().enumerate() {
        if let Some((n, res)) = slot {
            prev.assignment.insert(s, (*n, *res));
        }
    }
    inst.previous = Some(prev);
    inst
}

fn bench_ablation(c: &mut Criterion) {
    let inst = reopt_instance();
    let variants: Vec<(&str, HeuristicOptions)> = vec![
        (
            "full",
            HeuristicOptions {
                lp_redistribution: true,
                migration: true,
                ..HeuristicOptions::default()
            },
        ),
        (
            "no-migration",
            HeuristicOptions {
                lp_redistribution: true,
                migration: false,
                ..HeuristicOptions::default()
            },
        ),
        (
            "no-lp",
            HeuristicOptions {
                lp_redistribution: false,
                migration: true,
                ..HeuristicOptions::default()
            },
        ),
        (
            "greedy-only",
            HeuristicOptions {
                lp_redistribution: false,
                migration: false,
                ..HeuristicOptions::default()
            },
        ),
    ];
    let mut g = c.benchmark_group("heuristic_ablation");
    g.sample_size(10);
    for (name, opts) in variants {
        g.bench_with_input(BenchmarkId::from_parameter(name), &opts, |b, opts| {
            b.iter(|| black_box(solve_heuristic(&inst, *opts)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
