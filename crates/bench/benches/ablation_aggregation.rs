//! Ablation: the soil's poll aggregation on vs off — both the PCIe
//! pressure it removes (Fig. 8) and the wall-clock cost of the scheduling
//! round.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use farm_bench::support::{farm_with, hh_source_at, no_externals, single_switch};
use farm_netsim::time::Time;
use farm_soil::SoilConfig;
use std::hint::black_box;

fn advance_window(aggregation: bool, seeds: usize) -> f64 {
    let cfg = SoilConfig {
        aggregation,
        ..Default::default()
    };
    let mut farm = farm_with(single_switch(), cfg);
    let leaf = farm.network().topology().leaves().next().unwrap();
    let src = hh_source_at(10, leaf.0, i64::MAX / 4);
    let tasks: Vec<(String, String)> = (0..seeds).map(|i| (format!("t{i}"), src.clone())).collect();
    let refs: Vec<(
        &str,
        &str,
        std::collections::BTreeMap<String, farm_almanac::analysis::ConstEnv>,
    )> = tasks
        .iter()
        .map(|(n, s)| (n.as_str(), s.as_str(), no_externals()))
        .collect();
    farm.deploy_tasks(&refs).unwrap();
    farm.advance(Time::from_millis(100));
    farm.network()
        .switch(leaf)
        .unwrap()
        .pcie()
        .utilization_percent()
}

fn bench_aggregation(c: &mut Criterion) {
    let mut g = c.benchmark_group("soil_aggregation");
    g.sample_size(10);
    for &agg in &[true, false] {
        g.bench_with_input(
            BenchmarkId::from_parameter(if agg { "on" } else { "off" }),
            &agg,
            |b, &agg| b.iter(|| black_box(advance_window(agg, 16))),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_aggregation);
criterion_main!(benches);
