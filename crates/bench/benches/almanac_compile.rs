//! Compiler-pipeline throughput: parse + typecheck of every Tab. I
//! program, and the full seeder front-end for HH.

use criterion::{criterion_group, criterion_main, Criterion};
use farm_almanac::analysis::ConstEnv;
use farm_almanac::compile::{compile_machine, frontend};
use farm_almanac::programs::USE_CASES;
use farm_netsim::controller::SdnController;
use farm_netsim::switch::SwitchModel;
use farm_netsim::topology::Topology;
use std::hint::black_box;

fn bench_frontend(c: &mut Criterion) {
    c.bench_function("frontend_all_17_use_cases", |b| {
        b.iter(|| {
            for u in USE_CASES {
                black_box(frontend(u.source).unwrap());
            }
        })
    });
}

fn bench_full_compile(c: &mut Criterion) {
    let topo = Topology::spine_leaf(
        4,
        16,
        SwitchModel::accton_as7712(),
        SwitchModel::accton_as5712(),
    );
    let program = frontend(farm_almanac::programs::HEAVY_HITTER).unwrap();
    c.bench_function("compile_hh_with_placement", |b| {
        b.iter(|| {
            let ctl = SdnController::new(&topo);
            black_box(compile_machine(&program, "HH", &ConstEnv::new(), &ctl).unwrap())
        })
    });
}

criterion_group!(benches, bench_frontend, bench_full_compile);
criterion_main!(benches);
