//! Microbenchmarks of the LP/MILP solver substrate (`farm-lp`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use farm_lp::{solve_milp, Cmp, LinExpr, MilpOptions, Problem, Sense};
use std::hint::black_box;

/// A dense-ish random LP with `n` variables and `n` constraints.
fn random_lp(n: usize, seed: u64) -> Problem {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut p = Problem::new(Sense::Maximize);
    let vars: Vec<_> = (0..n)
        .map(|i| p.add_var(format!("x{i}"), 0.0, 10.0 + next() * 10.0))
        .collect();
    for _ in 0..n {
        let mut e = LinExpr::new();
        for &v in &vars {
            if next() < 0.4 {
                e.add_term(v, next() * 3.0);
            }
        }
        p.add_constraint(e, Cmp::Le, 5.0 + next() * 50.0);
    }
    let mut obj = LinExpr::new();
    for &v in &vars {
        obj.add_term(v, next() * 10.0 - 2.0);
    }
    p.set_objective(obj);
    p
}

fn knapsack(n: usize) -> Problem {
    let mut p = Problem::new(Sense::Maximize);
    let mut w = LinExpr::new();
    let mut o = LinExpr::new();
    for i in 0..n {
        let v = p.add_binary(format!("b{i}"));
        w.add_term(v, ((i * 7) % 13 + 1) as f64);
        o.add_term(v, ((i * 11) % 17 + 1) as f64);
    }
    p.add_constraint(w, Cmp::Le, (n as f64) * 2.5);
    p.set_objective(o);
    p
}

fn bench_simplex(c: &mut Criterion) {
    let mut g = c.benchmark_group("simplex");
    g.sample_size(20);
    for n in [10usize, 40, 100] {
        let p = random_lp(n, 7);
        g.bench_with_input(BenchmarkId::from_parameter(n), &p, |b, p| {
            b.iter(|| black_box(farm_lp::simplex::solve(p).unwrap()))
        });
    }
    g.finish();
}

fn bench_milp(c: &mut Criterion) {
    let mut g = c.benchmark_group("milp_knapsack");
    g.sample_size(10);
    for n in [12usize, 20] {
        let p = knapsack(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &p, |b, p| {
            b.iter(|| black_box(solve_milp(p, &MilpOptions::default())))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_simplex, bench_milp);
criterion_main!(benches);
