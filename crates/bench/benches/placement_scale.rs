//! Fig. 7-adjacent: wall-clock scaling of the placement heuristic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use farm_placement::heuristic::{solve_heuristic, HeuristicOptions};
use farm_placement::workload::{generate, WorkloadConfig};
use std::hint::black_box;

fn bench_heuristic(c: &mut Criterion) {
    let mut g = c.benchmark_group("placement_heuristic");
    g.sample_size(10);
    for seeds in [200usize, 1000, 4000] {
        let inst = generate(&WorkloadConfig {
            n_switches: 256,
            n_tasks: 8,
            n_seeds: seeds,
            rng_seed: 5,
            ..Default::default()
        });
        g.bench_with_input(BenchmarkId::from_parameter(seeds), &inst, |b, inst| {
            b.iter(|| black_box(solve_heuristic(inst, HeuristicOptions::default())))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_heuristic);
criterion_main!(benches);
