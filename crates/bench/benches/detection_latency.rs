//! Tab. 4-adjacent: wall-clock cost of the end-to-end FARM HH detection
//! simulation (the virtual-time detection figures come from `repro tab4`).

use criterion::{criterion_group, criterion_main, Criterion};
use farm_bench::tab4;
use std::hint::black_box;

fn bench_detection(c: &mut Criterion) {
    let mut g = c.benchmark_group("detection");
    g.sample_size(10);
    g.bench_function("farm_hh_detection_sim", |b| {
        b.iter(|| black_box(tab4::farm_detection_ms()))
    });
    g.bench_function("sflow_hh_detection_sim", |b| {
        b.iter(|| black_box(tab4::sflow_detection_ms()))
    });
    g.finish();
}

criterion_group!(benches, bench_detection);
criterion_main!(benches);
