//! Fig. 10-adjacent: real shared-memory ring-buffer throughput, the
//! channel cost models, and the real-socket path — a seed poll report
//! encoded by `farm-net`, shipped over loopback TCP through a
//! `LossModel` interceptor, and decoded on the harvester side.

use criterion::{criterion_group, criterion_main, Criterion};
use farm_almanac::value::Value;
use farm_faults::LossSpec;
use farm_net::{Connection, Envelope, Frame, LossInterceptor, NetConfig, NetServer, Report};
use farm_netsim::time::Dur;
use farm_soil::{ChannelKind, CommModel, ExecMode, SharedRingBuffer};
use farm_telemetry::Telemetry;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn bench_ring_buffer(c: &mut Criterion) {
    let rb: SharedRingBuffer<u64> = SharedRingBuffer::new(1024);
    c.bench_function("ring_buffer_push_pop", |b| {
        b.iter(|| {
            rb.try_push(black_box(42)).unwrap();
            black_box(rb.try_pop().unwrap());
        })
    });
}

fn bench_latency_model(c: &mut Criterion) {
    let grpc = CommModel {
        exec: ExecMode::Threads,
        channel: ChannelKind::Grpc,
    };
    c.bench_function("comm_model_eval", |b| {
        b.iter(|| black_box(grpc.delivery_latency(black_box(150))))
    });
}

/// The real-socket mode: RPC a one-report `PollReport` frame over
/// loopback TCP. Every iteration crosses encode → interceptor → socket
/// → decode and back; `net.rpc_latency_us` and `net.bytes` accumulate
/// in the telemetry registry and are printed at the end.
fn bench_real_socket_rpc(c: &mut Criterion) {
    let telemetry = Telemetry::new();
    let decoded = Arc::new(AtomicU64::new(0));
    let decoded_h = Arc::clone(&decoded);
    let server = NetServer::bind(
        "127.0.0.1:0".parse().unwrap(),
        &telemetry,
        Arc::new(move |env: &Envelope| {
            // The harvester side: count reports the codec reconstructed.
            if let Frame::PollReport { reports } = &env.frame {
                decoded_h.fetch_add(reports.len() as u64, Ordering::Relaxed);
            }
            None
        }),
    )
    .expect("bind loopback harvester");
    // The wire still runs through the deterministic LossModel — with
    // duplication and delay exercised but drops off, so every RPC
    // completes instead of waiting out its timeout.
    let lossy = LossInterceptor::from_spec(
        LossSpec {
            drop: 0.0,
            duplicate: 0.01,
            delay: Dur::ZERO,
        },
        7,
    );
    let conn = Connection::connect_with(
        server.local_addr(),
        NetConfig::default(),
        &telemetry,
        Box::new(lossy),
    );
    let report = Report {
        task: "hh".into(),
        from_switch: 3,
        from_seed: 17,
        from_machine: "HH".into(),
        at_ns: 1_000_000,
        latency_ns: 40_000,
        bytes: 48,
        value: Value::List(vec![Value::Int(42), Value::Str("10.0.0.1".into())]),
    };
    c.bench_function("real_socket_poll_report_rpc", |b| {
        b.iter(|| {
            let frame = Frame::PollReport {
                reports: vec![black_box(report.clone())],
            };
            black_box(conn.request(frame).expect("loopback rpc"));
        })
    });
    let snap = telemetry.snapshot();
    let lat = snap
        .histogram("net.rpc_latency_us")
        .expect("rpc latency recorded");
    assert!(lat.count > 0 && snap.counter("net.bytes") > 0);
    assert!(
        decoded.load(Ordering::Relaxed) > 0,
        "harvester decoded reports"
    );
    println!(
        "real-socket mode: {} rpcs, mean {:.1} us, {} wire bytes, {} reports decoded",
        lat.count,
        lat.sum as f64 / lat.count as f64,
        snap.counter("net.bytes"),
        decoded.load(Ordering::Relaxed),
    );
}

criterion_group!(
    benches,
    bench_ring_buffer,
    bench_latency_model,
    bench_real_socket_rpc
);
criterion_main!(benches);
