//! Fig. 10-adjacent: real shared-memory ring-buffer throughput and the
//! channel cost models.

use criterion::{criterion_group, criterion_main, Criterion};
use farm_soil::{ChannelKind, CommModel, ExecMode, SharedRingBuffer};
use std::hint::black_box;

fn bench_ring_buffer(c: &mut Criterion) {
    let rb: SharedRingBuffer<u64> = SharedRingBuffer::new(1024);
    c.bench_function("ring_buffer_push_pop", |b| {
        b.iter(|| {
            rb.try_push(black_box(42)).unwrap();
            black_box(rb.try_pop().unwrap());
        })
    });
}

fn bench_latency_model(c: &mut Criterion) {
    let grpc = CommModel {
        exec: ExecMode::Threads,
        channel: ChannelKind::Grpc,
    };
    c.bench_function("comm_model_eval", |b| {
        b.iter(|| black_box(grpc.delivery_latency(black_box(150))))
    });
}

criterion_group!(benches, bench_ring_buffer, bench_latency_model);
criterion_main!(benches);
