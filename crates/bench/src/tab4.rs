//! Tab. 4 — heavy-hitter detection time of FARM, Planck, Helios, sFlow
//! and Sonata.
//!
//! FARM runs for real: HH seeds with 1 ms polling accuracy on the
//! 20-switch cluster; the detection time is the span from the heavy
//! hitter's onset to the harvester learning about it (switch-local
//! recognition and reaction happen earlier — within the same handler).
//! sFlow and Sonata also run for real against the same traffic; Planck
//! and Helios are published-design latency models.

use farm_baselines::{
    HeliosModel, PlanckModel, SflowConfig, SflowSystem, SonataConfig, SonataSystem,
};
use farm_core::harvester::CollectingHarvester;
use farm_netsim::network::Network;
use farm_netsim::time::{Dur, Time};
use farm_netsim::traffic::{HeavyHitterWorkload, HhConfig, Workload};

use crate::support::{farm_with, hh_source_at, no_externals, sap_cluster};

/// One row of Tab. 4.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionRow {
    pub system: String,
    pub kind: &'static str, // G(eneric) / S(pecialized)
    pub detect_ms: f64,
}

/// Heavy-hitter traffic configuration shared by all systems: the heavy
/// set exists from t=0, so detection time is measured from t=0.
fn traffic(switch: farm_netsim::types::SwitchId) -> HeavyHitterWorkload {
    HeavyHitterWorkload::new(HhConfig {
        switch,
        n_ports: 48,
        hh_ratio: 0.05,
        hh_rate_bps: 5_000_000_000,
        normal_rate_bps: 10_000_000,
        churn_interval: Dur::from_secs(60),
        ..Default::default()
    })
}

/// Measures FARM's detection time on the cluster.
pub fn farm_detection_ms() -> f64 {
    let topo = sap_cluster();
    let mut farm = farm_with(topo, Default::default());
    let leaf = farm.network().topology().leaves().next().unwrap();
    farm.set_harvester("hh", Box::new(CollectingHarvester::new()));
    // 1 ms polling accuracy, threshold below the heavy rate per ms.
    farm.deploy_task("hh", &hh_source_at(1, leaf.0, 100_000), &no_externals())
        .unwrap();
    let mut hh = traffic(leaf);
    farm.run(&mut [&mut hh], Time::from_millis(200), Dur::from_millis(1));
    let h: &CollectingHarvester = farm.harvester("hh").unwrap();
    let detected = h
        .first_arrival_after(Time::ZERO)
        .expect("FARM must detect the heavy hitter");
    detected.as_nanos() as f64 / 1e6
}

/// Measures sFlow's detection time (RFC-typical 100 ms counter export).
pub fn sflow_detection_ms() -> f64 {
    let topo = sap_cluster();
    let mut net = Network::new(topo);
    let leaf = net.topology().leaves().next().unwrap();
    let ids = net.switch_ids();
    let mut sflow = SflowSystem::new(
        &ids,
        SflowConfig {
            counter_interval: Dur::from_millis(100),
            hh_threshold_bps: 800_000_000,
            ..Default::default()
        },
    );
    let mut hh = traffic(leaf);
    let tick = Dur::from_millis(10);
    let mut now = Time::ZERO;
    while now < Time::from_secs(2) {
        let events = hh.advance(now, tick);
        net.apply_traffic(&events);
        sflow.observe_traffic(&events, &mut net);
        now += tick;
        sflow.advance(now, &mut net);
    }
    let detected = sflow
        .first_detection_after(Time::ZERO, leaf)
        .expect("sFlow must detect the heavy hitter");
    detected.as_nanos() as f64 / 1e6
}

/// Measures Sonata's detection time through the streaming pipeline.
pub fn sonata_detection_ms() -> f64 {
    let topo = sap_cluster();
    let mut net = Network::new(topo);
    let leaf = net.topology().leaves().next().unwrap();
    let ids = net.switch_ids();
    let mut sonata = SonataSystem::new(
        &ids,
        SonataConfig {
            hh_threshold_bps: 800_000_000,
            ..Default::default()
        },
    );
    let mut hh = traffic(leaf);
    let tick = Dur::from_millis(50);
    let mut now = Time::ZERO;
    while now < Time::from_secs(8) {
        let events = hh.advance(now, tick);
        net.apply_traffic(&events);
        sonata.observe_traffic(&events, &mut net);
        now += tick;
        sonata.advance(now);
    }
    let detected = sonata
        .first_detection_after(Time::ZERO, leaf)
        .expect("Sonata must detect the heavy hitter");
    detected.as_nanos() as f64 / 1e6
}

/// Runs the whole table.
pub fn run() -> Vec<DetectionRow> {
    vec![
        DetectionRow {
            system: "FARM".into(),
            kind: "G",
            detect_ms: farm_detection_ms(),
        },
        DetectionRow {
            system: "Planck".into(),
            kind: "S",
            detect_ms: PlanckModel::at_10gbps().detection_latency().as_nanos() as f64 / 1e6,
        },
        DetectionRow {
            system: "Helios".into(),
            kind: "S",
            detect_ms: HeliosModel::published().detection_latency().as_nanos() as f64 / 1e6,
        },
        DetectionRow {
            system: "sFlow".into(),
            kind: "G",
            detect_ms: sflow_detection_ms(),
        },
        DetectionRow {
            system: "Sonata".into(),
            kind: "G",
            detect_ms: sonata_detection_ms(),
        },
    ]
}

/// Paper-reported values for the comparison column.
pub fn paper_values() -> Vec<(&'static str, f64)> {
    vec![
        ("FARM", 1.0),
        ("Planck", 4.0),
        ("Helios", 77.0),
        ("sFlow", 100.0),
        ("Sonata", 3427.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_the_paper() {
        let rows = run();
        let get = |name: &str| {
            rows.iter()
                .find(|r| r.system == name)
                .map(|r| r.detect_ms)
                .unwrap()
        };
        let farm = get("FARM");
        let planck = get("Planck");
        let helios = get("Helios");
        let sflow = get("sFlow");
        let sonata = get("Sonata");
        assert!(
            farm < planck && planck < helios && helios < sflow && sflow < sonata,
            "Tab. 4 ordering violated: {farm} {planck} {helios} {sflow} {sonata}"
        );
        // FARM in the ~1 ms band; Sonata in the seconds band.
        assert!(farm <= 3.0, "FARM detection {farm} ms too slow");
        assert!(sonata >= 3000.0, "Sonata detection {sonata} ms too fast");
        // The headline speedup factor: thousands of times over Sonata.
        assert!(sonata / farm > 1000.0);
    }
}
