//! Fig. 9 — the soil-side CPU cost of poll-request aggregation, with
//! seeds as threads vs processes.
//!
//! Aggregation trades PCIe bandwidth for soil CPU: the soil merges
//! identical requests and fans results back out. For thread seeds the
//! fan-out is an in-address-space copy (negligible); for process seeds it
//! marshals across address spaces — the visible cost in the paper's
//! figure.

use farm_netsim::time::{Dur, Time};
use farm_soil::{ChannelKind, CommModel, ExecMode, SoilConfig};

use crate::support::{farm_with, hh_source_at, no_externals, single_switch};

/// One measurement: soil CPU at a given seed count and configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregationRow {
    pub seeds: usize,
    pub threads_aggregated_percent: f64,
    pub threads_unaggregated_percent: f64,
    pub processes_aggregated_percent: f64,
    pub processes_unaggregated_percent: f64,
}

const WINDOW_MS: u64 = 200;

fn measure(seeds: usize, exec: ExecMode, aggregation: bool) -> f64 {
    let cfg = SoilConfig {
        comm: CommModel {
            exec,
            channel: ChannelKind::SharedBuffer,
        },
        aggregation,
        ..Default::default()
    };
    let mut farm = farm_with(single_switch(), cfg);
    let leaf = farm.network().topology().leaves().next().unwrap();
    let src = hh_source_at(10, leaf.0, i64::MAX / 4);
    let tasks: Vec<(String, String)> = (0..seeds).map(|i| (format!("t{i}"), src.clone())).collect();
    let refs: Vec<(
        &str,
        &str,
        std::collections::BTreeMap<String, farm_almanac::analysis::ConstEnv>,
    )> = tasks
        .iter()
        .map(|(n, s)| (n.as_str(), s.as_str(), no_externals()))
        .collect();
    farm.deploy_tasks(&refs).unwrap();
    farm.network_mut().switch_mut(leaf).unwrap().reset_meters();
    farm.advance(Time::from_millis(WINDOW_MS));
    let sw = farm.network().switch(leaf).unwrap();
    sw.cpu().busy().as_secs_f64() / Dur::from_millis(WINDOW_MS).as_secs_f64() * 100.0
}

/// Runs the figure.
pub fn run(seed_counts: &[usize]) -> Vec<AggregationRow> {
    seed_counts
        .iter()
        .map(|&seeds| AggregationRow {
            seeds,
            threads_aggregated_percent: measure(seeds, ExecMode::Threads, true),
            threads_unaggregated_percent: measure(seeds, ExecMode::Threads, false),
            processes_aggregated_percent: measure(seeds, ExecMode::Processes, true),
            processes_unaggregated_percent: measure(seeds, ExecMode::Processes, false),
        })
        .collect()
}

/// Quick axis.
pub const QUICK_SEEDS: &[usize] = &[10, 50, 100];
/// Full axis.
pub const FULL_SEEDS: &[usize] = &[1, 25, 50, 75, 100, 125, 150];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_cost_only_matters_for_processes() {
        let rows = run(&[60]);
        let r = &rows[0];
        // Threads: aggregation is ~free.
        let thread_overhead = r.threads_aggregated_percent - r.threads_unaggregated_percent;
        // Processes: aggregation visibly costs soil CPU.
        let process_overhead = r.processes_aggregated_percent - r.processes_unaggregated_percent;
        assert!(
            process_overhead > thread_overhead.abs() * 3.0 || process_overhead > 1.0,
            "process aggregation overhead ({process_overhead}%) must dominate \
             thread overhead ({thread_overhead}%)"
        );
        // Processes are never cheaper than threads.
        assert!(r.processes_aggregated_percent > r.threads_aggregated_percent);
    }
}
