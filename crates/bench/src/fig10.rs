//! Fig. 10 — soil↔seed communication latency: the tailor-fitted shared
//! buffer vs gRPC, with seeds as threads vs processes.
//!
//! The model curves reproduce the published shapes (gRPC linear in the
//! seed count, shared buffer near-flat); [`real_ring_buffer_round_trip`]
//! additionally measures the actual shared-memory ring buffer with two
//! OS threads, demonstrating the mechanism rather than just its model.

use std::sync::Arc;
use std::time::{Duration, Instant};

use farm_soil::{ChannelKind, CommModel, ExecMode, SharedRingBuffer};

/// One latency point per configuration, microseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct IpcLatencyRow {
    pub seeds: usize,
    pub shared_threads_us: f64,
    pub shared_processes_us: f64,
    pub grpc_threads_us: f64,
    pub grpc_processes_us: f64,
}

/// Runs the model curves.
pub fn run(seed_counts: &[usize]) -> Vec<IpcLatencyRow> {
    let us = |m: CommModel, n: usize| m.delivery_latency(n).as_nanos() as f64 / 1e3;
    seed_counts
        .iter()
        .map(|&seeds| IpcLatencyRow {
            seeds,
            shared_threads_us: us(
                CommModel {
                    exec: ExecMode::Threads,
                    channel: ChannelKind::SharedBuffer,
                },
                seeds,
            ),
            shared_processes_us: us(
                CommModel {
                    exec: ExecMode::Processes,
                    channel: ChannelKind::SharedBuffer,
                },
                seeds,
            ),
            grpc_threads_us: us(
                CommModel {
                    exec: ExecMode::Threads,
                    channel: ChannelKind::Grpc,
                },
                seeds,
            ),
            grpc_processes_us: us(
                CommModel {
                    exec: ExecMode::Processes,
                    channel: ChannelKind::Grpc,
                },
                seeds,
            ),
        })
        .collect()
}

/// Measures the real shared ring buffer: mean one-hop latency of
/// `rounds` ping-pong messages between two threads, in microseconds.
pub fn real_ring_buffer_round_trip(rounds: u32) -> f64 {
    let ping: Arc<SharedRingBuffer<Instant>> = Arc::new(SharedRingBuffer::new(64));
    let pong: Arc<SharedRingBuffer<Duration>> = Arc::new(SharedRingBuffer::new(64));
    let echo = {
        let ping = Arc::clone(&ping);
        let pong = Arc::clone(&pong);
        std::thread::spawn(move || {
            for _ in 0..rounds {
                if let Some(sent) = ping.pop_timeout(Duration::from_secs(5)) {
                    let _ = pong.push(sent.elapsed());
                }
            }
        })
    };
    let mut total = Duration::ZERO;
    let mut got = 0u32;
    for _ in 0..rounds {
        let _ = ping.push(Instant::now());
        if let Some(one_way) = pong.pop_timeout(Duration::from_secs(5)) {
            total += one_way;
            got += 1;
        }
    }
    echo.join().expect("echo thread");
    if got == 0 {
        return f64::NAN;
    }
    total.as_secs_f64() / got as f64 * 1e6
}

/// Quick axis.
pub const QUICK_SEEDS: &[usize] = &[1, 50, 150];
/// Full axis.
pub const FULL_SEEDS: &[usize] = &[1, 25, 50, 75, 100, 125, 150];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grpc_is_the_latency_bottleneck_at_scale() {
        let rows = run(&[1, 150]);
        let small = &rows[0];
        let big = &rows[1];
        // gRPC scales linearly with deployed seeds (Fig. 10).
        assert!(big.grpc_threads_us > small.grpc_threads_us * 5.0);
        // The shared buffer's overhead stays marginal even at 150 seeds.
        assert!(big.shared_threads_us < 10.0);
        assert!(big.shared_threads_us < big.grpc_threads_us / 50.0);
    }

    #[test]
    fn real_ring_buffer_is_microseconds_fast() {
        let us = real_ring_buffer_round_trip(2000);
        assert!(us.is_finite());
        assert!(
            us < 1000.0,
            "one-hop shared-buffer latency should be far below 1 ms, got {us} µs"
        );
    }
}
