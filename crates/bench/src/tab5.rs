//! Tab. V — feature matrix of generic M&M solutions, as discussed in the
//! paper's § VII related-work analysis.

/// Feature support level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Support {
    Yes,
    Partial,
    No,
}

impl Support {
    pub fn glyph(&self) -> &'static str {
        match self {
            Support::Yes => "●",
            Support::Partial => "◐",
            Support::No => "○",
        }
    }
}

/// One system's row.
#[derive(Debug, Clone)]
pub struct FeatureRow {
    pub system: &'static str,
    /// \[DEC\] decentralized processing (switch-local analysis).
    pub decentralized: Support,
    /// \[EXP\] expressive stateful tasks beyond aggregates.
    pub expressive: Support,
    /// \[OPT\] global resource optimization across concurrent tasks.
    pub optimized: Support,
    /// \[IND\] platform independence.
    pub platform_independent: Support,
    /// Switch-local reactions (management, not just monitoring).
    pub local_reactions: Support,
    /// Dynamic deployment / migration without disruption.
    pub dynamic_deployment: Support,
}

/// The matrix (FARM plus the § VII generic systems).
pub fn run() -> Vec<FeatureRow> {
    use Support::*;
    vec![
        FeatureRow {
            system: "FARM",
            decentralized: Yes,
            expressive: Yes,
            optimized: Yes,
            platform_independent: Yes,
            local_reactions: Yes,
            dynamic_deployment: Yes,
        },
        FeatureRow {
            system: "sFlow",
            decentralized: No,
            expressive: No,
            optimized: No,
            platform_independent: Yes,
            local_reactions: No,
            dynamic_deployment: No,
        },
        FeatureRow {
            system: "Sonata",
            decentralized: Partial,
            expressive: Partial,
            optimized: Partial, // per-query MILP, not cross-task
            platform_independent: No,
            local_reactions: No,
            dynamic_deployment: No,
        },
        FeatureRow {
            system: "Newton",
            decentralized: Partial,
            expressive: Partial,
            optimized: No,
            platform_independent: No,
            local_reactions: No,
            dynamic_deployment: Partial, // dynamic queries, no migration
        },
        FeatureRow {
            system: "OmniMon",
            decentralized: Partial,
            expressive: No,
            optimized: No,
            platform_independent: Partial,
            local_reactions: No,
            dynamic_deployment: No,
        },
        FeatureRow {
            system: "BeauCoup",
            decentralized: Partial,
            expressive: No, // distinct-counting queries only
            optimized: No,
            platform_independent: No,
            local_reactions: No,
            dynamic_deployment: No,
        },
        FeatureRow {
            system: "Marple",
            decentralized: Partial,
            expressive: Partial, // limited aggregation primitives
            optimized: No,
            platform_independent: Partial,
            local_reactions: No,
            dynamic_deployment: No,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn farm_is_the_only_full_row() {
        let rows = run();
        let full = |r: &FeatureRow| {
            [
                r.decentralized,
                r.expressive,
                r.optimized,
                r.platform_independent,
                r.local_reactions,
                r.dynamic_deployment,
            ]
            .iter()
            .all(|s| *s == Support::Yes)
        };
        assert!(full(&rows[0]));
        assert!(rows[1..].iter().all(|r| !full(r)));
    }

    #[test]
    fn matrix_covers_the_section_vii_systems() {
        let names: Vec<_> = run().iter().map(|r| r.system).collect();
        for expected in [
            "FARM", "sFlow", "Sonata", "Newton", "OmniMon", "BeauCoup", "Marple",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }
}
