//! Reproduces the FARM paper's tables and figures as text output.
//!
//! ```text
//! repro [tab1|tab4|fig4|fig5|fig6|fig7|fig8|fig9|fig10|tab5|all] [--full]
//! ```
//!
//! Quick mode (default) uses reduced axes/deadlines; `--full` runs the
//! paper-scale study (notably Fig. 7 at 1 040 switches / 10 200 seeds).

use farm_bench::support::render_table;
use farm_bench::{fig10, fig4, fig5, fig6, fig7, fig8, fig9, tab1, tab4, tab5};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");

    let all = what == "all";
    if all || what == "tab1" {
        run_tab1();
    }
    if all || what == "tab4" {
        run_tab4();
    }
    if all || what == "fig4" {
        run_fig4(full);
    }
    if all || what == "fig5" {
        run_fig5(full);
    }
    if all || what == "fig6" {
        run_fig6(full);
    }
    if all || what == "fig7" {
        run_fig7(full);
    }
    if all || what == "fig8" {
        run_fig8(full);
    }
    if all || what == "fig9" {
        run_fig9(full);
    }
    if all || what == "fig10" {
        run_fig10(full);
    }
    if all || what == "tab5" {
        run_tab5();
    }
    if !all
        && !matches!(
            what,
            "tab1"
                | "tab4"
                | "fig4"
                | "fig5"
                | "fig6"
                | "fig7"
                | "fig8"
                | "fig9"
                | "fig10"
                | "tab5"
        )
    {
        eprintln!(
            "unknown experiment `{what}`; expected one of tab1 tab4 fig4 fig5 fig6 fig7 \
             fig8 fig9 fig10 tab5 all"
        );
        std::process::exit(2);
    }
}

fn run_tab1() {
    let rows: Vec<Vec<String>> = tab1::run()
        .into_iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                r.our_loc.to_string(),
                r.paper_seed_loc.to_string(),
                r.paper_harvester_loc.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Tab. I — Almanac use cases (lines of code)",
            &["use case", "ours", "paper seed", "paper harvester"],
            &rows
        )
    );
    println!();
}

fn run_tab4() {
    let measured = tab4::run();
    let paper = tab4::paper_values();
    let rows: Vec<Vec<String>> = measured
        .iter()
        .map(|r| {
            let paper_ms = paper
                .iter()
                .find(|(n, _)| *n == r.system)
                .map(|(_, v)| *v)
                .unwrap_or(f64::NAN);
            vec![
                r.system.clone(),
                r.kind.to_string(),
                format!("{:.2}", r.detect_ms),
                format!("{paper_ms:.0}"),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Tab. 4 — HH detection time (ms)",
            &["system", "type", "measured", "paper"],
            &rows
        )
    );
    println!();
}

fn run_fig4(full: bool) {
    let axis = if full {
        fig4::FULL_PORTS
    } else {
        fig4::QUICK_PORTS
    };
    let rows: Vec<Vec<String>> = fig4::run(axis)
        .into_iter()
        .map(|r| {
            vec![
                r.ports.to_string(),
                format!("{:.1}", r.farm_bps),
                format!("{:.0}", r.sflow_1ms_bps),
                format!("{:.0}", r.sflow_10ms_bps),
                format!("{:.0}", r.sonata_bps),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Fig. 4 — network load for HH detection (bits/s)",
            &["ports", "FARM", "sFlow 1ms", "sFlow 10ms", "Sonata 75%aggr"],
            &rows
        )
    );
    println!();
}

fn run_fig5(full: bool) {
    let axis = if full {
        fig5::FULL_FLOWS
    } else {
        fig5::QUICK_FLOWS
    };
    let rows: Vec<Vec<String>> = fig5::run(axis)
        .into_iter()
        .map(|r| {
            vec![
                r.flows.to_string(),
                format!("{:.1}", r.farm_cpu_percent),
                format!("{:.1}", r.sflow_cpu_percent),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Fig. 5 — switch CPU load, 10 ms accuracy (% of one core)",
            &["flows", "FARM", "sFlow"],
            &rows
        )
    );
    println!();
}

fn run_fig6(full: bool) {
    for panel in [
        fig6::Panel::HhFast,
        fig6::Panel::HhSlow,
        fig6::Panel::MlParallel,
        fig6::Panel::MlPartitioned,
    ] {
        let axis = if full {
            panel.full_axis()
        } else {
            panel.quick_axis()
        };
        let rows: Vec<Vec<String>> = fig6::run(panel, axis)
            .into_iter()
            .map(|r| {
                vec![
                    r.seeds.to_string(),
                    format!("{:.1}", r.cpu_percent),
                    format!("{:.1}", r.accuracy_percent),
                ]
            })
            .collect();
        print!(
            "{}",
            render_table(
                &format!(
                    "Fig. 6 — {} (CPU % of one core / polling accuracy %)",
                    panel.label()
                ),
                &["seeds", "CPU %", "accuracy %"],
                &rows
            )
        );
        println!();
    }
}

fn run_fig7(full: bool) {
    let cfg = if full {
        fig7::Fig7Config::full()
    } else {
        fig7::Fig7Config::quick()
    };
    let rows: Vec<Vec<String>> = fig7::run(&cfg)
        .into_iter()
        .map(|r| {
            vec![
                r.seeds.to_string(),
                format!("{:.0}", r.heuristic_utility),
                format!("{:.3}", r.heuristic_secs),
                format!("{:.0}", r.milp_short_utility),
                format!("{:.3}", r.milp_short_secs),
                format!("{:.0}", r.milp_long_utility),
                format!("{:.3}", r.milp_long_secs),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &format!(
                "Fig. 7 — placement at scale ({} switches, {} tasks, {} runs/point)",
                cfg.n_switches, cfg.n_tasks, cfg.runs_per_point
            ),
            &[
                "seeds",
                "FARM MU",
                "FARM s",
                "MILP-short MU",
                "MILP-short s",
                "MILP-long MU",
                "MILP-long s",
            ],
            &rows
        )
    );
    println!();
}

fn run_fig8(full: bool) {
    let axis = if full {
        fig8::FULL_SEEDS
    } else {
        fig8::QUICK_SEEDS
    };
    let rows: Vec<Vec<String>> = fig8::run(axis)
        .into_iter()
        .map(|r| {
            vec![
                r.seeds.to_string(),
                format!("{:.1}", r.pcie_unaggregated_percent),
                format!("{:.1}", r.pcie_aggregated_percent),
                format!("{:.4}", r.asic_percent),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Fig. 8 — PCIe vs ASIC utilization, 1 ms polls (%)",
            &["seeds", "PCIe (no aggr)", "PCIe (aggr)", "ASIC"],
            &rows
        )
    );
    println!();
}

fn run_fig9(full: bool) {
    let axis = if full {
        fig9::FULL_SEEDS
    } else {
        fig9::QUICK_SEEDS
    };
    let rows: Vec<Vec<String>> = fig9::run(axis)
        .into_iter()
        .map(|r| {
            vec![
                r.seeds.to_string(),
                format!("{:.1}", r.threads_aggregated_percent),
                format!("{:.1}", r.threads_unaggregated_percent),
                format!("{:.1}", r.processes_aggregated_percent),
                format!("{:.1}", r.processes_unaggregated_percent),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Fig. 9 — soil CPU cost of aggregation (% of one core)",
            &["seeds", "thr+aggr", "thr", "proc+aggr", "proc"],
            &rows
        )
    );
    println!();
}

fn run_fig10(full: bool) {
    let axis = if full {
        fig10::FULL_SEEDS
    } else {
        fig10::QUICK_SEEDS
    };
    let rows: Vec<Vec<String>> = fig10::run(axis)
        .into_iter()
        .map(|r| {
            vec![
                r.seeds.to_string(),
                format!("{:.2}", r.shared_threads_us),
                format!("{:.2}", r.shared_processes_us),
                format!("{:.2}", r.grpc_threads_us),
                format!("{:.2}", r.grpc_processes_us),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Fig. 10 — soil↔seed delivery latency (µs)",
            &[
                "seeds",
                "shared/thr",
                "shared/proc",
                "gRPC/thr",
                "gRPC/proc"
            ],
            &rows
        )
    );
    println!(
        "real shared ring buffer (2 threads, one hop): {:.2} µs\n",
        fig10::real_ring_buffer_round_trip(5000)
    );
}

fn run_tab5() {
    let rows: Vec<Vec<String>> = tab5::run()
        .into_iter()
        .map(|r| {
            vec![
                r.system.to_string(),
                r.decentralized.glyph().to_string(),
                r.expressive.glyph().to_string(),
                r.optimized.glyph().to_string(),
                r.platform_independent.glyph().to_string(),
                r.local_reactions.glyph().to_string(),
                r.dynamic_deployment.glyph().to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Tab. V — features of generic M&M solutions (● yes ◐ partial ○ no)",
            &["system", "[DEC]", "[EXP]", "[OPT]", "[IND]", "react", "dynamic"],
            &rows
        )
    );
    println!();
}
