//! Machine-readable placement perf harness.
//!
//! Sweeps Fig. 10-scale instances (up to the paper's 10 200 seeds ×
//! 1 040 switches), times the heuristic per phase (greedy / LP
//! redistribution / migration) through the `SolverPhase` telemetry
//! events, verifies that the parallel solver is bit-identical to the
//! sequential one, and writes `BENCH_placement.json` in a stable schema
//! (`farm-bench/placement_scale/v2`) that future PRs append runs to.
//!
//! `--churn` adds a replay section: against a warm instance at each
//! scale it replays N single-seed churn events (resubmissions and
//! definition tweaks), timing a from-scratch `solve_heuristic` against
//! `replan_delta` through a retained `SolveState` on *identical*
//! inputs, asserting bit-equality of the two placements in-harness and
//! recording full/delta p50/p95 wall times plus frontier statistics.
//!
//! ```text
//! placement_scale [--smoke] [--churn] [--iters N] [--events N]
//!                 [--threads N] [--out PATH]
//!                 [--check BASELINE] [--max-regression X]
//! ```
//!
//! `--check` is the CI `bench-smoke` gate. It enforces three things:
//!
//! 1. every (seeds, switches, threads) entry's p50 wall time stays
//!    within `--max-regression` (default 2.0×) of the committed
//!    baseline (v1 or v2 baselines both accepted);
//! 2. every churn entry's delta-vs-full p50 speedup clears a floor —
//!    5.0× at ≥ 10 000 seeds (the ISSUE acceptance bar), 2.0× below;
//! 3. every `parallel_active` entry beats single-threaded (speedup above
//!    1.0). An entry is `parallel_active` only when `threads > 1`, the
//!    instance is at or above `parallel_threshold`, *and* the host has
//!    at least `threads` cores — a 1-core host can demonstrate
//!    determinism but not speedup, so it is exempt by construction.

use std::collections::BTreeMap;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use farm_bench::perf::{percentile, Json};
use farm_placement::delta::{replan_delta, ReplanDelta, SolveState};
use farm_placement::heuristic::{solve_heuristic, solve_heuristic_traced, HeuristicOptions};
use farm_placement::model::{validate, PlacementInstance, PlacementResult, PreviousPlacement};
use farm_placement::workload::{generate, WorkloadConfig};
use farm_telemetry::{Event, RingBufferSink, Telemetry};

const SCHEMA: &str = "farm-bench/placement_scale/v2";
const SCHEMA_V1: &str = "farm-bench/placement_scale/v1";
const PHASES: [&str; 3] = ["greedy", "lp_redistribution", "migration"];

struct Args {
    smoke: bool,
    churn: bool,
    iters: usize,
    events: usize,
    threads: usize,
    out: String,
    check: Option<String>,
    max_regression: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        churn: false,
        iters: 5,
        events: 0, // resolved after parsing: 12 smoke / 40 full
        threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
        out: "BENCH_placement.json".to_string(),
        check: None,
        max_regression: 2.0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--churn" => args.churn = true,
            "--iters" => args.iters = val("--iters")?.parse().map_err(|e| format!("{e}"))?,
            "--events" => args.events = val("--events")?.parse().map_err(|e| format!("{e}"))?,
            "--threads" => args.threads = val("--threads")?.parse().map_err(|e| format!("{e}"))?,
            "--out" => args.out = val("--out")?,
            "--check" => args.check = Some(val("--check")?),
            "--max-regression" => {
                args.max_regression = val("--max-regression")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.iters == 0 {
        return Err("--iters must be at least 1".into());
    }
    if args.events == 0 {
        args.events = if args.smoke { 12 } else { 40 };
    }
    Ok(args)
}

/// One timed solve: total wall micros plus per-phase micros drained from
/// the `SolverPhase` event stream.
fn timed_solve(
    instance: &PlacementInstance,
    threads: usize,
) -> (PlacementResult, f64, BTreeMap<&'static str, f64>, u64) {
    let telemetry = Telemetry::new();
    let ring = Arc::new(RingBufferSink::new(16));
    telemetry.add_sink(ring.clone());
    let start = Instant::now();
    let result = solve_heuristic_traced(
        instance,
        HeuristicOptions::with_threads(threads),
        Some(&telemetry),
    );
    let total_us = start.elapsed().as_nanos() as f64 / 1_000.0;
    let mut phases = BTreeMap::new();
    let mut migration_items = 0;
    for ev in ring.events() {
        if let Event::SolverPhase {
            phase,
            elapsed_ns,
            items,
        } = ev
        {
            if let Some(p) = PHASES.iter().find(|p| **p == phase) {
                phases.insert(*p, elapsed_ns as f64 / 1_000.0);
                if phase == "migration" {
                    migration_items = items;
                }
            }
        }
    }
    (result, total_us, phases, migration_items)
}

fn pct_obj(samples: &[f64]) -> Json {
    Json::obj([
        ("p50", Json::Num(percentile(samples, 0.50))),
        ("p95", Json::Num(percentile(samples, 0.95))),
    ])
}

fn as_previous(
    assignment: &[Option<(farm_netsim::types::SwitchId, farm_netsim::switch::Resources)>],
) -> PreviousPlacement {
    let mut prev = PreviousPlacement::default();
    for (s, slot) in assignment.iter().enumerate() {
        if let Some((n, res)) = slot {
            prev.assignment.insert(s, (*n, *res));
        }
    }
    prev
}

fn results_identical(a: &PlacementResult, b: &PlacementResult) -> bool {
    a.assignment == b.assignment
        && a.utility.to_bits() == b.utility.to_bits()
        && a.migrations == b.migrations
        && a.dropped_tasks == b.dropped_tasks
}

/// Churn replay at one scale: warm a retained [`SolveState`] on the
/// instance, then replay `events` single-seed churn events, timing a
/// from-scratch solve against the incremental one on identical inputs.
/// Returns the JSON entry plus the delta-vs-full p50 speedup for the
/// `--check` gate (`None` when equivalence was violated).
fn churn_replay(
    inst: &PlacementInstance,
    seeds: usize,
    switches: usize,
    tasks: usize,
    events: usize,
) -> (Json, Option<f64>) {
    let opts = HeuristicOptions::default();
    let mut inst = inst.clone();
    let mut state = SolveState::new();
    let (mut last, _) = replan_delta(&inst, opts, &mut state, &ReplanDelta::default(), None);
    // One warm no-change round so every memo entry exists before timing.
    inst.previous = Some(as_previous(&last.assignment));
    let (warm, _) = replan_delta(&inst, opts, &mut state, &ReplanDelta::default(), None);
    last = warm;

    let mut full_us = Vec::with_capacity(events);
    let mut delta_us = Vec::with_capacity(events);
    let mut delta_phases: BTreeMap<&'static str, Vec<f64>> =
        PHASES.iter().map(|p| (*p, Vec::new())).collect();
    let mut frontiers = Vec::with_capacity(events);
    let mut reused = Vec::with_capacity(events);
    let mut fallbacks = 0usize;
    let mut identical = true;
    for i in 0..events {
        inst.previous = Some(as_previous(&last.assignment));
        // Alternate the two single-seed event kinds the control plane
        // produces most often: a resubmission (the seed loses its seat
        // and is placed fresh — caught by the LP signatures alone) and
        // a definition tweak (invisible to signatures, declared dirty).
        let s = (i * 7919) % inst.seeds.len().max(1);
        let delta = if i % 2 == 0 {
            if let Some(prev) = &mut inst.previous {
                prev.assignment.remove(&s);
            }
            ReplanDelta::default()
        } else {
            match inst.seeds[s].polls.first_mut() {
                Some(p) => {
                    p.demand.constant += 0.01;
                    ReplanDelta::seeds([s])
                }
                None => ReplanDelta::default(),
            }
        };

        let t0 = Instant::now();
        let full = solve_heuristic(&inst, opts);
        full_us.push(t0.elapsed().as_nanos() as f64 / 1_000.0);

        let telemetry = Telemetry::new();
        let ring = Arc::new(RingBufferSink::new(16));
        telemetry.add_sink(ring.clone());
        let t1 = Instant::now();
        let (dr, report) = replan_delta(&inst, opts, &mut state, &delta, Some(&telemetry));
        delta_us.push(t1.elapsed().as_nanos() as f64 / 1_000.0);
        for ev in ring.events() {
            if let Event::SolverPhase {
                phase, elapsed_ns, ..
            } = ev
            {
                if let Some(p) = PHASES.iter().find(|p| **p == phase) {
                    delta_phases
                        .get_mut(p)
                        .expect("known phase")
                        .push(elapsed_ns as f64 / 1_000.0);
                }
            }
        }

        if !results_identical(&dr, &full) {
            eprintln!(
                "placement_scale: churn event {i} at {seeds} seeds: delta diverged from full"
            );
            identical = false;
        }
        frontiers.push(report.frontier as f64);
        reused.push(report.reused as f64);
        if report.fallback_full {
            fallbacks += 1;
        }
        last = dr;
    }

    let full_p50 = percentile(&full_us, 0.50);
    let delta_p50 = percentile(&delta_us, 0.50);
    let speedup = full_p50 / delta_p50.max(1e-9);
    println!(
        "  churn: {events} events, full p50 {:.0} us, delta p50 {:.0} us, speedup {speedup:.1}x, \
         frontier p50 {:.0}, fallbacks {fallbacks}, identical={identical}",
        full_p50,
        delta_p50,
        percentile(&frontiers, 0.50),
    );
    println!(
        "  churn delta phases p50:{}",
        delta_phases
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(p, v)| format!(" {p} {:.0} us", percentile(v, 0.50)))
            .collect::<String>(),
    );
    let delta_phase_us = Json::Obj(
        PHASES
            .iter()
            .filter(|p| !delta_phases[*p].is_empty())
            .map(|p| (p.to_string(), pct_obj(&delta_phases[p])))
            .collect(),
    );
    let entry = Json::obj([
        ("seeds", Json::Num(seeds as f64)),
        ("switches", Json::Num(switches as f64)),
        ("tasks", Json::Num(tasks as f64)),
        ("events", Json::Num(events as f64)),
        ("full_us", pct_obj(&full_us)),
        ("delta_us", pct_obj(&delta_us)),
        ("delta_phase_us", delta_phase_us),
        ("speedup_delta_vs_full", Json::Num(speedup)),
        ("frontier", pct_obj(&frontiers)),
        ("reused", pct_obj(&reused)),
        ("fallback_full", Json::Num(fallbacks as f64)),
        ("identical_to_full_solve", Json::Bool(identical)),
    ]);
    (entry, identical.then_some(speedup))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("placement_scale: {e}");
            return ExitCode::FAILURE;
        }
    };
    // (seeds, switches, tasks) scales; full mode tops out at the paper's
    // 10 200 × 1 040 regime, smoke keeps CI fast.
    let scales: &[(usize, usize, usize)] = if args.smoke {
        &[(1_000, 128, 8)]
    } else {
        &[(1_000, 128, 8), (4_000, 512, 10), (10_200, 1_040, 10)]
    };
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let parallel_threshold = HeuristicOptions::default().parallel_threshold;
    let mut thread_counts = vec![1usize, 2, args.threads.max(1)];
    thread_counts.sort_unstable();
    thread_counts.dedup();

    let mut entries = Vec::new();
    let mut churn_entries = Vec::new();
    // (seeds, speedup) per parallel_active entry, and per churn entry —
    // gate inputs collected in-memory so `--check` does not re-parse.
    let mut active_speedups: Vec<(usize, usize, Option<f64>)> = Vec::new();
    let mut churn_speedups: Vec<(usize, Option<f64>)> = Vec::new();
    let mut ok = true;
    for &(seeds, switches, tasks) in scales {
        println!("== {seeds} seeds x {switches} switches ({tasks} tasks) ==");
        let inst = generate(&WorkloadConfig {
            n_switches: switches,
            n_tasks: tasks,
            n_seeds: seeds,
            ..WorkloadConfig::default()
        });
        let mut reference: Option<PlacementResult> = None;
        let mut seq_p50: Option<f64> = None;
        for &threads in &thread_counts {
            let mut totals = Vec::with_capacity(args.iters);
            let mut phase_samples: BTreeMap<&'static str, Vec<f64>> =
                PHASES.iter().map(|p| (*p, Vec::new())).collect();
            let mut last = None;
            let mut migration_items = 0;
            // One discarded warmup solve so the first recorded iteration
            // does not pay cold caches / first-touch allocation.
            let _ = timed_solve(&inst, threads);
            for _ in 0..args.iters {
                let (result, total_us, phases, mig) = timed_solve(&inst, threads);
                totals.push(total_us);
                for (p, us) in phases {
                    phase_samples.get_mut(p).expect("known phase").push(us);
                }
                migration_items = mig;
                last = Some(result);
            }
            let result = last.expect("at least one iter");
            if let Err(e) = validate(&inst, &result) {
                eprintln!("placement_scale: invalid placement at threads={threads}: {e:?}");
                ok = false;
            }
            let identical = match &reference {
                None => {
                    reference = Some(result.clone());
                    true
                }
                Some(r) => results_identical(r, &result),
            };
            if !identical {
                eprintln!(
                    "placement_scale: threads={threads} diverged from sequential at {seeds} seeds"
                );
                ok = false;
            }
            let p50 = percentile(&totals, 0.50);
            if threads == 1 {
                seq_p50 = Some(p50);
            }
            let speedup = seq_p50.map(|s| s / p50);
            let parallel_active =
                threads > 1 && seeds >= parallel_threshold && host_threads >= threads;
            if parallel_active {
                active_speedups.push((seeds, threads, speedup));
            }
            let r = &result;
            println!(
                "  threads={threads}: p50 {:.0} us, p95 {:.0} us, utility {:.2}, placed {}, \
                 migrations {}, identical={identical}, parallel_active={parallel_active}{}",
                p50,
                percentile(&totals, 0.95),
                r.utility,
                r.placed(),
                r.migrations,
                speedup.map_or(String::new(), |s| format!(", speedup {s:.2}x")),
            );
            let phase_us = Json::Obj(
                PHASES
                    .iter()
                    .filter(|p| !phase_samples[*p].is_empty())
                    .map(|p| (p.to_string(), pct_obj(&phase_samples[p])))
                    .collect(),
            );
            entries.push(Json::obj([
                ("seeds", Json::Num(seeds as f64)),
                ("switches", Json::Num(switches as f64)),
                ("tasks", Json::Num(tasks as f64)),
                ("threads", Json::Num(threads as f64)),
                (
                    // Hardware context: with one host core, threads>1 can
                    // only demonstrate determinism, not speedup.
                    "host_threads",
                    Json::Num(host_threads as f64),
                ),
                ("parallel_threshold", Json::Num(parallel_threshold as f64)),
                ("parallel_active", Json::Bool(parallel_active)),
                ("iters", Json::Num(args.iters as f64)),
                ("total_us", pct_obj(&totals)),
                ("phase_us", phase_us),
                ("objective", Json::Num(r.utility)),
                ("placed", Json::Num(r.placed() as f64)),
                ("migrations", Json::Num(r.migrations as f64)),
                ("migration_moves", Json::Num(migration_items as f64)),
                ("dropped_tasks", Json::Num(r.dropped_tasks.len() as f64)),
                ("identical_to_single_thread", Json::Bool(identical)),
                (
                    "speedup_vs_single_thread",
                    speedup.map_or(Json::Null, Json::Num),
                ),
            ]));
        }
        if args.churn {
            let (entry, speedup) = churn_replay(&inst, seeds, switches, tasks, args.events);
            churn_entries.push(entry);
            churn_speedups.push((seeds, speedup));
        }
    }

    let doc = Json::obj([
        ("schema", Json::Str(SCHEMA.into())),
        ("entries", Json::Arr(entries)),
        ("churn", Json::Arr(churn_entries)),
    ]);
    if let Err(e) = std::fs::write(&args.out, doc.pretty()) {
        eprintln!("placement_scale: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", args.out);

    if args.check.is_some() {
        // Gate 2: churn speedup floors (on this run's own numbers).
        for &(seeds, speedup) in &churn_speedups {
            let floor = if seeds >= 10_000 { 5.0 } else { 2.0 };
            match speedup {
                Some(s) if s >= floor => {
                    println!("churn gate: {seeds} seeds speedup {s:.1}x >= {floor}x");
                }
                Some(s) => {
                    eprintln!(
                        "placement_scale: churn speedup {s:.1}x below the {floor}x floor at \
                         {seeds} seeds"
                    );
                    ok = false;
                }
                None => {
                    eprintln!("placement_scale: churn equivalence failed at {seeds} seeds");
                    ok = false;
                }
            }
        }
        // Gate 3: profitable parallelism wherever it actually engaged.
        for &(seeds, threads, speedup) in &active_speedups {
            match speedup {
                Some(s) if s > 1.0 => {
                    println!("parallel gate: {seeds} seeds threads={threads} speedup {s:.2}x");
                }
                Some(s) => {
                    eprintln!(
                        "placement_scale: parallel_active threads={threads} at {seeds} seeds \
                         is not profitable (speedup {s:.2}x <= 1.0)"
                    );
                    ok = false;
                }
                None => {}
            }
        }
    }

    if let Some(baseline_path) = &args.check {
        match check_regression(&doc, baseline_path, args.max_regression) {
            Ok(report) => println!("{report}"),
            Err(e) => {
                eprintln!("placement_scale: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Compares the run against a committed baseline: every entry sharing
/// (seeds, switches, threads) must keep `total_us.p50` within
/// `max_regression ×` of the baseline. Accepts v1 and v2 baselines (v1
/// has no churn section; churn entries are compared when both sides
/// carry them, keyed by (seeds, switches)).
fn check_regression(
    doc: &Json,
    baseline_path: &str,
    max_regression: f64,
) -> Result<String, String> {
    let body = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let baseline = Json::parse(&body).map_err(|e| format!("bad baseline JSON: {e}"))?;
    let schema = baseline.get("schema").and_then(Json::as_str);
    if schema != Some(SCHEMA) && schema != Some(SCHEMA_V1) {
        return Err(format!("baseline {baseline_path} has a different schema"));
    }
    let key = |e: &Json| -> Option<(u64, u64, u64)> {
        Some((
            e.get("seeds")?.as_f64()? as u64,
            e.get("switches")?.as_f64()? as u64,
            e.get("threads")?.as_f64()? as u64,
        ))
    };
    let p50_of = |e: &Json, field: &str| {
        e.get(field)
            .and_then(|t| t.get("p50"))
            .and_then(Json::as_f64)
    };
    let base_entries = baseline
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or("baseline has no entries")?;
    let mut compared = 0;
    let mut worst: f64 = 0.0;
    for entry in doc.get("entries").and_then(Json::as_arr).unwrap_or(&[]) {
        let Some(k) = key(entry) else { continue };
        let Some(new_p50) = p50_of(entry, "total_us") else {
            continue;
        };
        let Some(base_p50) = base_entries
            .iter()
            .find(|b| key(b) == Some(k))
            .and_then(|b| p50_of(b, "total_us"))
        else {
            continue; // scale not in the baseline (e.g. smoke vs full)
        };
        let ratio = new_p50 / base_p50.max(1e-9);
        compared += 1;
        worst = worst.max(ratio);
        if ratio > max_regression {
            return Err(format!(
                "regression: {}x{} threads={} p50 {new_p50:.0} us vs baseline {base_p50:.0} us \
                 ({ratio:.2}x > {max_regression}x)",
                k.0, k.1, k.2
            ));
        }
    }
    // Churn regression: delta p50 against the baseline's, same limit.
    let churn_key = |e: &Json| -> Option<(u64, u64)> {
        Some((
            e.get("seeds")?.as_f64()? as u64,
            e.get("switches")?.as_f64()? as u64,
        ))
    };
    let base_churn = baseline.get("churn").and_then(Json::as_arr).unwrap_or(&[]);
    for entry in doc.get("churn").and_then(Json::as_arr).unwrap_or(&[]) {
        let Some(k) = churn_key(entry) else { continue };
        let Some(new_p50) = p50_of(entry, "delta_us") else {
            continue;
        };
        let Some(base_p50) = base_churn
            .iter()
            .find(|b| churn_key(b) == Some(k))
            .and_then(|b| p50_of(b, "delta_us"))
        else {
            continue;
        };
        let ratio = new_p50 / base_p50.max(1e-9);
        compared += 1;
        worst = worst.max(ratio);
        if ratio > max_regression {
            return Err(format!(
                "churn regression: {}x{} delta p50 {new_p50:.0} us vs baseline {base_p50:.0} us \
                 ({ratio:.2}x > {max_regression}x)",
                k.0, k.1
            ));
        }
    }
    if compared == 0 {
        return Err(format!(
            "no comparable entries between run and baseline {baseline_path}"
        ));
    }
    Ok(format!(
        "regression check vs {baseline_path}: {compared} entries, worst ratio {worst:.2}x \
         (limit {max_regression}x)"
    ))
}
