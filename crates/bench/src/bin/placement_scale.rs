//! Machine-readable placement perf harness.
//!
//! Sweeps Fig. 10-scale instances (up to the paper's 10 200 seeds ×
//! 1 040 switches), times the heuristic per phase (greedy / LP
//! redistribution / migration) through the `SolverPhase` telemetry
//! events, verifies that the parallel solver is bit-identical to the
//! sequential one, and writes `BENCH_placement.json` in a stable schema
//! (`farm-bench/placement_scale/v1`) that future PRs append runs to.
//!
//! ```text
//! placement_scale [--smoke] [--iters N] [--threads N] [--out PATH]
//!                 [--check BASELINE] [--max-regression X]
//! ```
//!
//! `--check` re-reads a committed baseline and exits non-zero when any
//! matching (seeds, switches, threads) entry's p50 wall time regressed
//! by more than `--max-regression` (default 2.0) — the CI `bench-smoke`
//! gate.

use std::collections::BTreeMap;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use farm_bench::perf::{percentile, Json};
use farm_placement::heuristic::{solve_heuristic_traced, HeuristicOptions};
use farm_placement::model::{validate, PlacementInstance, PlacementResult};
use farm_placement::workload::{generate, WorkloadConfig};
use farm_telemetry::{Event, RingBufferSink, Telemetry};

const SCHEMA: &str = "farm-bench/placement_scale/v1";
const PHASES: [&str; 3] = ["greedy", "lp_redistribution", "migration"];

struct Args {
    smoke: bool,
    iters: usize,
    threads: usize,
    out: String,
    check: Option<String>,
    max_regression: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        iters: 5,
        threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
        out: "BENCH_placement.json".to_string(),
        check: None,
        max_regression: 2.0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--iters" => args.iters = val("--iters")?.parse().map_err(|e| format!("{e}"))?,
            "--threads" => args.threads = val("--threads")?.parse().map_err(|e| format!("{e}"))?,
            "--out" => args.out = val("--out")?,
            "--check" => args.check = Some(val("--check")?),
            "--max-regression" => {
                args.max_regression = val("--max-regression")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.iters == 0 {
        return Err("--iters must be at least 1".into());
    }
    Ok(args)
}

/// One timed solve: total wall micros plus per-phase micros drained from
/// the `SolverPhase` event stream.
fn timed_solve(
    instance: &PlacementInstance,
    threads: usize,
) -> (PlacementResult, f64, BTreeMap<&'static str, f64>, u64) {
    let telemetry = Telemetry::new();
    let ring = Arc::new(RingBufferSink::new(16));
    telemetry.add_sink(ring.clone());
    let start = Instant::now();
    let result = solve_heuristic_traced(
        instance,
        HeuristicOptions::with_threads(threads),
        Some(&telemetry),
    );
    let total_us = start.elapsed().as_nanos() as f64 / 1_000.0;
    let mut phases = BTreeMap::new();
    let mut migration_items = 0;
    for ev in ring.events() {
        if let Event::SolverPhase {
            phase,
            elapsed_ns,
            items,
        } = ev
        {
            if let Some(p) = PHASES.iter().find(|p| **p == phase) {
                phases.insert(*p, elapsed_ns as f64 / 1_000.0);
                if phase == "migration" {
                    migration_items = items;
                }
            }
        }
    }
    (result, total_us, phases, migration_items)
}

fn pct_obj(samples: &[f64]) -> Json {
    Json::obj([
        ("p50", Json::Num(percentile(samples, 0.50))),
        ("p95", Json::Num(percentile(samples, 0.95))),
    ])
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("placement_scale: {e}");
            return ExitCode::FAILURE;
        }
    };
    // (seeds, switches, tasks) scales; full mode tops out at the paper's
    // 10 200 × 1 040 regime, smoke keeps CI fast.
    let scales: &[(usize, usize, usize)] = if args.smoke {
        &[(1_000, 128, 8)]
    } else {
        &[(1_000, 128, 8), (4_000, 512, 10), (10_200, 1_040, 10)]
    };
    let mut thread_counts = vec![1usize, 2, args.threads.max(1)];
    thread_counts.sort_unstable();
    thread_counts.dedup();

    let mut entries = Vec::new();
    let mut ok = true;
    for &(seeds, switches, tasks) in scales {
        println!("== {seeds} seeds x {switches} switches ({tasks} tasks) ==");
        let inst = generate(&WorkloadConfig {
            n_switches: switches,
            n_tasks: tasks,
            n_seeds: seeds,
            ..WorkloadConfig::default()
        });
        let mut reference: Option<PlacementResult> = None;
        let mut seq_p50: Option<f64> = None;
        for &threads in &thread_counts {
            let mut totals = Vec::with_capacity(args.iters);
            let mut phase_samples: BTreeMap<&'static str, Vec<f64>> =
                PHASES.iter().map(|p| (*p, Vec::new())).collect();
            let mut last = None;
            let mut migration_items = 0;
            // One discarded warmup solve so the first recorded iteration
            // does not pay cold caches / first-touch allocation.
            let _ = timed_solve(&inst, threads);
            for _ in 0..args.iters {
                let (result, total_us, phases, mig) = timed_solve(&inst, threads);
                totals.push(total_us);
                for (p, us) in phases {
                    phase_samples.get_mut(p).expect("known phase").push(us);
                }
                migration_items = mig;
                last = Some(result);
            }
            let result = last.expect("at least one iter");
            if let Err(e) = validate(&inst, &result) {
                eprintln!("placement_scale: invalid placement at threads={threads}: {e:?}");
                ok = false;
            }
            let identical = match &reference {
                None => {
                    reference = Some(result.clone());
                    true
                }
                Some(r) => {
                    r.assignment == result.assignment
                        && r.utility.to_bits() == result.utility.to_bits()
                        && r.migrations == result.migrations
                        && r.dropped_tasks == result.dropped_tasks
                }
            };
            if !identical {
                eprintln!(
                    "placement_scale: threads={threads} diverged from sequential at {seeds} seeds"
                );
                ok = false;
            }
            let p50 = percentile(&totals, 0.50);
            if threads == 1 {
                seq_p50 = Some(p50);
            }
            let speedup = seq_p50.map(|s| s / p50);
            let r = &result;
            println!(
                "  threads={threads}: p50 {:.0} us, p95 {:.0} us, utility {:.2}, placed {}, \
                 migrations {}, identical={identical}{}",
                p50,
                percentile(&totals, 0.95),
                r.utility,
                r.placed(),
                r.migrations,
                speedup.map_or(String::new(), |s| format!(", speedup {s:.2}x")),
            );
            let phase_us = Json::Obj(
                PHASES
                    .iter()
                    .filter(|p| !phase_samples[*p].is_empty())
                    .map(|p| (p.to_string(), pct_obj(&phase_samples[p])))
                    .collect(),
            );
            entries.push(Json::obj([
                ("seeds", Json::Num(seeds as f64)),
                ("switches", Json::Num(switches as f64)),
                ("tasks", Json::Num(tasks as f64)),
                ("threads", Json::Num(threads as f64)),
                (
                    // Hardware context: with one host core, threads>1 can
                    // only demonstrate determinism, not speedup.
                    "host_threads",
                    Json::Num(std::thread::available_parallelism().map_or(1, |n| n.get()) as f64),
                ),
                ("iters", Json::Num(args.iters as f64)),
                ("total_us", pct_obj(&totals)),
                ("phase_us", phase_us),
                ("objective", Json::Num(r.utility)),
                ("placed", Json::Num(r.placed() as f64)),
                ("migrations", Json::Num(r.migrations as f64)),
                ("migration_moves", Json::Num(migration_items as f64)),
                ("dropped_tasks", Json::Num(r.dropped_tasks.len() as f64)),
                ("identical_to_single_thread", Json::Bool(identical)),
                (
                    "speedup_vs_single_thread",
                    speedup.map_or(Json::Null, Json::Num),
                ),
            ]));
        }
    }

    let doc = Json::obj([
        ("schema", Json::Str(SCHEMA.into())),
        ("entries", Json::Arr(entries)),
    ]);
    if let Err(e) = std::fs::write(&args.out, doc.pretty()) {
        eprintln!("placement_scale: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", args.out);

    if let Some(baseline_path) = &args.check {
        match check_regression(&doc, baseline_path, args.max_regression) {
            Ok(report) => println!("{report}"),
            Err(e) => {
                eprintln!("placement_scale: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Compares the run against a committed baseline: every entry sharing
/// (seeds, switches, threads) must keep `total_us.p50` within
/// `max_regression ×` of the baseline.
fn check_regression(
    doc: &Json,
    baseline_path: &str,
    max_regression: f64,
) -> Result<String, String> {
    let body = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let baseline = Json::parse(&body).map_err(|e| format!("bad baseline JSON: {e}"))?;
    if baseline.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
        return Err(format!("baseline {baseline_path} has a different schema"));
    }
    let key = |e: &Json| -> Option<(u64, u64, u64)> {
        Some((
            e.get("seeds")?.as_f64()? as u64,
            e.get("switches")?.as_f64()? as u64,
            e.get("threads")?.as_f64()? as u64,
        ))
    };
    let p50_of = |e: &Json| {
        e.get("total_us")
            .and_then(|t| t.get("p50"))
            .and_then(Json::as_f64)
    };
    let base_entries = baseline
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or("baseline has no entries")?;
    let mut compared = 0;
    let mut worst: f64 = 0.0;
    for entry in doc.get("entries").and_then(Json::as_arr).unwrap_or(&[]) {
        let Some(k) = key(entry) else { continue };
        let Some(new_p50) = p50_of(entry) else {
            continue;
        };
        let Some(base_p50) = base_entries
            .iter()
            .find(|b| key(b) == Some(k))
            .and_then(p50_of)
        else {
            continue; // scale not in the baseline (e.g. smoke vs full)
        };
        let ratio = new_p50 / base_p50.max(1e-9);
        compared += 1;
        worst = worst.max(ratio);
        if ratio > max_regression {
            return Err(format!(
                "regression: {}x{} threads={} p50 {new_p50:.0} us vs baseline {base_p50:.0} us \
                 ({ratio:.2}x > {max_regression}x)",
                k.0, k.1, k.2
            ));
        }
    }
    if compared == 0 {
        return Err(format!(
            "no comparable entries between run and baseline {baseline_path}"
        ));
    }
    Ok(format!(
        "regression check vs {baseline_path}: {compared} entries, worst ratio {worst:.2}x \
         (limit {max_regression}x)"
    ))
}
