//! Machine-readable transport perf harness.
//!
//! Stands up a real [`NetServer`] (the readiness-polling event loop) on
//! loopback, ramps thousands of concurrent client connections against
//! it, and measures what the FARM control plane cares about: RPC
//! round-trip latency under a mostly-idle fleet, pipelined frame
//! throughput, and the connection count the event loop actually holds
//! (read back from the `net.server_conns` gauge). The sweep covers two
//! axes — connection count and message rate (the pipelining depth each
//! chatty connection bursts before draining, `burst = 1` being strict
//! request/response) — and results land in `BENCH_net.json` in a
//! stable schema (`farm-bench/net_scale/v2`) that future PRs append
//! runs to.
//!
//! ```text
//! net_scale [--smoke] [--iters N] [--out PATH]
//!           [--check BASELINE] [--max-regression X]
//! ```
//!
//! `--check` re-reads a committed baseline and exits non-zero when any
//! matching (conns, burst) entry's RPC p50 regressed — or its frame
//! throughput dropped — by more than `--max-regression` (default 3.0),
//! the CI `net-scale-smoke` gate. Loopback micro-latencies are noisier
//! than solver wall times, hence the wider default than
//! `placement_scale`.
//!
//! The full sweep needs ~2 file descriptors per connection (client +
//! accepted side share the process). The harness probes `RLIMIT_NOFILE`
//! and tries to raise the soft limit; if the hard limit still cannot
//! cover a scale, that scale is trimmed to fit and the entry records
//! the trimmed count rather than failing the run.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use farm_bench::perf::{percentile, Json};
use farm_net::{encode_envelope, Decoded, Envelope, Frame, FrameDecoder, NetServer};
use farm_telemetry::Telemetry;

const SCHEMA: &str = "farm-bench/net_scale/v2";
/// Spare descriptors left for the listener, epoll/pipe fds, stdio.
const FD_HEADROOM: u64 = 64;

struct Args {
    smoke: bool,
    iters: usize,
    out: String,
    check: Option<String>,
    max_regression: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        iters: 50,
        out: "BENCH_net.json".to_string(),
        check: None,
        max_regression: 3.0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--iters" => args.iters = val("--iters")?.parse().map_err(|e| format!("{e}"))?,
            "--out" => args.out = val("--out")?,
            "--check" => args.check = Some(val("--check")?),
            "--max-regression" => {
                args.max_regression = val("--max-regression")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.iters == 0 {
        return Err("--iters must be at least 1".into());
    }
    Ok(args)
}

/// `RLIMIT_NOFILE` probe/raise, declared against the libc every Rust
/// binary already links (same idiom as `farm_net::poll`).
#[cfg(unix)]
mod fd_limit {
    #[repr(C)]
    struct Rlimit {
        cur: u64,
        max: u64,
    }

    #[cfg(target_os = "linux")]
    const RLIMIT_NOFILE: i32 = 7;
    #[cfg(not(target_os = "linux"))]
    const RLIMIT_NOFILE: i32 = 8;

    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    }

    /// Tries to make `need` descriptors available; returns the soft
    /// limit actually in force afterwards.
    pub fn ensure(need: u64) -> u64 {
        let mut lim = Rlimit { cur: 0, max: 0 };
        // SAFETY: plain out-pointer syscall wrappers on a stack value.
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
            return need; // can't even probe — proceed optimistically
        }
        if lim.cur >= need {
            return lim.cur;
        }
        let want = Rlimit {
            cur: need.min(lim.max),
            max: lim.max,
        };
        // SAFETY: raising the soft limit within the hard limit.
        if unsafe { setrlimit(RLIMIT_NOFILE, &want) } == 0 {
            return want.cur;
        }
        lim.cur
    }
}

#[cfg(not(unix))]
mod fd_limit {
    pub fn ensure(need: u64) -> u64 {
        need
    }
}

/// One blocking client socket with its own incremental decoder — the
/// counterpart the event loop serves thousands of.
struct BenchConn {
    stream: TcpStream,
    decoder: FrameDecoder,
}

impl BenchConn {
    fn connect(addr: SocketAddr) -> std::io::Result<BenchConn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        Ok(BenchConn {
            stream,
            decoder: FrameDecoder::new(),
        })
    }

    fn send_request(&mut self, corr: u64) -> std::io::Result<usize> {
        let env = Envelope {
            corr,
            response: false,
            frame: Frame::Heartbeat {
                switch: 1,
                seq: corr,
                at_ns: 0,
            },
        };
        let mut buf = Vec::with_capacity(32);
        encode_envelope(&env, &mut buf);
        self.stream.write_all(&buf)?;
        Ok(buf.len())
    }

    /// Reads until `expect` response envelopes arrived; returns the
    /// wire bytes consumed.
    fn drain_responses(&mut self, expect: usize) -> std::io::Result<usize> {
        let mut seen = 0;
        let mut nbytes = 0;
        let mut chunk = [0u8; 4096];
        while seen < expect {
            while let Some(decoded) = self.decoder.next()? {
                if let Decoded::Frame(env, n) = decoded {
                    nbytes += n;
                    if env.response {
                        seen += 1;
                        if seen == expect {
                            return Ok(nbytes);
                        }
                    }
                }
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::ErrorKind::UnexpectedEof.into());
            }
            self.decoder.extend(&chunk[..n]);
        }
        Ok(nbytes)
    }

    /// One request → response round trip, timed.
    fn rpc(&mut self, corr: u64) -> std::io::Result<f64> {
        let start = Instant::now();
        self.send_request(corr)?;
        self.drain_responses(1)?;
        Ok(start.elapsed().as_nanos() as f64 / 1_000.0)
    }
}

/// Polls the server's connection gauge until it reaches `want` or the
/// deadline passes; returns the highest value observed.
fn await_gauge(telemetry: &Telemetry, want: f64, deadline: Duration) -> f64 {
    let start = Instant::now();
    let mut seen: f64 = 0.0;
    loop {
        let now = telemetry
            .snapshot()
            .gauge("net.server_conns")
            .unwrap_or(0.0);
        seen = seen.max(now);
        if seen >= want || start.elapsed() > deadline {
            return seen;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

struct ScaleResult {
    conns: usize,
    chatty: usize,
    burst: usize,
    rpc_us: Vec<f64>,
    frames_per_sec: f64,
    bytes_per_sec: f64,
    max_concurrent: f64,
}

/// Ramps `conns` connections against a fresh server, runs the latency
/// and throughput phases over a `chatty` subset, and reads the
/// concurrency high-water mark back from telemetry. `burst` sets the
/// message rate of the throughput phase: each chatty connection
/// pipelines that many requests before draining the replies, so
/// `burst = 1` measures strict request/response flow and larger values
/// a firehose.
fn run_scale(
    conns: usize,
    chatty: usize,
    iters: usize,
    burst: usize,
) -> std::io::Result<ScaleResult> {
    let telemetry = Telemetry::new();
    // Every request gets an `Ack` from the event loop itself; the echo
    // handler keeps the worker path (decode → handle → encode) honest.
    let handler = Arc::new(|env: &Envelope| Some(env.frame.clone()));
    let mut server = NetServer::bind("127.0.0.1:0".parse().unwrap(), &telemetry, handler)?;
    let addr = server.local_addr();

    // Phase 1: ramp. The chatty subset comes first so its sockets are
    // warm; the rest just hold their connection open like a mostly-idle
    // switch fleet between poll rounds.
    let mut chatters = Vec::with_capacity(chatty);
    for _ in 0..chatty {
        chatters.push(BenchConn::connect(addr)?);
    }
    let mut idle = Vec::with_capacity(conns - chatty);
    for i in 0..conns - chatty {
        idle.push(TcpStream::connect(addr)?);
        if i % 256 == 255 {
            // Let the accept loop keep pace with the ramp.
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    let max_concurrent = await_gauge(&telemetry, conns as f64, Duration::from_secs(10));

    // Phase 2: sequential RPC latency round-robined over the chatty
    // subset while the whole fleet stays connected.
    let mut rpc_us = Vec::with_capacity(chatty * iters);
    let mut corr = 1u64;
    for _ in 0..iters {
        for conn in &mut chatters {
            rpc_us.push(conn.rpc(corr)?);
            corr += 1;
        }
    }

    // Phase 3: throughput at the requested message rate — every chatty
    // connection pipelines `burst` requests back-to-back, then drains
    // the replies, for enough rounds to cover `iters` requests. Frame
    // and byte totals come from the server's own counters, so they
    // include both directions exactly as the event loop accounted them.
    let rounds = iters.div_ceil(burst);
    let before = telemetry.snapshot();
    let start = Instant::now();
    for _ in 0..rounds {
        for conn in &mut chatters {
            for _ in 0..burst {
                conn.send_request(corr)?;
                corr += 1;
            }
        }
        for conn in &mut chatters {
            conn.drain_responses(burst)?;
        }
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let after = telemetry.snapshot();
    let frames = (after.counter("net.frames_received") - before.counter("net.frames_received"))
        + (after.counter("net.frames_sent") - before.counter("net.frames_sent"));
    let bytes = after.counter("net.bytes") - before.counter("net.bytes");

    drop(idle);
    drop(chatters);
    server.shutdown();
    Ok(ScaleResult {
        conns,
        chatty,
        burst,
        rpc_us,
        frames_per_sec: frames as f64 / elapsed,
        bytes_per_sec: bytes as f64 / elapsed,
        max_concurrent,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("net_scale: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Connection counts and message rates; full mode keeps the smoke
    // scales so a smoke `--check` run always finds comparable baseline
    // entries.
    let scales: &[usize] = if args.smoke { &[256] } else { &[256, 2_048] };
    let bursts: &[usize] = if args.smoke { &[1, 64] } else { &[1, 64, 256] };

    let mut sweep = Vec::new();
    for &conns in scales {
        for &burst in bursts {
            sweep.push((conns, burst));
        }
    }

    let mut entries = Vec::new();
    let mut ok = true;
    for (conns, burst) in sweep {
        // 2 fds per connection (client socket + accepted socket live in
        // this process) plus fixed overhead.
        let need = (conns as u64) * 2 + FD_HEADROOM;
        let avail = fd_limit::ensure(need);
        let conns = if avail < need {
            let trimmed = ((avail.saturating_sub(FD_HEADROOM)) / 2) as usize;
            eprintln!(
                "net_scale: RLIMIT_NOFILE {avail} cannot hold {conns} connections, \
                 trimming to {trimmed}"
            );
            trimmed
        } else {
            conns
        };
        if conns < 8 {
            eprintln!("net_scale: descriptor limit too low for a meaningful run");
            ok = false;
            continue;
        }
        let chatty = conns.min(64);
        println!("== {conns} connections ({chatty} chattering, burst {burst}) ==");
        let r = match run_scale(conns, chatty, args.iters, burst) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("net_scale: scale {conns}x{burst} failed: {e}");
                ok = false;
                continue;
            }
        };
        if (r.max_concurrent as usize) < r.conns {
            eprintln!(
                "net_scale: event loop only reached {} of {} concurrent connections",
                r.max_concurrent, r.conns
            );
            ok = false;
        }
        let p50 = percentile(&r.rpc_us, 0.50);
        let p99 = percentile(&r.rpc_us, 0.99);
        println!(
            "  rpc p50 {p50:.0} us, p99 {p99:.0} us | {:.0} frames/s, {:.2} MB/s | \
             {:.0} concurrent",
            r.frames_per_sec,
            r.bytes_per_sec / 1e6,
            r.max_concurrent,
        );
        entries.push(Json::obj([
            ("conns", Json::Num(r.conns as f64)),
            ("chatty", Json::Num(r.chatty as f64)),
            ("burst", Json::Num(r.burst as f64)),
            ("iters", Json::Num(args.iters as f64)),
            (
                "host_threads",
                Json::Num(std::thread::available_parallelism().map_or(1, |n| n.get()) as f64),
            ),
            ("max_concurrent_connections", Json::Num(r.max_concurrent)),
            (
                "rpc_us",
                Json::obj([("p50", Json::Num(p50)), ("p99", Json::Num(p99))]),
            ),
            ("frames_per_sec", Json::Num(r.frames_per_sec)),
            ("bytes_per_sec", Json::Num(r.bytes_per_sec)),
        ]));
    }

    let doc = Json::obj([
        ("schema", Json::Str(SCHEMA.into())),
        ("entries", Json::Arr(entries)),
    ]);
    if let Err(e) = std::fs::write(&args.out, doc.pretty()) {
        eprintln!("net_scale: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", args.out);

    if let Some(baseline_path) = &args.check {
        match check_regression(&doc, baseline_path, args.max_regression) {
            Ok(report) => println!("{report}"),
            Err(e) => {
                eprintln!("net_scale: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Compares the run against a committed baseline: every entry sharing a
/// (conns, burst) key must keep `rpc_us.p50` within `max_regression ×`
/// of the baseline, and `frames_per_sec` above `baseline ÷
/// max_regression` — latency and throughput gate together so a change
/// cannot trade one away silently.
fn check_regression(
    doc: &Json,
    baseline_path: &str,
    max_regression: f64,
) -> Result<String, String> {
    let body = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let baseline = Json::parse(&body).map_err(|e| format!("bad baseline JSON: {e}"))?;
    if baseline.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
        return Err(format!("baseline {baseline_path} has a different schema"));
    }
    let key = |e: &Json| -> Option<(u64, u64)> {
        Some((
            e.get("conns")?.as_f64()? as u64,
            e.get("burst")?.as_f64()? as u64,
        ))
    };
    let p50_of = |e: &Json| {
        e.get("rpc_us")
            .and_then(|t| t.get("p50"))
            .and_then(Json::as_f64)
    };
    let fps_of = |e: &Json| e.get("frames_per_sec").and_then(Json::as_f64);
    let base_entries = baseline
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or("baseline has no entries")?;
    let mut compared = 0;
    let mut worst: f64 = 0.0;
    for entry in doc.get("entries").and_then(Json::as_arr).unwrap_or(&[]) {
        let Some(k) = key(entry) else { continue };
        let Some(base) = base_entries.iter().find(|b| key(b) == Some(k)) else {
            continue; // scale not in the baseline
        };
        let (conns, burst) = k;
        compared += 1;
        if let (Some(new_p50), Some(base_p50)) = (p50_of(entry), p50_of(base)) {
            let ratio = new_p50 / base_p50.max(1e-9);
            worst = worst.max(ratio);
            if ratio > max_regression {
                return Err(format!(
                    "regression: conns={conns} burst={burst} rpc p50 {new_p50:.0} us vs \
                     baseline {base_p50:.0} us ({ratio:.2}x > {max_regression}x)"
                ));
            }
        }
        if let (Some(new_fps), Some(base_fps)) = (fps_of(entry), fps_of(base)) {
            let ratio = base_fps / new_fps.max(1e-9);
            worst = worst.max(ratio);
            if ratio > max_regression {
                return Err(format!(
                    "regression: conns={conns} burst={burst} {new_fps:.0} frames/s vs \
                     baseline {base_fps:.0} ({ratio:.2}x slower > {max_regression}x)"
                ));
            }
        }
    }
    if compared == 0 {
        return Err(format!(
            "no comparable entries between run and baseline {baseline_path}"
        ));
    }
    Ok(format!(
        "regression check vs {baseline_path}: {compared} entries, worst ratio {worst:.2}x \
         (limit {max_regression}x)"
    ))
}
