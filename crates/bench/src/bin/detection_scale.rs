//! Machine-readable detection-quality harness.
//!
//! Replays the hostile-traffic scenario suite (`farm-scenario`) through
//! the full FARM stack and the sFlow/Sonata baselines, scores every
//! (scenario, task, system) triple against the planted ground truth,
//! and writes `BENCH_detection.json` in a stable schema
//! (`farm-bench/detection_scale/v1`). All numbers are virtual-time
//! deterministic: identical seeds produce byte-identical output.
//!
//! ```text
//! detection_scale [--smoke] [--seed N]... [--scenario NAME]...
//!                 [--out PATH] [--check BASELINE] [--max-regression X]
//! ```
//!
//! `--check` re-reads a committed baseline and exits non-zero when any
//! matching (scenario, scale, seed, task, system) entry lost more than
//! 0.1 absolute precision or recall, or its mean time-to-detect grew by
//! more than `--max-regression` (default 2.0) — the CI
//! `detection-smoke` gate.

use std::process::ExitCode;

use farm_bench::detection::{bench_doc, drive, SCHEMA};
use farm_bench::perf::Json;
use farm_scenario::{ScenarioClass, ScenarioScale, ScenarioSpec};

struct Args {
    smoke: bool,
    seeds: Vec<u64>,
    scenarios: Vec<ScenarioClass>,
    out: String,
    check: Option<String>,
    max_regression: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        seeds: Vec::new(),
        scenarios: Vec::new(),
        out: "BENCH_detection.json".to_string(),
        check: None,
        max_regression: 2.0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--seed" => args
                .seeds
                .push(val("--seed")?.parse().map_err(|e| format!("{e}"))?),
            "--scenario" => {
                let name = val("--scenario")?;
                let class = ScenarioClass::from_name(&name)
                    .ok_or_else(|| format!("unknown scenario `{name}`"))?;
                args.scenarios.push(class);
            }
            "--out" => args.out = val("--out")?,
            "--check" => args.check = Some(val("--check")?),
            "--max-regression" => {
                args.max_regression = val("--max-regression")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.seeds.is_empty() {
        args.seeds.push(42);
    }
    if args.scenarios.is_empty() {
        args.scenarios = ScenarioClass::ALL.to_vec();
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("detection_scale: {e}");
            return ExitCode::FAILURE;
        }
    };
    let scale = if args.smoke {
        ScenarioScale::Smoke
    } else {
        ScenarioScale::Full
    };

    let mut runs = Vec::new();
    let mut ok = true;
    for &seed in &args.seeds {
        for &class in &args.scenarios {
            let spec = ScenarioSpec { class, scale, seed };
            let run = match drive(&spec) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("detection_scale: {} seed {seed}: {e}", class.name());
                    ok = false;
                    continue;
                }
            };
            println!(
                "== {} ({}, seed {seed}): {} events, {} flows, {} ms virtual ==",
                run.class, run.scale, run.events, run.distinct_flows, run.virtual_ms
            );
            for t in &run.tasks {
                println!(
                    "  {:<14} {:<6} precision {:.2} recall {:.2} ttd {} (alarms {}, windows {})",
                    t.task,
                    t.system,
                    t.score.precision,
                    t.score.recall,
                    t.score
                        .mean_ttd_ms
                        .map_or("-".to_string(), |v| format!("{v:.0} ms")),
                    t.score.alarms,
                    t.score.windows,
                );
            }
            runs.push(run);
        }
    }

    let doc = bench_doc(&runs);
    if let Err(e) = std::fs::write(&args.out, doc.pretty()) {
        eprintln!("detection_scale: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", args.out);

    if let Some(baseline_path) = &args.check {
        match check_regression(&doc, baseline_path, args.max_regression) {
            Ok(report) => println!("{report}"),
            Err(e) => {
                eprintln!("detection_scale: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Compares against a committed baseline: each entry sharing (scenario,
/// scale, seed, task, system) must keep precision and recall within 0.1
/// absolute of the baseline and mean TTD within `max_regression ×`.
fn check_regression(
    doc: &Json,
    baseline_path: &str,
    max_regression: f64,
) -> Result<String, String> {
    let body = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let baseline = Json::parse(&body).map_err(|e| format!("bad baseline JSON: {e}"))?;
    if baseline.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
        return Err(format!("baseline {baseline_path} has a different schema"));
    }
    let key = |e: &Json| -> Option<(String, String, u64, String, String)> {
        Some((
            e.get("scenario")?.as_str()?.to_string(),
            e.get("scale")?.as_str()?.to_string(),
            e.get("seed")?.as_f64()? as u64,
            e.get("task")?.as_str()?.to_string(),
            e.get("system")?.as_str()?.to_string(),
        ))
    };
    let base_entries = baseline
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or("baseline has no entries")?;
    let mut compared = 0;
    for entry in doc.get("entries").and_then(Json::as_arr).unwrap_or(&[]) {
        let Some(k) = key(entry) else { continue };
        let Some(base) = base_entries.iter().find(|b| key(b).as_ref() == Some(&k)) else {
            continue; // configuration not in the baseline (e.g. smoke vs full)
        };
        compared += 1;
        for metric in ["precision", "recall"] {
            let new_v = entry.get(metric).and_then(Json::as_f64).unwrap_or(0.0);
            let base_v = base.get(metric).and_then(Json::as_f64).unwrap_or(0.0);
            if base_v - new_v > 0.1 {
                return Err(format!(
                    "regression: {}/{}/{} {metric} {new_v:.2} vs baseline {base_v:.2}",
                    k.0, k.3, k.4
                ));
            }
        }
        let new_ttd = entry.get("mean_ttd_ms").and_then(Json::as_f64);
        let base_ttd = base.get("mean_ttd_ms").and_then(Json::as_f64);
        if let (Some(n), Some(b)) = (new_ttd, base_ttd) {
            if n / b.max(1e-9) > max_regression {
                return Err(format!(
                    "regression: {}/{}/{} mean_ttd_ms {n:.0} vs baseline {b:.0} \
                     (> {max_regression}x)",
                    k.0, k.3, k.4
                ));
            }
        }
    }
    if compared == 0 {
        return Err(format!(
            "no comparable entries between run and baseline {baseline_path}"
        ));
    }
    Ok(format!(
        "regression check vs {baseline_path}: {compared} entries within limits \
         (precision/recall drop <= 0.1, ttd <= {max_regression}x)"
    ))
}
