//! Detection-quality replay driver.
//!
//! Replays a [`farm_scenario`] hostile-traffic scenario through the full
//! FARM stack (netsim → soil → harvester) *and* through the sFlow/Sonata
//! baseline models on an identical second fabric, then scores every
//! system's alarms against the scenario's planted ground truth. Shared
//! by the `detection_scale` benchmark binary and the
//! `detection_quality` integration tests so both always measure the
//! same pipeline.

use std::collections::HashSet;

use farm_baselines::sflow::{SflowConfig, SflowSystem};
use farm_baselines::sonata::{SonataConfig, SonataSystem};
use farm_core::{CollectingHarvester, FarmBuilder};
use farm_netsim::network::Network;
use farm_netsim::switch::SwitchModel;
use farm_netsim::time::{Dur, Time};
use farm_netsim::topology::Topology;
use farm_netsim::traffic::Workload;
use farm_netsim::types::FlowKey;
use farm_scenario::score::{score, Alarm, TaskScore};
use farm_scenario::{ScenarioEnv, ScenarioSpec, TruthKey};

use crate::perf::Json;

/// Scoring outcome of one (task, system) pair on one scenario.
#[derive(Debug, Clone)]
pub struct TaskOutcome {
    /// Task name (`hh`, `ddos`, …) or baseline name (`hh_baseline`).
    pub task: String,
    /// `farm`, `sflow`, or `sonata`.
    pub system: &'static str,
    /// Post-window grace used when scoring, in milliseconds.
    pub grace_ms: u64,
    pub score: TaskScore,
}

/// Everything one scenario replay produced.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    pub class: &'static str,
    pub scale: &'static str,
    pub seed: u64,
    /// Traffic-event count of the replayed trace.
    pub events: u64,
    /// Packet count of the replayed trace.
    pub packets: u64,
    /// Distinct flow keys in the trace (full multi_vector exceeds 1 M).
    pub distinct_flows: u64,
    /// Virtual length of the replay, milliseconds.
    pub virtual_ms: u64,
    /// Fabric-wide ASIC polls issued by the soils.
    pub soil_asic_polls: u64,
    /// Polls avoided by soil poll-aggregation.
    pub soil_polls_saved: u64,
    /// Trigger deliveries executed by the soils.
    pub soil_deliveries: u64,
    pub tasks: Vec<TaskOutcome>,
}

/// The fabric every scenario replays on (paper-scale models, small
/// enough for CI).
fn fabric() -> Topology {
    Topology::spine_leaf(
        2,
        4,
        SwitchModel::accton_as7712(),
        SwitchModel::accton_as5712(),
    )
}

/// Builds and replays `spec`, scoring FARM tasks and (where the scenario
/// asks for them) the sFlow/Sonata baselines.
pub fn drive(spec: &ScenarioSpec) -> Result<ScenarioRun, String> {
    let topology = fabric();
    let leaf = topology.leaves().next().ok_or("fabric has no leaves")?;
    let node = topology.node(leaf).ok_or("leaf node missing")?;
    let env = ScenarioEnv {
        switch: leaf,
        n_ports: node.model.num_ports,
        prefix: node.prefix.ok_or("leaf has no prefix")?,
    };
    let mut scenario = spec.build(&env);

    // The FARM stack under test. Deploy the whole suite in a single
    // placement round: sequential per-task deploys let earlier tasks
    // grab opportunistic resource headroom and can starve later ones
    // off the fabric entirely, whereas the batch path sizes every seed's
    // minimum feasible allocation together.
    let mut builder = FarmBuilder::new(topology.clone());
    for binding in &scenario.tasks {
        builder = builder.with_harvester(binding.def.name, Box::new(CollectingHarvester::new()));
    }
    let mut farm = builder.build();
    let batch: Vec<(&str, &str, _)> = scenario
        .tasks
        .iter()
        .map(|b| (b.def.name, b.def.source, b.externals.clone()))
        .collect();
    let plan = farm
        .deploy_tasks(&batch)
        .map_err(|e| format!("deploy suite: {e:?}"))?;
    let deployed: HashSet<&str> = plan
        .actions
        .iter()
        .filter_map(|a| match a {
            farm_core::PlannedAction::Deploy { key, .. } => Some(key.task.as_str()),
            _ => None,
        })
        .collect();
    for binding in &scenario.tasks {
        if !deployed.contains(binding.def.name) {
            return Err(format!(
                "planner dropped task {} (no seed placed)",
                binding.def.name
            ));
        }
    }

    // The baseline systems observe the identical trace on a second,
    // independent fabric so neither stack perturbs the other's counters.
    let mut baseline = scenario.baseline_hh_bps.map(|hh_bps| {
        let net = Network::new(fabric());
        let sflow = SflowSystem::new(
            &[leaf],
            SflowConfig {
                hh_threshold_bps: hh_bps,
                ..SflowConfig::default()
            },
        );
        let sonata = SonataSystem::new(
            &[leaf],
            SonataConfig {
                hh_threshold_bps: hh_bps,
                ..SonataConfig::default()
            },
        );
        (net, sflow, sonata)
    });

    let mut events = 0u64;
    let mut packets = 0u64;
    let mut flows: HashSet<FlowKey> = HashSet::new();
    let mut now = Time::ZERO;
    while now < scenario.until {
        let step = scenario.tick.min(scenario.until.since(now));
        let batch = scenario.workload.advance(now, step);
        events += batch.len() as u64;
        for e in &batch {
            packets += e.packets;
            flows.insert(e.flow);
        }
        farm.apply_traffic(&batch);
        now += step;
        farm.advance(now);
        if let Some((net, sflow, sonata)) = baseline.as_mut() {
            net.apply_traffic(&batch);
            sflow.observe_traffic(&batch, net);
            sonata.observe_traffic(&batch, net);
            sflow.advance(now, net);
            sonata.advance(now);
        }
    }

    let mut tasks = Vec::new();
    for binding in &scenario.tasks {
        let h: &CollectingHarvester = farm
            .harvester(binding.def.name)
            .ok_or_else(|| format!("no harvester for {}", binding.def.name))?;
        let alarms: Vec<Alarm> = h
            .received
            .iter()
            .filter_map(|m| {
                (binding.def.extract)(&m.value).map(|keys| Alarm {
                    at: m.arrival(),
                    keys,
                })
            })
            .collect();
        let windows = scenario.truth.of_kinds(&binding.kinds);
        tasks.push(TaskOutcome {
            task: binding.def.name.to_string(),
            system: "farm",
            grace_ms: binding.grace.as_millis(),
            score: score(&windows, &alarms, binding.grace),
        });
    }

    if let Some((_, sflow, sonata)) = &baseline {
        let windows = scenario.truth.of_kinds(&scenario.baseline_kinds);
        // sFlow: counter-interval granularity plus one interval of
        // export latency.
        let sflow_grace = Dur::from_millis(1000);
        let sflow_alarms: Vec<Alarm> = sflow
            .detections
            .iter()
            .filter(|d| d.switch == leaf)
            .map(|d| Alarm {
                at: d.at,
                keys: [TruthKey::Port(d.port)].into_iter().collect(),
            })
            .collect();
        tasks.push(TaskOutcome {
            task: "hh_baseline".to_string(),
            system: "sflow",
            grace_ms: sflow_grace.as_millis(),
            score: score(&windows, &sflow_alarms, sflow_grace),
        });
        // Sonata: window close + batch alignment + stage latency puts
        // results seconds after the traffic.
        let sonata_grace = Dur::from_millis(5000);
        let sonata_alarms: Vec<Alarm> = sonata
            .detections
            .iter()
            .filter(|d| d.switch == leaf)
            .map(|d| Alarm {
                at: d.at,
                keys: [TruthKey::Port(d.port)].into_iter().collect(),
            })
            .collect();
        tasks.push(TaskOutcome {
            task: "hh_baseline".to_string(),
            system: "sonata",
            grace_ms: sonata_grace.as_millis(),
            score: score(&windows, &sonata_alarms, sonata_grace),
        });
    }

    let soil = farm.soil_stats();
    Ok(ScenarioRun {
        class: scenario.class.name(),
        scale: scenario.scale.name(),
        seed: scenario.seed,
        events,
        packets,
        distinct_flows: flows.len() as u64,
        virtual_ms: scenario.until.as_millis(),
        soil_asic_polls: soil.asic_polls,
        soil_polls_saved: soil.polls_saved,
        soil_deliveries: soil.deliveries,
        tasks,
    })
}

/// Schema tag of the `BENCH_detection.json` document.
pub const SCHEMA: &str = "farm-bench/detection_scale/v1";

fn opt_num(v: Option<f64>) -> Json {
    v.map_or(Json::Null, Json::Num)
}

fn entry_json(run: &ScenarioRun, t: &TaskOutcome) -> Json {
    Json::obj([
        ("scenario", Json::Str(run.class.into())),
        ("scale", Json::Str(run.scale.into())),
        ("seed", Json::Num(run.seed as f64)),
        ("task", Json::Str(t.task.clone())),
        ("system", Json::Str(t.system.into())),
        ("windows", Json::Num(t.score.windows as f64)),
        ("detected", Json::Num(t.score.detected as f64)),
        ("alarms", Json::Num(t.score.alarms as f64)),
        ("true_alarms", Json::Num(t.score.true_alarms as f64)),
        ("precision", Json::Num(t.score.precision)),
        ("recall", Json::Num(t.score.recall)),
        ("mean_ttd_ms", opt_num(t.score.mean_ttd_ms)),
        ("key_precision", opt_num(t.score.key_precision)),
        ("key_recall", opt_num(t.score.key_recall)),
        ("grace_ms", Json::Num(t.grace_ms as f64)),
    ])
}

fn scenario_json(run: &ScenarioRun) -> Json {
    Json::obj([
        ("scenario", Json::Str(run.class.into())),
        ("scale", Json::Str(run.scale.into())),
        ("seed", Json::Num(run.seed as f64)),
        ("events", Json::Num(run.events as f64)),
        ("packets", Json::Num(run.packets as f64)),
        ("distinct_flows", Json::Num(run.distinct_flows as f64)),
        ("virtual_ms", Json::Num(run.virtual_ms as f64)),
        ("soil_asic_polls", Json::Num(run.soil_asic_polls as f64)),
        ("soil_polls_saved", Json::Num(run.soil_polls_saved as f64)),
        ("soil_deliveries", Json::Num(run.soil_deliveries as f64)),
    ])
}

/// The full `BENCH_detection.json` document for a set of replays — one
/// `entries` row per (scenario, task, system) plus one `scenarios` row
/// of trace statistics per replay. Key order and float formatting come
/// from [`Json::pretty`], so equal runs serialize byte-identically.
pub fn bench_doc(runs: &[ScenarioRun]) -> Json {
    let mut entries = Vec::new();
    let mut scenarios = Vec::new();
    for run in runs {
        for t in &run.tasks {
            entries.push(entry_json(run, t));
        }
        scenarios.push(scenario_json(run));
    }
    Json::obj([
        ("schema", Json::Str(SCHEMA.into())),
        ("entries", Json::Arr(entries)),
        ("scenarios", Json::Arr(scenarios)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use farm_scenario::{ScenarioClass, ScenarioScale};

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "interpreter-bound replay; run with --release (CI: detection-smoke)"
    )]
    fn drive_smoke_flash_crowd_scores_every_task() {
        let run = drive(&ScenarioSpec {
            class: ScenarioClass::FlashCrowd,
            scale: ScenarioScale::Smoke,
            seed: 7,
        })
        .unwrap();
        // 3 farm tasks + 2 baseline rows.
        assert_eq!(run.tasks.len(), 5);
        assert!(run.events > 0 && run.distinct_flows > 0);
        assert!(run.soil_asic_polls > 0);
        for t in &run.tasks {
            assert!((0.0..=1.0).contains(&t.score.precision), "{t:?}");
            assert!((0.0..=1.0).contains(&t.score.recall), "{t:?}");
        }
    }
}
