//! Experiment harness reproducing every table and figure of the FARM
//! paper's evaluation (§ VI).
//!
//! Each module regenerates one artifact; the `repro` binary prints them
//! as text tables:
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`tab1`] | Tab. I — LoC of the 16 Almanac use cases |
//! | [`tab4`] | Tab. 4 — HH detection time across systems |
//! | [`fig4`] | Fig. 4 — network load vs port count |
//! | [`fig5`] | Fig. 5 — switch CPU vs flow count |
//! | [`fig6`] | Fig. 6 — CPU/accuracy vs co-located seeds (4 panels) |
//! | [`fig7`] | Fig. 7 — placement utility & runtime at scale |
//! | [`fig8`] | Fig. 8 — PCIe congestion vs ASIC headroom |
//! | [`fig9`] | Fig. 9 — aggregation CPU cost, threads vs processes |
//! | [`fig10`] | Fig. 10 — shared buffer vs gRPC latency |
//! | [`tab5`] | Tab. V — feature matrix of generic M&M systems |
//!
//! Absolute numbers come from the simulator substrate; EXPERIMENTS.md
//! records the paper-vs-measured comparison and which *shapes* hold.

pub mod detection;
pub mod fig10;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod perf;
pub mod support;
pub mod tab1;
pub mod tab4;
pub mod tab5;
