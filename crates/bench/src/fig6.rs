//! Fig. 6 — switch CPU load and polling accuracy with many co-located
//! seeds: HH at 1 ms / 10 ms accuracy (a/b) and the CPU-intensive ML task
//! at 1 ms × 1 iteration / 10 ms × 10 iterations (c/d).
//!
//! Polling accuracy is the fraction of the demanded polling work the CPU
//! can actually retire: it degrades once demanded load exceeds the
//! switch's cores (the context-switch regime of Fig. 6c, where the paper
//! partitions the ML task — Fig. 6d — to recover).

use farm_netsim::time::{Dur, Time};
use farm_netsim::traffic::{HeavyHitterWorkload, HhConfig};

use crate::support::{farm_with, hh_source_at, ml_source_at, no_externals, single_switch};

/// One bar of a Fig. 6 panel.
#[derive(Debug, Clone, PartialEq)]
pub struct SeedScalingRow {
    pub seeds: usize,
    pub cpu_percent: f64,
    pub accuracy_percent: f64,
}

/// Which panel to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Panel {
    /// (a) HH, 1 ms accuracy.
    HhFast,
    /// (b) HH, 10 ms accuracy.
    HhSlow,
    /// (c) ML, 1 ms accuracy, 1 iteration per poll.
    MlParallel,
    /// (d) ML, 10 ms accuracy, 10 iterations per poll (partitioned).
    MlPartitioned,
}

impl Panel {
    pub fn label(&self) -> &'static str {
        match self {
            Panel::HhFast => "HH 1ms",
            Panel::HhSlow => "HH 10ms",
            Panel::MlParallel => "ML 1ms x1",
            Panel::MlPartitioned => "ML 10ms x10",
        }
    }

    fn source(&self, switch: u32) -> String {
        match self {
            Panel::HhFast => hh_source_at(1, switch, i64::MAX / 4),
            Panel::HhSlow => hh_source_at(10, switch, i64::MAX / 4),
            Panel::MlParallel => ml_source_at(1, switch, 1),
            Panel::MlPartitioned => ml_source_at(10, switch, 10),
        }
    }

    /// The paper's x-axes.
    pub fn full_axis(&self) -> &'static [usize] {
        match self {
            Panel::HhFast | Panel::HhSlow => &[10, 20, 40, 60, 80, 100],
            Panel::MlParallel => &[10, 20, 30, 40, 50],
            Panel::MlPartitioned => &[50, 100, 150, 200, 250],
        }
    }

    /// Reduced axes for quick runs.
    pub fn quick_axis(&self) -> &'static [usize] {
        match self {
            Panel::HhFast | Panel::HhSlow => &[10, 40, 80],
            Panel::MlParallel => &[10, 30, 50],
            Panel::MlPartitioned => &[50, 150, 250],
        }
    }
}

const WINDOW_MS: u64 = 200;

/// Measures one bar: `seeds` copies of the panel's task on one switch.
pub fn measure(panel: Panel, seeds: usize) -> SeedScalingRow {
    let mut farm = farm_with(single_switch(), Default::default());
    let leaf = farm.network().topology().leaves().next().unwrap();
    let src = panel.source(leaf.0);
    let tasks: Vec<(String, String)> = (0..seeds).map(|i| (format!("t{i}"), src.clone())).collect();
    let refs: Vec<(
        &str,
        &str,
        std::collections::BTreeMap<String, farm_almanac::analysis::ConstEnv>,
    )> = tasks
        .iter()
        .map(|(n, s)| (n.as_str(), s.as_str(), no_externals()))
        .collect();
    farm.deploy_tasks(&refs).unwrap();
    // Warm up 20 ms, then measure.
    let mut hh = HeavyHitterWorkload::new(HhConfig {
        switch: leaf,
        n_ports: 48,
        ..Default::default()
    });
    farm.run(&mut [&mut hh], Time::from_millis(20), Dur::from_millis(1));
    farm.network_mut().switch_mut(leaf).unwrap().reset_meters();
    farm.run(
        &mut [&mut hh],
        Time::from_millis(20 + WINDOW_MS),
        Dur::from_millis(1),
    );
    let sw = farm.network().switch(leaf).unwrap();
    let window = Dur::from_millis(WINDOW_MS);
    let cpu_percent = sw.cpu().busy().as_secs_f64() / window.as_secs_f64() * 100.0;
    let capacity = sw.cpu().spec().cores as f64 * 100.0;
    let accuracy_percent = (capacity / cpu_percent.max(1e-9)).min(1.0) * 100.0;
    SeedScalingRow {
        seeds,
        cpu_percent,
        accuracy_percent,
    }
}

/// Runs one panel across an axis.
pub fn run(panel: Panel, axis: &[usize]) -> Vec<SeedScalingRow> {
    axis.iter().map(|&n| measure(panel, n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hh_load_scales_with_seed_count_and_accuracy() {
        let few_fast = measure(Panel::HhFast, 5);
        let many_fast = measure(Panel::HhFast, 25);
        let many_slow = measure(Panel::HhSlow, 25);
        assert!(
            many_fast.cpu_percent > few_fast.cpu_percent * 2.0,
            "more seeds must cost more CPU: {} vs {}",
            few_fast.cpu_percent,
            many_fast.cpu_percent
        );
        assert!(
            many_slow.cpu_percent < many_fast.cpu_percent / 3.0,
            "10 ms accuracy must be much cheaper than 1 ms: {} vs {}",
            many_slow.cpu_percent,
            many_fast.cpu_percent
        );
    }

    #[test]
    fn ml_partitioning_recovers_cpu_headroom() {
        // 30 parallel ML seeds at 1 ms vs the partitioned equivalent
        // (10× fewer parallel polls, 10 iterations each → same work per
        // second minus the scheduling overhead).
        let parallel = measure(Panel::MlParallel, 30);
        let partitioned = measure(Panel::MlPartitioned, 30);
        assert!(
            partitioned.cpu_percent < parallel.cpu_percent,
            "partitioning must reduce CPU: {} vs {}",
            partitioned.cpu_percent,
            parallel.cpu_percent
        );
        assert!(partitioned.accuracy_percent >= parallel.accuracy_percent);
    }

    #[test]
    fn ml_is_heavier_than_hh() {
        let hh = measure(Panel::HhFast, 20);
        let ml = measure(Panel::MlParallel, 20);
        assert!(
            ml.cpu_percent > hh.cpu_percent * 1.5,
            "the ML payload must dominate: {} vs {}",
            hh.cpu_percent,
            ml.cpu_percent
        );
    }
}
