//! Tab. I — lines of code of the 16 Almanac use cases, ours vs paper.

use farm_almanac::programs::{loc, USE_CASES};

/// One row of the table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocRow {
    pub name: &'static str,
    pub our_loc: usize,
    pub paper_seed_loc: usize,
    pub paper_harvester_loc: usize,
}

/// Computes the table.
pub fn run() -> Vec<LocRow> {
    USE_CASES
        .iter()
        .map(|u| LocRow {
            name: u.name,
            our_loc: loc(u.source),
            paper_seed_loc: u.paper_seed_loc,
            paper_harvester_loc: u.paper_harvester_loc,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_17_rows() {
        assert_eq!(run().len(), 17);
    }

    #[test]
    fn relative_sizes_follow_the_paper() {
        let rows = run();
        let by_name = |n: &str| rows.iter().find(|r| r.name == n).unwrap().our_loc;
        // Smallest and largest tasks match the paper's extremes.
        let tc = by_name("Traffic change");
        let fd = by_name("FloodDefender");
        for r in &rows {
            assert!(r.our_loc >= tc, "{} smaller than Traffic change", r.name);
            assert!(r.our_loc <= fd, "{} larger than FloodDefender", r.name);
        }
        // Every program is succinct: well under 200 lines.
        assert!(rows.iter().all(|r| r.our_loc < 200));
    }
}
