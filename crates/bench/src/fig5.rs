//! Fig. 5 — switch CPU load of FARM vs sFlow while polling statistics
//! from a growing number of flows at 10 ms accuracy.
//!
//! sFlow's agent is a lightweight sample-and-forward pipeline: its CPU
//! cost follows the (fixed) traffic volume, not the number of monitored
//! flows. FARM analyzes the polled statistics on the switch, so its load
//! grows with the flow count — the price of local decision-making that
//! § VI-B c trades against not congesting the SDN control plane.

use farm_baselines::{SflowConfig, SflowSystem};
use farm_netsim::network::Network;
use farm_netsim::switch::SwitchModel;
use farm_netsim::time::{Dur, Time};
use farm_netsim::topology::Topology;
use farm_netsim::traffic::{HeavyHitterWorkload, HhConfig, Workload};

use crate::support::{farm_with, hh_source_at, no_externals};

/// One curve point.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuLoadRow {
    pub flows: u64,
    pub farm_cpu_percent: f64,
    pub sflow_cpu_percent: f64,
}

const WINDOW: Dur = Dur::from_millis(1000);
/// Total traffic is fixed; flow count divides it (Fig. 5 isolates the
/// per-flow monitoring cost from the traffic volume).
const TOTAL_BPS: u64 = 40_000_000_000;

fn flows_topology(flows: u64) -> Topology {
    let mut model = SwitchModel::accton_as5712();
    model.num_ports = flows.min(60_000) as u16;
    Topology::spine_leaf(1, 1, SwitchModel::accton_as7712(), model)
}

fn traffic(switch: farm_netsim::types::SwitchId, flows: u64) -> HeavyHitterWorkload {
    HeavyHitterWorkload::new(HhConfig {
        switch,
        n_ports: flows as u16,
        hh_ratio: 0.01,
        normal_rate_bps: TOTAL_BPS / flows.max(1),
        hh_rate_bps: TOTAL_BPS / flows.max(1),
        churn_interval: Dur::from_secs(60),
        ..Default::default()
    })
}

/// Measures FARM's switch CPU at 10 ms accuracy over `flows` flows.
pub fn farm_cpu_percent(flows: u64) -> f64 {
    let topo = flows_topology(flows);
    let mut farm = farm_with(topo, Default::default());
    let leaf = farm.network().topology().leaves().next().unwrap();
    farm.deploy_task(
        "hh",
        &hh_source_at(10, leaf.0, i64::MAX / 4),
        &no_externals(),
    )
    .unwrap();
    let mut hh = traffic(leaf, flows);
    // Warm up, then measure one window.
    farm.run(&mut [&mut hh], Time::from_millis(100), Dur::from_millis(10));
    farm.network_mut().switch_mut(leaf).unwrap().reset_meters();
    farm.run(
        &mut [&mut hh],
        Time::from_millis(100 + WINDOW.as_millis()),
        Dur::from_millis(10),
    );
    let sw = farm.network().switch(leaf).unwrap();
    sw.cpu().busy().as_secs_f64() / WINDOW.as_secs_f64() * 100.0
}

/// Measures sFlow's switch CPU under the same traffic and accuracy.
pub fn sflow_cpu_percent(flows: u64) -> f64 {
    let topo = flows_topology(flows);
    let mut net = Network::new(topo);
    let leaf = net.topology().leaves().next().unwrap();
    // At "equal monitoring accuracy", sFlow's per-flow visibility comes
    // from its packet sampling pipeline (counter export stays at the
    // RFC-typical 30 s and is negligible here). Sampling cost follows the
    // traffic volume — which Fig. 5 holds fixed — hence the flat line.
    let mut sflow = SflowSystem::new(
        &[leaf],
        SflowConfig {
            counter_interval: Dur::from_secs(30),
            sampling_rate: 16,
            agent_cycles_per_record: 5_000, // datagram assembly + UDP send
            ..Default::default()
        },
    );
    let mut hh = traffic(leaf, flows);
    let tick = Dur::from_millis(10);
    let mut now = Time::ZERO;
    // Warm up.
    while now < Time::from_millis(100) {
        let events = hh.advance(now, tick);
        net.apply_traffic(&events);
        sflow.observe_traffic(&events, &mut net);
        now += tick;
        sflow.advance(now, &mut net);
    }
    net.switch_mut(leaf).unwrap().reset_meters();
    let end = now + WINDOW;
    while now < end {
        let events = hh.advance(now, tick);
        net.apply_traffic(&events);
        sflow.observe_traffic(&events, &mut net);
        now += tick;
        sflow.advance(now, &mut net);
    }
    let sw = net.switch(leaf).unwrap();
    sw.cpu().busy().as_secs_f64() / WINDOW.as_secs_f64() * 100.0
}

/// Runs the figure.
pub fn run(flow_counts: &[u64]) -> Vec<CpuLoadRow> {
    flow_counts
        .iter()
        .map(|&flows| CpuLoadRow {
            flows,
            farm_cpu_percent: farm_cpu_percent(flows),
            sflow_cpu_percent: sflow_cpu_percent(flows),
        })
        .collect()
}

/// Quick axis.
pub const QUICK_FLOWS: &[u64] = &[100, 1000, 5000];
/// Full axis.
pub const FULL_FLOWS: &[u64] = &[100, 500, 1000, 5000, 10000];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn farm_grows_with_flows_sflow_stays_flat() {
        let rows = run(&[100, 2000]);
        let farm_ratio = rows[1].farm_cpu_percent / rows[0].farm_cpu_percent.max(1e-9);
        let sflow_ratio = rows[1].sflow_cpu_percent / rows[0].sflow_cpu_percent.max(1e-9);
        assert!(
            farm_ratio > 3.0,
            "FARM CPU must grow with flows: {} → {}",
            rows[0].farm_cpu_percent,
            rows[1].farm_cpu_percent
        );
        assert!(
            sflow_ratio < 2.0,
            "sFlow CPU must stay near-flat: {} → {}",
            rows[0].sflow_cpu_percent,
            rows[1].sflow_cpu_percent
        );
    }
}
