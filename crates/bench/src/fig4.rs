//! Fig. 4 — network load of HH detection vs fabric port count:
//! FARM vs sFlow (1 ms and 10 ms probing) vs Sonata (75 % aggregation).
//!
//! sFlow and Sonata are collection-centric: their export load is a closed
//! form, linear in the port count and independent of traffic. FARM is
//! selection-centric: seeds stay silent until the HH set changes (up to
//! once a minute, § VI-B b), so its load is measured by running the real
//! system through a churn event and amortizing the report burst over the
//! churn period.

use farm_baselines::{SflowConfig, SflowSystem, SonataConfig, SonataSystem};
use farm_core::harvester::CollectingHarvester;
use farm_netsim::switch::SwitchModel;
use farm_netsim::time::{Dur, Time};
use farm_netsim::topology::Topology;
use farm_netsim::traffic::{HeavyHitterWorkload, HhConfig};
use farm_netsim::types::SwitchId;

use crate::support::{farm_with, hh_change_source_at, no_externals};

/// One curve point.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkLoadRow {
    pub ports: u64,
    pub farm_bps: f64,
    pub sflow_1ms_bps: f64,
    pub sflow_10ms_bps: f64,
    pub sonata_bps: f64,
}

/// Measures FARM's collector traffic for a fabric with `ports` monitored
/// ports, amortized over the HH churn interval.
pub fn farm_bps(ports: u64) -> f64 {
    // One big switch hosting all monitored ports keeps the experiment
    // focused on collector bandwidth (which is what Fig. 4 plots).
    let mut model = SwitchModel::accton_as5712();
    model.num_ports = ports.min(60_000) as u16;
    let topo = Topology::spine_leaf(1, 1, SwitchModel::accton_as7712(), model);
    let mut farm = farm_with(topo, Default::default());
    let leaf = farm.network().topology().leaves().next().unwrap();
    farm.set_harvester("hh", Box::new(CollectingHarvester::new()));
    farm.deploy_task(
        "hh",
        &hh_change_source_at(10, leaf.0, 100_000),
        &no_externals(),
    )
    .unwrap();
    let churn = Dur::from_millis(500);
    let mut hh = HeavyHitterWorkload::new(HhConfig {
        switch: leaf,
        n_ports: ports as u16,
        hh_ratio: 0.01,
        churn_interval: churn,
        hh_rate_bps: 5_000_000_000,
        ..Default::default()
    });
    // Run across two churn events; every report burst corresponds to one
    // HH-set change.
    farm.run(
        &mut [&mut hh],
        Time::from_millis(1100),
        Dur::from_millis(10),
    );
    let bytes = farm.telemetry().snapshot().counter("farm.collector_bytes") as f64;
    // Two churn windows observed; in production the set changes at most
    // once a minute, so the amortized rate is bytes-per-change / 60 s.
    let bytes_per_change = bytes / 2.0;
    bytes_per_change * 8.0 / 60.0
}

/// Runs the figure for the given port counts.
pub fn run(port_counts: &[u64]) -> Vec<NetworkLoadRow> {
    let sflow_1 = SflowSystem::new(
        &[SwitchId(0)],
        SflowConfig {
            counter_interval: Dur::from_millis(1),
            ..Default::default()
        },
    );
    let sflow_10 = SflowSystem::new(
        &[SwitchId(0)],
        SflowConfig {
            counter_interval: Dur::from_millis(10),
            ..Default::default()
        },
    );
    let sonata = SonataSystem::new(&[SwitchId(0)], SonataConfig::default());
    port_counts
        .iter()
        .map(|&ports| NetworkLoadRow {
            ports,
            farm_bps: farm_bps(ports),
            sflow_1ms_bps: sflow_1.export_bps(ports),
            sflow_10ms_bps: sflow_10.export_bps(ports),
            sonata_bps: sonata.export_bps(ports),
        })
        .collect()
}

/// Default port axis (quick mode).
pub const QUICK_PORTS: &[u64] = &[100, 500, 1000];
/// Full port axis.
pub const FULL_PORTS: &[u64] = &[100, 500, 1000, 2000, 4000];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn farm_load_is_orders_of_magnitude_below_sflow() {
        let rows = run(&[200]);
        let r = &rows[0];
        assert!(
            r.farm_bps * 100.0 < r.sflow_1ms_bps,
            "FARM {} bps should be ≫100× below sFlow-1ms {} bps",
            r.farm_bps,
            r.sflow_1ms_bps
        );
        assert!(r.farm_bps * 10.0 < r.sonata_bps);
        assert!(r.sflow_10ms_bps * 10.0 <= r.sflow_1ms_bps + 1e-9);
    }

    #[test]
    fn collector_load_scales_linearly_for_collection_centric_systems() {
        let rows = run(&[100, 1000]);
        let ratio = rows[1].sflow_1ms_bps / rows[0].sflow_1ms_bps;
        assert!((ratio - 10.0).abs() < 1e-9);
        let sratio = rows[1].sonata_bps / rows[0].sonata_bps;
        assert!((sratio - 10.0).abs() < 1e-9);
        // FARM grows far sub-linearly in comparison (reports scale with
        // the number of *heavy* ports, which is 1 %).
        let fratio = rows[1].farm_bps / rows[0].farm_bps.max(1e-9);
        assert!(
            fratio < ratio,
            "FARM slope {fratio} must stay below collection-centric slope {ratio}"
        );
    }
}
