//! Fig. 8 — the PCIe bus congests orders of magnitude before the ASIC:
//! statistics polling is limited to 8 Mbit/s while the ASIC forwards at
//! 100 Gbit/s (a 1:12500 ratio), which is what motivates the soil's
//! polling aggregation.

use farm_netsim::pcie::PcieSpec;
use farm_netsim::time::{Dur, Time};

use crate::support::{farm_with, hh_source_at, no_externals, single_switch};
use farm_soil::SoilConfig;

/// One curve point: seeds polling TCAM statistics at 1 ms.
#[derive(Debug, Clone, PartialEq)]
pub struct PcieRow {
    pub seeds: usize,
    /// PCIe polling-path utilization without aggregation (%).
    pub pcie_unaggregated_percent: f64,
    /// PCIe utilization with the soil aggregating identical requests (%).
    pub pcie_aggregated_percent: f64,
    /// The same polled volume relative to ASIC bandwidth (%).
    pub asic_percent: f64,
}

const WINDOW_MS: u64 = 100;

fn measure(seeds: usize, aggregation: bool) -> f64 {
    let cfg = SoilConfig {
        aggregation,
        ..SoilConfig::default()
    };
    let mut farm = farm_with(single_switch(), cfg);
    let leaf = farm.network().topology().leaves().next().unwrap();
    let src = hh_source_at(1, leaf.0, i64::MAX / 4);
    let tasks: Vec<(String, String)> = (0..seeds).map(|i| (format!("t{i}"), src.clone())).collect();
    let refs: Vec<(
        &str,
        &str,
        std::collections::BTreeMap<String, farm_almanac::analysis::ConstEnv>,
    )> = tasks
        .iter()
        .map(|(n, s)| (n.as_str(), s.as_str(), no_externals()))
        .collect();
    farm.deploy_tasks(&refs).unwrap();
    farm.network_mut().switch_mut(leaf).unwrap().reset_meters();
    farm.network_mut()
        .switch_mut(leaf)
        .unwrap()
        .pcie_mut()
        .set_window(Dur::from_millis(WINDOW_MS));
    farm.advance(Time::from_millis(WINDOW_MS));
    farm.network()
        .switch(leaf)
        .unwrap()
        .pcie()
        .utilization_percent()
}

/// Runs the figure.
pub fn run(seed_counts: &[usize]) -> Vec<PcieRow> {
    let ratio = PcieSpec::measured().capacity_ratio();
    seed_counts
        .iter()
        .map(|&seeds| {
            let un = measure(seeds, false);
            let ag = measure(seeds, true);
            PcieRow {
                seeds,
                pcie_unaggregated_percent: un,
                pcie_aggregated_percent: ag,
                asic_percent: un / ratio,
            }
        })
        .collect()
}

/// Quick axis.
pub const QUICK_SEEDS: &[usize] = &[1, 4, 8];
/// Full axis.
pub const FULL_SEEDS: &[usize] = &[1, 2, 4, 8, 16, 32];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unaggregated_polling_congests_quickly() {
        let rows = run(&[1, 8]);
        assert!(
            rows[1].pcie_unaggregated_percent > rows[0].pcie_unaggregated_percent * 4.0,
            "polling load must grow with seeds: {} → {}",
            rows[0].pcie_unaggregated_percent,
            rows[1].pcie_unaggregated_percent
        );
        // Aggregation flattens the curve: 8 seeds share one transfer.
        assert!(
            rows[1].pcie_aggregated_percent < rows[1].pcie_unaggregated_percent / 4.0,
            "aggregation must collapse identical requests: {} vs {}",
            rows[1].pcie_aggregated_percent,
            rows[1].pcie_unaggregated_percent
        );
    }

    #[test]
    fn asic_headroom_is_four_orders_of_magnitude() {
        let rows = run(&[8]);
        let r = &rows[0];
        assert!(r.asic_percent * 10_000.0 <= r.pcie_unaggregated_percent * 1.01);
    }
}
