//! Shared experiment infrastructure: fabric builders, FARM task sources,
//! and table rendering.

use std::collections::BTreeMap;

use farm_core::farm::{Farm, FarmConfig};
use farm_netsim::switch::SwitchModel;
use farm_netsim::topology::Topology;
use farm_soil::SoilConfig;

/// The production-cluster stand-in of § VI-A b: a 20-switch spine-leaf
/// fabric (4 spines + 16 leaves) of Accton-class switches.
pub fn sap_cluster() -> Topology {
    Topology::spine_leaf(
        4,
        16,
        SwitchModel::accton_as7712(),
        SwitchModel::accton_as5712(),
    )
}

/// A single-switch rig for switch-local microbenchmarks.
pub fn single_switch() -> Topology {
    Topology::spine_leaf(
        1,
        1,
        SwitchModel::accton_as5712(),
        SwitchModel::accton_as5712(),
    )
}

/// Builds a FARM instance over a topology with the given soil config.
pub fn farm_with(topology: Topology, soil: SoilConfig) -> Farm {
    Farm::new(
        topology,
        FarmConfig {
            soil,
            ..FarmConfig::default()
        },
    )
}

/// A parametric HH machine polling every port at a fixed accuracy.
/// `place any N` pins deployment to explicit switches so scaling studies
/// control seed counts precisely.
pub fn hh_source_at(accuracy_ms: u64, switch: u32, threshold: i64) -> String {
    format!(
        r#"
fun getHH(list stats, long threshold): list {{
  list result;
  int i = 0;
  while (i < list_len(stats)) {{
    if (stat_tx_bytes(list_get(stats, i)) >= threshold) then {{
      list_push(result, list_get(stats, i));
    }}
    i = i + 1;
  }}
  return result;
}}
machine HH {{
  place any {switch};
  poll pollStats = Poll {{ .ival = {accuracy_ms}, .what = port ANY }};
  external long threshold = {threshold};
  list hitters;
  state observe {{
    util (res) {{
      if (res.vCPU >= 0 and res.RAM >= 0) then {{ return 1 + res.vCPU; }}
    }}
    when (pollStats as stats) do {{
      hitters = getHH(stats, threshold);
      if (not is_list_empty(hitters)) then {{
        transit HHdetected;
      }}
    }}
  }}
  state HHdetected {{
    util (res) {{ return 100; }}
    when (enter) do {{
      send hitters to harvester;
      transit observe;
    }}
  }}
  when (recv long newTh from harvester) do {{ threshold = newTh; }}
}}
"#
    )
}

/// An HH variant with change detection: reports only *newly* heavy ports
/// (the production behaviour behind Fig. 4's "1 packet per minute per 100
/// additional ports" — steady heavy hitters are reported once, reports
/// follow HH-set churn).
pub fn hh_change_source_at(accuracy_ms: u64, switch: u32, threshold: i64) -> String {
    format!(
        r#"
fun hitterPorts(list stats, long threshold): list {{
  list ports;
  int i = 0;
  while (i < list_len(stats)) {{
    if (stat_tx_bytes(list_get(stats, i)) >= threshold) then {{
      list_push(ports, stat_port(list_get(stats, i)));
    }}
    i = i + 1;
  }}
  return ports;
}}
machine HH {{
  place any {switch};
  poll pollStats = Poll {{ .ival = {accuracy_ms}, .what = port ANY }};
  external long threshold = {threshold};
  list known;
  state observe {{
    util (res) {{
      if (res.vCPU >= 0 and res.RAM >= 0) then {{ return 1 + res.vCPU; }}
    }}
    when (pollStats as stats) do {{
      list current = hitterPorts(stats, threshold);
      list fresh;
      int i = 0;
      while (i < list_len(current)) {{
        if (not list_contains(known, list_get(current, i))) then {{
          list_push(fresh, list_get(current, i));
        }}
        i = i + 1;
      }}
      known = current;
      if (not is_list_empty(fresh)) then {{
        send fresh to harvester;
      }}
    }}
  }}
  when (recv long newTh from harvester) do {{ threshold = newTh; }}
}}
"#
    )
}

/// The CPU-intensive ML task of § VI-A c: statistics polling drives an
/// SVR prediction (1000×1000 matrix multiplies) via `exec`, with an
/// iteration count for the Fig. 6d partitioning.
pub fn ml_source_at(accuracy_ms: u64, switch: u32, iterations: u32) -> String {
    format!(
        r#"
machine ML {{
  place any {switch};
  poll pollStats = Poll {{ .ival = {accuracy_ms}, .what = port ANY }};
  state predict {{
    util (res) {{
      if (res.vCPU >= 0) then {{ return 1 + res.vCPU; }}
    }}
    when (pollStats as stats) do {{
      exec_n("svr-matmul-1000", {iterations});
    }}
  }}
}}
"#
    )
}

/// No-external deployment helper.
pub fn no_externals() -> BTreeMap<String, farm_almanac::analysis::ConstEnv> {
    BTreeMap::new()
}

/// Renders rows as an aligned text table.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let headers_owned: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&headers_owned, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use farm_almanac::compile::frontend;

    #[test]
    fn parametric_sources_compile() {
        frontend(&hh_source_at(1, 0, 1_000_000)).unwrap();
        frontend(&hh_source_at(10, 3, 500)).unwrap();
        frontend(&hh_change_source_at(10, 1, 100_000)).unwrap();
        frontend(&ml_source_at(1, 0, 1)).unwrap();
        frontend(&ml_source_at(10, 2, 10)).unwrap();
    }

    #[test]
    fn sap_cluster_has_20_switches() {
        assert_eq!(sap_cluster().len(), 20);
    }

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            "T",
            &["a", "long-header"],
            &[vec!["x".into(), "1".into()], vec!["yy".into(), "22".into()]],
        );
        assert!(t.contains("== T =="));
        assert!(t.contains("long-header"));
    }
}
