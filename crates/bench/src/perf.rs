//! Support for the machine-readable perf harness (`placement_scale`):
//! exact sample percentiles and a dependency-free JSON value tree used
//! to emit and re-read `BENCH_placement.json` (the committed baseline
//! the CI `bench-smoke` job compares against).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Exact percentile over raw samples (linear interpolation between the
/// two nearest ranks). Unlike the telemetry histograms, this is not
/// bucketed — the harness keeps every sample.
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    assert!(!samples.is_empty(), "percentile of no samples");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// A minimal JSON value: enough to emit the bench schema and parse it
/// back for regression checks, with no external dependency.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Sorted keys — emission order is deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn obj(entries: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline —
    /// stable output for committing next to the code.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}]");
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < map.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}}}");
            }
        }
    }

    /// Parses a JSON document (the subset this module emits plus
    /// standard escapes; good enough for re-reading committed baselines).
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax error.
    pub fn parse(src: &str) -> Result<Json, String> {
        let bytes = src.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    let Some(&c) = b.get(*pos) else {
        return Err("unexpected end of input".into());
    };
    match c {
        b'n' => expect(b, pos, "null").map(|()| Json::Null),
        b't' => expect(b, pos, "true").map(|()| Json::Bool(true)),
        b'f' => expect(b, pos, "false").map(|()| Json::Bool(false)),
        b'"' => parse_string(b, pos).map(Json::Str),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                map.insert(key, parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        _ => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut s = String::new();
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(s);
            }
            b'\\' => {
                *pos += 1;
                let Some(&esc) = b.get(*pos) else { break };
                *pos += 1;
                match esc {
                    b'"' => s.push('"'),
                    b'\\' => s.push('\\'),
                    b'/' => s.push('/'),
                    b'n' => s.push('\n'),
                    b't' => s.push('\t'),
                    b'r' => s.push('\r'),
                    b'b' => s.push('\u{8}'),
                    b'f' => s.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        *pos += 4;
                        s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape `\\{}`", other as char)),
                }
            }
            _ => {
                // Multi-byte UTF-8 sequences pass through verbatim.
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xc0) == 0x80 {
                    *pos += 1;
                }
                s.push_str(std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad UTF-8")?);
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_interpolates() {
        let s: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert!((percentile(&s, 0.50) - 50.5).abs() < 1e-9);
        assert!((percentile(&s, 0.95) - 95.05).abs() < 1e-9);
        assert_eq!(percentile(&[7.0], 0.95), 7.0);
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&s, 1.0), 100.0);
    }

    #[test]
    fn json_round_trips() {
        let v = Json::obj([
            ("schema", Json::Str("farm-bench/placement_scale/v1".into())),
            (
                "entries",
                Json::Arr(vec![Json::obj([
                    ("seeds", Json::Num(10_200.0)),
                    ("p50", Json::Num(123.456)),
                    ("identical", Json::Bool(true)),
                    ("note", Json::Str("a \"quoted\" value\n".into())),
                ])]),
            ),
        ]);
        let text = v.pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(
            back.get("entries").unwrap().as_arr().unwrap()[0]
                .get("seeds")
                .unwrap()
                .as_f64(),
            Some(10_200.0)
        );
    }

    #[test]
    fn json_parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("{\"a\": 1} x").is_err());
    }
}
