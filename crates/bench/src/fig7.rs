//! Fig. 7 — global seed-placement optimization at scale: FARM's
//! heuristic vs the MILP solver with a short and a long deadline
//! (the paper's Gurobi-1 s and Gurobi-10 min).
//!
//! For every seed count the study runs several randomized instances
//! (varying resource and placement needs, § VI-D) and reports average
//! monitoring utility (MU) and average solve time.

use std::time::Duration;

use farm_placement::heuristic::{solve_heuristic, HeuristicOptions};
use farm_placement::milp::{solve_placement_milp, MilpPlacementOptions};
use farm_placement::model::validate;
use farm_placement::workload::{generate, WorkloadConfig};

/// Study parameters.
#[derive(Debug, Clone)]
pub struct Fig7Config {
    pub n_switches: usize,
    pub n_tasks: usize,
    pub seed_counts: Vec<usize>,
    pub runs_per_point: usize,
    /// Short MILP deadline (paper: 1 s).
    pub milp_short: Duration,
    /// Long MILP deadline (paper: 10 min; scaled down by default).
    pub milp_long: Duration,
}

impl Fig7Config {
    /// Quick mode: smaller fabric, fewer runs.
    pub fn quick() -> Fig7Config {
        // Keeps the paper's ~10 seeds-per-switch density at reduced size.
        Fig7Config {
            n_switches: 128,
            n_tasks: 6,
            seed_counts: vec![300, 700, 1250],
            runs_per_point: 2,
            milp_short: Duration::from_millis(250),
            milp_long: Duration::from_secs(3),
        }
    }

    /// Paper-scale mode (1 040 switches, up to 10 200 seeds); the long
    /// deadline is scaled from 10 min to 30 s to keep the harness
    /// practical — the utility/runtime *shape* is preserved.
    pub fn full() -> Fig7Config {
        Fig7Config {
            n_switches: 1040,
            n_tasks: 10,
            seed_counts: vec![1000, 4000, 7000, 10_200],
            runs_per_point: 10,
            milp_short: Duration::from_secs(1),
            milp_long: Duration::from_secs(30),
        }
    }
}

/// One point of the figure (averages over the runs).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Row {
    pub seeds: usize,
    pub heuristic_utility: f64,
    pub heuristic_secs: f64,
    pub milp_short_utility: f64,
    pub milp_short_secs: f64,
    pub milp_long_utility: f64,
    pub milp_long_secs: f64,
}

/// Runs the study.
pub fn run(cfg: &Fig7Config) -> Vec<Fig7Row> {
    cfg.seed_counts
        .iter()
        .map(|&seeds| {
            let mut acc = Fig7Row {
                seeds,
                heuristic_utility: 0.0,
                heuristic_secs: 0.0,
                milp_short_utility: 0.0,
                milp_short_secs: 0.0,
                milp_long_utility: 0.0,
                milp_long_secs: 0.0,
            };
            for run_idx in 0..cfg.runs_per_point {
                let inst = generate(&WorkloadConfig {
                    n_switches: cfg.n_switches,
                    n_tasks: cfg.n_tasks,
                    n_seeds: seeds,
                    rng_seed: 1000 + run_idx as u64,
                    ..Default::default()
                });
                let h = solve_heuristic(&inst, HeuristicOptions::default());
                validate(&inst, &h).expect("heuristic result must be feasible");
                acc.heuristic_utility += h.utility;
                acc.heuristic_secs += h.runtime.as_secs_f64();

                let short = solve_placement_milp(
                    &inst,
                    &MilpPlacementOptions {
                        time_limit: cfg.milp_short,
                        ..Default::default()
                    },
                );
                validate(&inst, &short.result).expect("milp-short result must be feasible");
                acc.milp_short_utility += short.result.utility;
                acc.milp_short_secs += short.result.runtime.as_secs_f64();

                let long = solve_placement_milp(
                    &inst,
                    &MilpPlacementOptions {
                        time_limit: cfg.milp_long,
                        ..Default::default()
                    },
                );
                validate(&inst, &long.result).expect("milp-long result must be feasible");
                acc.milp_long_utility += long.result.utility;
                acc.milp_long_secs += long.result.runtime.as_secs_f64();
            }
            let n = cfg.runs_per_point as f64;
            acc.heuristic_utility /= n;
            acc.heuristic_secs /= n;
            acc.milp_short_utility /= n;
            acc.milp_short_secs /= n;
            acc.milp_long_utility /= n;
            acc.milp_long_secs /= n;
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heuristic_is_fast_and_close_to_the_long_deadline_milp() {
        let cfg = Fig7Config {
            n_switches: 24,
            n_tasks: 4,
            seed_counts: vec![150],
            runs_per_point: 2,
            milp_short: Duration::from_millis(50),
            milp_long: Duration::from_millis(1500),
        };
        let rows = run(&cfg);
        let r = &rows[0];
        // Fig. 7a shape: heuristic utility ≈ long-deadline MILP, both at
        // or above the short-deadline incumbent.
        assert!(
            r.heuristic_utility >= 0.85 * r.milp_long_utility,
            "heuristic {} vs milp-long {}",
            r.heuristic_utility,
            r.milp_long_utility
        );
        assert!(r.milp_long_utility >= r.milp_short_utility * 0.99);
        // Fig. 7b shape: the heuristic runs in (milli)seconds, far below
        // the long deadline.
        assert!(
            r.heuristic_secs < cfg.milp_long.as_secs_f64(),
            "heuristic took {}s",
            r.heuristic_secs
        );
    }
}
