//! Harvesters: per-task centralized components (§ II-C a).
//!
//! A harvester collects what its seeds report and takes global actions
//! when seed-local decision-making is insufficient — e.g. retuning the HH
//! threshold network-wide or releasing a DDoS mitigation. Harvesters here
//! are trait objects driven by the [`crate::farm::Farm`] message router.

use std::any::Any;

use farm_almanac::value::Value;
use farm_netsim::time::{Dur, Time};
use farm_netsim::types::SwitchId;
use farm_soil::OutboundMessage;

/// Action a harvester asks the framework to take.
#[derive(Debug, Clone, PartialEq)]
pub enum HarvesterCommand {
    /// Send a value to all seeds of a machine (or one switch's seed when
    /// `at` is set).
    SendToMachine {
        machine: String,
        at: Option<SwitchId>,
        value: Value,
    },
}

/// Per-delivery context handed to a harvester.
#[derive(Debug)]
pub struct HarvesterCtx {
    pub now: Time,
    pub commands: Vec<HarvesterCommand>,
}

impl HarvesterCtx {
    pub fn new(now: Time) -> HarvesterCtx {
        HarvesterCtx {
            now,
            commands: Vec::new(),
        }
    }

    /// Queues a broadcast to every seed of `machine`.
    pub fn send_to_machine(&mut self, machine: impl Into<String>, value: Value) {
        self.commands.push(HarvesterCommand::SendToMachine {
            machine: machine.into(),
            at: None,
            value,
        });
    }

    /// Queues a message to the seed of `machine` on one switch.
    pub fn send_to_seed_at(&mut self, machine: impl Into<String>, at: SwitchId, value: Value) {
        self.commands.push(HarvesterCommand::SendToMachine {
            machine: machine.into(),
            at: Some(at),
            value,
        });
    }
}

/// A task's centralized component.
pub trait Harvester: Send {
    /// Handles one message from a seed.
    fn on_message(&mut self, msg: &OutboundMessage, ctx: &mut HarvesterCtx);

    /// Downcast support for tests and experiment harnesses.
    fn as_any(&self) -> &dyn Any;
}

/// One message as recorded by [`CollectingHarvester`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReceivedMessage {
    /// When the seed emitted it (virtual time).
    pub at: Time,
    /// Switch-local latency until it hit the wire.
    pub latency: Dur,
    pub from_switch: SwitchId,
    pub from_machine: String,
    pub value: Value,
}

impl ReceivedMessage {
    /// Instant the harvester effectively learned about the event.
    pub fn arrival(&self) -> Time {
        self.at + self.latency
    }
}

/// Records every message — the measurement probe of the detection-latency
/// and network-load experiments.
#[derive(Debug, Default)]
pub struct CollectingHarvester {
    pub received: Vec<ReceivedMessage>,
}

impl CollectingHarvester {
    pub fn new() -> Self {
        Self::default()
    }

    /// First recorded arrival at or after `t`.
    pub fn first_arrival_after(&self, t: Time) -> Option<Time> {
        self.received
            .iter()
            .map(|m| m.arrival())
            .filter(|a| *a >= t)
            .min()
    }

    /// Total payload bytes received.
    pub fn total_bytes(&self) -> u64 {
        self.received
            .iter()
            .map(|m| farm_soil::soil::value_bytes(&m.value))
            .sum()
    }
}

impl Harvester for CollectingHarvester {
    fn on_message(&mut self, msg: &OutboundMessage, _ctx: &mut HarvesterCtx) {
        self.received.push(ReceivedMessage {
            at: msg.at,
            latency: msg.latency,
            from_switch: msg.from_switch,
            from_machine: msg.from_machine.clone(),
            value: msg.value.clone(),
        });
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// The paper's HH harvester: receives hitter lists and dynamically adapts
/// the network-wide threshold to keep the report volume in a target band
/// (§ III-C: "the harvester sets up the threshold for a HH and can
/// dynamically change it based on the overall network load").
#[derive(Debug)]
pub struct HhThresholdHarvester {
    machine: String,
    threshold: i64,
    /// Raise the threshold when one report carries more hitters.
    pub max_hitters_per_report: usize,
    /// Lower the threshold after this many consecutive empty reports.
    pub lower_after_quiet: u32,
    quiet: u32,
    pub reports: u64,
    pub retunes: u64,
}

impl HhThresholdHarvester {
    pub fn new(machine: impl Into<String>, initial_threshold: i64) -> Self {
        HhThresholdHarvester {
            machine: machine.into(),
            threshold: initial_threshold,
            max_hitters_per_report: 8,
            lower_after_quiet: 16,
            quiet: 0,
            reports: 0,
            retunes: 0,
        }
    }

    /// Current network-wide threshold.
    pub fn threshold(&self) -> i64 {
        self.threshold
    }
}

impl Harvester for HhThresholdHarvester {
    fn on_message(&mut self, msg: &OutboundMessage, ctx: &mut HarvesterCtx) {
        let Value::List(hitters) = &msg.value else {
            return;
        };
        self.reports += 1;
        if hitters.len() > self.max_hitters_per_report {
            self.threshold = self.threshold.saturating_mul(2);
            self.retunes += 1;
            self.quiet = 0;
            ctx.send_to_machine(self.machine.clone(), Value::Int(self.threshold));
        } else if hitters.is_empty() {
            self.quiet += 1;
            if self.quiet >= self.lower_after_quiet && self.threshold > 1 {
                self.threshold = (self.threshold / 2).max(1);
                self.retunes += 1;
                self.quiet = 0;
                ctx.send_to_machine(self.machine.clone(), Value::Int(self.threshold));
            }
        } else {
            self.quiet = 0;
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// DDoS harvester: tracks per-switch mitigation reports and releases the
/// mitigation once every switch has been quiet for a grace period.
#[derive(Debug)]
pub struct DdosHarvester {
    machine: String,
    grace: Dur,
    last_alarm: Option<(SwitchId, Time)>,
    pub alarms: u64,
    pub releases: u64,
}

impl DdosHarvester {
    pub fn new(machine: impl Into<String>, grace: Dur) -> Self {
        DdosHarvester {
            machine: machine.into(),
            grace,
            last_alarm: None,
            alarms: 0,
            releases: 0,
        }
    }
}

impl Harvester for DdosHarvester {
    fn on_message(&mut self, msg: &OutboundMessage, ctx: &mut HarvesterCtx) {
        match &msg.value {
            Value::List(victims) if !victims.is_empty() => {
                self.alarms += 1;
                self.last_alarm = Some((msg.from_switch, msg.at));
            }
            _ => {
                // Quiet/recovery report: release when the grace period
                // since the last alarm has elapsed.
                if let Some((sw, at)) = self.last_alarm {
                    if msg.at.since(at) >= self.grace {
                        self.releases += 1;
                        self.last_alarm = None;
                        ctx.send_to_seed_at(self.machine.clone(), sw, Value::Str("release".into()));
                    }
                }
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farm_soil::{Endpoint, SeedId};

    fn msg(value: Value, at_ms: u64) -> OutboundMessage {
        OutboundMessage {
            from_switch: SwitchId(3),
            from_seed: SeedId(0),
            from_machine: "HH".into(),
            task: "hh".into(),
            to: Endpoint::Harvester,
            value,
            at: Time::from_millis(at_ms),
            latency: Dur::from_micros(100),
            bytes: 16,
        }
    }

    #[test]
    fn collecting_harvester_records_arrivals() {
        let mut h = CollectingHarvester::new();
        let mut ctx = HarvesterCtx::new(Time::from_millis(1));
        h.on_message(&msg(Value::Int(1), 5), &mut ctx);
        h.on_message(&msg(Value::Int(2), 9), &mut ctx);
        assert_eq!(h.received.len(), 2);
        assert_eq!(
            h.first_arrival_after(Time::from_millis(6)),
            Some(Time::from_millis(9) + Dur::from_micros(100))
        );
        assert!(ctx.commands.is_empty());
    }

    #[test]
    fn hh_harvester_raises_threshold_on_noisy_reports() {
        let mut h = HhThresholdHarvester::new("HH", 1000);
        h.max_hitters_per_report = 2;
        let mut ctx = HarvesterCtx::new(Time::ZERO);
        let noisy = Value::List(vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
        h.on_message(&msg(noisy, 1), &mut ctx);
        assert_eq!(h.threshold(), 2000);
        assert_eq!(
            ctx.commands,
            vec![HarvesterCommand::SendToMachine {
                machine: "HH".into(),
                at: None,
                value: Value::Int(2000)
            }]
        );
    }

    #[test]
    fn hh_harvester_lowers_threshold_after_quiet_period() {
        let mut h = HhThresholdHarvester::new("HH", 1000);
        h.lower_after_quiet = 3;
        let mut ctx = HarvesterCtx::new(Time::ZERO);
        for i in 0..3 {
            h.on_message(&msg(Value::List(vec![]), i), &mut ctx);
        }
        assert_eq!(h.threshold(), 500);
        assert_eq!(ctx.commands.len(), 1);
    }

    #[test]
    fn ddos_harvester_releases_after_grace() {
        let mut h = DdosHarvester::new("DDoS", Dur::from_millis(100));
        let mut ctx = HarvesterCtx::new(Time::ZERO);
        h.on_message(
            &msg(Value::List(vec![Value::Str("10.0.0.1".into())]), 10),
            &mut ctx,
        );
        assert_eq!(h.alarms, 1);
        // Quiet report before the grace elapses: no release.
        h.on_message(&msg(Value::Int(0), 50), &mut ctx);
        assert_eq!(h.releases, 0);
        // After the grace: release to the alarming switch.
        h.on_message(&msg(Value::Int(0), 150), &mut ctx);
        assert_eq!(h.releases, 1);
        assert!(matches!(
            &ctx.commands[0],
            HarvesterCommand::SendToMachine {
                at: Some(SwitchId(3)),
                ..
            }
        ));
    }
}
