//! The seeder: FARM's centralized M&M control instance (§ II-C b).
//!
//! The seeder compiles Almanac tasks, keeps the global catalog of
//! deployed tasks, and — whenever an input changes — re-runs placement
//! optimization over *all* co-deployed tasks, producing a plan of
//! deployments, migrations, reallocations and withdrawals that the
//! [`crate::farm::Farm`] facade executes against the soils.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use farm_almanac::compile::{CompiledMachine, CompiledTask};
use farm_netsim::switch::Resources;
use farm_netsim::types::SwitchId;
use farm_placement::build::instance_from_tasks;
use farm_placement::delta::{replan_delta, DeltaReport, ReplanDelta, SolveState};
use farm_placement::heuristic::HeuristicOptions;
use farm_placement::model::{PlacementResult, PreviousPlacement};
use farm_telemetry::Telemetry;

/// Stable identity of one seed across re-optimizations.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SeedKey {
    pub task: String,
    /// Index of the machine within its task.
    pub machine: usize,
    /// Index of the seed within its machine's placement spec.
    pub seed: usize,
}

impl std::fmt::Display for SeedKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/m{}/s{}", self.task, self.machine, self.seed)
    }
}

/// One step of a placement plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PlannedAction {
    /// Fresh deployment.
    Deploy {
        key: SeedKey,
        to: SwitchId,
        alloc: Resources,
    },
    /// Move a running seed (state snapshot travels with it).
    Migrate {
        key: SeedKey,
        from: SwitchId,
        to: SwitchId,
        alloc: Resources,
    },
    /// Same switch, new allocation.
    Realloc { key: SeedKey, alloc: Resources },
    /// Remove a seed (its task was dropped by the optimizer).
    Undeploy { key: SeedKey, from: SwitchId },
}

/// Outcome of a planning round.
#[derive(Debug, Clone)]
pub struct Plan {
    pub actions: Vec<PlannedAction>,
    /// The optimizer's result over all tasks.
    pub result: PlacementResult,
    /// Names of tasks the optimizer dropped entirely.
    pub dropped_tasks: Vec<String>,
    /// How much of the solve was served from the incremental solver's
    /// memo (see [`farm_placement::delta::replan_delta`]).
    pub delta: DeltaReport,
}

#[derive(Debug)]
struct TaskEntry {
    task: CompiledTask,
    machines: Vec<Arc<CompiledMachine>>,
}

/// The seeder's task catalog and placement memory.
#[derive(Debug, Default)]
pub struct Seeder {
    tasks: BTreeMap<String, TaskEntry>,
    /// Current location and allocation per seed.
    locations: HashMap<SeedKey, (SwitchId, Resources)>,
    options: HeuristicOptions,
    /// Solver-phase timings land here when set (see [`Seeder::set_telemetry`]).
    telemetry: Option<Telemetry>,
    /// Incremental-solver memory carried between planning rounds.
    solver_state: SolveState,
    /// Seed keys of the previous round, in instance order — the old→new
    /// index correspondence for [`SolveState::remap`].
    last_keys: Vec<SeedKey>,
    /// Tasks whose *definitions* changed since the last plan. Residency
    /// and capacity changes are caught by the solver's input signatures;
    /// definition changes are not, so registration marks them here and
    /// the next plan declares every affected seed dirty.
    dirty_tasks: BTreeSet<String>,
}

impl Seeder {
    /// A seeder with default heuristic options.
    pub fn new() -> Seeder {
        Seeder::default()
    }

    /// Overrides the heuristic options (ablations).
    pub fn set_options(&mut self, options: HeuristicOptions) {
        self.options = options;
    }

    /// Attaches telemetry: planning rounds record `solver.phase_us`
    /// samples and emit [`farm_telemetry::Event::SolverPhase`] events.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = Some(telemetry);
    }

    /// Registers a compiled task (replacing any same-named task). The
    /// task's seeds are marked dirty for the incremental solver: their
    /// utility/polling definitions may have changed in ways the solver's
    /// input signatures cannot see.
    pub fn register_task(&mut self, task: CompiledTask) {
        let machines = task.machines.iter().cloned().map(Arc::new).collect();
        self.dirty_tasks.insert(task.name.clone());
        self.tasks
            .insert(task.name.clone(), TaskEntry { task, machines });
    }

    /// Removes a task from the catalog together with its placement
    /// memory (the caller is responsible for undeploying the live seeds).
    pub fn remove_task(&mut self, name: &str) -> bool {
        self.locations.retain(|k, _| k.task != name);
        // The task's seed indices vanish from the next instance; the
        // pre-plan remap drops every memo entry that mentions them.
        self.dirty_tasks.remove(name);
        self.tasks.remove(name).is_some()
    }

    /// Registered task names in deterministic order.
    pub fn task_names(&self) -> Vec<String> {
        self.tasks.keys().cloned().collect()
    }

    /// The compiled machine definition behind a seed key.
    pub fn machine_of(&self, key: &SeedKey) -> Option<Arc<CompiledMachine>> {
        self.tasks
            .get(&key.task)
            .and_then(|e| e.machines.get(key.machine))
            .cloned()
    }

    /// Current location of a seed.
    pub fn location_of(&self, key: &SeedKey) -> Option<(SwitchId, Resources)> {
        self.locations.get(key).copied()
    }

    /// All currently placed seeds.
    pub fn placements(&self) -> impl Iterator<Item = (&SeedKey, &(SwitchId, Resources))> {
        self.locations.iter()
    }

    /// Runs global placement over every registered task and diffs the
    /// result against the current deployment.
    ///
    /// # Errors
    ///
    /// Propagates instance-construction failures (non-linear demands).
    pub fn plan(&mut self, switches: &[(SwitchId, Resources)]) -> Result<Plan, String> {
        self.plan_delta(switches, &[])
    }

    /// [`Seeder::plan`] with the caller's change set: switches that
    /// faulted, drained or returned since the last round are forcibly
    /// re-solved; everything else is eligible for incremental reuse
    /// through the retained [`SolveState`]. The result is bit-identical
    /// to a from-scratch solve either way — the delta only buys time.
    ///
    /// # Errors
    ///
    /// Propagates instance-construction failures (non-linear demands).
    pub fn plan_delta(
        &mut self,
        switches: &[(SwitchId, Resources)],
        dirty_switches: &[SwitchId],
    ) -> Result<Plan, String> {
        // Flatten tasks in deterministic order and build the key map.
        let entries: Vec<&TaskEntry> = self.tasks.values().collect();
        let task_refs: Vec<&CompiledTask> = entries.iter().map(|e| &e.task).collect();
        let mut keys: Vec<SeedKey> = Vec::new();
        for e in &entries {
            for (mi, m) in e.task.machines.iter().enumerate() {
                for si in 0..m.seeds.len() {
                    keys.push(SeedKey {
                        task: e.task.name.clone(),
                        machine: mi,
                        seed: si,
                    });
                }
            }
        }
        let mut previous = PreviousPlacement::default();
        for (i, key) in keys.iter().enumerate() {
            if let Some(loc) = self.locations.get(key) {
                previous.assignment.insert(i, *loc);
            }
        }
        let has_previous = !previous.assignment.is_empty();
        let instance = instance_from_tasks(&task_refs, switches, has_previous.then_some(previous))?;
        // Re-key the solver memory to this round's seed numbering (tasks
        // registered/removed since the last plan shift every index), then
        // declare dirty whatever the signatures cannot detect.
        if self.last_keys != keys {
            let new_index: HashMap<&SeedKey, usize> =
                keys.iter().enumerate().map(|(i, k)| (k, i)).collect();
            let map: Vec<Option<usize>> = self
                .last_keys
                .iter()
                .map(|k| new_index.get(k).copied())
                .collect();
            self.solver_state.remap(&map);
        }
        let delta = ReplanDelta {
            dirty_seeds: keys
                .iter()
                .enumerate()
                .filter(|(_, k)| self.dirty_tasks.contains(&k.task))
                .map(|(i, _)| i)
                .collect(),
            dirty_switches: dirty_switches.to_vec(),
        };
        let (result, report) = replan_delta(
            &instance,
            self.options,
            &mut self.solver_state,
            &delta,
            self.telemetry.as_ref(),
        );
        self.last_keys = keys.clone();
        self.dirty_tasks.clear();

        let mut actions = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            let new = result.assignment[i];
            let old = self.locations.get(key).copied();
            match (old, new) {
                (None, Some((n, alloc))) => actions.push(PlannedAction::Deploy {
                    key: key.clone(),
                    to: n,
                    alloc,
                }),
                (Some((from, _)), Some((to, alloc))) if from != to => {
                    actions.push(PlannedAction::Migrate {
                        key: key.clone(),
                        from,
                        to,
                        alloc,
                    })
                }
                (Some((_, old_alloc)), Some((_, alloc))) => {
                    if (0..4).any(|k| (old_alloc.0[k] - alloc.0[k]).abs() > 1e-9) {
                        actions.push(PlannedAction::Realloc {
                            key: key.clone(),
                            alloc,
                        });
                    }
                }
                (Some((from, _)), None) => actions.push(PlannedAction::Undeploy {
                    key: key.clone(),
                    from,
                }),
                (None, None) => {}
            }
        }
        let dropped_tasks = result
            .dropped_tasks
            .iter()
            .map(|&t| instance.tasks[t].name.clone())
            .collect();
        Ok(Plan {
            actions,
            result,
            dropped_tasks,
            delta: report,
        })
    }

    /// Drops the placement memory of every seed on `switch` (the switch
    /// crashed or was declared failed) and returns their keys in
    /// deterministic order. The next [`Seeder::plan`] sees those seeds as
    /// unplaced and proposes fresh deployments for them.
    pub fn evict_switch(&mut self, switch: SwitchId) -> Vec<SeedKey> {
        let mut evicted: Vec<SeedKey> = self
            .locations
            .iter()
            .filter(|(_, (n, _))| *n == switch)
            .map(|(k, _)| k.clone())
            .collect();
        evicted.sort();
        for key in &evicted {
            self.locations.remove(key);
        }
        evicted
    }

    /// Drops the placement memory of a single seed (e.g. shed under
    /// resource pressure). Returns whether the seed was known.
    pub fn forget(&mut self, key: &SeedKey) -> bool {
        self.locations.remove(key).is_some()
    }

    /// Records that a planned action was executed (keeps the placement
    /// memory in sync).
    pub fn commit(&mut self, action: &PlannedAction) {
        match action {
            PlannedAction::Deploy { key, to, alloc } => {
                self.locations.insert(key.clone(), (*to, *alloc));
            }
            PlannedAction::Migrate { key, to, alloc, .. } => {
                self.locations.insert(key.clone(), (*to, *alloc));
            }
            PlannedAction::Realloc { key, alloc } => {
                if let Some(slot) = self.locations.get_mut(key) {
                    slot.1 = *alloc;
                }
            }
            PlannedAction::Undeploy { key, .. } => {
                self.locations.remove(key);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farm_almanac::compile::compile_task;
    use farm_netsim::controller::SdnController;
    use farm_netsim::switch::SwitchModel;
    use farm_netsim::topology::Topology;

    fn fabric() -> Topology {
        Topology::spine_leaf(
            2,
            3,
            SwitchModel::accton_as7712(),
            SwitchModel::accton_as5712(),
        )
    }

    fn capacities(topo: &Topology) -> Vec<(SwitchId, Resources)> {
        topo.switches()
            .iter()
            .map(|n| (n.id, n.model.total_resources()))
            .collect()
    }

    #[test]
    fn first_plan_deploys_every_seed() {
        let topo = fabric();
        let ctl = SdnController::new(&topo);
        let task = compile_task(
            "hh",
            farm_almanac::programs::HEAVY_HITTER,
            &Default::default(),
            &ctl,
        )
        .unwrap();
        let mut seeder = Seeder::new();
        seeder.register_task(task);
        let plan = seeder.plan(&capacities(&topo)).unwrap();
        assert_eq!(plan.actions.len(), 5);
        assert!(plan
            .actions
            .iter()
            .all(|a| matches!(a, PlannedAction::Deploy { .. })));
        for a in &plan.actions {
            seeder.commit(a);
        }
        assert_eq!(seeder.placements().count(), 5);
    }

    #[test]
    fn replanning_unchanged_world_is_a_noop() {
        let topo = fabric();
        let ctl = SdnController::new(&topo);
        let task = compile_task(
            "hh",
            farm_almanac::programs::HEAVY_HITTER,
            &Default::default(),
            &ctl,
        )
        .unwrap();
        let mut seeder = Seeder::new();
        seeder.register_task(task);
        let caps = capacities(&topo);
        let plan = seeder.plan(&caps).unwrap();
        for a in &plan.actions {
            seeder.commit(a);
        }
        let plan2 = seeder.plan(&caps).unwrap();
        let disruptive: Vec<_> = plan2
            .actions
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    PlannedAction::Migrate { .. } | PlannedAction::Undeploy { .. }
                )
            })
            .collect();
        assert!(
            disruptive.is_empty(),
            "stable world must not move seeds: {disruptive:?}"
        );
    }

    #[test]
    fn removing_a_task_undeploys_its_seeds() {
        let topo = fabric();
        let ctl = SdnController::new(&topo);
        let task = compile_task(
            "hh",
            farm_almanac::programs::HEAVY_HITTER,
            &Default::default(),
            &ctl,
        )
        .unwrap();
        let mut seeder = Seeder::new();
        seeder.register_task(task);
        let caps = capacities(&topo);
        for a in &seeder.plan(&caps).unwrap().actions {
            seeder.commit(a);
        }
        assert!(seeder.remove_task("hh"));
        // With the task gone from the catalog the plan no longer knows the
        // seeds; the Farm facade undeploys orphans (see farm.rs). The
        // seeder itself reports no actions for unknown keys.
        let plan = seeder.plan(&caps).unwrap();
        assert!(plan.actions.is_empty());
    }

    #[test]
    fn evicting_a_switch_forgets_only_its_seeds() {
        let topo = fabric();
        let ctl = SdnController::new(&topo);
        let task = compile_task(
            "hh",
            farm_almanac::programs::HEAVY_HITTER,
            &Default::default(),
            &ctl,
        )
        .unwrap();
        let mut seeder = Seeder::new();
        seeder.register_task(task);
        let caps = capacities(&topo);
        for a in &seeder.plan(&caps).unwrap().actions {
            seeder.commit(a);
        }
        let total = seeder.placements().count();
        let victim = seeder.placements().next().unwrap().1 .0;
        let evicted = seeder.evict_switch(victim);
        assert!(!evicted.is_empty());
        assert!(evicted.windows(2).all(|w| w[0] < w[1]), "sorted keys");
        assert_eq!(seeder.placements().count(), total - evicted.len());
        assert!(seeder.placements().all(|(_, (n, _))| *n != victim));
        // The next plan re-deploys exactly the evicted seeds.
        let plan = seeder.plan(&caps).unwrap();
        let deploys: Vec<_> = plan
            .actions
            .iter()
            .filter(|a| matches!(a, PlannedAction::Deploy { .. }))
            .collect();
        assert_eq!(deploys.len(), evicted.len());
    }

    #[test]
    fn warm_replans_reuse_the_solver_memo() {
        let topo = fabric();
        let ctl = SdnController::new(&topo);
        let task = compile_task(
            "hh",
            farm_almanac::programs::HEAVY_HITTER,
            &Default::default(),
            &ctl,
        )
        .unwrap();
        let mut seeder = Seeder::new();
        seeder.register_task(task);
        let caps = capacities(&topo);
        let p1 = seeder.plan(&caps).unwrap();
        assert!(!p1.delta.warm, "first plan is cold");
        for a in &p1.actions {
            seeder.commit(a);
        }
        let p2 = seeder.plan(&caps).unwrap();
        assert!(p2.delta.warm);
        for a in &p2.actions {
            seeder.commit(a);
        }
        // By the third round the world is stable: the per-switch LP memo
        // captured on round two must serve round three.
        let p3 = seeder.plan(&caps).unwrap();
        assert!(p3.delta.warm);
        assert!(
            p3.delta.reused > 0 && !p3.delta.fallback_full,
            "stable replan should reuse memoized LPs: {:?}",
            p3.delta
        );
    }

    #[test]
    fn co_deployed_tasks_plan_together() {
        let topo = fabric();
        let ctl = SdnController::new(&topo);
        let mut seeder = Seeder::new();
        for (name, src) in [
            ("hh", farm_almanac::programs::HEAVY_HITTER),
            ("traffic-change", farm_almanac::programs::TRAFFIC_CHANGE),
        ] {
            seeder.register_task(compile_task(name, src, &Default::default(), &ctl).unwrap());
        }
        let plan = seeder.plan(&capacities(&topo)).unwrap();
        // Both `place all` tasks: 5 + 5 deployments.
        assert_eq!(plan.actions.len(), 10);
        assert!(plan.dropped_tasks.is_empty());
    }
}
