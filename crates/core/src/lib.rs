//! FARM core: the comprehensive network monitoring & management framework
//! of the ICDCS 2024 paper, assembled over the simulated substrate.
//!
//! * [`seeder`] — the centralized control instance: task catalog, global
//!   placement planning (via `farm-placement`), migration diffing.
//! * [`harvester`] — per-task centralized components (collecting, HH
//!   threshold tuning, DDoS release coordination).
//! * [`farm`] — the [`farm::Farm`] facade: network + soils + seeder +
//!   harvesters on one virtual clock, with message routing. Built via
//!   [`farm::FarmBuilder`], which also attaches telemetry sinks.
//! * [`metrics`] — the legacy cumulative-counters view, now computed
//!   from the shared `farm-telemetry` registry.
//! * [`error`] — the structured [`error::Error`] enum every fallible
//!   API returns (`FarmError` remains as an alias).
//!
//! # Example
//!
//! ```
//! use std::collections::BTreeMap;
//! use std::sync::Arc;
//! use farm_core::prelude::*;
//! use farm_netsim::traffic::{HeavyHitterWorkload, HhConfig};
//!
//! let topo = Topology::spine_leaf(2, 3,
//!     SwitchModel::accton_as7712(), SwitchModel::accton_as5712());
//! let events = Arc::new(RingBufferSink::new(4096));
//! let mut farm = FarmBuilder::new(topo)
//!     .with_harvester("hh", Box::new(CollectingHarvester::new()))
//!     .with_sink(events.clone())
//!     .build();
//! farm.deploy_task("hh", farm_almanac::programs::HEAVY_HITTER, &BTreeMap::new())?;
//!
//! let leaf = farm.network().topology().leaves().next().unwrap();
//! let mut traffic = HeavyHitterWorkload::new(HhConfig { switch: leaf, ..Default::default() });
//! farm.run(&mut [&mut traffic], Time::from_millis(30), Dur::from_millis(1));
//!
//! let h: &CollectingHarvester = farm.harvester("hh").unwrap();
//! assert!(!h.received.is_empty());
//! // The sink saw the seed lifecycle; the registry has the counters.
//! assert!(events.events().iter().any(|e| matches!(e, Event::SeedDeployed { .. })));
//! assert!(farm.telemetry().snapshot().counter("farm.collector_messages") > 0);
//! # Ok::<(), farm_core::Error>(())
//! ```

pub mod error;
pub mod farm;
pub mod harvester;
pub mod metrics;
pub mod seeder;
pub mod transport;

pub use error::{Error, FarmError};
pub use farm::{external, Farm, FarmBuilder, FarmConfig, FaultToleranceConfig, SeedStatus};
pub use harvester::{CollectingHarvester, Harvester, HarvesterCommand, HarvesterCtx};
pub use metrics::Metrics;
pub use seeder::{Plan, PlannedAction, SeedKey, Seeder};
pub use transport::TransportMode;

/// One-stop imports for building and observing a farm.
///
/// ```
/// use farm_core::prelude::*;
/// ```
pub mod prelude {
    pub use crate::error::{Error, FarmError};
    pub use crate::farm::{
        external, Farm, FarmBuilder, FarmConfig, FaultToleranceConfig, SeedStatus,
    };
    pub use crate::harvester::{CollectingHarvester, Harvester, HarvesterCommand, HarvesterCtx};
    pub use crate::metrics::Metrics;
    pub use crate::seeder::{Plan, PlannedAction, SeedKey, Seeder};
    pub use crate::transport::TransportMode;
    pub use farm_almanac::value::Value;
    pub use farm_faults::{ChurnProfile, FaultKind, FaultPlan, LossSpec};
    pub use farm_netsim::switch::SwitchModel;
    pub use farm_netsim::time::{Dur, Time};
    pub use farm_netsim::topology::Topology;
    pub use farm_telemetry::{
        Event, EventSink, JsonLinesSink, NullSink, RingBufferSink, Telemetry,
    };
}
