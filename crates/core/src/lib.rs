//! FARM core: the comprehensive network monitoring & management framework
//! of the ICDCS 2024 paper, assembled over the simulated substrate.
//!
//! * [`seeder`] — the centralized control instance: task catalog, global
//!   placement planning (via `farm-placement`), migration diffing.
//! * [`harvester`] — per-task centralized components (collecting, HH
//!   threshold tuning, DDoS release coordination).
//! * [`farm`] — the [`farm::Farm`] facade: network + soils + seeder +
//!   harvesters on one virtual clock, with message routing and metrics.
//! * [`metrics`] — framework-wide accounting (collector bytes, migrations).
//!
//! # Example
//!
//! ```
//! use std::collections::BTreeMap;
//! use farm_core::farm::{Farm, FarmConfig};
//! use farm_core::harvester::CollectingHarvester;
//! use farm_netsim::switch::SwitchModel;
//! use farm_netsim::time::{Dur, Time};
//! use farm_netsim::topology::Topology;
//! use farm_netsim::traffic::{HeavyHitterWorkload, HhConfig};
//!
//! let topo = Topology::spine_leaf(2, 3,
//!     SwitchModel::accton_as7712(), SwitchModel::accton_as5712());
//! let mut farm = Farm::new(topo, FarmConfig::default());
//! farm.set_harvester("hh", Box::new(CollectingHarvester::new()));
//! farm.deploy_task("hh", farm_almanac::programs::HEAVY_HITTER, &BTreeMap::new())?;
//!
//! let leaf = farm.network().topology().leaves().next().unwrap();
//! let mut traffic = HeavyHitterWorkload::new(HhConfig { switch: leaf, ..Default::default() });
//! farm.run(&mut [&mut traffic], Time::from_millis(30), Dur::from_millis(1));
//!
//! let h: &CollectingHarvester = farm.harvester("hh").unwrap();
//! assert!(!h.received.is_empty());
//! # Ok::<(), farm_core::farm::FarmError>(())
//! ```

pub mod farm;
pub mod harvester;
pub mod metrics;
pub mod seeder;

pub use farm::{Farm, FarmConfig, FarmError};
pub use harvester::{CollectingHarvester, Harvester, HarvesterCommand, HarvesterCtx};
pub use metrics::Metrics;
pub use seeder::{Plan, PlannedAction, SeedKey, Seeder};
