//! Delivery transport selection: in-process calls or real loopback TCP.
//!
//! Under [`TransportMode::Tcp`] every harvester report, seed→seed
//! message, harvester directive and migration snapshot is encoded by
//! `farm-net`, shipped over a loopback TCP connection, decoded on the
//! receiving side, and the *decoded* message is the one the framework
//! acts on. Virtual time is untouched — the simulated control-channel
//! loss model keeps governing delivery semantics — so both modes
//! produce identical harvester-visible event streams while `Tcp` runs
//! the full wire path (codec, framing, request/response, telemetry's
//! `net.*` instruments) for real.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use farm_almanac::value::Value;
use farm_net::{Connection, Envelope, Frame, NetConfig, NetServer, Report};
use farm_netsim::types::SwitchId;
use farm_soil::{OutboundMessage, SeedSnapshot};
use farm_telemetry::{Counter, Telemetry};

/// How Farm deliveries travel between soils, harvesters and the seeder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TransportMode {
    /// Direct in-process calls (the fastest path; the default).
    #[default]
    InProcess,
    /// Real loopback TCP through the `farm-net` wire protocol.
    Tcp,
}

/// Payloads reconstructed by the receiving end of the bridge.
enum Decoded {
    Message(Box<OutboundMessage>),
    Directive {
        machine: String,
        at: Option<SwitchId>,
        value: Value,
    },
    Snapshot(Box<SeedSnapshot>),
}

/// The loopback TCP leg: a `farm-net` server and client pair inside the
/// Farm process. `ship_*` round-trips a payload through encode → TCP →
/// decode and returns the reconstructed value; any transport hiccup
/// falls back to the original payload (counted in
/// `transport.fallbacks`) so simulation semantics never depend on
/// kernel scheduling.
pub(crate) struct TcpBridge {
    // Field order matters for Drop: sever the client before the server
    // stops accepting so the session ends with a graceful Shutdown.
    conn: Connection,
    _server: NetServer,
    rx: Mutex<mpsc::Receiver<Decoded>>,
    fallbacks: Arc<Counter>,
    heartbeat_seq: AtomicU64,
}

/// How long the bridge waits for the loopback round-trip. Generous —
/// loopback RPCs complete in microseconds; hitting this means the
/// machine is in serious trouble and the fallback path takes over.
const BRIDGE_TIMEOUT: Duration = Duration::from_secs(5);

impl TcpBridge {
    pub fn new(telemetry: &Telemetry) -> std::io::Result<TcpBridge> {
        let (tx, rx) = mpsc::channel::<Decoded>();
        let tx = Mutex::new(tx);
        let server = NetServer::bind(
            ([127, 0, 0, 1], 0).into(),
            telemetry,
            Arc::new(move |env: &Envelope| {
                let tx = tx.lock().expect("bridge tx lock");
                match &env.frame {
                    Frame::PollReport { reports } => {
                        for r in reports {
                            let _ = tx.send(Decoded::Message(Box::new(r.clone().into_outbound())));
                        }
                    }
                    Frame::SeedMessage {
                        task,
                        from_switch,
                        from_seed,
                        from_machine,
                        to_machine,
                        at_switch,
                        at_ns,
                        latency_ns,
                        bytes,
                        value,
                    } => {
                        let msg = OutboundMessage {
                            from_switch: SwitchId(*from_switch),
                            from_seed: farm_soil::SeedId(*from_seed),
                            from_machine: from_machine.clone(),
                            task: task.clone(),
                            to: farm_soil::Endpoint::Machine {
                                name: to_machine.clone(),
                                at: at_switch.map(SwitchId),
                            },
                            value: value.clone(),
                            at: farm_netsim::time::Time::ZERO
                                + farm_netsim::time::Dur::from_nanos(*at_ns),
                            latency: farm_netsim::time::Dur::from_nanos(*latency_ns),
                            bytes: *bytes,
                        };
                        let _ = tx.send(Decoded::Message(Box::new(msg)));
                    }
                    Frame::HarvesterDirective {
                        machine,
                        at_switch,
                        value,
                    } => {
                        let _ = tx.send(Decoded::Directive {
                            machine: machine.clone(),
                            at: at_switch.map(SwitchId),
                            value: value.clone(),
                        });
                    }
                    Frame::Migrate { snapshot, .. } => {
                        let _ = tx.send(Decoded::Snapshot(Box::new(snapshot.clone())));
                    }
                    _ => {}
                }
                None // requests get the default Ack
            }),
        )?;
        let conn = Connection::connect(
            server.local_addr(),
            NetConfig {
                node: "farm-bridge".into(),
                ..NetConfig::default()
            },
            telemetry,
        );
        Ok(TcpBridge {
            conn,
            _server: server,
            rx: Mutex::new(rx),
            fallbacks: telemetry.counter("transport.fallbacks"),
            heartbeat_seq: AtomicU64::new(0),
        })
    }

    /// RPCs `frame` to the loopback peer and returns what the peer
    /// decoded, or `None` on any transport failure.
    fn round_trip(&self, frame: Frame) -> Option<Decoded> {
        self.conn.request_timeout(frame, BRIDGE_TIMEOUT).ok()?;
        // The handler forwards the decoded payload *before* answering,
        // so after the Ack it is already queued.
        self.rx
            .lock()
            .expect("bridge rx lock")
            .recv_timeout(BRIDGE_TIMEOUT)
            .ok()
    }

    /// Sends one delivery (harvester report or seed→seed message) over
    /// the wire and returns the decoded copy the peer reconstructed.
    pub fn ship_message(&self, msg: OutboundMessage) -> OutboundMessage {
        let frame = match &msg.to {
            farm_soil::Endpoint::Harvester => Frame::PollReport {
                reports: vec![Report::from_outbound(&msg)],
            },
            farm_soil::Endpoint::Machine { name, at } => Frame::SeedMessage {
                task: msg.task.clone(),
                from_switch: msg.from_switch.0,
                from_seed: msg.from_seed.0,
                from_machine: msg.from_machine.clone(),
                to_machine: name.clone(),
                at_switch: at.map(|s| s.0),
                at_ns: msg.at.as_nanos(),
                latency_ns: msg.latency.as_nanos(),
                bytes: msg.bytes,
                value: msg.value.clone(),
            },
        };
        match self.round_trip(frame) {
            Some(Decoded::Message(decoded)) => *decoded,
            _ => {
                self.fallbacks.inc();
                msg
            }
        }
    }

    /// Ships a harvester→seed directive, returning the decoded triple.
    pub fn ship_directive(
        &self,
        machine: String,
        at: Option<SwitchId>,
        value: Value,
    ) -> (String, Option<SwitchId>, Value) {
        let frame = Frame::HarvesterDirective {
            machine: machine.clone(),
            at_switch: at.map(|s| s.0),
            value: value.clone(),
        };
        match self.round_trip(frame) {
            Some(Decoded::Directive {
                machine: m,
                at: a,
                value: v,
            }) => (m, a, v),
            _ => {
                self.fallbacks.inc();
                (machine, at, value)
            }
        }
    }

    /// Ships a migration snapshot, returning the decoded copy the
    /// destination imports.
    pub fn ship_snapshot(
        &self,
        task: &str,
        from: SwitchId,
        to: SwitchId,
        snapshot: SeedSnapshot,
    ) -> SeedSnapshot {
        let frame = Frame::Migrate {
            task: task.to_string(),
            from_switch: from.0,
            to_switch: to.0,
            snapshot: snapshot.clone(),
        };
        match self.round_trip(frame) {
            Some(Decoded::Snapshot(decoded)) => *decoded,
            _ => {
                self.fallbacks.inc();
                snapshot
            }
        }
    }

    /// Fire-and-forget liveness beacon for one heartbeat round.
    pub fn heartbeat(&self, switch: u32, at_ns: u64) {
        let seq = self.heartbeat_seq.fetch_add(1, Ordering::Relaxed);
        let _ = self.conn.try_send(Frame::Heartbeat { switch, seq, at_ns });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farm_netsim::time::{Dur, Time};

    fn sample_msg() -> OutboundMessage {
        OutboundMessage {
            from_switch: SwitchId(3),
            from_seed: farm_soil::SeedId(9),
            from_machine: "HH".into(),
            task: "hh".into(),
            to: farm_soil::Endpoint::Harvester,
            value: Value::List(vec![Value::Int(-4), Value::Str("x".into())]),
            at: Time::from_millis(7),
            latency: Dur::from_micros(11),
            bytes: 42,
        }
    }

    #[test]
    fn bridge_round_trips_a_harvester_report_losslessly() {
        let telemetry = Telemetry::new();
        let bridge = TcpBridge::new(&telemetry).expect("bridge");
        let msg = sample_msg();
        let got = bridge.ship_message(msg.clone());
        assert_eq!(got, msg);
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("transport.fallbacks"), 0);
        assert!(snap.counter("net.rpcs") >= 1);
        assert!(snap.counter("net.bytes") > 0);
    }

    #[test]
    fn bridge_round_trips_seed_messages_and_directives() {
        let telemetry = Telemetry::new();
        let bridge = TcpBridge::new(&telemetry).expect("bridge");
        let mut msg = sample_msg();
        msg.to = farm_soil::Endpoint::Machine {
            name: "Agg".into(),
            at: Some(SwitchId(1)),
        };
        assert_eq!(bridge.ship_message(msg.clone()), msg);
        let (m, a, v) = bridge.ship_directive("HH".into(), None, Value::Float(0.25));
        assert_eq!((m.as_str(), a, v), ("HH", None, Value::Float(0.25)));
    }

    #[test]
    fn bridge_round_trips_migration_snapshots() {
        let telemetry = Telemetry::new();
        let bridge = TcpBridge::new(&telemetry).expect("bridge");
        let snap = SeedSnapshot {
            machine: "HH".into(),
            state: "run".into(),
            vars: vec![("count".into(), Value::Int(12))],
        };
        let got = bridge.ship_snapshot("hh", SwitchId(0), SwitchId(2), snap.clone());
        assert_eq!(got, snap);
    }
}
