//! The `Farm` facade: the whole framework wired together.
//!
//! Owns the simulated [`Network`], one [`Soil`] per switch, the
//! [`Seeder`] and the per-task harvesters, and drives everything on
//! virtual time: traffic application, probe sampling, trigger scheduling,
//! message routing (seed ↔ seed and seed ↔ harvester), harvester
//! commands, and placement (re)optimization with live migrations.
//!
//! Construction goes through [`FarmBuilder`] (also reachable as
//! [`Farm::builder`]): topology, configuration, harvesters and telemetry
//! sinks in one fluent chain. The builder wires a shared
//! [`Telemetry`] handle through every layer — network, soils, seeder —
//! so one registry accumulates the whole stack's counters and
//! histograms and one sink set observes the whole event stream.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use farm_almanac::analysis::ConstEnv;
use farm_almanac::compile::compile_task;
use farm_almanac::value::{PacketRecord, Value};
use farm_netsim::controller::SdnController;
use farm_netsim::network::{Network, TrafficEvent};
use farm_netsim::switch::Resources;
use farm_netsim::time::{Dur, Time};
use farm_netsim::topology::Topology;
use farm_netsim::traffic::Workload;
use farm_netsim::types::{Proto, SwitchId};
use farm_soil::{Endpoint, OutboundMessage, SeedId, Soil, SoilConfig};
use farm_telemetry::{
    Counter, Event, EventSink, Histogram, ReplanOutcome, Telemetry, UndeployReason,
};

pub use crate::error::{Error, FarmError};
use crate::harvester::{Harvester, HarvesterCommand, HarvesterCtx};
use crate::metrics::Metrics;
use crate::seeder::{Plan, PlannedAction, SeedKey, Seeder};

/// Framework configuration.
#[derive(Debug, Clone, Default)]
pub struct FarmConfig {
    /// Soil configuration applied to every switch.
    pub soil: SoilConfig,
}

/// Maximum message-routing rounds per step (seed→harvester→seed→… chains).
const MAX_ROUTING_ROUNDS: usize = 8;

/// Cached handles for the framework-level instruments, so the routing
/// hot path never takes the registry lock.
struct FarmCounters {
    collector_messages: Arc<Counter>,
    collector_bytes: Arc<Counter>,
    seed_messages: Arc<Counter>,
    seed_bytes: Arc<Counter>,
    control_messages: Arc<Counter>,
    control_bytes: Arc<Counter>,
    migrations: Arc<Counter>,
    migration_bytes: Arc<Counter>,
    seed_errors: Arc<Counter>,
    replans: Arc<Counter>,
    /// Source-to-harvester report latency, microseconds.
    detection_latency_us: Arc<Histogram>,
}

impl FarmCounters {
    fn new(telemetry: &Telemetry) -> FarmCounters {
        FarmCounters {
            collector_messages: telemetry.counter("farm.collector_messages"),
            collector_bytes: telemetry.counter("farm.collector_bytes"),
            seed_messages: telemetry.counter("farm.seed_messages"),
            seed_bytes: telemetry.counter("farm.seed_bytes"),
            control_messages: telemetry.counter("farm.control_messages"),
            control_bytes: telemetry.counter("farm.control_bytes"),
            migrations: telemetry.counter("farm.migrations"),
            migration_bytes: telemetry.counter("farm.migration_bytes"),
            seed_errors: telemetry.counter("farm.seed_errors"),
            replans: telemetry.counter("farm.replans"),
            detection_latency_us: telemetry.latency_histogram("detection.latency_us"),
        }
    }
}

/// Fluent constructor for [`Farm`]: topology, config, harvesters and
/// telemetry sinks in one chain.
///
/// ```
/// use std::sync::Arc;
/// use farm_core::prelude::*;
///
/// let topo = Topology::spine_leaf(2, 3,
///     SwitchModel::accton_as7712(), SwitchModel::accton_as5712());
/// let events = Arc::new(RingBufferSink::new(1024));
/// let farm = FarmBuilder::new(topo)
///     .with_config(FarmConfig::default())
///     .with_harvester("hh", Box::new(CollectingHarvester::new()))
///     .with_sink(events.clone())
///     .build();
/// assert_eq!(farm.deployed_seeds(), 0);
/// ```
pub struct FarmBuilder {
    topology: Topology,
    config: FarmConfig,
    sinks: Vec<Arc<dyn EventSink>>,
    harvesters: Vec<(String, Box<dyn Harvester>)>,
}

impl FarmBuilder {
    /// Starts a builder over a topology with default configuration.
    pub fn new(topology: Topology) -> FarmBuilder {
        FarmBuilder {
            topology,
            config: FarmConfig::default(),
            sinks: Vec::new(),
            harvesters: Vec::new(),
        }
    }

    /// Replaces the framework configuration.
    pub fn with_config(mut self, config: FarmConfig) -> FarmBuilder {
        self.config = config;
        self
    }

    /// Registers a harvester for a task (replacing a previous one for
    /// the same task).
    pub fn with_harvester(mut self, task: impl Into<String>, h: Box<dyn Harvester>) -> FarmBuilder {
        self.harvesters.push((task.into(), h));
        self
    }

    /// Attaches an event sink; every [`Event`] from any layer reaches it.
    pub fn with_sink(mut self, sink: Arc<dyn EventSink>) -> FarmBuilder {
        self.sinks.push(sink);
        self
    }

    /// Assembles the framework: one [`Telemetry`] handle is created and
    /// threaded through the network, every soil, and the seeder.
    pub fn build(self) -> Farm {
        let telemetry = Telemetry::new();
        for sink in self.sinks {
            telemetry.add_sink(sink);
        }
        let mut network = Network::new(self.topology);
        network.set_telemetry(&telemetry);
        let soils: HashMap<SwitchId, Soil> = network
            .switch_ids()
            .into_iter()
            .map(|id| {
                let mut soil = Soil::new(id, self.config.soil);
                soil.set_telemetry(telemetry.clone());
                (id, soil)
            })
            .collect();
        let mut seeder = Seeder::new();
        seeder.set_telemetry(telemetry.clone());
        let counters = FarmCounters::new(&telemetry);
        let mut farm = Farm {
            network,
            soils,
            seeder,
            seed_ids: HashMap::new(),
            harvesters: HashMap::new(),
            now: Time::ZERO,
            telemetry,
            counters,
        };
        for (task, h) in self.harvesters {
            farm.set_harvester(task, h);
        }
        farm
    }
}

/// The assembled FARM framework over a simulated fabric.
pub struct Farm {
    network: Network,
    soils: HashMap<SwitchId, Soil>,
    seeder: Seeder,
    seed_ids: HashMap<SeedKey, SeedId>,
    harvesters: HashMap<String, Box<dyn Harvester>>,
    now: Time,
    telemetry: Telemetry,
    counters: FarmCounters,
}

impl Farm {
    /// Builds the framework over a topology. Equivalent to
    /// `Farm::builder(topology).with_config(config).build()`; prefer
    /// [`FarmBuilder`] when attaching harvesters or sinks.
    pub fn new(topology: Topology, config: FarmConfig) -> Farm {
        Farm::builder(topology).with_config(config).build()
    }

    /// Starts a [`FarmBuilder`] over a topology.
    pub fn builder(topology: Topology) -> FarmBuilder {
        FarmBuilder::new(topology)
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The simulated network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Mutable network access (test workloads, fault injection).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    /// The soil running on a switch.
    pub fn soil(&self, id: SwitchId) -> Option<&Soil> {
        self.soils.get(&id)
    }

    /// The seeder (task catalog and placements).
    pub fn seeder(&self) -> &Seeder {
        &self.seeder
    }

    /// Mutable seeder access (heuristic options for ablations).
    pub fn seeder_mut(&mut self) -> &mut Seeder {
        &mut self.seeder
    }

    /// The telemetry handle shared by every layer: registry of
    /// counters/gauges/histograms plus the event-sink fan-out.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Cumulative metrics — a compatibility view computed from the
    /// telemetry registry's `farm.*` counters.
    pub fn metrics(&self) -> Metrics {
        Metrics {
            collector_messages: self.counters.collector_messages.get(),
            collector_bytes: self.counters.collector_bytes.get(),
            seed_messages: self.counters.seed_messages.get(),
            seed_bytes: self.counters.seed_bytes.get(),
            control_messages: self.counters.control_messages.get(),
            control_bytes: self.counters.control_bytes.get(),
            migrations: self.counters.migrations.get(),
            migration_bytes: self.counters.migration_bytes.get(),
            seed_errors: self.counters.seed_errors.get(),
            replans: self.counters.replans.get(),
        }
    }

    /// Number of deployed seeds across the fabric.
    pub fn deployed_seeds(&self) -> usize {
        self.seed_ids.len()
    }

    /// Registers (or replaces) the harvester of a task.
    pub fn set_harvester(&mut self, task: impl Into<String>, h: Box<dyn Harvester>) {
        self.harvesters.insert(task.into(), h);
    }

    /// Typed view of a task's harvester.
    pub fn harvester<T: 'static>(&self, task: &str) -> Option<&T> {
        self.harvesters
            .get(task)
            .and_then(|h| h.as_any().downcast_ref::<T>())
    }

    /// Compiles and deploys an M&M task: parse/check/analyze the Almanac
    /// source, register it, and re-run global placement (which deploys
    /// the new seeds and may migrate existing ones).
    ///
    /// # Errors
    ///
    /// Compilation errors, placement failures, or soil deployment errors.
    pub fn deploy_task(
        &mut self,
        name: &str,
        source: &str,
        externals: &BTreeMap<String, ConstEnv>,
    ) -> Result<Plan, Error> {
        let task = {
            let ctl = SdnController::new(self.network.topology());
            compile_task(name, source, externals, &ctl)?
        };
        self.seeder.register_task(task);
        self.replan()
    }

    /// Compiles and registers several tasks, then runs a *single* global
    /// placement round — the efficient path for deploying fleets (the
    /// paper's seeder also batches: placement runs when inputs change,
    /// not per seed).
    ///
    /// # Errors
    ///
    /// Compilation or plan-execution failures.
    pub fn deploy_tasks(
        &mut self,
        tasks: &[(&str, &str, BTreeMap<String, ConstEnv>)],
    ) -> Result<Plan, Error> {
        for (name, source, externals) in tasks {
            let task = {
                let ctl = SdnController::new(self.network.topology());
                compile_task(name, source, externals, &ctl)?
            };
            self.seeder.register_task(task);
        }
        self.replan()
    }

    /// Removes a task: undeploys its seeds and drops its harvester.
    pub fn remove_task(&mut self, name: &str) -> Result<(), Error> {
        self.seeder.remove_task(name);
        self.harvesters.remove(name);
        let orphans: Vec<SeedKey> = self
            .seed_ids
            .keys()
            .filter(|k| k.task == name)
            .cloned()
            .collect();
        for key in orphans {
            if let Some(sid) = self.seed_ids.remove(&key) {
                // Location is gone from the seeder after remove_task; scan
                // the soils instead.
                for (swid, soil) in self.soils.iter_mut() {
                    if soil.seed(sid).is_some() {
                        let switch = self
                            .network
                            .switch_mut(*swid)
                            .expect("switch exists for soil");
                        let _ = soil.undeploy_with_reason(
                            sid,
                            UndeployReason::TaskRemoved,
                            self.now,
                            switch,
                        );
                        break;
                    }
                }
            }
        }
        Ok(())
    }

    /// Re-runs global placement over every registered task and executes
    /// the resulting plan (deploy / migrate / realloc / undeploy).
    ///
    /// # Errors
    ///
    /// Soil-level failures while executing the plan.
    pub fn replan(&mut self) -> Result<Plan, Error> {
        let caps: Vec<(SwitchId, Resources)> = self
            .network
            .topology()
            .switches()
            .iter()
            .map(|n| (n.id, n.model.total_resources()))
            .collect();
        let plan = match self.seeder.plan(&caps) {
            Ok(plan) => plan,
            Err(msg) => {
                self.counters.replans.inc();
                let at_ns = self.now.as_nanos();
                self.telemetry.emit_with(|| Event::ReplanCompleted {
                    at_ns,
                    outcome: ReplanOutcome::Failed,
                    actions: 0,
                    dropped_tasks: 0,
                });
                return Err(Error::Planner(msg));
            }
        };
        let mut outbound = Vec::new();
        for action in &plan.actions {
            match action {
                PlannedAction::Deploy { key, to, alloc } => {
                    let def = self
                        .seeder
                        .machine_of(key)
                        .ok_or_else(|| Error::UnknownMachine(key.to_string()))?;
                    let report = {
                        let soil = self.soils.get_mut(to).expect("soil per switch");
                        let switch = self.network.switch_mut(*to).expect("switch exists");
                        let (sid, report) =
                            soil.deploy(def, &key.task, *alloc, self.now, switch)?;
                        self.seed_ids.insert(key.clone(), sid);
                        report
                    };
                    self.counters.seed_errors.add(report.errors.len() as u64);
                    outbound.extend(report.messages);
                }
                PlannedAction::Migrate {
                    key,
                    from,
                    to,
                    alloc,
                } => {
                    let def = self
                        .seeder
                        .machine_of(key)
                        .ok_or_else(|| Error::UnknownMachine(key.to_string()))?;
                    let sid = *self
                        .seed_ids
                        .get(key)
                        .ok_or_else(|| Error::NotDeployed(key.to_string()))?;
                    let snapshot = {
                        let soil = self.soils.get_mut(from).expect("soil per switch");
                        let switch = self.network.switch_mut(*from).expect("switch exists");
                        soil.undeploy_with_reason(sid, UndeployReason::Migration, self.now, switch)?
                    };
                    let bytes: u64 = snapshot
                        .vars
                        .iter()
                        .map(|(_, v)| farm_soil::soil::value_bytes(v))
                        .sum();
                    let new_sid = {
                        let soil = self.soils.get_mut(to).expect("soil per switch");
                        let switch = self.network.switch_mut(*to).expect("switch exists");
                        soil.import(
                            Arc::clone(&def),
                            &key.task,
                            *alloc,
                            &snapshot,
                            self.now,
                            switch,
                        )?
                    };
                    self.seed_ids.insert(key.clone(), new_sid);
                    self.counters.migrations.inc();
                    self.counters.migration_bytes.add(bytes);
                    let at_ns = self.now.as_nanos();
                    self.telemetry.emit_with(|| Event::SeedMigrated {
                        at_ns,
                        from_switch: from.0,
                        to_switch: to.0,
                        task: key.task.clone(),
                        state_bytes: bytes,
                    });
                }
                PlannedAction::Realloc { key, alloc } => {
                    if let (Some(sid), Some((swid, _))) =
                        (self.seed_ids.get(key), self.seeder.location_of(key))
                    {
                        let soil = self.soils.get_mut(&swid).expect("soil per switch");
                        let switch = self.network.switch_mut(swid).expect("switch exists");
                        let report = soil.realloc(*sid, *alloc, self.now, switch)?;
                        self.counters.seed_errors.add(report.errors.len() as u64);
                        outbound.extend(report.messages);
                    }
                }
                PlannedAction::Undeploy { key, from } => {
                    if let Some(sid) = self.seed_ids.remove(key) {
                        let soil = self.soils.get_mut(from).expect("soil per switch");
                        let switch = self.network.switch_mut(*from).expect("switch exists");
                        let _ = soil.undeploy_with_reason(
                            sid,
                            UndeployReason::Replanned,
                            self.now,
                            switch,
                        )?;
                    }
                }
            }
            self.seeder.commit(action);
        }
        self.counters.replans.inc();
        let at_ns = self.now.as_nanos();
        let outcome = if plan.dropped_tasks.is_empty() {
            ReplanOutcome::Full
        } else {
            ReplanOutcome::Partial
        };
        let (actions, dropped) = (plan.actions.len() as u64, plan.dropped_tasks.len() as u64);
        self.telemetry.emit_with(|| Event::ReplanCompleted {
            at_ns,
            outcome,
            actions,
            dropped_tasks: dropped,
        });
        self.route(outbound);
        Ok(plan)
    }

    /// Applies traffic to the fabric and offers per-event samples to
    /// probe triggers.
    pub fn apply_traffic(&mut self, events: &[TrafficEvent]) {
        self.network.apply_traffic(events);
        let mut per_switch: HashMap<SwitchId, Vec<PacketRecord>> = HashMap::new();
        for e in events {
            per_switch
                .entry(e.switch)
                .or_default()
                .push(sample_packet(e));
        }
        let mut outbound = Vec::new();
        for (swid, pkts) in per_switch {
            if let Some(soil) = self.soils.get_mut(&swid) {
                let switch = self.network.switch_mut(swid).expect("switch exists");
                let report = soil.offer_packets(&pkts, self.now, switch);
                self.counters.seed_errors.add(report.errors.len() as u64);
                outbound.extend(report.messages);
            }
        }
        self.route(outbound);
    }

    /// Advances virtual time to `to`: every soil fires its due triggers
    /// and resulting messages are routed.
    pub fn advance(&mut self, to: Time) {
        let ids = self.network.switch_ids();
        let mut outbound = Vec::new();
        for id in ids {
            let soil = self.soils.get_mut(&id).expect("soil per switch");
            let switch = self.network.switch_mut(id).expect("switch exists");
            let report = soil.advance(to, switch);
            self.counters.seed_errors.add(report.errors.len() as u64);
            outbound.extend(report.messages);
        }
        self.now = to;
        self.route(outbound);
    }

    /// Runs workloads against the fabric until `until`, stepping traffic
    /// and triggers every `tick`.
    pub fn run(&mut self, workloads: &mut [&mut dyn Workload], until: Time, tick: Dur) {
        assert!(!tick.is_zero(), "tick must be positive");
        while self.now < until {
            let step_end = (self.now + tick).min(until);
            let dt = step_end.since(self.now);
            let mut events = Vec::new();
            for w in workloads.iter_mut() {
                events.extend(w.advance(self.now, dt));
            }
            self.apply_traffic(&events);
            self.advance(step_end);
        }
    }

    /// Routes outbound messages to harvesters and seeds, applying
    /// harvester commands; message chains are bounded per step.
    fn route(&mut self, mut messages: Vec<OutboundMessage>) {
        for _round in 0..MAX_ROUTING_ROUNDS {
            if messages.is_empty() {
                return;
            }
            let mut next = Vec::new();
            for msg in messages.drain(..) {
                match &msg.to {
                    Endpoint::Harvester => {
                        self.counters.collector_messages.inc();
                        self.counters.collector_bytes.add(msg.bytes);
                        self.counters
                            .detection_latency_us
                            .record(msg.latency.as_nanos() / 1_000);
                        let at_ns = self.now.as_nanos();
                        self.telemetry.emit_with(|| Event::HarvesterReport {
                            at_ns,
                            task: msg.task.clone(),
                            from_switch: msg.from_switch.0,
                            bytes: msg.bytes,
                            latency_ns: msg.latency.as_nanos(),
                        });
                        if let Some(h) = self.harvesters.get_mut(&msg.task) {
                            let mut ctx = HarvesterCtx::new(self.now);
                            h.on_message(&msg, &mut ctx);
                            for cmd in ctx.commands {
                                next.extend(self.apply_command(cmd));
                            }
                        }
                    }
                    Endpoint::Machine { name, at } => {
                        self.counters.seed_messages.inc();
                        self.counters.seed_bytes.add(msg.bytes);
                        let targets: Vec<SwitchId> = match at {
                            Some(sw) => vec![*sw],
                            None => self
                                .network
                                .switch_ids()
                                .into_iter()
                                .filter(|id| *id != msg.from_switch)
                                .collect(),
                        };
                        for swid in targets {
                            if let Some(soil) = self.soils.get_mut(&swid) {
                                let switch = self.network.switch_mut(swid).expect("switch exists");
                                let report = soil.deliver_to_machine(
                                    name,
                                    Some(&msg.from_machine),
                                    &msg.value,
                                    self.now,
                                    switch,
                                );
                                self.counters.seed_errors.add(report.errors.len() as u64);
                                next.extend(report.messages);
                            }
                        }
                    }
                }
            }
            messages = next;
        }
        if !messages.is_empty() {
            // Routing chain exceeded the bound: account and drop.
            self.counters.seed_errors.add(messages.len() as u64);
        }
    }

    fn apply_command(&mut self, cmd: HarvesterCommand) -> Vec<OutboundMessage> {
        match cmd {
            HarvesterCommand::SendToMachine { machine, at, value } => {
                self.counters.control_messages.inc();
                self.counters
                    .control_bytes
                    .add(farm_soil::soil::value_bytes(&value));
                let targets: Vec<SwitchId> = match at {
                    Some(sw) => vec![sw],
                    None => self.network.switch_ids(),
                };
                let mut out = Vec::new();
                for swid in targets {
                    if let Some(soil) = self.soils.get_mut(&swid) {
                        let switch = self.network.switch_mut(swid).expect("switch exists");
                        let report =
                            soil.deliver_to_machine(&machine, None, &value, self.now, switch);
                        self.counters.seed_errors.add(report.errors.len() as u64);
                        out.extend(report.messages);
                    }
                }
                out
            }
        }
    }
}

/// Synthesizes a sampled packet from a flow-level traffic event. TCP
/// flows with small average packets are treated as connection attempts
/// (SYN) — the granularity the probe-based Tab. I tasks need.
fn sample_packet(e: &TrafficEvent) -> PacketRecord {
    let avg = e.bytes.checked_div(e.packets).unwrap_or(e.bytes);
    let syn = e.flow.proto == Proto::Tcp && avg <= 128;
    PacketRecord {
        flow: e.flow,
        len: avg.min(u32::MAX as u64) as u32,
        syn,
        fin: false,
        ack: false,
    }
}

/// Utility value helpers for external assignments.
pub fn external(pairs: &[(&str, Value)]) -> ConstEnv {
    farm_almanac::compile::externals(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harvester::CollectingHarvester;
    use farm_netsim::switch::SwitchModel;
    use farm_netsim::traffic::{HeavyHitterWorkload, HhConfig};
    use farm_telemetry::RingBufferSink;

    fn fabric() -> Topology {
        Topology::spine_leaf(
            2,
            3,
            SwitchModel::accton_as7712(),
            SwitchModel::accton_as5712(),
        )
    }

    #[test]
    fn deploys_hh_task_on_every_switch() {
        let mut farm = Farm::new(fabric(), FarmConfig::default());
        let plan = farm
            .deploy_task("hh", farm_almanac::programs::HEAVY_HITTER, &BTreeMap::new())
            .unwrap();
        assert_eq!(plan.actions.len(), 5);
        assert_eq!(farm.deployed_seeds(), 5);
        for id in farm.network().switch_ids() {
            assert_eq!(farm.soil(id).unwrap().num_seeds(), 1);
        }
    }

    #[test]
    fn end_to_end_hh_detection() {
        let mut farm = Farm::builder(fabric())
            .with_harvester("hh", Box::new(CollectingHarvester::new()))
            .build();
        farm.deploy_task("hh", farm_almanac::programs::HEAVY_HITTER, &BTreeMap::new())
            .unwrap();
        let leaf = farm.network().topology().leaves().next().unwrap();
        let mut hh = HeavyHitterWorkload::new(HhConfig {
            switch: leaf,
            n_ports: 16,
            hh_ratio: 0.1,
            ..Default::default()
        });
        farm.run(&mut [&mut hh], Time::from_millis(50), Dur::from_millis(1));
        let h: &CollectingHarvester = farm.harvester("hh").unwrap();
        assert!(!h.received.is_empty(), "harvester must receive HH reports");
        // Detection comes from the leaf carrying the traffic.
        assert!(h.received.iter().any(|m| m.from_switch == leaf));
        assert!(farm.metrics().collector_bytes > 0);
        // The compat view is computed from the registry: both must agree.
        let snap = farm.telemetry().snapshot();
        assert_eq!(
            farm.metrics().collector_bytes,
            snap.counter("farm.collector_bytes")
        );
        let detection = snap.histogram("detection.latency_us").unwrap();
        assert_eq!(detection.count, farm.metrics().collector_messages);
    }

    #[test]
    fn removing_a_task_cleans_up() {
        let mut farm = Farm::new(fabric(), FarmConfig::default());
        farm.deploy_task("hh", farm_almanac::programs::HEAVY_HITTER, &BTreeMap::new())
            .unwrap();
        assert_eq!(farm.deployed_seeds(), 5);
        farm.remove_task("hh").unwrap();
        assert_eq!(farm.deployed_seeds(), 0);
        for id in farm.network().switch_ids() {
            assert_eq!(farm.soil(id).unwrap().num_seeds(), 0);
        }
    }

    #[test]
    fn two_tasks_coexist() {
        let mut farm = Farm::new(fabric(), FarmConfig::default());
        farm.deploy_task("hh", farm_almanac::programs::HEAVY_HITTER, &BTreeMap::new())
            .unwrap();
        farm.deploy_task(
            "traffic-change",
            farm_almanac::programs::TRAFFIC_CHANGE,
            &BTreeMap::new(),
        )
        .unwrap();
        assert_eq!(farm.deployed_seeds(), 10);
        // Both tasks poll `port ANY`: the soils should aggregate.
        farm.advance(Time::from_millis(2000));
        let saved: u64 = farm
            .network()
            .switch_ids()
            .iter()
            .map(|id| farm.soil(*id).unwrap().stats().polls_saved)
            .sum();
        assert!(saved > 0, "co-located tasks must share ASIC polls");
    }

    #[test]
    fn external_assignment_reaches_seeds() {
        let mut farm = Farm::new(fabric(), FarmConfig::default());
        let mut ext = BTreeMap::new();
        ext.insert("HH".to_string(), external(&[("threshold", Value::Int(77))]));
        farm.deploy_task("hh", farm_almanac::programs::HEAVY_HITTER, &ext)
            .unwrap();
        let leaf = farm.network().topology().leaves().next().unwrap();
        let soil = farm.soil(leaf).unwrap();
        let seed = soil.seeds().next().unwrap();
        assert_eq!(seed.var("threshold"), Some(&Value::Int(77)));
    }

    #[test]
    fn builder_sinks_see_lifecycle_and_replan_events() {
        let events = Arc::new(RingBufferSink::new(4096));
        let mut farm = Farm::builder(fabric()).with_sink(events.clone()).build();
        farm.deploy_task("hh", farm_almanac::programs::HEAVY_HITTER, &BTreeMap::new())
            .unwrap();
        let seen = events.events();
        assert_eq!(
            seen.iter()
                .filter(|e| matches!(e, Event::SeedDeployed { .. }))
                .count(),
            5
        );
        assert!(seen.iter().any(|e| matches!(
            e,
            Event::ReplanCompleted {
                outcome: ReplanOutcome::Full,
                ..
            }
        )));
    }

    #[test]
    fn sample_packet_flags_syns() {
        let e = TrafficEvent {
            switch: SwitchId(0),
            rx_port: None,
            tx_port: None,
            flow: farm_netsim::types::FlowKey::tcp(
                farm_netsim::types::Ipv4::new(1, 1, 1, 1),
                9,
                farm_netsim::types::Ipv4::new(2, 2, 2, 2),
                22,
            ),
            bytes: 64,
            packets: 1,
        };
        assert!(sample_packet(&e).syn);
        let big = TrafficEvent {
            bytes: 1500 * 10,
            packets: 10,
            ..e
        };
        assert!(!sample_packet(&big).syn);
    }
}
